//! Minimal SIGTERM/SIGINT latch for graceful drain.
//!
//! The workspace forbids dependencies, so this is the one place that
//! touches the C signal API directly: a handler that sets an atomic flag,
//! installed once, polled by the serve loop. Everything else in the crate
//! is `unsafe`-free (the crate root is `deny(unsafe_code)`; only this
//! module opts back in, for the two FFI items below).

use std::sync::atomic::{AtomicBool, Ordering};

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod ffi {
    #![allow(unsafe_code)]

    use super::SIGNALLED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` with a handler that only stores an atomic is
        // async-signal-safe; the handler stays valid for the process
        // lifetime (it is a static item).
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

/// Installs the SIGTERM/SIGINT handler (idempotent; no-op off Unix).
pub fn install() {
    #[cfg(unix)]
    ffi::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn requested() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Test hook: simulates a termination signal in-process.
pub fn raise_for_test() {
    SIGNALLED.store(true, Ordering::SeqCst);
}
