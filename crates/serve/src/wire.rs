//! Wire protocol: request decoding and response encoding.
//!
//! One JSON object per line in each direction. Requests carry an `"op"`
//! discriminant; every response carries a `"status"` whose value maps
//! one-to-one onto the CLI exit codes (README "Exit codes" table), plus
//! two service-only statuses:
//!
//! | status       | code | meaning                                        |
//! |--------------|------|------------------------------------------------|
//! | `OK`         | 0    | request completed                              |
//! | `USAGE`      | 2    | malformed request or unknown op/session        |
//! | `PARSE`      | 3    | unreadable or corrupt input bundle             |
//! | `INFEASIBLE` | 4    | job ran but the result is unacceptable         |
//! | `INTERNAL`   | 5    | the daemon's fault (contained to the one job)  |
//! | `RETRY_AFTER`| 6    | admission refused (queue full or draining)     |
//! | `INTERRUPTED`| 7    | job was admitted but the daemon died before it |
//! |              |      | finished (reported on restart via the journal) |

use crate::json::{parse, Json};
use mcl_core::LegalizeError;
use mcl_db::prelude::{CellId, Point};
use mcl_obs::JsonWriter;

/// Response status; see the module table for the exit-code mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Request completed.
    Ok,
    /// Malformed request, unknown op, unknown session.
    Usage,
    /// Unreadable or corrupt input bundle.
    Parse,
    /// The job ran but produced an unacceptable result (e.g. seed
    /// rejected) — the input's fault.
    Infeasible,
    /// Contained internal failure (panic, exhausted ladder) — the
    /// daemon's fault, scoped to the one job.
    Internal,
    /// Admission refused: queue at capacity or the daemon is draining.
    RetryAfter,
    /// The job was accepted but a crash killed the daemon before it
    /// finished; surfaced by journal recovery on restart.
    Interrupted,
}

impl Status {
    /// The process exit code `mclegal rpc` maps this status to.
    pub fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Usage => 2,
            Status::Parse => 3,
            Status::Infeasible => 4,
            Status::Internal => 5,
            Status::RetryAfter => 6,
            Status::Interrupted => 7,
        }
    }

    /// Wire spelling.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Usage => "USAGE",
            Status::Parse => "PARSE",
            Status::Infeasible => "INFEASIBLE",
            Status::Internal => "INTERNAL",
            Status::RetryAfter => "RETRY_AFTER",
            Status::Interrupted => "INTERRUPTED",
        }
    }

    /// Inverse of [`Self::name`] (used by the `rpc` client to map the
    /// last response line to an exit code).
    pub fn from_name(name: &str) -> Option<Status> {
        Some(match name {
            "OK" => Status::Ok,
            "USAGE" => Status::Usage,
            "PARSE" => Status::Parse,
            "INFEASIBLE" => Status::Infeasible,
            "INTERNAL" => Status::Internal,
            "RETRY_AFTER" => Status::RetryAfter,
            "INTERRUPTED" => Status::Interrupted,
            _ => return None,
        })
    }

    /// The status a classed pipeline error maps to — the same split the
    /// CLI uses: a rejected seed is the input's fault (infeasible),
    /// everything else is the tool's (internal).
    pub fn from_error(e: &LegalizeError) -> Status {
        match e {
            LegalizeError::SeedRejected { .. } => Status::Infeasible,
            _ => Status::Internal,
        }
    }
}

/// The ECO delta payload: explicit moves, or a deterministic synthetic
/// delta (`EcoSession::synthesize_delta`) for benches and smoke tests.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaSpec {
    /// Explicit `(cell id, new gp)` moves.
    Moves(Vec<(CellId, Point)>),
    /// `synthesize_delta(design, cells, seed)` on the session's base.
    Synth {
        /// Number of cells to move.
        cells: usize,
        /// Deterministic seed.
        seed: u64,
    },
}

/// A decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Daemon counters and latency quantiles.
    Stats,
    /// Begin graceful drain: stop admitting, finish in-flight, shut down.
    Drain,
    /// Submit a legalization job over a Bookshelf bundle directory.
    Legalize {
        /// Bundle directory path.
        dir: String,
        /// Per-job wall-clock budget; tightens (never loosens) the
        /// engine-wide budget and rides the same degradation ladder.
        deadline_secs: Option<f64>,
    },
    /// Open a resident ECO session over a legal placement bundle.
    EcoOpen {
        /// Bundle directory path (must hold a legal placement).
        dir: String,
        /// Per-delta wall-clock budget for this session.
        deadline_secs: Option<f64>,
    },
    /// Apply one atomic delta to a session.
    EcoDelta {
        /// Session id from `eco_open`.
        session: u64,
        /// The delta payload.
        delta: DeltaSpec,
    },
    /// Persist a session's current base placement as a Bookshelf bundle.
    EcoCommit {
        /// Session id.
        session: u64,
        /// Output directory.
        out: String,
    },
    /// Close a session and free its resident state.
    EcoClose {
        /// Session id.
        session: u64,
    },
}

/// Decodes one request line.
///
/// # Errors
///
/// A usage message (the caller wraps it in a `USAGE` response).
pub fn decode_request(line: &str) -> Result<Request, String> {
    let v = parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let op = v.str_field("op").ok_or("request needs a string `op`")?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "drain" => Ok(Request::Drain),
        "legalize" => Ok(Request::Legalize {
            dir: required_str(&v, "dir")?,
            deadline_secs: v.num_field("deadline_secs"),
        }),
        "eco_open" => Ok(Request::EcoOpen {
            dir: required_str(&v, "dir")?,
            deadline_secs: v.num_field("deadline_secs"),
        }),
        "eco_delta" => Ok(Request::EcoDelta {
            session: required_u64(&v, "session")?,
            delta: decode_delta(&v)?,
        }),
        "eco_commit" => Ok(Request::EcoCommit {
            session: required_u64(&v, "session")?,
            out: required_str(&v, "out")?,
        }),
        "eco_close" => Ok(Request::EcoClose {
            session: required_u64(&v, "session")?,
        }),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn required_str(v: &Json, key: &str) -> Result<String, String> {
    v.str_field(key)
        .map(str::to_string)
        .ok_or_else(|| format!("op needs a string `{key}`"))
}

fn required_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.u64_field(key)
        .ok_or_else(|| format!("op needs an unsigned integer `{key}`"))
}

fn decode_delta(v: &Json) -> Result<DeltaSpec, String> {
    if let Some(moves) = v.get("moves").and_then(Json::as_arr) {
        let mut out = Vec::with_capacity(moves.len());
        for m in moves {
            let t = m
                .as_arr()
                .filter(|t| t.len() == 3)
                .ok_or("each move must be a [cell, x, y] triple")?;
            let cell = t
                .first()
                .and_then(Json::as_u64)
                .and_then(|id| u32::try_from(id).ok())
                .ok_or("move cell id must be an unsigned integer")?;
            let x = coord(t.get(1))?;
            let y = coord(t.get(2))?;
            out.push((CellId(cell), Point::new(x, y)));
        }
        if out.is_empty() {
            return Err("`moves` must not be empty".into());
        }
        Ok(DeltaSpec::Moves(out))
    } else if let Some(cells) = v.u64_field("cells") {
        let cells = usize::try_from(cells).map_err(|_| "`cells` out of range".to_string())?;
        if cells == 0 {
            return Err("`cells` must be positive".into());
        }
        Ok(DeltaSpec::Synth {
            cells,
            seed: v.u64_field("seed").unwrap_or(1),
        })
    } else {
        Err("eco_delta needs `moves` or `cells` (+ optional `seed`)".into())
    }
}

/// Decodes one move coordinate: DBU positions travel as JSON integers.
fn coord(v: Option<&Json>) -> Result<i64, String> {
    let n = v
        .and_then(Json::as_f64)
        .ok_or("move coordinates must be numbers")?;
    if n.fract() != 0.0 || !n.is_finite() {
        return Err("move coordinates must be integer DBU".into());
    }
    Ok(mcl_db::geom::dbu_from_f64_saturating(n))
}

// ---------------------------------------------------------------------------
// Response encoding. Every line is one compact JSON object whose first
// field is `status`; `JsonWriter` escapes newlines, so any embedded text
// (error messages, report JSON) stays on the one line.
// ---------------------------------------------------------------------------

fn open(status: Status) -> JsonWriter {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("status", status.name());
    w
}

fn close(mut w: JsonWriter) -> String {
    w.end_object();
    w.finish()
}

/// `ping` reply.
pub fn pong_line() -> String {
    let mut w = open(Status::Ok);
    w.field_bool("pong", true);
    close(w)
}

/// A failure reply with just an error message (USAGE/PARSE/INTERNAL).
pub fn error_line(status: Status, msg: &str) -> String {
    let mut w = open(status);
    w.field_str("error", msg);
    close(w)
}

/// Admission refusal: retry after the hinted backoff.
pub fn retry_after_line(retry_after_ms: u64, queue_depth: u64, draining: bool) -> String {
    let mut w = open(Status::RetryAfter);
    w.field_u64("retry_after_ms", retry_after_ms);
    w.field_u64("queue_depth", queue_depth);
    w.field_bool("draining", draining);
    close(w)
}

/// Admission acknowledgement (first of the two legalize reply lines).
pub fn accepted_line(job: u64, design: &str) -> String {
    let mut w = open(Status::Ok);
    w.field_str("phase", "ACCEPTED");
    w.field_u64("job", job);
    w.field_str("design", design);
    close(w)
}

/// Successful job completion; `report_json` is an already-rendered
/// `RunReport::to_json()` document, embedded verbatim.
pub fn job_ok_line(job: u64, design: &str, report_json: &str) -> String {
    let mut w = open(Status::Ok);
    w.field_u64("job", job);
    w.field_str("design", design);
    w.field_raw("report", report_json);
    close(w)
}

/// Contained job failure: the classed error, mirrored from the batch
/// CLI's `<name>.failure.json` shape.
pub fn job_failed_line(job: u64, design: &str, e: &LegalizeError) -> String {
    let mut w = open(Status::from_error(e));
    w.field_u64("job", job);
    w.key("failure");
    w.begin_object();
    w.field_str("design", design);
    w.field_str("class", e.class().label());
    w.field_str("error", &e.to_string());
    w.end_object();
    close(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_mirror_cli() {
        assert_eq!(Status::Ok.code(), 0);
        assert_eq!(Status::Usage.code(), 2);
        assert_eq!(Status::Parse.code(), 3);
        assert_eq!(Status::Infeasible.code(), 4);
        assert_eq!(Status::Internal.code(), 5);
        assert_eq!(Status::RetryAfter.code(), 6);
        assert_eq!(Status::Interrupted.code(), 7);
        for s in [
            Status::Ok,
            Status::Usage,
            Status::Parse,
            Status::Infeasible,
            Status::Internal,
            Status::RetryAfter,
            Status::Interrupted,
        ] {
            assert_eq!(Status::from_name(s.name()), Some(s));
        }
        assert_eq!(Status::from_name("NOPE"), None);
    }

    #[test]
    fn decodes_core_ops() {
        assert_eq!(decode_request(r#"{"op":"ping"}"#), Ok(Request::Ping));
        assert_eq!(decode_request(r#"{"op":"drain"}"#), Ok(Request::Drain));
        assert_eq!(
            decode_request(r#"{"op":"legalize","dir":"/tmp/b","deadline_secs":2.5}"#),
            Ok(Request::Legalize {
                dir: "/tmp/b".into(),
                deadline_secs: Some(2.5)
            })
        );
        assert_eq!(
            decode_request(r#"{"op":"eco_delta","session":3,"cells":8,"seed":7}"#),
            Ok(Request::EcoDelta {
                session: 3,
                delta: DeltaSpec::Synth { cells: 8, seed: 7 }
            })
        );
        let moves = decode_request(r#"{"op":"eco_delta","session":1,"moves":[[4,100,-200]]}"#);
        assert_eq!(
            moves,
            Ok(Request::EcoDelta {
                session: 1,
                delta: DeltaSpec::Moves(vec![(CellId(4), Point::new(100, -200))])
            })
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(decode_request("not json").is_err());
        assert!(decode_request(r#"{"dir":"/x"}"#).is_err(), "missing op");
        assert!(decode_request(r#"{"op":"frobnicate"}"#).is_err());
        assert!(decode_request(r#"{"op":"legalize"}"#).is_err(), "no dir");
        assert!(decode_request(r#"{"op":"eco_delta","session":1}"#).is_err());
        assert!(
            decode_request(r#"{"op":"eco_delta","session":1,"moves":[[1,0.5,0]]}"#).is_err(),
            "fractional DBU"
        );
        assert!(decode_request(r#"{"op":"eco_delta","session":1,"moves":[]}"#).is_err());
        assert!(decode_request(r#"{"op":"eco_delta","session":1,"cells":0}"#).is_err());
    }

    #[test]
    fn response_lines_are_single_line_json() {
        let lines = [
            pong_line(),
            error_line(Status::Usage, "bad\nrequest"),
            retry_after_line(100, 64, false),
            accepted_line(7, "golden_uniform"),
            job_ok_line(7, "golden_uniform", r#"{"design":"golden_uniform"}"#),
        ];
        for l in &lines {
            assert!(!l.contains('\n'), "{l:?} must be one line");
            assert!(crate::json::parse(l).is_ok(), "{l:?} must re-parse");
        }
        assert!(lines[4].contains(r#""report":{"design":"golden_uniform"}"#));
    }
}
