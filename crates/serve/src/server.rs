//! The daemon: admission control, the scheduler wave loop, resident ECO
//! sessions, graceful drain, and the wire client.
//!
//! # Threading model
//!
//! One **accept thread** polls the listener and spawns a short-lived
//! thread per connection. Connection threads do all parsing (a corrupt
//! bundle is refused *before* admission, so it never consumes queue or
//! journal space) and own the resident ECO sessions. One **scheduler
//! thread** owns the [`Engine`] and drains the queue in waves: every job
//! queued at wake-up runs as one batch over the engine's shared worker
//! pool, so per-design outputs stay byte-identical to solo runs (the
//! engine's batch-invariance contract, DESIGN.md §13).
//!
//! # Fault containment
//!
//! A job that panics, exhausts its degradation ladder, or rejects its
//! seed produces one classed failure response; every other job in the
//! same wave completes and reports normally. Admission is fail-closed:
//! if the write-ahead journal cannot record the acceptance, the job is
//! refused — the daemon never holds work it could forget.

use crate::journal::{self, InterruptedJob, Journal};
use crate::signal;
use crate::wire::{self, DeltaSpec, Request, Status};
use mcl_core::{
    build_run_report, EcoSession, Engine, FaultPlan, FaultSite, LegalizeError, LegalizeStats,
    LegalizerConfig,
};
use mcl_db::prelude::Design;
use mcl_obs::clock::Stopwatch;
use mcl_obs::{count_to_float, CounterKind, HistoKind, JsonWriter, Meter};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Daemon configuration.
pub struct ServeConfig {
    /// Bind address; `127.0.0.1:0` picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// The engine configuration every job runs under.
    pub engine: LegalizerConfig,
    /// Bounded queue capacity; admission past it answers `RETRY_AFTER`
    /// instead of buffering (explicit backpressure, never unbounded).
    pub queue_cap: usize,
    /// Default per-job wall-clock budget when the request names none.
    pub default_deadline_secs: Option<f64>,
    /// Where job reports land (`<name>.json`, `<name>.golden.json`,
    /// `<name>.failure.json`), written tmp-then-rename.
    pub report_dir: Option<PathBuf>,
    /// Write-ahead journal path; `None` disables crash recovery.
    pub journal_path: Option<PathBuf>,
    /// Backoff hint carried in `RETRY_AFTER` responses.
    pub retry_after_ms: u64,
    /// Evict ECO sessions idle longer than this; 0 disables eviction.
    pub idle_evict_secs: u64,
    /// Test hook: the scheduler sleeps this long before each wave, so a
    /// kill-recovery test can deterministically die between acceptance
    /// and completion. 0 in production.
    pub admit_hold_secs: f64,
    /// Server-layer fault plan (admission race, client disconnect,
    /// journal failure); the engine's own plan lives in
    /// [`ServeConfig::engine`].
    pub faults: Option<Arc<FaultPlan>>,
}

impl ServeConfig {
    /// Defaults around the given engine configuration.
    pub fn new(engine: LegalizerConfig) -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            engine,
            queue_cap: 64,
            default_deadline_secs: None,
            report_dir: None,
            journal_path: None,
            retry_after_ms: 100,
            idle_evict_secs: 300,
            admit_hold_secs: 0.0,
            faults: None,
        }
    }
}

/// An admitted job waiting for the scheduler.
struct Job {
    meta: JobMeta,
    design: Design,
}

/// Everything the scheduler needs besides the design itself.
struct JobMeta {
    id: u64,
    name: String,
    deadline: Option<f64>,
    /// Started at admission: the latency histogram covers queue + run.
    sw: Stopwatch,
    reply: mpsc::Sender<String>,
}

struct SessionSlot {
    session: EcoSession,
    /// Last-touched instant, in nanos of [`Shared::clock`].
    last_used_nanos: u64,
}

#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    interrupted: AtomicU64,
    evicted: AtomicU64,
}

struct Shared {
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    wake: Condvar,
    draining: AtomicBool,
    stopped: AtomicBool,
    next_job: AtomicU64,
    next_session: AtomicU64,
    journal: Mutex<Option<Journal>>,
    sessions: Mutex<HashMap<u64, Arc<Mutex<SessionSlot>>>>,
    counters: Counters,
    meter: Mutex<Meter>,
    /// Monotonic reference for session idle-eviction.
    clock: Stopwatch,
}

/// Poison-transparent lock: a panicking holder already produced its
/// classed failure elsewhere; the daemon keeps serving.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn fault(shared: &Shared, design: &str, site: &FaultSite) -> bool {
    shared
        .cfg
        .faults
        .as_ref()
        .is_some_and(|p| p.fires(design, site))
}

/// A running daemon.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
    recovered: Vec<InterruptedJob>,
}

impl Server {
    /// Recovers the journal, binds the listener, and starts the accept
    /// and scheduler threads.
    ///
    /// # Errors
    ///
    /// A message for any bind/journal/report-dir I/O failure.
    pub fn start(cfg: ServeConfig) -> Result<Self, String> {
        if let Some(rd) = &cfg.report_dir {
            std::fs::create_dir_all(rd).map_err(|e| format!("report dir {}: {e}", rd.display()))?;
        }
        let recovered = match &cfg.journal_path {
            Some(jp) => journal::recover(jp, cfg.report_dir.as_deref())
                .map_err(|e| format!("journal recovery {}: {e}", jp.display()))?,
            None => Vec::new(),
        };
        let journal = match &cfg.journal_path {
            Some(jp) => {
                Some(Journal::open(jp).map_err(|e| format!("journal {}: {e}", jp.display()))?)
            }
            None => None,
        };
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("listener: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("listener: {e}"))?;

        let engine_cfg = cfg.engine.clone();
        let shared = Arc::new(Shared {
            cfg,
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            next_session: AtomicU64::new(1),
            journal: Mutex::new(journal),
            sessions: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            meter: Mutex::new(Meter::new()),
            clock: Stopwatch::start(),
        });
        shared
            .counters
            .interrupted
            .store(recovered.len() as u64, Ordering::SeqCst);
        lock(&shared.meter).add(CounterKind::ServeJobsInterrupted, recovered.len() as u64);

        let sched_shared = Arc::clone(&shared);
        let accept_shared = Arc::clone(&shared);
        let threads = vec![
            std::thread::spawn(move || scheduler_loop(&sched_shared, Engine::new(engine_cfg))),
            std::thread::spawn(move || accept_loop(&accept_shared, &listener)),
        ];
        Ok(Self {
            shared,
            addr,
            threads,
            recovered,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs the previous incarnation accepted and lost to a crash,
    /// already reported as `INTERRUPTED` failure records on disk.
    pub fn recovered(&self) -> &[InterruptedJob] {
        &self.recovered
    }

    /// Begins a graceful drain: stop admitting, finish in-flight jobs,
    /// flush reports, truncate the journal, stop.
    pub fn drain(&self) {
        begin_drain(&self.shared);
    }

    /// Whether the drain has completed and all service threads stopped.
    pub fn finished(&self) -> bool {
        self.shared.stopped.load(Ordering::SeqCst)
    }

    /// Blocks until the daemon has fully shut down.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Serves until a termination signal (see [`signal::install`]) or a
    /// wire `drain` request, then completes the drain and returns.
    pub fn run(self) {
        while !self.finished() {
            if signal::requested() {
                self.drain();
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        self.join();
    }
}

fn begin_drain(shared: &Shared) {
    shared.draining.store(true, Ordering::SeqCst);
    shared.wake.notify_all();
}

// ---------------------------------------------------------------------------
// Scheduler: wave loop over the shared engine.
// ---------------------------------------------------------------------------

fn scheduler_loop(shared: &Arc<Shared>, mut engine: Engine) {
    loop {
        let wave: Vec<Job> = {
            let mut q = lock(&shared.queue);
            loop {
                if !q.is_empty() {
                    break q.drain(..).collect();
                }
                // Empty queue + draining, decided under the queue lock
                // (admission refuses under the same lock once draining is
                // set): nothing can slip in after this check.
                if shared.draining.load(Ordering::SeqCst) {
                    drop(q);
                    finish_shutdown(shared);
                    return;
                }
                q = shared
                    .wake
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        evict_idle_sessions(shared);
        if shared.cfg.admit_hold_secs > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(shared.cfg.admit_hold_secs));
        }
        let mut metas = Vec::with_capacity(wave.len());
        let mut designs = Vec::with_capacity(wave.len());
        for job in wave {
            metas.push(job.meta);
            designs.push(job.design);
        }
        let budgets: Vec<Option<f64>> = metas.iter().map(|m| m.deadline).collect();
        let results = engine.try_legalize_batch_budgeted(&designs, &budgets);
        for (meta, result) in metas.into_iter().zip(results) {
            finalize(shared, meta, &result);
        }
    }
}

/// Publishes one job's outcome: report files (tmp-then-rename), journal
/// `DONE`, latency histogram, and the final response line.
fn finalize(
    shared: &Shared,
    meta: JobMeta,
    result: &Result<(Design, LegalizeStats), LegalizeError>,
) {
    let (status, line) = match result {
        Ok((placed, stats)) => {
            let rep = build_run_report(placed, stats, &shared.cfg.engine);
            let persisted = match &shared.cfg.report_dir {
                Some(rd) => {
                    write_report_files(rd, &placed.name, &rep.to_json(), &rep.golden_json())
                }
                None => Ok(()),
            };
            match persisted {
                Ok(()) => {
                    shared.counters.completed.fetch_add(1, Ordering::SeqCst);
                    (
                        Status::Ok,
                        wire::job_ok_line(meta.id, &placed.name, &rep.to_json()),
                    )
                }
                Err(e) => {
                    shared.counters.failed.fetch_add(1, Ordering::SeqCst);
                    (
                        Status::Internal,
                        wire::error_line(
                            Status::Internal,
                            &format!("job {}: report write failed: {e}", meta.id),
                        ),
                    )
                }
            }
        }
        Err(e) => {
            shared.counters.failed.fetch_add(1, Ordering::SeqCst);
            if let Some(rd) = &shared.cfg.report_dir {
                let _ = write_failure_file(rd, &meta.name, e.class().label(), &e.to_string());
            }
            (
                Status::from_error(e),
                wire::job_failed_line(meta.id, &meta.name, e),
            )
        }
    };
    if let Some(j) = lock(&shared.journal).as_mut() {
        let _ = j.done(meta.id, status.name());
    }
    lock(&shared.meter).observe(HistoKind::ServeJobNanos, meta.sw.elapsed_nanos());
    // Injected client disconnect: drop the reply channel without sending.
    // The connection thread sees a closed channel and hangs up (the client
    // gets EOF after its acceptance) — but the report is on disk and the
    // journal says DONE: the job's fate never depended on the client.
    if fault(shared, &meta.name, &FaultSite::ServeDisconnect) {
        return;
    }
    let _ = meta.reply.send(line);
}

fn write_report_files(rd: &Path, name: &str, full: &str, golden: &str) -> std::io::Result<()> {
    write_atomically(&rd.join(format!("{name}.json")), full)?;
    write_atomically(
        &rd.join(format!("{name}.golden.json")),
        &format!("{golden}\n"),
    )
}

fn write_failure_file(rd: &Path, name: &str, class: &str, error: &str) -> std::io::Result<()> {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("design", name);
    w.field_str("class", class);
    w.field_str("error", error);
    w.end_object();
    write_atomically(
        &rd.join(format!("{name}.failure.json")),
        &format!("{}\n", w.finish()),
    )
}

/// Tmp-then-rename publish: a crash mid-write leaves `<file>.tmp` (swept
/// by recovery), never a torn report.
fn write_atomically(path: &Path, content: &str) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, content)?;
    std::fs::rename(&tmp, path)
}

fn finish_shutdown(shared: &Shared) {
    // Clean drain: every accepted job is finalized, so the journal's
    // outstanding set is empty — make the file say so.
    if let Some(j) = lock(&shared.journal).as_mut() {
        let _ = j.truncate();
    }
    shared.stopped.store(true, Ordering::SeqCst);
}

fn evict_idle_sessions(shared: &Shared) {
    let secs = shared.cfg.idle_evict_secs;
    if secs == 0 {
        return;
    }
    let now = shared.clock.elapsed_nanos();
    let limit = secs.saturating_mul(1_000_000_000);
    let mut sessions = lock(&shared.sessions);
    let before = sessions.len();
    sessions.retain(|_, slot| {
        lock(slot)
            .last_used_nanos
            .checked_add(limit)
            .is_none_or(|deadline| now <= deadline)
    });
    let evicted = (before - sessions.len()) as u64;
    if evicted > 0 {
        shared.counters.evicted.fetch_add(evicted, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Accept loop and per-connection protocol handling.
// ---------------------------------------------------------------------------

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stopped.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(shared);
                std::thread::spawn(move || connection(&conn_shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn connection(shared: &Shared, stream: TcpStream) {
    // A finite read timeout lets idle connections notice shutdown.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut stream = stream;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                if !handle_request(shared, &mut stream, trimmed) {
                    return;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stopped.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn send_line(stream: &mut TcpStream, line: &str) -> bool {
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    stream.write_all(buf.as_bytes()).is_ok() && stream.flush().is_ok()
}

/// Handles one request; returns `false` when the connection should close.
fn handle_request(shared: &Shared, stream: &mut TcpStream, line: &str) -> bool {
    let request = match wire::decode_request(line) {
        Ok(r) => r,
        Err(msg) => return send_line(stream, &wire::error_line(Status::Usage, &msg)),
    };
    match request {
        Request::Ping => send_line(stream, &wire::pong_line()),
        Request::Stats => send_line(stream, &stats_line(shared)),
        Request::Drain => {
            begin_drain(shared);
            let mut w = JsonWriter::new();
            w.begin_object();
            w.field_str("status", Status::Ok.name());
            w.field_bool("draining", true);
            w.end_object();
            send_line(stream, &w.finish())
        }
        Request::Legalize { dir, deadline_secs } => {
            handle_legalize(shared, stream, &dir, deadline_secs)
        }
        Request::EcoOpen { dir, deadline_secs } => {
            send_line(stream, &eco_open(shared, &dir, deadline_secs))
        }
        Request::EcoDelta { session, delta } => {
            send_line(stream, &eco_delta(shared, session, &delta))
        }
        Request::EcoCommit { session, out } => {
            send_line(stream, &eco_commit(shared, session, &out))
        }
        Request::EcoClose { session } => send_line(stream, &eco_close(shared, session)),
    }
}

/// The two-phase legalize flow: parse → admit (acceptance is durable
/// before the client sees it) → block for the scheduler's final line.
fn handle_legalize(
    shared: &Shared,
    stream: &mut TcpStream,
    dir: &str,
    deadline_secs: Option<f64>,
) -> bool {
    if shared.draining.load(Ordering::SeqCst) {
        let depth = lock(&shared.queue).len() as u64;
        return send_line(
            stream,
            &wire::retry_after_line(shared.cfg.retry_after_ms, depth, true),
        );
    }
    // Parse on the connection thread: a corrupt bundle is refused here
    // and never consumes queue capacity or journal space.
    let design = match mcl_parsers::read_bookshelf_dir(Path::new(dir)) {
        Ok(d) => d,
        Err(e) => {
            return send_line(
                stream,
                &wire::error_line(Status::Parse, &format!("{dir}: {e}")),
            );
        }
    };
    let deadline = deadline_secs.or(shared.cfg.default_deadline_secs);
    let (accepted, receiver) = admit(shared, design, deadline);
    let Some(receiver) = receiver else {
        return send_line(stream, &accepted);
    };
    if !send_line(stream, &accepted) {
        // Client went away right after admission; the job still runs to
        // completion below us — its report and journal record do not
        // depend on this connection.
        return false;
    }
    match receiver.recv() {
        Ok(final_line) => send_line(stream, &final_line),
        // Sender dropped without a line: the injected-disconnect path.
        Err(_) => false,
    }
}

/// Admission under the queue lock: capacity check, durable journal
/// acceptance, enqueue. Returns the first response line, plus the
/// receiver for the final line when the job was admitted.
fn admit(
    shared: &Shared,
    design: Design,
    deadline: Option<f64>,
) -> (String, Option<mpsc::Receiver<String>>) {
    let name = design.name.clone();
    let mut q = lock(&shared.queue);
    if shared.draining.load(Ordering::SeqCst) {
        let line = wire::retry_after_line(shared.cfg.retry_after_ms, q.len() as u64, true);
        return (line, None);
    }
    let depth = q.len() as u64;
    {
        let mut meter = lock(&shared.meter);
        meter.observe(HistoKind::ServeQueueDepth, depth);
    }
    // The injected admission race models losing a capacity check to a
    // concurrent admitter: the correct answer is the same backpressure
    // response a genuinely full queue earns.
    if q.len() >= shared.cfg.queue_cap || fault(shared, &name, &FaultSite::ServeAdmission) {
        shared.counters.rejected.fetch_add(1, Ordering::SeqCst);
        lock(&shared.meter).add(CounterKind::ServeJobsRejected, 1);
        let line = wire::retry_after_line(shared.cfg.retry_after_ms, depth, false);
        return (line, None);
    }
    let id = shared.next_job.fetch_add(1, Ordering::SeqCst);
    // Fail closed: if the acceptance cannot be made durable, the job is
    // not accepted. An admission the journal never saw could be silently
    // forgotten by a crash — refusing is the honest answer.
    let journal_ok = if fault(shared, &name, &FaultSite::ServeJournal) {
        Err(std::io::Error::other("injected journal failure"))
    } else {
        match lock(&shared.journal).as_mut() {
            Some(j) => j.accept(id, &name),
            None => Ok(()),
        }
    };
    if let Err(e) = journal_ok {
        shared.counters.rejected.fetch_add(1, Ordering::SeqCst);
        lock(&shared.meter).add(CounterKind::ServeJobsRejected, 1);
        let line = wire::error_line(
            Status::Internal,
            &format!("journal write failed; job not admitted: {e}"),
        );
        return (line, None);
    }
    let (tx, rx) = mpsc::channel();
    q.push_back(Job {
        meta: JobMeta {
            id,
            name: name.clone(),
            deadline,
            sw: Stopwatch::start(),
            reply: tx,
        },
        design,
    });
    drop(q);
    shared.wake.notify_all();
    shared.counters.admitted.fetch_add(1, Ordering::SeqCst);
    lock(&shared.meter).add(CounterKind::ServeJobsAdmitted, 1);
    (wire::accepted_line(id, &name), Some(rx))
}

fn stats_line(shared: &Shared) -> String {
    let meter = lock(&shared.meter);
    let h = meter.histogram(HistoKind::ServeJobNanos);
    let p50_ms = count_to_float(h.approx_quantile(0.5)) / 1e6;
    let p99_ms = count_to_float(h.approx_quantile(0.99)) / 1e6;
    drop(meter);
    let c = &shared.counters;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("status", Status::Ok.name());
    w.field_u64("queue_depth", lock(&shared.queue).len() as u64);
    w.field_u64("admitted", c.admitted.load(Ordering::SeqCst));
    w.field_u64("rejected", c.rejected.load(Ordering::SeqCst));
    w.field_u64("completed", c.completed.load(Ordering::SeqCst));
    w.field_u64("failed", c.failed.load(Ordering::SeqCst));
    w.field_u64("interrupted", c.interrupted.load(Ordering::SeqCst));
    w.field_u64("evicted", c.evicted.load(Ordering::SeqCst));
    w.field_u64("sessions", lock(&shared.sessions).len() as u64);
    w.field_bool("draining", shared.draining.load(Ordering::SeqCst));
    w.field_f64("job_ms_p50", p50_ms, 3);
    w.field_f64("job_ms_p99", p99_ms, 3);
    w.end_object();
    w.finish()
}

// ---------------------------------------------------------------------------
// Resident ECO sessions.
// ---------------------------------------------------------------------------

fn eco_open(shared: &Shared, dir: &str, deadline_secs: Option<f64>) -> String {
    if shared.draining.load(Ordering::SeqCst) {
        return wire::retry_after_line(shared.cfg.retry_after_ms, 0, true);
    }
    let design = match mcl_parsers::read_bookshelf_dir(Path::new(dir)) {
        Ok(d) => d,
        Err(e) => return wire::error_line(Status::Parse, &format!("{dir}: {e}")),
    };
    let mut cfg = shared.cfg.engine.clone();
    if let Some(d) = deadline_secs {
        // A session deadline tightens (never loosens) the engine budget.
        cfg.stage_budget_secs = Some(match cfg.stage_budget_secs {
            Some(b) => b.min(d),
            None => d,
        });
    }
    let session = match EcoSession::open(design, cfg) {
        Ok(s) => s,
        Err(e) => return wire::error_line(Status::from_error(&e), &e.to_string()),
    };
    let id = shared.next_session.fetch_add(1, Ordering::SeqCst);
    let name = session.design().name.clone();
    let cells = session.design().cells.len() as u64;
    lock(&shared.sessions).insert(
        id,
        Arc::new(Mutex::new(SessionSlot {
            session,
            last_used_nanos: shared.clock.elapsed_nanos(),
        })),
    );
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("status", Status::Ok.name());
    w.field_u64("session", id);
    w.field_str("design", &name);
    w.field_u64("cells", cells);
    w.end_object();
    w.finish()
}

/// Fetches a session slot, bumping its idle clock.
fn session_slot(shared: &Shared, id: u64) -> Option<Arc<Mutex<SessionSlot>>> {
    let sessions = lock(&shared.sessions);
    let slot = sessions.get(&id).map(Arc::clone)?;
    lock(&slot).last_used_nanos = shared.clock.elapsed_nanos();
    Some(slot)
}

fn eco_delta(shared: &Shared, id: u64, delta: &DeltaSpec) -> String {
    if shared.draining.load(Ordering::SeqCst) {
        return wire::retry_after_line(shared.cfg.retry_after_ms, 0, true);
    }
    let Some(slot) = session_slot(shared, id) else {
        return wire::error_line(Status::Usage, &format!("unknown session {id}"));
    };
    // The slot lock serializes deltas on one session (they mutate its
    // base) while other sessions and the job queue proceed in parallel.
    let mut slot = lock(&slot);
    let moves = match delta {
        DeltaSpec::Moves(m) => m.clone(),
        DeltaSpec::Synth { cells, seed } => {
            EcoSession::synthesize_delta(slot.session.design(), *cells, *seed)
        }
    };
    let sw = Stopwatch::start();
    match slot.session.apply_delta(&moves) {
        Ok((stats, _log)) => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.field_str("status", Status::Ok.name());
            w.field_u64("session", id);
            w.field_u64("moved", moves.len() as u64);
            w.field_f64("delta_ms", count_to_float(sw.elapsed_nanos()) / 1e6, 3);
            w.field_u64(
                "windows_dirty",
                stats.obs.counter(CounterKind::EcoWindowsDirty),
            );
            w.field_u64(
                "cells_reused",
                stats.obs.counter(CounterKind::EcoCellsReused),
            );
            w.end_object();
            w.finish()
        }
        Err(e) => {
            // The delta is atomic: on any classed failure (including a
            // blown deadline budget) the session base is unchanged.
            let mut w = JsonWriter::new();
            w.begin_object();
            w.field_str("status", Status::from_error(&e).name());
            w.field_u64("session", id);
            w.key("failure");
            w.begin_object();
            w.field_str("class", e.class().label());
            w.field_str("error", &e.to_string());
            w.field_bool("rolled_back", true);
            w.end_object();
            w.end_object();
            w.finish()
        }
    }
}

fn eco_commit(shared: &Shared, id: u64, out: &str) -> String {
    let Some(slot) = session_slot(shared, id) else {
        return wire::error_line(Status::Usage, &format!("unknown session {id}"));
    };
    let slot = lock(&slot);
    let design = slot.session.design();
    match mcl_parsers::write_bookshelf_dir(design, Path::new(out), &design.name) {
        Ok(()) => {
            let mut w = JsonWriter::new();
            w.begin_object();
            w.field_str("status", Status::Ok.name());
            w.field_u64("session", id);
            w.field_str("out", out);
            w.end_object();
            w.finish()
        }
        Err(e) => wire::error_line(Status::Internal, &format!("{out}: {e}")),
    }
}

fn eco_close(shared: &Shared, id: u64) -> String {
    if lock(&shared.sessions).remove(&id).is_none() {
        return wire::error_line(Status::Usage, &format!("unknown session {id}"));
    }
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("status", Status::Ok.name());
    w.field_u64("session", id);
    w.field_bool("closed", true);
    w.end_object();
    w.finish()
}

// ---------------------------------------------------------------------------
// Wire client (shared by the CLI `rpc` subcommand, tests and benches).
// ---------------------------------------------------------------------------

/// A blocking newline-delimited JSON client.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Any connect error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self { stream, reader })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Any write error.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    /// Receives one response line; `None` on EOF (server hung up).
    ///
    /// # Errors
    ///
    /// Any read error.
    pub fn recv(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// One request, one response.
    ///
    /// # Errors
    ///
    /// Any I/O error.
    pub fn request(&mut self, line: &str) -> std::io::Result<Option<String>> {
        self.send(line)?;
        self.recv()
    }
}
