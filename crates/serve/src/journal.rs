//! Write-ahead job journal: crash recovery for accepted work.
//!
//! Every admitted job appends `ACCEPT <id> <design>` (flushed and synced
//! *before* the client sees its acceptance) and `DONE <id> <STATUS>` once
//! its report is on disk. On restart, any `ACCEPT` without a matching
//! `DONE` is a job the daemon promised and then lost to a crash: recovery
//! reports it as `INTERRUPTED` (a `<design>.failure.json` record, the same
//! shape the batch CLI writes), sweeps half-written `*.tmp` report files,
//! and truncates the journal. A clean drain truncates the journal too, so
//! "journal is empty" is the post-shutdown invariant CI asserts.

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// An append-only journal over one text file.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

/// One accepted-but-unfinished job found during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterruptedJob {
    /// The job id the dead daemon assigned.
    pub id: u64,
    /// The design name from the `ACCEPT` record.
    pub design: String,
}

impl Journal {
    /// Opens (creating if needed) the journal for appending.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Records an admission. Flushes and fsyncs before returning: the
    /// acceptance the client is about to see must survive a crash.
    ///
    /// # Errors
    ///
    /// Any I/O error; the caller must then refuse the job (fail closed).
    pub fn accept(&mut self, id: u64, design: &str) -> std::io::Result<()> {
        writeln!(self.file, "ACCEPT {id} {design}")?;
        self.file.flush()?;
        self.file.sync_data()
    }

    /// Records a job's terminal status (after its report files landed).
    ///
    /// # Errors
    ///
    /// Any I/O error.
    pub fn done(&mut self, id: u64, status: &str) -> std::io::Result<()> {
        writeln!(self.file, "DONE {id} {status}")?;
        self.file.flush()
    }

    /// Empties the journal (clean drain: nothing outstanding).
    ///
    /// # Errors
    ///
    /// Any I/O error.
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file = OpenOptions::new()
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        Ok(())
    }
}

/// Parses journal text into the accepted-but-unfinished set, in
/// acceptance order. Unparsable lines (torn writes from the crash) are
/// skipped: a torn `ACCEPT` means the client never saw an acceptance, and
/// a torn `DONE` at worst re-reports a finished job as interrupted —
/// recovery stays conservative instead of failing.
pub fn dangling_accepts(text: &str) -> Vec<InterruptedJob> {
    let mut accepted: Vec<InterruptedJob> = Vec::new();
    let mut done: HashSet<u64> = HashSet::new();
    for line in text.lines() {
        let mut parts = line.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("ACCEPT"), Some(id), Some(design)) => {
                if let Ok(id) = id.parse() {
                    accepted.push(InterruptedJob {
                        id,
                        design: design.to_string(),
                    });
                }
            }
            (Some("DONE"), Some(id), _) => {
                if let Ok(id) = id.parse::<u64>() {
                    done.insert(id);
                }
            }
            _ => {}
        }
    }
    accepted.retain(|j| !done.contains(&j.id));
    accepted
}

/// Recovers a journal on daemon start: returns the interrupted jobs (if
/// any), writes each one's `<design>.failure.json` into `report_dir`,
/// sweeps `*.tmp` partial report files, and truncates the journal.
///
/// A missing journal file is a clean start (empty result, no error).
///
/// # Errors
///
/// I/O errors reading/truncating the journal or writing failure records.
pub fn recover(
    journal_path: &Path,
    report_dir: Option<&Path>,
) -> std::io::Result<Vec<InterruptedJob>> {
    let text = match std::fs::read_to_string(journal_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let interrupted = dangling_accepts(&text);
    if let Some(rd) = report_dir {
        sweep_partials(rd)?;
        for job in &interrupted {
            let mut w = mcl_obs::JsonWriter::new();
            w.begin_object();
            w.field_str("design", &job.design);
            w.field_str("class", "interrupted");
            w.field_str(
                "error",
                "daemon terminated before the accepted job finished",
            );
            w.end_object();
            std::fs::write(
                rd.join(format!("{}.failure.json", job.design)),
                format!("{}\n", w.finish()),
            )?;
        }
    }
    if !text.is_empty() {
        Journal::open(journal_path)?.truncate()?;
    }
    Ok(interrupted)
}

/// Deletes `*.tmp` files (reports that were mid-write at the crash; the
/// rename that publishes a report never ran, so they are garbage).
fn sweep_partials(report_dir: &Path) -> std::io::Result<()> {
    let entries = match std::fs::read_dir(report_dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.extension().is_some_and(|e| e == "tmp") {
            std::fs::remove_file(&p)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dangling_accepts_pairs_records() {
        let text = "ACCEPT 1 alpha\nACCEPT 2 beta\nDONE 1 OK\nACCEPT 3 gamma\nDONE 3 INTERNAL\n";
        let d = dangling_accepts(text);
        assert_eq!(
            d,
            vec![InterruptedJob {
                id: 2,
                design: "beta".into()
            }]
        );
    }

    #[test]
    fn torn_lines_are_skipped() {
        let text = "ACCEPT 1 alpha\nDONE 1 OK\nACCE";
        assert!(dangling_accepts(text).is_empty());
        // A torn ACCEPT id never admits a job.
        assert!(dangling_accepts("ACCEPT 1x alpha").is_empty());
    }

    #[test]
    fn recover_writes_failures_and_truncates() {
        let dir = std::env::temp_dir().join(format!("mcl-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("jobs.journal");
        let reports = dir.join("reports");
        std::fs::create_dir_all(&reports).unwrap();
        std::fs::write(reports.join("half.json.tmp"), "{").unwrap();

        let mut j = Journal::open(&jpath).unwrap();
        j.accept(1, "good").unwrap();
        j.done(1, "OK").unwrap();
        j.accept(2, "lost").unwrap();
        drop(j);

        let interrupted = recover(&jpath, Some(&reports)).unwrap();
        assert_eq!(interrupted.len(), 1);
        assert_eq!(interrupted[0].design, "lost");
        let failure = std::fs::read_to_string(reports.join("lost.failure.json")).unwrap();
        assert!(failure.contains("\"class\":\"interrupted\""));
        assert!(!reports.join("half.json.tmp").exists(), "partial swept");
        assert_eq!(std::fs::read_to_string(&jpath).unwrap(), "", "truncated");

        // A second recovery over the now-empty journal is a clean start.
        assert!(recover(&jpath, Some(&reports)).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
