//! `mclegal serve`: a fault-contained legalization daemon.
//!
//! A persistent service over a local TCP socket speaking newline-delimited
//! JSON (one request object per line, one-or-two response objects per
//! request; no HTTP, no dependencies). The daemon owns one
//! [`mcl_core::Engine`] and schedules concurrent jobs onto its shared
//! worker pool in waves, so batch-mode invariants carry over: each job's
//! outputs are byte-identical to a solo run of the same design.
//!
//! The robustness contract (DESIGN.md §16):
//!
//! - **Admission control.** The queue is bounded; past capacity the
//!   daemon answers `RETRY_AFTER` with a backoff hint instead of
//!   buffering without bound.
//! - **Deadline budgets.** A per-job `deadline_secs` tightens the
//!   engine's stage budget, riding the same degradation ladder as the
//!   CLI's `--stage-budget-secs` (degrade before failing).
//! - **Fault containment.** A job that panics, blows its ladder, or
//!   rejects its seed gets one classed failure response; its wave peers
//!   complete and report byte-identically to solo runs.
//! - **Crash recovery.** Acceptances are journaled (write-ahead, fsynced)
//!   before the client sees them; a restart reports
//!   accepted-but-unfinished jobs as `INTERRUPTED` and sweeps partial
//!   report files.
//! - **Graceful drain.** SIGTERM or a `drain` request stops admission,
//!   finishes in-flight jobs, flushes reports, truncates the journal.
//!
//! Response statuses mirror the CLI exit codes — see [`wire`] for the
//! table and the full request vocabulary.

#![deny(unsafe_code)] // `forbid` would block the signal module's FFI opt-in.

pub mod journal;
pub mod json;
pub mod server;
pub mod signal;
pub mod wire;

pub use server::{Client, ServeConfig, Server};
pub use wire::Status;
