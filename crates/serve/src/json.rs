//! A minimal recursive-descent JSON parser for the wire protocol.
//!
//! The workspace's zero-dependency policy leaves it without a JSON
//! *reader* (`mcl_obs::JsonWriter` only writes), and the serve protocol
//! needs to parse one request object per line. This parser covers the
//! whole JSON grammar with a depth limit and positions every error; it is
//! not performance-critical (requests are tiny next to the jobs they
//! describe).

/// A parsed JSON value. Objects preserve key order and keep duplicate keys
/// (lookups return the first match, like most tolerant readers).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer kinds).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions
    /// and out-of-range values).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= 9_007_199_254_740_992.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// `get(key)` then [`Self::as_str`].
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// `get(key)` then [`Self::as_f64`].
    pub fn num_field(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// `get(key)` then [`Self::as_u64`].
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }
}

/// Nesting bound: requests are flat; anything deeper is hostile or broken.
const MAX_DEPTH: u32 = 32;

/// Parses one complete JSON value from `text` (surrounding whitespace is
/// allowed, trailing non-whitespace is an error).
///
/// # Errors
///
/// A human-readable message with the byte offset of the problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        s: text.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.i < p.s.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.i.saturating_sub(1)
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Json) -> Result<Json, String> {
        for &b in kw.as_bytes() {
            if self.bump() != Some(b) {
                return Err(format!("bad literal near byte {}", self.i));
            }
        }
        Ok(v)
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Json::Null),
            Some(b't') => self.eat_keyword("true", Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", char::from(c), self.i)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: u32) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(out)),
                _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self, depth: u32) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let v = self.value(depth + 1)?;
            out.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(out)),
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: `\uXXXX\uXXXX`.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(format!("lone surrogate at byte {}", self.i));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(format!("bad surrogate pair at byte {}", self.i));
                            }
                            let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(cp)
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(format!("bad escape at byte {}", self.i)),
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.i)),
                },
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at byte {}", self.i));
                }
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences from the source
                    // slice (it came from a &str, so it is valid UTF-8).
                    if b < 0x80 {
                        out.push(char::from(b));
                    } else {
                        let start = self.i - 1;
                        while self.peek().is_some_and(|n| n & 0xC0 == 0x80) {
                            self.i += 1;
                        }
                        match std::str::from_utf8(self.s.get(start..self.i).unwrap_or_default()) {
                            Ok(chunk) => out.push_str(chunk),
                            Err(_) => return Err(format!("bad UTF-8 at byte {start}")),
                        }
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(format!("bad \\u escape at byte {}", self.i)),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(self.s.get(start..self.i).unwrap_or_default())
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn nested_object_and_lookups() {
        let v = parse(r#"{"op":"legalize","dir":"/tmp/x","deadline_secs":1.5,"n":3,"ok":true}"#)
            .unwrap();
        assert_eq!(v.str_field("op"), Some("legalize"));
        assert_eq!(v.str_field("dir"), Some("/tmp/x"));
        assert_eq!(v.num_field("deadline_secs"), Some(1.5));
        assert_eq!(v.u64_field("n"), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn arrays_and_moves_shape() {
        let v = parse(r#"{"moves":[[3,100,200],[7,-40,0]]}"#).unwrap();
        let arr = v.get("moves").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        let first = arr[0].as_arr().unwrap();
        assert_eq!(first[0].as_u64(), Some(3));
        assert_eq!(first[2].as_f64(), Some(200.0));
    }

    #[test]
    fn escapes_and_unicode() {
        assert_eq!(parse(r#""Aé😀""#).unwrap(), Json::Str("Aé😀".into()));
        assert_eq!(parse(r#""naïve""#).unwrap(), Json::Str("naïve".into()));
        assert_eq!(parse(r#""\"\\\/\t""#).unwrap(), Json::Str("\"\\/\t".into()));
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").unwrap_err().contains("trailing"));
        assert!(parse(r#""\ud800x""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(&deep).unwrap_err().contains("nesting"));
        let ok = "[".repeat(16) + &"]".repeat(16);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_first_wins() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.num_field("k"), Some(1.0));
    }

    #[test]
    fn u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
