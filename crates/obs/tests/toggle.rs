//! The runtime recording toggle lives in its own integration-test binary:
//! it flips process-global state, so it must not share a process with
//! tests that assume recording is on.

use mcl_obs::{recording, set_recording, CounterKind, Meter};

#[test]
fn set_recording_gates_all_sinks() {
    let mut m = Meter::new();
    set_recording(false);
    assert!(!recording());
    m.add(CounterKind::WindowsEvaluated, 5);
    m.record_span(mcl_obs::SpanKind::Run, 100, 0);
    m.observe(mcl_obs::HistoKind::DispSitesMgl, 1);
    assert!(m.is_empty());
    assert_eq!(m.counter(CounterKind::WindowsEvaluated), 0);

    set_recording(true);
    m.add(CounterKind::WindowsEvaluated, 5);
    if mcl_obs::compiled() {
        assert!(recording());
        assert_eq!(m.counter(CounterKind::WindowsEvaluated), 5);
    } else {
        assert!(!recording());
        assert_eq!(m.counter(CounterKind::WindowsEvaluated), 0);
    }
}
