//! Typed metric aggregation: spans, counters, log₂ histograms.
//!
//! All kinds are closed enums so a [`Meter`] is a few fixed-size arrays —
//! recording is an index + add, merging is element-wise, and nothing
//! allocates after the first record. Meters are thread-local by
//! construction: each worker records into its own meter and the owners
//! merge them in a deterministic order, which keeps recording entirely off
//! the synchronization paths (and therefore incapable of perturbing replay
//! determinism).

use std::sync::atomic::{AtomicBool, Ordering};

/// Runtime master switch for recording (compiled builds only). Defaults to
/// on; the overhead guard test flips it to compare instrumented vs
/// uninstrumented wall time within one binary.
static RECORDING: AtomicBool = AtomicBool::new(true);

/// Enables or disables recording at runtime. No-op when the `enabled`
/// feature is compiled out.
pub fn set_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Whether recording is currently on (always `false` when compiled out).
#[must_use]
pub fn recording() -> bool {
    compiled() && RECORDING.load(Ordering::Relaxed)
}

/// Whether metric recording is compiled into this build (`enabled` feature).
#[must_use]
pub const fn compiled() -> bool {
    cfg!(feature = "enabled")
}

/// Span kinds of the pipeline hierarchy: run → stage → phase → window →
/// insertion-eval, plus the flow-solver leaves. Names follow the
/// `<scope>.<quantity>` convention of DESIGN.md §9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanKind {
    /// Whole legalization run.
    Run,
    /// Stage 1: MGL window insertion.
    StageMgl,
    /// Stage 2: max-displacement matching.
    StageMaxDisp,
    /// Stage 3: fixed row & order refinement.
    StageFixedOrder,
    /// Scheduler: non-overlapping window selection (per round).
    SchedSelect,
    /// Scheduler: concurrent evaluation phase (per round, wall time).
    SchedEval,
    /// Scheduler: sequential apply phase (per round).
    SchedApply,
    /// One target cell's window search (all expansions + apply).
    Window,
    /// One `best_insertion_in` call (thread-attributed).
    InsertionEval,
    /// One whole-design fallback scan.
    FallbackScan,
    /// One (type × fence) matching group solve.
    MatchingGroup,
    /// One successive-shortest-paths flow solve.
    FlowSsp,
    /// One network-simplex flow solve.
    FlowSimplex,
}

impl SpanKind {
    /// Every kind, in report order.
    pub const ALL: [SpanKind; 13] = [
        SpanKind::Run,
        SpanKind::StageMgl,
        SpanKind::StageMaxDisp,
        SpanKind::StageFixedOrder,
        SpanKind::SchedSelect,
        SpanKind::SchedEval,
        SpanKind::SchedApply,
        SpanKind::Window,
        SpanKind::InsertionEval,
        SpanKind::FallbackScan,
        SpanKind::MatchingGroup,
        SpanKind::FlowSsp,
        SpanKind::FlowSimplex,
    ];
    /// Number of kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable report name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::StageMgl => "stage.mgl",
            SpanKind::StageMaxDisp => "stage.maxdisp",
            SpanKind::StageFixedOrder => "stage.fixed_order",
            SpanKind::SchedSelect => "mgl.select",
            SpanKind::SchedEval => "mgl.eval",
            SpanKind::SchedApply => "mgl.apply",
            SpanKind::Window => "mgl.window",
            SpanKind::InsertionEval => "mgl.insertion_eval",
            SpanKind::FallbackScan => "mgl.fallback_scan",
            SpanKind::MatchingGroup => "maxdisp.group",
            SpanKind::FlowSsp => "flow.ssp",
            SpanKind::FlowSimplex => "flow.simplex",
        }
    }
}

/// Typed event counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CounterKind {
    /// Windows evaluated (`best_insertion_in` calls).
    WindowsEvaluated,
    /// Window expansions performed (failed window retried larger).
    WindowsExpanded,
    /// Whole-design fallback scans run.
    FallbackScans,
    /// Displacement-curve minimizations evaluated.
    CurveMinimizations,
    /// Candidate insertion anchors inspected.
    InsertionAnchors,
    /// Aligned regions enumerated.
    AlignedRegions,
    /// Slot tuples skipped by the dedup set.
    DedupHits,
    /// Matching groups solved in stage 2.
    MatchingGroups,
    /// Cells moved by stage-2 matchings.
    MatchingCellsMoved,
    /// Augmenting-path iterations of the SSP flow solver.
    SspAugmentations,
    /// Network-simplex pivots.
    SimplexPivots,
    /// Rounds in which a shared pool worker switched to this design from a
    /// different one (cross-design work conservation). Attribution follows
    /// the scheduler's racing, so the value varies run to run — like wall
    /// times, it is observability, never golden.
    CrossDesignSteals,
    /// Dirty windows scanned by the ECO delta closure.
    EcoWindowsDirty,
    /// Placed movable cells outside the dirty closure, whose placement
    /// (and cached displacement curves) the delta run reused untouched.
    EcoCellsReused,
    /// Jobs admitted past the serve daemon's bounded queue.
    ServeJobsAdmitted,
    /// Jobs rejected at admission (`RETRY_AFTER` backpressure).
    ServeJobsRejected,
    /// Accepted-but-unfinished jobs reported as `INTERRUPTED` by journal
    /// recovery after a crash.
    ServeJobsInterrupted,
}

impl CounterKind {
    /// Every kind, in report order.
    pub const ALL: [CounterKind; 17] = [
        CounterKind::WindowsEvaluated,
        CounterKind::WindowsExpanded,
        CounterKind::FallbackScans,
        CounterKind::CurveMinimizations,
        CounterKind::InsertionAnchors,
        CounterKind::AlignedRegions,
        CounterKind::DedupHits,
        CounterKind::MatchingGroups,
        CounterKind::MatchingCellsMoved,
        CounterKind::SspAugmentations,
        CounterKind::SimplexPivots,
        CounterKind::CrossDesignSteals,
        CounterKind::EcoWindowsDirty,
        CounterKind::EcoCellsReused,
        CounterKind::ServeJobsAdmitted,
        CounterKind::ServeJobsRejected,
        CounterKind::ServeJobsInterrupted,
    ];
    /// Number of kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable report name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CounterKind::WindowsEvaluated => "mgl.windows_evaluated",
            CounterKind::WindowsExpanded => "mgl.windows_expanded",
            CounterKind::FallbackScans => "mgl.fallback_scans",
            CounterKind::CurveMinimizations => "mgl.curve_minimizations",
            CounterKind::InsertionAnchors => "mgl.insertion_anchors",
            CounterKind::AlignedRegions => "mgl.aligned_regions",
            CounterKind::DedupHits => "mgl.dedup_hits",
            CounterKind::MatchingGroups => "maxdisp.groups",
            CounterKind::MatchingCellsMoved => "maxdisp.cells_moved",
            CounterKind::SspAugmentations => "flow.ssp_augmentations",
            CounterKind::SimplexPivots => "flow.simplex_pivots",
            CounterKind::CrossDesignSteals => "sched.cross_design_steals",
            CounterKind::EcoWindowsDirty => "eco.windows_dirty",
            CounterKind::EcoCellsReused => "eco.cells_reused",
            CounterKind::ServeJobsAdmitted => "serve.jobs_admitted",
            CounterKind::ServeJobsRejected => "serve.jobs_rejected",
            CounterKind::ServeJobsInterrupted => "serve.jobs_interrupted",
        }
    }
}

/// Typed histograms (log₂-bucketed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistoKind {
    /// Per-cell displacement in sites after stage 1.
    DispSitesMgl,
    /// Per-cell displacement in sites after stage 2.
    DispSitesMaxDisp,
    /// Per-cell displacement in sites after stage 3.
    DispSitesFixedOrder,
    /// Latency of one insertion evaluation, nanoseconds.
    InsertionEvalNanos,
    /// Stage-2 matching group sizes, cells.
    MatchingGroupCells,
    /// Per-round wall time the MGL coordinator spent waiting for results
    /// evaluated by pool workers, nanoseconds. One observation per pooled
    /// round, so batch schedulers can see per-design queue pressure.
    SchedQueueWaitNanos,
    /// End-to-end latency of one ECO delta (`EcoSession::apply_delta`),
    /// nanoseconds. Wall time: observability, never golden.
    EcoDeltaNanos,
    /// End-to-end latency of one serve job (admission to final response),
    /// nanoseconds — queue wait included. Wall time: observability, never
    /// golden.
    ServeJobNanos,
    /// Queue depth observed at each admission decision (accepted or
    /// rejected), so backpressure onset is visible in the daemon's stats.
    ServeQueueDepth,
}

impl HistoKind {
    /// Every kind, in report order.
    pub const ALL: [HistoKind; 9] = [
        HistoKind::DispSitesMgl,
        HistoKind::DispSitesMaxDisp,
        HistoKind::DispSitesFixedOrder,
        HistoKind::InsertionEvalNanos,
        HistoKind::MatchingGroupCells,
        HistoKind::SchedQueueWaitNanos,
        HistoKind::EcoDeltaNanos,
        HistoKind::ServeJobNanos,
        HistoKind::ServeQueueDepth,
    ];
    /// Number of kinds.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable report name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            HistoKind::DispSitesMgl => "mgl.cell_disp_sites",
            HistoKind::DispSitesMaxDisp => "maxdisp.cell_disp_sites",
            HistoKind::DispSitesFixedOrder => "fixed_order.cell_disp_sites",
            HistoKind::InsertionEvalNanos => "mgl.insertion_eval_nanos",
            HistoKind::MatchingGroupCells => "maxdisp.group_cells",
            HistoKind::SchedQueueWaitNanos => "mgl.queue_wait_nanos",
            HistoKind::EcoDeltaNanos => "eco.delta_nanos",
            HistoKind::ServeJobNanos => "serve.job_nanos",
            HistoKind::ServeQueueDepth => "serve.queue_depth",
        }
    }
}

/// Aggregated observations of one span kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Number of spans recorded.
    pub count: u64,
    /// Summed duration, nanoseconds (saturating).
    pub total_nanos: u64,
    /// Shortest span, nanoseconds (0 when `count == 0`).
    pub min_nanos: u64,
    /// Longest span, nanoseconds.
    pub max_nanos: u64,
    /// Bitmask of thread ids that recorded this span (bit `min(id, 63)`).
    pub threads: u64,
}

impl SpanAgg {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn record(&mut self, nanos: u64, thread: usize) {
        if self.count == 0 {
            self.min_nanos = nanos;
            self.max_nanos = nanos;
        } else {
            self.min_nanos = self.min_nanos.min(nanos);
            self.max_nanos = self.max_nanos.max(nanos);
        }
        self.count += 1;
        self.total_nanos = self.total_nanos.saturating_add(nanos);
        self.threads |= 1u64 << thread.min(63);
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn merge(&mut self, o: &SpanAgg) {
        if o.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *o;
            return;
        }
        self.min_nanos = self.min_nanos.min(o.min_nanos);
        self.max_nanos = self.max_nanos.max(o.max_nanos);
        self.count += o.count;
        self.total_nanos = self.total_nanos.saturating_add(o.total_nanos);
        self.threads |= o.threads;
    }

    /// Mean duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_nanos(&self) -> u64 {
        self.total_nanos.checked_div(self.count).unwrap_or(0)
    }

    /// The thread ids present in the attribution mask, ascending.
    #[must_use]
    pub fn thread_ids(&self) -> Vec<u32> {
        (0..64u32).filter(|&b| self.threads >> b & 1 == 1).collect()
    }
}

/// A log₂-bucketed histogram of `u64` observations. Bucket 0 holds the
/// value 0; bucket `i ≥ 1` holds values in `[2^(i−1), 2^i − 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; 64] }
    }
}

impl Histogram {
    /// The bucket index for a value (clamped: bucket 63 also absorbs
    /// values ≥ 2^63).
    #[must_use]
    pub const fn bucket_of(v: u64) -> usize {
        let b = (u64::BITS - v.leading_zeros()) as usize;
        if b > 63 {
            63
        } else {
            b
        }
    }

    /// Inclusive upper bound of bucket `i`.
    #[must_use]
    pub const fn bucket_limit(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 63 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Element-wise merge.
    pub fn merge(&mut self, o: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&o.buckets) {
            *a += b;
        }
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Non-empty buckets as `(bucket index, count)`, ascending.
    #[must_use]
    pub fn nonzero(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Upper bound of the bucket where the cumulative count first reaches
    /// `q` (0..=1) of the total; 0 when empty. A coarse quantile good
    /// enough for human summaries.
    #[must_use]
    pub fn approx_quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * count_to_float(total)).ceil();
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if count_to_float(cum) >= target {
                return Self::bucket_limit(i);
            }
        }
        Self::bucket_limit(63)
    }
}

/// The workspace's sanctioned count→f64 conversion (counts are far below
/// 2^53, so precision loss is impossible in practice and harmless in a
/// summary quantile or a rendered chart).
#[must_use]
pub fn count_to_float(v: u64) -> f64 {
    v as f64
}

/// The metric sink: fixed arrays of span/counter/histogram aggregates.
///
/// With the `enabled` feature off this struct is a unit and every method is
/// an inlined no-op; reads return zeros. Storage is lazily boxed on first
/// record, so an idle meter costs one pointer.
#[derive(Debug, Clone, Default)]
pub struct Meter {
    #[cfg(feature = "enabled")]
    inner: Option<Box<Inner>>,
}

#[cfg(feature = "enabled")]
#[derive(Debug, Clone)]
struct Inner {
    spans: [SpanAgg; SpanKind::COUNT],
    counters: [u64; CounterKind::COUNT],
    histos: [Histogram; HistoKind::COUNT],
}

#[cfg(feature = "enabled")]
impl Default for Inner {
    fn default() -> Self {
        Self {
            spans: [SpanAgg::default(); SpanKind::COUNT],
            counters: [0; CounterKind::COUNT],
            histos: [Histogram::default(); HistoKind::COUNT],
        }
    }
}

impl Meter {
    /// An empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    #[cfg(feature = "enabled")]
    fn inner_mut(&mut self) -> &mut Inner {
        self.inner.get_or_insert_with(Box::default)
    }

    /// Records one span of `nanos` duration attributed to `thread`.
    #[inline]
    pub fn record_span(&mut self, kind: SpanKind, nanos: u64, thread: usize) {
        #[cfg(feature = "enabled")]
        if recording() {
            self.inner_mut().spans[kind as usize].record(nanos, thread);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (kind, nanos, thread);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, kind: CounterKind, n: u64) {
        #[cfg(feature = "enabled")]
        if recording() && n > 0 {
            self.inner_mut().counters[kind as usize] += n;
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (kind, n);
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&mut self, kind: HistoKind, value: u64) {
        #[cfg(feature = "enabled")]
        if recording() {
            self.inner_mut().histos[kind as usize].observe(value);
        }
        #[cfg(not(feature = "enabled"))]
        let _ = (kind, value);
    }

    /// Merges another meter into this one (deterministic, element-wise).
    pub fn merge(&mut self, other: &Meter) {
        #[cfg(feature = "enabled")]
        if let Some(o) = &other.inner {
            let inner = self.inner_mut();
            for (a, b) in inner.spans.iter_mut().zip(&o.spans) {
                a.merge(b);
            }
            for (a, b) in inner.counters.iter_mut().zip(&o.counters) {
                *a += b;
            }
            for (a, b) in inner.histos.iter_mut().zip(&o.histos) {
                a.merge(b);
            }
        }
        #[cfg(not(feature = "enabled"))]
        let _ = other;
    }

    /// The aggregate for one span kind (zeros when never recorded).
    #[must_use]
    pub fn span(&self, kind: SpanKind) -> SpanAgg {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            return i.spans[kind as usize];
        }
        let _ = kind;
        SpanAgg::default()
    }

    /// A counter's value (0 when never recorded).
    #[must_use]
    pub fn counter(&self, kind: CounterKind) -> u64 {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            return i.counters[kind as usize];
        }
        let _ = kind;
        0
    }

    /// A histogram's aggregate (empty when never recorded).
    #[must_use]
    pub fn histogram(&self, kind: HistoKind) -> Histogram {
        #[cfg(feature = "enabled")]
        if let Some(i) = &self.inner {
            return i.histos[kind as usize];
        }
        let _ = kind;
        Histogram::default()
    }

    /// Whether nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner.is_none()
        }
        #[cfg(not(feature = "enabled"))]
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_tables_are_consistent() {
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
        for (i, k) in CounterKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
        for (i, k) in HistoKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
        // Names are unique.
        let mut names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        names.extend(CounterKind::ALL.iter().map(|k| k.name()));
        names.extend(HistoKind::ALL.iter().map(|k| k.name()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 63);
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.nonzero(), vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
        assert_eq!(Histogram::bucket_limit(2), 3);
        assert!(h.approx_quantile(1.0) >= 1024);
        assert_eq!(h.approx_quantile(0.0), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn record_and_merge() {
        let mut a = Meter::new();
        assert!(a.is_empty());
        a.record_span(SpanKind::Window, 100, 0);
        a.record_span(SpanKind::Window, 50, 1);
        a.add(CounterKind::WindowsEvaluated, 3);
        a.observe(HistoKind::DispSitesMgl, 7);
        let mut b = Meter::new();
        b.record_span(SpanKind::Window, 200, 2);
        b.add(CounterKind::WindowsEvaluated, 2);
        a.merge(&b);
        let s = a.span(SpanKind::Window);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_nanos, 350);
        assert_eq!(s.min_nanos, 50);
        assert_eq!(s.max_nanos, 200);
        assert_eq!(s.thread_ids(), vec![0, 1, 2]);
        assert_eq!(a.counter(CounterKind::WindowsEvaluated), 5);
        assert_eq!(a.histogram(HistoKind::DispSitesMgl).count(), 1);
        assert!(!a.is_empty());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_is_noop() {
        let mut a = Meter::new();
        a.record_span(SpanKind::Window, 100, 0);
        a.add(CounterKind::WindowsEvaluated, 3);
        a.observe(HistoKind::DispSitesMgl, 7);
        assert!(a.is_empty());
        assert_eq!(a.span(SpanKind::Window).count, 0);
        assert_eq!(a.counter(CounterKind::WindowsEvaluated), 0);
        assert!(!recording());
        assert!(!compiled());
    }

    #[test]
    fn span_agg_merge_identities() {
        let mut a = SpanAgg::default();
        let mut b = SpanAgg::default();
        b.record(10, 0);
        a.merge(&b);
        assert_eq!(a, b);
        a.merge(&SpanAgg::default());
        assert_eq!(a, b);
        assert_eq!(a.mean_nanos(), 10);
    }
}
