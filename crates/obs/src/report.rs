//! The `RunReport` sink: one structured record per legalization run.
//!
//! A report has two strata:
//!
//! - **Golden fields** — design identity, outcome counts and quality
//!   metrics. These are independent of the `enabled` feature and of wall
//!   time, so they are byte-stable across runs, thread counts and builds;
//!   the golden end-to-end corpus snapshots exactly this subset
//!   ([`RunReport::golden_json`]).
//! - **Observability fields** — stage timings, span aggregates, counters
//!   and histograms harvested from a [`Meter`]. Timing varies run to run,
//!   so these appear only in the full [`RunReport::to_json`] output.
//!
//! Field order in the emitted JSON is fixed by construction (insertion
//! order within each section, sections in schema order). Bump
//! [`SCHEMA_VERSION`] whenever the shape of the golden subset changes; the
//! CI guard fails if the version changes without a golden re-bless.

use crate::json::JsonWriter;
use crate::meter::{CounterKind, HistoKind, Meter, SpanKind};

/// Version of the report schema (golden subset shape included).
///
/// v2: added the golden `failures` and `degradations` arrays (fault
/// containment, DESIGN.md §11) and the `retries`/`quarantined` outcome
/// counters.
pub const SCHEMA_VERSION: u32 = 2;

/// A named scalar in the golden strata.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer metric.
    U64(u64),
    /// Real-valued metric (printed with 4 decimals).
    F64(f64),
}

/// Wall time of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTime {
    /// Stage name (`mgl`, `maxdisp`, `fixed_order`).
    pub name: String,
    /// Wall seconds.
    pub seconds: f64,
}

/// Flattened span aggregate for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanReport {
    /// Span name (see [`SpanKind::name`]).
    pub name: String,
    /// Spans recorded.
    pub count: u64,
    /// Summed nanoseconds.
    pub total_nanos: u64,
    /// Shortest span.
    pub min_nanos: u64,
    /// Longest span.
    pub max_nanos: u64,
    /// Mean span.
    pub mean_nanos: u64,
    /// Thread ids that recorded this span.
    pub threads: Vec<u32>,
}

/// Flattened histogram for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoReport {
    /// Histogram name (see [`HistoKind::name`]).
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Approximate median (upper bound of the p50 bucket).
    pub p50: u64,
    /// Approximate 95th percentile.
    pub p95: u64,
    /// Approximate maximum.
    pub p100: u64,
    /// Non-empty `(log₂ bucket, count)` pairs, ascending.
    pub buckets: Vec<(u32, u64)>,
}

/// One contained failure, flattened for the report (golden; schema v2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRow {
    /// Stage the failure is attributed to (`"seed"` for pre-pipeline).
    pub stage: String,
    /// Containment class label (`retryable` / `degradable` / `fatal`).
    pub class: String,
    /// Human-readable description.
    pub message: String,
}

/// One degradation-ladder rung taken by the run (golden; schema v2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationRow {
    /// Stage the rung applies to.
    pub stage: String,
    /// The rung taken (`serial` / `skip`).
    pub rung: String,
    /// Why the rung was taken.
    pub reason: String,
}

/// One run's structured report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Design name/identifier.
    pub design: String,
    /// Thread count the run was configured with.
    pub threads: u64,
    /// Movable cell count.
    pub cells: u64,
    /// Fence region count.
    pub fences: u64,
    /// Golden quality metrics, in insertion order.
    pub quality: Vec<(String, Value)>,
    /// Golden outcome counts (placed-in-window, fallbacks, …).
    pub outcome: Vec<(String, u64)>,
    /// Contained failures, in the order they were recorded (golden).
    pub failures: Vec<FailureRow>,
    /// Degradation-ladder rungs taken, in order (golden).
    pub degradations: Vec<DegradationRow>,
    /// Per-stage wall seconds (not golden).
    pub stage_seconds: Vec<StageTime>,
    /// Span aggregates (not golden).
    pub spans: Vec<SpanReport>,
    /// Counters (not golden; excluded from the golden subset because they
    /// require the `obs` feature).
    pub counters: Vec<(String, u64)>,
    /// Histograms (not golden).
    pub histograms: Vec<HistoReport>,
}

impl RunReport {
    /// A report for `design`.
    #[must_use]
    pub fn new(design: &str) -> Self {
        Self {
            design: design.to_string(),
            ..Self::default()
        }
    }

    /// Appends a real-valued golden quality metric.
    pub fn quality_f64(&mut self, name: &str, v: f64) {
        self.quality.push((name.to_string(), Value::F64(v)));
    }

    /// Appends an integer golden quality metric.
    pub fn quality_u64(&mut self, name: &str, v: u64) {
        self.quality.push((name.to_string(), Value::U64(v)));
    }

    /// Appends a golden outcome count.
    pub fn outcome(&mut self, name: &str, v: u64) {
        self.outcome.push((name.to_string(), v));
    }

    /// Appends a contained-failure row.
    pub fn failure(&mut self, stage: &str, class: &str, message: &str) {
        self.failures.push(FailureRow {
            stage: stage.to_string(),
            class: class.to_string(),
            message: message.to_string(),
        });
    }

    /// Appends a degradation-ladder row.
    pub fn degradation(&mut self, stage: &str, rung: &str, reason: &str) {
        self.degradations.push(DegradationRow {
            stage: stage.to_string(),
            rung: rung.to_string(),
            reason: reason.to_string(),
        });
    }

    /// Whether the report claims an unqualified success: no failure rows,
    /// no degradation rungs, and every fault-related outcome counter
    /// (`failed`, `retries`, `quarantined`) at zero. Any contained fault or
    /// rung makes this `false` — a faulted run can never masquerade as a
    /// clean one.
    #[must_use]
    pub fn claims_full_success(&self) -> bool {
        self.failures.is_empty()
            && self.degradations.is_empty()
            && self
                .outcome
                .iter()
                .filter(|(name, _)| matches!(name.as_str(), "failed" | "retries" | "quarantined"))
                .all(|(_, v)| *v == 0)
    }

    /// Appends a stage wall-time entry.
    pub fn stage(&mut self, name: &str, seconds: f64) {
        self.stage_seconds.push(StageTime {
            name: name.to_string(),
            seconds,
        });
    }

    /// Harvests every non-empty span, counter and histogram from a meter.
    pub fn attach_meter(&mut self, m: &Meter) {
        for kind in SpanKind::ALL {
            let s = m.span(kind);
            if s.count == 0 {
                continue;
            }
            self.spans.push(SpanReport {
                name: kind.name().to_string(),
                count: s.count,
                total_nanos: s.total_nanos,
                min_nanos: s.min_nanos,
                max_nanos: s.max_nanos,
                mean_nanos: s.mean_nanos(),
                threads: s.thread_ids(),
            });
        }
        for kind in CounterKind::ALL {
            let v = m.counter(kind);
            if v > 0 {
                self.counters.push((kind.name().to_string(), v));
            }
        }
        for kind in HistoKind::ALL {
            let h = m.histogram(kind);
            if h.count() == 0 {
                continue;
            }
            self.histograms.push(HistoReport {
                name: kind.name().to_string(),
                count: h.count(),
                p50: h.approx_quantile(0.50),
                p95: h.approx_quantile(0.95),
                p100: h.approx_quantile(1.0),
                buckets: h.nonzero(),
            });
        }
    }

    fn write_golden_fields(&self, w: &mut JsonWriter) {
        w.field_u64("schema_version", u64::from(SCHEMA_VERSION));
        w.field_str("design", &self.design);
        w.field_u64("threads", self.threads);
        w.field_u64("cells", self.cells);
        w.field_u64("fences", self.fences);
        w.key("quality");
        w.begin_object();
        for (name, v) in &self.quality {
            match v {
                Value::U64(x) => w.field_u64(name, *x),
                Value::F64(x) => w.field_f64(name, *x, 4),
            }
        }
        w.end_object();
        w.key("outcome");
        w.begin_object();
        for (name, v) in &self.outcome {
            w.field_u64(name, *v);
        }
        w.end_object();
        w.key("failures");
        w.begin_array();
        for row in &self.failures {
            w.begin_object();
            w.field_str("stage", &row.stage);
            w.field_str("class", &row.class);
            w.field_str("message", &row.message);
            w.end_object();
        }
        w.end_array();
        w.key("degradations");
        w.begin_array();
        for row in &self.degradations {
            w.begin_object();
            w.field_str("stage", &row.stage);
            w.field_str("rung", &row.rung);
            w.field_str("reason", &row.reason);
            w.end_object();
        }
        w.end_array();
    }

    /// The golden subset: schema version, design identity, quality and
    /// outcome — everything deterministic across runs, thread counts and
    /// feature sets. This is what the golden corpus snapshots.
    #[must_use]
    pub fn golden_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        self.write_golden_fields(&mut w);
        w.end_object();
        w.finish()
    }

    /// The full report: golden subset plus stage timings, spans, counters
    /// and histograms.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        self.write_golden_fields(&mut w);
        w.key("stage_seconds");
        w.begin_object();
        for s in &self.stage_seconds {
            w.field_f64(&s.name, s.seconds, 6);
        }
        w.end_object();
        w.key("spans");
        w.begin_array();
        for s in &self.spans {
            w.begin_object();
            w.field_str("name", &s.name);
            w.field_u64("count", s.count);
            w.field_u64("total_nanos", s.total_nanos);
            w.field_u64("min_nanos", s.min_nanos);
            w.field_u64("max_nanos", s.max_nanos);
            w.field_u64("mean_nanos", s.mean_nanos);
            w.key("threads");
            w.begin_array();
            for t in &s.threads {
                w.value_u64(u64::from(*t));
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.key("counters");
        w.begin_object();
        for (name, v) in &self.counters {
            w.field_u64(name, *v);
        }
        w.end_object();
        w.key("histograms");
        w.begin_array();
        for h in &self.histograms {
            w.begin_object();
            w.field_str("name", &h.name);
            w.field_u64("count", h.count);
            w.field_u64("p50", h.p50);
            w.field_u64("p95", h.p95);
            w.field_u64("p100", h.p100);
            w.key("buckets");
            w.begin_array();
            for (b, c) in &h.buckets {
                w.begin_array();
                w.value_u64(u64::from(*b));
                w.value_u64(*c);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// A human-readable multi-line summary (the bench binary's `--report`).
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run report (schema v{SCHEMA_VERSION}): {} — {} cells, {} fences, {} threads",
            self.design, self.cells, self.fences, self.threads
        );
        if !self.quality.is_empty() {
            let _ = writeln!(out, "  quality:");
            for (name, v) in &self.quality {
                match v {
                    Value::U64(x) => {
                        let _ = writeln!(out, "    {name:<32} {x}");
                    }
                    Value::F64(x) => {
                        let _ = writeln!(out, "    {name:<32} {x:.4}");
                    }
                }
            }
        }
        if !self.outcome.is_empty() {
            let _ = writeln!(out, "  outcome:");
            for (name, v) in &self.outcome {
                let _ = writeln!(out, "    {name:<32} {v}");
            }
        }
        if !self.failures.is_empty() {
            let _ = writeln!(out, "  failures:");
            for row in &self.failures {
                let _ = writeln!(out, "    [{}] {}: {}", row.class, row.stage, row.message);
            }
        }
        if !self.degradations.is_empty() {
            let _ = writeln!(out, "  degradations:");
            for row in &self.degradations {
                let _ = writeln!(out, "    {} -> {}: {}", row.stage, row.rung, row.reason);
            }
        }
        if !self.stage_seconds.is_empty() {
            let _ = writeln!(out, "  stage seconds:");
            for s in &self.stage_seconds {
                let _ = writeln!(out, "    {:<32} {:.6}", s.name, s.seconds);
            }
        }
        if !self.spans.is_empty() {
            let _ = writeln!(out, "  spans (count / total ms / mean µs / threads):");
            for s in &self.spans {
                let total_ms = s.total_nanos / 1_000_000;
                let mean_us = s.mean_nanos / 1_000;
                let _ = writeln!(
                    out,
                    "    {:<24} {:>10} {:>9} {:>9}   {:?}",
                    s.name, s.count, total_ms, mean_us, s.threads
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "    {name:<32} {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "  histograms (count / ~p50 / ~p95 / ~max):");
            for h in &self.histograms {
                let _ = writeln!(
                    out,
                    "    {:<24} {:>10} {:>9} {:>9} {:>9}",
                    h.name, h.count, h.p50, h.p95, h.p100
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        let mut r = RunReport::new("demo");
        r.threads = 2;
        r.cells = 10;
        r.fences = 1;
        r.quality_u64("total_disp_sites", 42);
        r.quality_f64("weighted_cost", 1.25);
        r.outcome("placed_in_window", 9);
        r.outcome("fallbacks", 1);
        r.stage("mgl", 0.001_234_5);
        r
    }

    #[test]
    fn golden_json_is_stable_and_timing_free() {
        let r = sample();
        let j = r.golden_json();
        assert_eq!(
            j,
            "{\"schema_version\":2,\"design\":\"demo\",\"threads\":2,\
             \"cells\":10,\"fences\":1,\"quality\":{\"total_disp_sites\":42,\
             \"weighted_cost\":1.2500},\"outcome\":{\"placed_in_window\":9,\
             \"fallbacks\":1},\"failures\":[],\"degradations\":[]}"
        );
        assert!(!j.contains("nanos"));
        assert!(!j.contains("seconds"));
    }

    #[test]
    fn failures_and_degradations_are_golden_and_block_success_claims() {
        let mut r = sample();
        assert!(r.claims_full_success());
        r.failure("mgl", "degradable", "stage mgl panicked: boom");
        r.degradation("mgl", "serial", "stage mgl panicked: boom");
        assert!(!r.claims_full_success());
        let j = r.golden_json();
        assert!(j.contains(
            "\"failures\":[{\"stage\":\"mgl\",\"class\":\"degradable\",\
             \"message\":\"stage mgl panicked: boom\"}]"
        ));
        assert!(j.contains("\"degradations\":[{\"stage\":\"mgl\",\"rung\":\"serial\""));
        let s = r.summary();
        assert!(s.contains("degradations:"));
        assert!(s.contains("mgl -> serial"));

        // A nonzero fault-related outcome counter also blocks the claim.
        let mut r2 = sample();
        r2.outcome("quarantined", 1);
        assert!(!r2.claims_full_success());
    }

    #[test]
    fn full_json_contains_sections_in_order() {
        let mut r = sample();
        let mut m = Meter::new();
        m.record_span(crate::SpanKind::StageMgl, 1_000, 0);
        m.add(crate::CounterKind::WindowsEvaluated, 7);
        m.observe(crate::HistoKind::DispSitesMgl, 3);
        r.attach_meter(&m);
        let j = r.to_json();
        let order = [
            "schema_version",
            "quality",
            "outcome",
            "failures",
            "degradations",
            "stage_seconds",
            "spans",
            "counters",
            "histograms",
        ];
        let mut last = 0;
        for key in order {
            let pos = j.find(&format!("\"{key}\"")).unwrap_or(usize::MAX);
            assert!(pos != usize::MAX, "missing {key} in {j}");
            assert!(pos >= last, "{key} out of order in {j}");
            last = pos;
        }
        if crate::compiled() && crate::recording() {
            assert!(j.contains("\"stage.mgl\""));
            assert!(j.contains("\"mgl.windows_evaluated\":7"));
        }
        let s = r.summary();
        assert!(s.contains("demo"));
        assert!(s.contains("placed_in_window"));
    }
}
