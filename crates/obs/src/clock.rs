//! Monotonic timing. This module is the one place in the workspace allowed
//! to call `std::time::Instant::now()` (enforced by the `instant-now` xtask
//! lint rule); everything else times through [`Stopwatch`].
//!
//! The clock is *not* feature-gated: always-on throughput counters (e.g.
//! `mcl-core`'s `PerfStats`) need real wall-clock readings even in builds
//! with metrics compiled out.

use std::time::Instant;

/// A started monotonic stopwatch.
///
/// ```
/// let t = mcl_obs::clock::Stopwatch::start();
/// let nanos = t.elapsed_nanos();
/// assert!(t.elapsed_seconds() >= 0.0);
/// let _ = nanos;
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current monotonic instant.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed nanoseconds since start, saturating at `u64::MAX` (≈584
    /// years — effectively never).
    #[must_use]
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed seconds since start.
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_nonnegative() {
        let t = Stopwatch::start();
        let a = t.elapsed_nanos();
        let b = t.elapsed_nanos();
        assert!(b >= a);
        assert!(t.elapsed_seconds() >= 0.0);
    }
}
