//! # mcl-obs — pipeline observability
//!
//! Zero-dependency structured tracing and metrics for the legalization
//! pipeline (DESIGN.md §9). Three layers:
//!
//! - [`clock`]: the workspace's **single sanctioned wall-clock site**
//!   ([`clock::Stopwatch`] wraps `std::time::Instant`). The `cargo xtask
//!   lint` rule `instant-now` forbids ad-hoc `Instant::now()` timing in
//!   every other library crate, so all timing flows through here whether or
//!   not metrics are compiled in.
//! - [`Meter`]: typed span/counter/histogram aggregation. Hierarchical
//!   spans (run → stage → window → insertion-eval) carry monotonic nanos
//!   and a thread-attribution bitmask; counters and log₂ histograms cover
//!   the hot-path quantities (windows expanded, curve minimizations,
//!   matching pivots, per-cell displacement). Meters are plain values:
//!   workers record into local meters which are [`Meter::merge`]d
//!   deterministically at stage end — no atomics or locks touch the hot
//!   path, and recording never influences placement decisions, so replay
//!   logs stay bit-identical with spans on.
//! - [`report`]: the [`report::RunReport`] sink — schema-versioned,
//!   deterministic-field-order JSON plus a human summary.
//!
//! The `enabled` feature (default) gates recording and storage; when off,
//! every Meter operation compiles to a no-op and reads return zeros, while
//! the clock and report types remain fully functional.

#![forbid(unsafe_code)]

pub mod clock;
mod json;
mod meter;
pub mod report;

pub use json::JsonWriter;
pub use meter::{
    compiled, count_to_float, recording, set_recording, CounterKind, HistoKind, Histogram, Meter,
    SpanAgg, SpanKind,
};
