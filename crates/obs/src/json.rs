//! A minimal deterministic JSON writer.
//!
//! Serde stays out of this workspace (zero-dependency policy), and report
//! JSON must be byte-stable across runs and platforms for golden-file
//! diffing: fields are emitted in the order the caller writes them and
//! floats are printed with a caller-chosen fixed number of decimals.

/// Streaming JSON writer with explicit object/array scoping.
///
/// ```
/// let mut w = mcl_obs::JsonWriter::new();
/// w.begin_object();
/// w.field_str("name", "demo");
/// w.field_u64("cells", 42);
/// w.key("ratio");
/// w.value_f64(0.5, 4);
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name":"demo","cells":42,"ratio":0.5000}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    /// One entry per open scope: `true` once the scope has an element (so
    /// the next element needs a leading comma).
    scopes: Vec<bool>,
    /// Set between a `key()` and its value.
    after_key: bool,
}

impl JsonWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the accumulated JSON text.
    #[must_use]
    pub fn finish(self) -> String {
        self.buf
    }

    fn separate(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(has_elem) = self.scopes.last_mut() {
            if *has_elem {
                self.buf.push(',');
            }
            *has_elem = true;
        }
    }

    fn push_escaped(&mut self, s: &str) {
        self.buf.push('"');
        for c in s.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                '\r' => self.buf.push_str("\\r"),
                '\t' => self.buf.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
    }

    /// Opens an object (as a value).
    pub fn begin_object(&mut self) {
        self.separate();
        self.buf.push('{');
        self.scopes.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.scopes.pop();
        self.buf.push('}');
    }

    /// Opens an array (as a value).
    pub fn begin_array(&mut self) {
        self.separate();
        self.buf.push('[');
        self.scopes.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.scopes.pop();
        self.buf.push(']');
    }

    /// Writes an object key; the next write is its value.
    pub fn key(&mut self, k: &str) {
        self.separate();
        self.push_escaped(k);
        self.buf.push(':');
        self.after_key = true;
    }

    /// Writes a string value.
    pub fn value_str(&mut self, v: &str) {
        self.separate();
        self.push_escaped(v);
    }

    /// Writes an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.separate();
        self.buf.push_str(&v.to_string());
    }

    /// Writes a signed integer value.
    pub fn value_i64(&mut self, v: i64) {
        self.separate();
        self.buf.push_str(&v.to_string());
    }

    /// Writes a boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.separate();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Writes a float with a fixed number of decimals. `-0.0` is
    /// normalized to `0.0`; non-finite values become `null` (JSON has no
    /// representation for them and reports must stay parseable).
    pub fn value_f64(&mut self, v: f64, decimals: usize) {
        self.separate();
        if v.is_finite() {
            let v = if v == 0.0 { 0.0 } else { v };
            self.buf.push_str(&format!("{v:.decimals$}"));
        } else {
            self.buf.push_str("null");
        }
    }

    /// Writes a pre-serialized JSON value verbatim (no escaping). The
    /// caller guarantees `v` is one complete, valid JSON value — the wire
    /// layer uses this to embed an already-rendered `RunReport` document
    /// inside a response envelope without re-parsing it.
    pub fn value_raw(&mut self, v: &str) {
        self.separate();
        self.buf.push_str(v);
    }

    /// `key` + pre-serialized JSON value (see [`Self::value_raw`]).
    pub fn field_raw(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_raw(v);
    }

    /// `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_str(v);
    }

    /// `key` + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.value_u64(v);
    }

    /// `key` + signed integer value.
    pub fn field_i64(&mut self, k: &str, v: i64) {
        self.key(k);
        self.value_i64(v);
    }

    /// `key` + fixed-decimal float value.
    pub fn field_f64(&mut self, k: &str, v: f64, decimals: usize) {
        self.key(k);
        self.value_f64(v, decimals);
    }

    /// `key` + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.value_bool(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structures() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("a", "x\"y\\z\n");
        w.key("list");
        w.begin_array();
        w.value_u64(1);
        w.value_i64(-2);
        w.begin_object();
        w.field_bool("ok", true);
        w.end_object();
        w.end_array();
        w.field_f64("f", -0.0, 2);
        w.field_f64("g", f64::NAN, 2);
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\"a\":\"x\\\"y\\\\z\\n\",\"list\":[1,-2,{\"ok\":true}],\"f\":0.00,\"g\":null}"
        );
    }

    #[test]
    fn empty_scopes() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("empty");
        w.begin_array();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\"empty\":[]}");
    }
}
