//! Declarative stage pipeline for the three-stage flow.
//!
//! The paper's flow is an ordered composition of stages (MGL insertion →
//! max-displacement matching → fixed-order refinement). This module is the
//! single place that composition lives: each stage is a [`Stage`] trait
//! object, the driver [`run_stages`] walks a stage list, and every stage is
//! wrapped uniformly by the same middleware — wall-clock timing into
//! [`StageTiming`], a stage span in the meter, the per-stage displacement
//! histogram, and the independent clean-room audit. A new stage therefore
//! cannot forget to be timed, metered or audited; and the three public
//! drivers ([`crate::Legalizer::run`], `run_eco`, `refine`) plus the batch
//! [`crate::Engine`] are thin wrappers that differ only in how the initial
//! [`PlacementState`] is built and which stage list they pass.
//!
//! Middleware order per enabled stage (fixed; meter merging is commutative
//! so the aggregate is insensitive to it, but the order is kept identical to
//! the pre-pipeline drivers so full reports diff cleanly):
//!
//! 1. run the stage body,
//! 2. push the named [`StageTiming`],
//! 3. record the stage span,
//! 4. fold the stage's [`StageStats`] into [`LegalizeStats`] (MGL also
//!    merges its worker meters),
//! 5. record the displacement histogram of the current placement,
//! 6. run the clean-room audit (`debug_assertions` / `audit` feature).

use crate::config::LegalizerConfig;
use crate::dirty::DirtyClosure;
use crate::error::{panic_message, Degradation, FailureClass, LegalizeError};
use crate::faultinject::FaultSite;
use crate::fixed_order::optimize_fixed_order_metered;
use crate::insertion::InsertionScratch;
use crate::legalizer::LegalizeStats;
use crate::maxdisp::optimize_max_disp_metered;
use crate::mgl::{compute_weights, run_serial_with_scratch};
use crate::routability::RoutOracle;
use crate::scheduler::{drive_rounds, try_run_parallel, PoolClient};
use crate::state::PlacementState;
use mcl_db::prelude::*;
use mcl_obs::{clock::Stopwatch, CounterKind, HistoKind, Meter, SpanKind};
use std::panic::AssertUnwindSafe;

/// Statistics returned by one stage, folded into [`LegalizeStats`] by the
/// driver.
#[derive(Debug, Clone)]
pub enum StageStats {
    /// Stage 1 (MGL insertion).
    Mgl(crate::mgl::MglStats),
    /// Stage 2 (max-displacement matching).
    MaxDisp(crate::maxdisp::MaxDispStats),
    /// Stage 3 (fixed row-and-order refinement).
    FixedOrder(crate::fixed_order::FixedOrderStats),
}

/// Wall-clock seconds of one enabled stage, keyed by stage name. Disabled
/// stages emit no entry (they used to report a misleading `0.0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    /// The stage's [`Stage::name`].
    pub name: &'static str,
    /// Wall-clock seconds spent in the stage body.
    pub seconds: f64,
}

/// How the MGL stage executes its evaluation rounds.
#[derive(Clone, Copy)]
pub enum MglExec<'run, 'p> {
    /// Standalone run: the stage manages its own threads per
    /// `config.threads` (a private pool per run, or fully serial).
    Standalone,
    /// One run of an engine batch, driven by a runner thread. `run` is the
    /// design's index in the batch — it tags this design's messages on the
    /// shared workers. `client` connects to the batch-wide shared pool;
    /// `None` means every configured thread is a design runner, so rounds
    /// run inline on this runner (same rounds, same results).
    Batch {
        /// Connection to the batch's shared worker pool, if it has one.
        client: Option<&'run PoolClient<'p>>,
        /// This design's run id on the shared pool.
        run: usize,
    },
}

/// Everything a stage body may read or mutate. `'d` is the design's
/// lifetime; `'p` (with `'d: 'p`) bounds the prepared per-run data (weights,
/// oracle) that worker threads may borrow.
pub struct PipelineCtx<'run, 'd: 'p, 'p> {
    /// The design being legalized.
    pub design: &'d Design,
    /// The working placement.
    pub state: &'run mut PlacementState<'d>,
    /// The run's configuration.
    pub config: &'run LegalizerConfig,
    /// Per-cell displacement weights (from [`compute_weights`]).
    pub weights: &'p [i64],
    /// Routability oracle, when `config.routability` is on.
    pub oracle: Option<&'p RoutOracle<'p>>,
    /// The run's meter; stage bodies may record directly into it.
    pub obs: &'run mut Meter,
    /// How the MGL stage should execute its rounds (standalone threads, a
    /// shared batch pool, or inline on a batch runner).
    pub exec: MglExec<'run, 'p>,
    /// Caller-owned insertion scratch, reused across runs by the engine.
    pub scratch: &'run mut InsertionScratch,
    /// Set by the driver when the deadline ladder demands the serial MGL
    /// rung: the MGL stage must not fan out (no replicas, no pool rounds).
    pub force_serial: bool,
    /// ECO delta closure, computed once by the driver before the first
    /// post stage when `config.eco_delta` is on and the state tracks a
    /// dirty epoch. Post stages restrict themselves to its members.
    pub delta: Option<&'run DirtyClosure>,
}

/// One stage of the flow. Implementations are stateless unit structs; all
/// run state flows through [`PipelineCtx`].
pub trait Stage: Sync {
    /// Stable stage name, used for [`StageTiming`], report rows and CLI
    /// `--stages` specs.
    fn name(&self) -> &'static str;
    /// Whether the configuration enables this stage.
    fn enabled(&self, config: &LegalizerConfig) -> bool;
    /// The span recorded around the stage body.
    fn span(&self) -> SpanKind;
    /// The displacement histogram recorded after the stage body.
    fn histo(&self) -> HistoKind;
    /// The stage body.
    ///
    /// # Errors
    ///
    /// A typed [`LegalizeError`] when the stage cannot complete; the driver
    /// rolls the placement back to the pre-stage checkpoint and consults
    /// the degradation ladder. Panics out of a stage body are contained by
    /// the driver and classified the same way.
    fn run(&self, ctx: &mut PipelineCtx<'_, '_, '_>) -> Result<StageStats, LegalizeError>;
}

/// Stage 1: MGL window insertion over the unplaced cells.
pub struct MglStage;

impl Stage for MglStage {
    fn name(&self) -> &'static str {
        "mgl"
    }
    fn enabled(&self, _config: &LegalizerConfig) -> bool {
        true
    }
    fn span(&self) -> SpanKind {
        SpanKind::StageMgl
    }
    fn histo(&self) -> HistoKind {
        HistoKind::DispSitesMgl
    }
    fn run(&self, ctx: &mut PipelineCtx<'_, '_, '_>) -> Result<StageStats, LegalizeError> {
        let stats = if ctx.force_serial {
            // Degradation rung: the driver demands the serial algorithm
            // (deadline hit, or the parallel attempt already failed).
            run_serial_with_scratch(ctx.state, ctx.config, ctx.weights, ctx.oracle, ctx.scratch)
        } else {
            match ctx.exec {
                // Engine batch path with shared workers: this design's
                // rounds interleave with its batch peers' on the pool.
                MglExec::Batch {
                    client: Some(client),
                    run,
                } if client.workers() > 0 => drive_rounds(
                    ctx.state,
                    ctx.config,
                    ctx.weights,
                    ctx.oracle,
                    Some((client, run)),
                    ctx.scratch,
                )?,
                // Batch runner without shared workers: every thread is a
                // runner, so rounds run inline here. The scheduler's output
                // is thread-count invariant, so this is bit-identical to
                // the pooled path.
                MglExec::Batch { .. } if ctx.config.threads > 1 => drive_rounds(
                    ctx.state,
                    ctx.config,
                    ctx.weights,
                    ctx.oracle,
                    None,
                    ctx.scratch,
                )?,
                // Standalone multi-threaded: a private pool per run,
                // bit-identical to the pre-pipeline drivers.
                MglExec::Standalone if ctx.config.threads > 1 => {
                    try_run_parallel(ctx.state, ctx.config, ctx.weights, ctx.oracle)?
                }
                // Single-threaded (either flavor): the serial algorithm.
                _ => run_serial_with_scratch(
                    ctx.state,
                    ctx.config,
                    ctx.weights,
                    ctx.oracle,
                    ctx.scratch,
                ),
            }
        };
        Ok(StageStats::Mgl(stats))
    }
}

/// Stage 2: per (type × fence) min-cost bipartite matching minimizing the
/// convex max-displacement objective.
pub struct MaxDispStage;

impl Stage for MaxDispStage {
    fn name(&self) -> &'static str {
        "maxdisp"
    }
    fn enabled(&self, config: &LegalizerConfig) -> bool {
        config.max_disp_matching
    }
    fn span(&self) -> SpanKind {
        SpanKind::StageMaxDisp
    }
    fn histo(&self) -> HistoKind {
        HistoKind::DispSitesMaxDisp
    }
    fn run(&self, ctx: &mut PipelineCtx<'_, '_, '_>) -> Result<StageStats, LegalizeError> {
        Ok(StageStats::MaxDisp(optimize_max_disp_metered(
            ctx.state, ctx.config, ctx.obs, ctx.delta,
        )))
    }
}

/// Stage 3: fixed row-and-order refinement via the dual min-cost flow.
pub struct FixedOrderStage;

impl Stage for FixedOrderStage {
    fn name(&self) -> &'static str {
        "fixed_order"
    }
    fn enabled(&self, config: &LegalizerConfig) -> bool {
        config.fixed_order_refine
    }
    fn span(&self) -> SpanKind {
        SpanKind::StageFixedOrder
    }
    fn histo(&self) -> HistoKind {
        HistoKind::DispSitesFixedOrder
    }
    fn run(&self, ctx: &mut PipelineCtx<'_, '_, '_>) -> Result<StageStats, LegalizeError> {
        Ok(StageStats::FixedOrder(optimize_fixed_order_metered(
            ctx.state,
            ctx.config,
            ctx.weights,
            ctx.oracle,
            ctx.obs,
            ctx.delta,
        )))
    }
}

/// The full three-stage flow (`run` / `run_eco` / batch legalization).
pub static FULL_PIPELINE: [&dyn Stage; 3] = [&MglStage, &MaxDispStage, &FixedOrderStage];

/// The two post-processing stages only (`refine`, Table 3 ablations).
pub static POST_PIPELINE: [&dyn Stage; 2] = [&MaxDispStage, &FixedOrderStage];

/// Resolves a CLI-style comma-separated stage spec (`mgl,maxdisp,fixed`)
/// into a stage list. Stage names are `mgl`, `maxdisp` and
/// `fixed`/`fixed_order`; the spec must be a non-empty subsequence of the
/// canonical order (stages can be dropped, not reordered).
///
/// # Errors
///
/// Returns a human-readable message for unknown names, duplicates, an empty
/// spec, or out-of-order stages.
pub fn parse_stages(spec: &str) -> Result<Vec<&'static dyn Stage>, String> {
    let mut stages: Vec<&'static dyn Stage> = Vec::new();
    let mut last = 0usize;
    for (i, raw) in spec.split(',').enumerate() {
        let name = raw.trim();
        let (rank, stage): (usize, &'static dyn Stage) = match name {
            "mgl" => (1, &MglStage),
            "maxdisp" => (2, &MaxDispStage),
            "fixed" | "fixed_order" => (3, &FixedOrderStage),
            "" => {
                return Err(format!("empty stage name at position {i} in `{spec}`"));
            }
            other => {
                return Err(format!(
                    "unknown stage `{other}` (expected mgl, maxdisp, fixed)"
                ));
            }
        };
        if rank == last {
            return Err(format!("duplicate stage `{name}` in `{spec}`"));
        }
        if rank < last {
            return Err(format!(
                "stage `{name}` out of order in `{spec}` (canonical order: mgl,maxdisp,fixed)"
            ));
        }
        last = rank;
        stages.push(stage);
    }
    if stages.is_empty() {
        return Err("empty stage list".into());
    }
    Ok(stages)
}

/// Whether a parsed stage list starts with MGL insertion (stage lists
/// without it run in refine semantics: existing positions are adopted).
pub fn includes_mgl(stages: &[&dyn Stage]) -> bool {
    stages.iter().any(|s| s.name() == "mgl")
}

/// Per-run prepared inputs shared by every stage: displacement weights and
/// the optional routability oracle. Building one of these (plus the initial
/// [`PlacementState`]) is all a driver does before handing off to
/// [`run_stages`].
pub struct Prep<'d> {
    /// Per-cell displacement weights.
    pub weights: Vec<i64>,
    oracle: Option<RoutOracle<'d>>,
}

impl<'d> Prep<'d> {
    /// Computes weights and (when configured) the routability oracle.
    pub fn new(design: &'d Design, config: &LegalizerConfig) -> Self {
        Prep {
            weights: compute_weights(design, config.weights),
            oracle: if config.routability {
                Some(RoutOracle::new(design))
            } else {
                None
            },
        }
    }

    /// The oracle, when routability mode is on.
    pub fn oracle(&self) -> Option<&RoutOracle<'d>> {
        self.oracle.as_ref()
    }
}

/// Records the per-cell displacement histogram of the current placement
/// (Manhattan distance from the global-placement position, in site widths)
/// into `obs` under `kind`. Fixed and unplaced cells are skipped, matching
/// `Metrics::measure`.
fn record_disp_histogram(
    obs: &mut Meter,
    state: &PlacementState<'_>,
    design: &Design,
    kind: HistoKind,
) {
    if !(mcl_obs::compiled() && mcl_obs::recording()) {
        return;
    }
    let sw = design.tech.site_width.max(1);
    for (i, cell) in design.cells.iter().enumerate() {
        if cell.fixed {
            continue;
        }
        let Some(p) = state.pos(CellId(i as u32)) else {
            continue;
        };
        let d = (p.x - cell.gp.x).abs() + (p.y - cell.gp.y).abs();
        obs.observe(kind, (d / sw) as u64);
    }
}

/// Runs the independent auditor (`mcl_audit`) over the state after a stage
/// and panics on any hard violation among the *placed* cells. Stages may
/// leave overflow cells unplaced (reported through their stats); everything
/// they did place must satisfy every §2 constraint.
///
/// Active under `debug_assertions` and in `--features audit` builds; CI runs
/// the latter so every stage of every test design is independently checked.
#[cfg(any(debug_assertions, feature = "audit"))]
fn audit_stage(state: &PlacementState<'_>, design: &Design, label: &str, stage: &str) {
    let mut snapshot = design.clone();
    state.write_back(&mut snapshot);
    let rep = mcl_audit::verify(&snapshot);
    assert_eq!(
        rep.placement_violations(),
        0,
        "independent audit failed after {label} stage `{stage}`: {:?}",
        rep.notes
    );
}

#[cfg(not(any(debug_assertions, feature = "audit")))]
fn audit_stage(_state: &PlacementState<'_>, _design: &Design, _label: &str, _stage: &str) {}

/// One guarded stage attempt: fault probes at the boundary (injected
/// allocation failure, injected stage panic), then the stage body under
/// `catch_unwind` so a panic anywhere inside is contained and classified
/// instead of tearing the process down.
#[allow(clippy::too_many_arguments)]
fn run_stage_guarded<'d: 'p, 'p>(
    stage: &dyn Stage,
    design: &'d Design,
    state: &mut PlacementState<'d>,
    config: &LegalizerConfig,
    weights: &'p [i64],
    oracle: Option<&'p RoutOracle<'p>>,
    obs: &mut Meter,
    exec: MglExec<'_, 'p>,
    scratch: &mut InsertionScratch,
    force_serial: bool,
    delta: Option<&DirtyClosure>,
) -> Result<StageStats, LegalizeError> {
    let name = stage.name();
    let alloc_site = FaultSite::StageAlloc { stage: name };
    if crate::faultinject::fires(config.faults.as_ref(), &design.name, &alloc_site) {
        return Err(LegalizeError::ResourceExhausted {
            stage: name,
            what: "memory (injected allocation failure)",
        });
    }
    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
        let panic_site = FaultSite::StagePanic { stage: name };
        if crate::faultinject::fires(config.faults.as_ref(), &design.name, &panic_site) {
            crate::faultinject::injected_panic(&panic_site);
        }
        let mut ctx = PipelineCtx {
            design,
            state: &mut *state,
            config,
            weights,
            oracle,
            obs,
            exec,
            scratch: &mut *scratch,
            force_serial,
            delta,
        };
        stage.run(&mut ctx)
    }));
    match caught {
        Ok(r) => r,
        Err(p) => Err(LegalizeError::StagePanicked {
            stage: name,
            message: panic_message(&*p),
        }),
    }
}

/// Clean-room certification of a degraded result. Unlike [`audit_stage`]
/// this is *not* gated behind `debug_assertions`/`audit`: when a rung of the
/// degradation ladder was taken, the normal per-stage invariant chain was
/// interrupted, so the result must independently prove legality or the job
/// errors out. Degradation may cost quality, never legality.
fn certify_degraded(state: &PlacementState<'_>, design: &Design) -> Result<(), LegalizeError> {
    let mut snapshot = design.clone();
    state.write_back(&mut snapshot);
    let rep = mcl_audit::verify(&snapshot);
    let violations = rep.placement_violations();
    if violations != 0 {
        return Err(LegalizeError::AuditFailed {
            stage: "pipeline",
            violations,
        });
    }
    Ok(())
}

/// The single pipeline driver behind `run`, `run_eco`, `refine` and the
/// engine. Walks `stages`, skipping disabled ones, applying the module-doc
/// middleware around each, and finishes with the run-level span. `label`
/// names the driver in audit panics ("run", "ECO", "refine", "batch").
///
/// # Fault containment (DESIGN.md §11)
///
/// Every enabled stage runs against a checkpoint of the placement. A stage
/// that returns a typed [`LegalizeError`] or panics is rolled back — no
/// partial mutation ever escapes a failed stage — and the declared
/// degradation ladder decides what happens next:
///
/// - `mgl`: retry once on the serial algorithm (rung `"serial"`); if that
///   also fails the job fails.
/// - `maxdisp` / `fixed_order`: skip the stage (rung `"skip"`), keeping the
///   pre-stage assignment.
///
/// A per-stage wall-clock budget ([`LegalizerConfig::stage_budget_secs`]) is
/// checked at stage boundaries and takes the same rungs. Every rung is
/// recorded in [`LegalizeStats::degradations`] alongside a failure row, and
/// a degraded run must pass the clean-room auditor before it is reported as
/// a success.
///
/// # Errors
///
/// A [`LegalizeError`] when the ladder is exhausted (the placement is the
/// caller's seeded state for `mgl` failures) or when a degraded result fails
/// certification.
#[allow(clippy::too_many_arguments)]
pub fn run_stages<'d: 'p, 'p>(
    design: &'d Design,
    state: &mut PlacementState<'d>,
    config: &LegalizerConfig,
    stages: &[&dyn Stage],
    weights: &'p [i64],
    oracle: Option<&'p RoutOracle<'p>>,
    exec: MglExec<'_, 'p>,
    scratch: &mut InsertionScratch,
    label: &str,
) -> Result<LegalizeStats, LegalizeError> {
    let mut stats = LegalizeStats::default();
    let run_sw = Stopwatch::start();
    // Delta-first ECO: frozen transitive closure of everything mutated
    // since adoption (computed lazily before the first post stage, after
    // MGL has placed the delta cells). Stage 2 only permutes closure
    // members among their own positions, so the closure stays a fixed
    // point across both post stages and one computation serves both.
    let mut delta: Option<DirtyClosure> = None;
    for stage in stages {
        if !stage.enabled(config) {
            continue;
        }
        let name = stage.name();
        if name != "mgl" && config.eco_delta && state.dirty_tracking() && delta.is_none() {
            let dc = crate::dirty::compute(state);
            stats
                .obs
                .add(CounterKind::EcoWindowsDirty, dc.windows().len() as u64);
            let placed = design
                .movable_cells()
                .filter(|&c| state.pos(c).is_some())
                .count();
            let in_closure_placed = dc
                .cells()
                .iter()
                .filter(|&&c| state.pos(c).is_some())
                .count();
            stats.obs.add(
                CounterKind::EcoCellsReused,
                placed.saturating_sub(in_closure_placed) as u64,
            );
            delta = Some(dc);
        }
        // Deadline at the stage boundary: wall-clock budget already spent by
        // earlier stages, or an injected deadline expiry.
        let deadline_site = FaultSite::StageDeadline { stage: name };
        let budget = config.stage_budget_secs;
        let deadline_hit = budget.is_some_and(|b| run_sw.elapsed_seconds() > b)
            || crate::faultinject::fires(config.faults.as_ref(), &design.name, &deadline_site);
        let mut force_serial = false;
        if deadline_hit {
            let err = LegalizeError::DeadlineExceeded {
                stage: name,
                budget_secs: budget.unwrap_or(0.0),
            };
            stats.failures.push(err.to_record());
            if name == "mgl" {
                // Rung: parallel MGL → serial MGL (bounded memory and
                // threads; insertion still happens).
                stats.degradations.push(Degradation {
                    stage: name,
                    rung: "serial",
                    reason: err.to_string(),
                });
                force_serial = true;
            } else {
                // Rung: skip the stage, keeping the current assignment.
                stats.degradations.push(Degradation {
                    stage: name,
                    rung: "skip",
                    reason: err.to_string(),
                });
                continue;
            }
        }
        let t = Stopwatch::start();
        // Checkpoint so a failed stage can never leak partial mutation.
        let checkpoint = state.clone();
        let first = run_stage_guarded(
            *stage,
            design,
            state,
            config,
            weights,
            oracle,
            &mut stats.obs,
            exec,
            scratch,
            force_serial,
            delta.as_ref(),
        );
        let folded = match first {
            Ok(s) => s,
            Err(e) => {
                *state = checkpoint.clone();
                if name == "mgl" {
                    // The shared pool may hold in-flight rounds from the
                    // failed attempt; cancel this design's run so the
                    // workers drop its replica and its stale traffic dies
                    // in the abandoned reply channels. Batch peers on the
                    // same pool are untouched.
                    if let MglExec::Batch {
                        client: Some(c),
                        run,
                    } = exec
                    {
                        let _ = c.cancel_run(run);
                    }
                }
                if e.class() == FailureClass::Fatal {
                    return Err(e);
                }
                stats.failures.push(e.to_record());
                let reason = e.to_string();
                if name == "mgl" {
                    if force_serial {
                        // Already at the bottom rung.
                        *state = checkpoint;
                        return Err(e);
                    }
                    // Rung: rerun serially from the restored checkpoint.
                    match run_stage_guarded(
                        *stage,
                        design,
                        state,
                        config,
                        weights,
                        oracle,
                        &mut stats.obs,
                        exec,
                        scratch,
                        true,
                        delta.as_ref(),
                    ) {
                        Ok(s) => {
                            stats.degradations.push(Degradation {
                                stage: name,
                                rung: "serial",
                                reason,
                            });
                            s
                        }
                        Err(e2) => {
                            // Ladder exhausted: restore and fail the job.
                            *state = checkpoint;
                            return Err(e2);
                        }
                    }
                } else {
                    // Rung: skip. The placement is back to the pre-stage
                    // state; like a disabled stage, no timing row is pushed.
                    stats.degradations.push(Degradation {
                        stage: name,
                        rung: "skip",
                        reason,
                    });
                    continue;
                }
            }
        };
        stats.stage_seconds.push(StageTiming {
            name,
            seconds: t.elapsed_seconds(),
        });
        stats.obs.record_span(stage.span(), t.elapsed_nanos(), 0);
        match folded {
            StageStats::Mgl(s) => {
                stats.mgl = s;
                stats.obs.merge(&stats.mgl.obs);
            }
            StageStats::MaxDisp(s) => stats.max_disp = s,
            StageStats::FixedOrder(s) => stats.fixed_order = s,
        }
        record_disp_histogram(&mut stats.obs, state, design, stage.histo());
        audit_stage(state, design, label, name);
    }
    // Certification: a run that took any rung must still prove legality.
    if !stats.degradations.is_empty() {
        certify_degraded(state, design)?;
    }
    stats
        .obs
        .record_span(SpanKind::Run, run_sw.elapsed_nanos(), 0);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_lists_cover_the_flow_in_order() {
        let names: Vec<_> = FULL_PIPELINE.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["mgl", "maxdisp", "fixed_order"]);
        let post: Vec<_> = POST_PIPELINE.iter().map(|s| s.name()).collect();
        assert_eq!(post, ["maxdisp", "fixed_order"]);
        assert!(includes_mgl(&FULL_PIPELINE));
        assert!(!includes_mgl(&POST_PIPELINE));
    }

    #[test]
    fn parse_stages_accepts_subsequences() {
        for (spec, want) in [
            ("mgl,maxdisp,fixed", vec!["mgl", "maxdisp", "fixed_order"]),
            (
                "mgl,maxdisp,fixed_order",
                vec!["mgl", "maxdisp", "fixed_order"],
            ),
            ("mgl", vec!["mgl"]),
            ("maxdisp,fixed", vec!["maxdisp", "fixed_order"]),
            (" mgl , fixed ", vec!["mgl", "fixed_order"]),
        ] {
            let got: Vec<_> = parse_stages(spec)
                .unwrap_or_else(|e| panic!("{spec}: {e}"))
                .iter()
                .map(|s| s.name())
                .collect();
            assert_eq!(got, want, "{spec}");
        }
    }

    #[test]
    fn parse_stages_rejects_bad_specs() {
        for spec in [
            "",
            "mgl,",
            "bogus",
            "mgl,mgl",
            "maxdisp,mgl",
            "fixed,maxdisp",
        ] {
            assert!(parse_stages(spec).is_err(), "{spec:?} should be rejected");
        }
    }

    #[test]
    fn stage_enablement_follows_config() {
        let mut cfg = LegalizerConfig::contest();
        cfg.max_disp_matching = false;
        cfg.fixed_order_refine = true;
        assert!(MglStage.enabled(&cfg));
        assert!(!MaxDispStage.enabled(&cfg));
        assert!(FixedOrderStage.enabled(&cfg));
    }
}
