//! Mutable placement state shared by all legalization stages.
//!
//! Tracks, for every fence segment, the ordered list of cells currently
//! occupying it. Fixed cells are *not* tracked: segments are built with
//! fixed obstructions already subtracted, so walls seen by the algorithms
//! are segment boundaries and other movable cells only.

use mcl_db::prelude::*;

/// Error placing a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// No segment of the cell's fence covers the requested span on `row`.
    NoSegment {
        /// The offending row.
        row: usize,
    },
    /// The requested span overlaps an existing cell.
    Occupied {
        /// The blocking cell.
        by: CellId,
    },
    /// The position violates the row-parity (P/G alignment) rule.
    BadParity,
    /// The position is not site-aligned in x or row-aligned in y.
    Misaligned,
    /// The cell is already placed (remove it first).
    AlreadyPlaced,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::NoSegment { row } => write!(f, "no covering segment on row {row}"),
            PlaceError::Occupied { by } => write!(f, "span occupied by cell {}", by.0),
            PlaceError::BadParity => f.write_str("row parity violates P/G alignment"),
            PlaceError::Misaligned => f.write_str("position is not site/row aligned"),
            PlaceError::AlreadyPlaced => f.write_str("cell already placed"),
        }
    }
}

impl std::error::Error for PlaceError {}

/// Hot per-cell state in structure-of-arrays layout.
///
/// The legalizer's inner loops (lineup construction, fallback scanning,
/// overlap probes) touch one or two fields of many cells, not many fields
/// of one cell. Keeping each field in its own dense array indexed by
/// `CellId` turns those loops into sequential scans over contiguous
/// memory instead of pointer chases through `Design::cells` and
/// `Design::cell_types`, which is what makes the difference between 4k-
/// and 1M-cell designs. `width`/`height_rows`/`fence` are immutable
/// copies of design data; `x`/`y`/`placed` are the working position.
#[derive(Debug, Clone)]
pub struct CellSoA {
    x: Vec<Dbu>,
    y: Vec<Dbu>,
    placed: Vec<bool>,
    width: Vec<Dbu>,
    height_rows: Vec<u32>,
    fence: Vec<FenceId>,
    edge_class: Vec<(u8, u8)>,
    /// Epoch stamp of the last mutation touching the cell; `0` = never.
    /// Compared against [`PlacementState`]'s current epoch to answer
    /// "did this cell move since the delta began" without a scan.
    dirty_epoch: Vec<u64>,
}

impl CellSoA {
    /// Builds the static columns from a design; all cells start unplaced.
    pub fn from_design(design: &Design) -> Self {
        let n = design.cells.len();
        let mut width = Vec::with_capacity(n);
        let mut height_rows = Vec::with_capacity(n);
        let mut fence = Vec::with_capacity(n);
        let mut edge_class = Vec::with_capacity(n);
        for c in &design.cells {
            let ct = &design.cell_types[c.type_id.0 as usize];
            width.push(ct.width);
            height_rows.push(ct.height_rows);
            fence.push(c.fence);
            edge_class.push(ct.edge_class);
        }
        Self {
            x: vec![0; n],
            y: vec![0; n],
            placed: vec![false; n],
            width,
            height_rows,
            fence,
            edge_class,
            dirty_epoch: vec![0; n],
        }
    }

    /// Epoch stamp of the cell's last mutation (`0` = never mutated).
    #[inline]
    pub fn dirty_epoch(&self, cell: CellId) -> u64 {
        self.dirty_epoch[cell.0 as usize]
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.placed.len()
    }

    /// Whether the design has no cells.
    pub fn is_empty(&self) -> bool {
        self.placed.is_empty()
    }

    /// Working position, `None` when unplaced.
    #[inline]
    pub fn pos(&self, cell: CellId) -> Option<Point> {
        let i = cell.0 as usize;
        if self.placed[i] {
            Some(Point::new(self.x[i], self.y[i]))
        } else {
            None
        }
    }

    /// Working x of a *placed* cell (stale for unplaced cells — only call
    /// on members of an occupant list).
    #[inline]
    pub fn x(&self, cell: CellId) -> Dbu {
        self.x[cell.0 as usize]
    }

    /// Working y of a *placed* cell.
    #[inline]
    pub fn y(&self, cell: CellId) -> Dbu {
        self.y[cell.0 as usize]
    }

    /// Cell width (cached from the cell type).
    #[inline]
    pub fn width(&self, cell: CellId) -> Dbu {
        self.width[cell.0 as usize]
    }

    /// Right edge `x + width` of a placed cell.
    #[inline]
    pub fn end_x(&self, cell: CellId) -> Dbu {
        let i = cell.0 as usize;
        self.x[i] + self.width[i]
    }

    /// Cell height in rows (cached from the cell type).
    #[inline]
    pub fn height_rows(&self, cell: CellId) -> u32 {
        self.height_rows[cell.0 as usize]
    }

    /// Fence region of the cell.
    #[inline]
    pub fn fence(&self, cell: CellId) -> FenceId {
        self.fence[cell.0 as usize]
    }

    /// `(left, right)` edge classes (cached from the cell type).
    #[inline]
    pub fn edge_class(&self, cell: CellId) -> (u8, u8) {
        self.edge_class[cell.0 as usize]
    }

    #[inline]
    fn set_pos(&mut self, cell: CellId, p: Point) {
        let i = cell.0 as usize;
        self.x[i] = p.x;
        self.y[i] = p.y;
        self.placed[i] = true;
    }

    #[inline]
    fn clear_pos(&mut self, cell: CellId) {
        self.placed[cell.0 as usize] = false;
    }
}

/// Working placement over a design.
#[derive(Debug, Clone)]
pub struct PlacementState<'d> {
    design: &'d Design,
    segmap: SegmentMap,
    /// Per segment: occupant cells sorted by x.
    seg_cells: Vec<Vec<CellId>>,
    /// Hot per-cell state (positions + cached dimensions), SoA layout.
    soa: CellSoA,
    /// Append-only record of committed mutations, consumed by the
    /// determinism auditor (`mcl_audit::replay`).
    #[cfg(feature = "replay-log")]
    replay: mcl_audit::ReplayLog,
    /// Current dirty epoch (compared against `CellSoA::dirty_epoch`).
    epoch: u64,
    /// When set, every committed mutation stamps the cell's dirty epoch
    /// and records the cell (with the rect it vacated, if any) in
    /// `dirty`. Off for batch runs — dirty bookkeeping only pays for
    /// itself on the ECO path, where the delta closure consumes it.
    track_dirty: bool,
    /// Cells touched this epoch, in first-touch order, each with the rect
    /// the cell occupied *before* its first mutation of the epoch (`None`
    /// if it was unplaced). The current rect is read from the SoA.
    dirty: Vec<(CellId, Option<Rect>)>,
}

impl<'d> PlacementState<'d> {
    /// Creates an empty state (no movable cell placed). Pre-placed positions
    /// in the design are ignored; use [`Self::from_design_positions`] to
    /// adopt them.
    ///
    /// Internal segment boundaries (fence edges, blockage edges) are padded
    /// inward by the worst-case edge spacing so cells in adjacent segments
    /// can never violate spacing rules across a boundary the legalizer
    /// cannot see.
    pub fn new(design: &'d Design) -> Self {
        let mut segmap = design.build_segments();
        let sw = design.tech.site_width;
        let pad = {
            let s = design.tech.edge_spacing.max_spacing();
            (s + sw - 1).div_euclid(sw) * sw
        };
        if pad > 0 {
            segmap.pad_internal_edges(design.core.xl, design.core.xh, pad);
        }
        let seg_cells = vec![Vec::new(); segmap.len()];
        Self {
            design,
            segmap,
            seg_cells,
            soa: CellSoA::from_design(design),
            #[cfg(feature = "replay-log")]
            replay: mcl_audit::ReplayLog::new(),
            epoch: 1,
            track_dirty: false,
            dirty: Vec::new(),
        }
    }

    /// Creates a state adopting the design's current (legal) positions.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlaceError`] if an adopted position is not
    /// placeable (e.g. the input was not legal).
    pub fn from_design_positions(design: &'d Design) -> Result<Self, (CellId, PlaceError)> {
        let mut s = Self::new(design);
        for id in design.movable_cells() {
            if let Some(p) = design.cells[id.0 as usize].pos {
                s.place(id, p).map_err(|e| (id, e))?;
            }
        }
        // Adoption is the baseline, not a delta: start dirty tracking
        // *after* it so only post-adoption mutations count as dirty.
        s.begin_epoch();
        Ok(s)
    }

    /// Starts a fresh dirty epoch (enabling dirty tracking): the dirty set
    /// empties and subsequent mutations stamp cells with the new epoch.
    pub fn begin_epoch(&mut self) {
        self.epoch += 1;
        self.track_dirty = true;
        self.dirty.clear();
    }

    /// The current dirty epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether dirty tracking is on (a [`Self::begin_epoch`] happened).
    pub fn dirty_tracking(&self) -> bool {
        self.track_dirty
    }

    /// Cells mutated since [`Self::begin_epoch`], in first-touch order,
    /// each with the rect it occupied before its first mutation of the
    /// epoch (`None` if it was unplaced). Empty unless tracking is on.
    pub fn dirty_cells(&self) -> &[(CellId, Option<Rect>)] {
        &self.dirty
    }

    /// Whether `cell` was mutated in the current epoch.
    #[inline]
    pub fn is_dirty(&self, cell: CellId) -> bool {
        self.soa.dirty_epoch(cell) == self.epoch
    }

    /// The rect currently occupied by a placed cell (`None` if unplaced).
    pub fn cell_rect(&self, cell: CellId) -> Option<Rect> {
        self.soa.pos(cell).map(|p| {
            Rect::new(
                p.x,
                p.y,
                p.x + self.soa.width(cell),
                p.y + self.soa.height_rows(cell) as Dbu * self.design.tech.row_height,
            )
        })
    }

    /// Stamps `cell` dirty, recording its pre-mutation rect on first
    /// touch. Must run *before* the mutation commits.
    #[inline]
    fn mark_dirty(&mut self, cell: CellId) {
        if !self.track_dirty {
            return;
        }
        let i = cell.0 as usize;
        if self.soa.dirty_epoch[i] != self.epoch {
            self.soa.dirty_epoch[i] = self.epoch;
            let origin = self.cell_rect(cell);
            self.dirty.push((cell, origin));
        }
    }

    /// The underlying design.
    pub fn design(&self) -> &'d Design {
        self.design
    }

    /// The fence segments.
    pub fn segments(&self) -> &SegmentMap {
        &self.segmap
    }

    /// Current working position of a cell.
    #[inline]
    pub fn pos(&self, cell: CellId) -> Option<Point> {
        self.soa.pos(cell)
    }

    /// The hot per-cell state (positions + cached dimensions) in SoA layout.
    #[inline]
    pub fn soa(&self) -> &CellSoA {
        &self.soa
    }

    /// Occupants of segment `seg`, sorted by x.
    pub fn cells_in_segment(&self, seg: usize) -> &[CellId] {
        &self.seg_cells[seg]
    }

    /// The occupants of segment `seg` whose span `[x, x+w)` overlaps
    /// `[lo, hi)`, as a sub-slice located by binary search.
    ///
    /// Occupants are non-overlapping and sorted by x, so both `x` and
    /// `x + w` are monotone along the list and the overlapping run is
    /// contiguous: O(log n + k) instead of the O(n) full-list filter that
    /// stops scaling once rows hold thousands of cells.
    pub fn occupants_overlapping(&self, seg: usize, lo: Dbu, hi: Dbu) -> &[CellId] {
        let list = &self.seg_cells[seg];
        let start = list.partition_point(|&c| self.soa.end_x(c) <= lo);
        let rest = &list[start..];
        let len = rest.partition_point(|&c| self.soa.x(c) < hi);
        &rest[..len]
    }

    /// Bottom row of a placed cell.
    pub fn row_of(&self, cell: CellId) -> Option<usize> {
        self.pos(cell)
            .map(|p| ((p.y - self.design.core.yl) / self.design.tech.row_height) as usize)
    }

    /// Places a movable cell with its lower-left corner at `p` (must be
    /// site- and row-aligned).
    ///
    /// # Errors
    ///
    /// See [`PlaceError`]. On error the state is unchanged.
    pub fn place(&mut self, cell: CellId, p: Point) -> Result<(), PlaceError> {
        if self.soa.pos(cell).is_some() {
            return Err(PlaceError::AlreadyPlaced);
        }
        let d = self.design;
        let ct = d.type_of(cell);
        let fence = self.soa.fence(cell);
        if !d.tech.is_site_aligned(d.core.xl, p.x)
            || (p.y - d.core.yl).rem_euclid(d.tech.row_height) != 0
        {
            return Err(PlaceError::Misaligned);
        }
        let row = ((p.y - d.core.yl) / d.tech.row_height) as usize;
        if let Some(par) = ct.rail_parity {
            if !par.matches(row) {
                return Err(PlaceError::BadParity);
            }
        }
        let span = Interval::new(p.x, p.x + ct.width);
        let h = ct.height_rows as usize;
        // Validate all rows first.
        let mut segs = Vec::with_capacity(h);
        for r in row..row + h {
            let Some(seg_idx) = self.find_covering_segment(r, fence, span) else {
                return Err(PlaceError::NoSegment { row: r });
            };
            // Overlap test against neighbors in the segment.
            let list = &self.seg_cells[seg_idx];
            let idx = self.insert_index(list, p.x);
            if idx < list.len() {
                let nb = list[idx];
                if self.soa.x(nb) < span.hi {
                    return Err(PlaceError::Occupied { by: nb });
                }
            }
            if idx > 0 {
                let nb = list[idx - 1];
                if self.soa.end_x(nb) > span.lo {
                    return Err(PlaceError::Occupied { by: nb });
                }
            }
            segs.push(seg_idx);
        }
        // Commit.
        self.mark_dirty(cell);
        self.soa.set_pos(cell, p);
        for seg_idx in segs {
            let idx = self.insert_index(&self.seg_cells[seg_idx], p.x);
            self.seg_cells[seg_idx].insert(idx, cell);
        }
        #[cfg(feature = "replay-log")]
        self.replay.record_place(cell, p.x, p.y);
        Ok(())
    }

    /// Removes a placed cell from the state.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not placed.
    pub fn remove(&mut self, cell: CellId) {
        let p = self.soa.pos(cell).expect("cell not placed");
        let d = self.design;
        let row = ((p.y - d.core.yl) / d.tech.row_height) as usize;
        let span = Interval::new(p.x, p.x + self.soa.width(cell));
        for r in row..row + self.soa.height_rows(cell) as usize {
            let seg_idx = self
                .find_covering_segment(r, self.soa.fence(cell), span)
                .expect("placed cell must have segments");
            self.seg_cells[seg_idx].retain(|&x| x != cell);
        }
        self.mark_dirty(cell);
        self.soa.clear_pos(cell);
        #[cfg(feature = "replay-log")]
        self.replay.record_remove(cell);
    }

    /// Horizontally shifts a placed cell to `new_x`. The caller must
    /// guarantee the cell's order among its segment neighbors is unchanged
    /// and the span stays inside its segments; this is checked with debug
    /// assertions only (hot path of the spreading step).
    pub fn shift_x(&mut self, cell: CellId, new_x: Dbu) {
        let p = self.soa.pos(cell).expect("cell not placed");
        debug_assert!(self.shift_is_order_preserving(cell, new_x));
        self.mark_dirty(cell);
        self.soa.set_pos(cell, Point::new(new_x, p.y));
        #[cfg(feature = "replay-log")]
        self.replay.record_shift_x(cell, new_x);
    }

    /// The replay log of every committed mutation since construction (or the
    /// last [`Self::take_replay_log`]).
    #[cfg(feature = "replay-log")]
    pub fn replay_log(&self) -> &mcl_audit::ReplayLog {
        &self.replay
    }

    /// Takes ownership of the replay log, leaving an empty one. Without the
    /// `replay-log` feature nothing is recorded and this returns an empty
    /// log.
    pub fn take_replay_log(&mut self) -> mcl_audit::ReplayLog {
        #[cfg(feature = "replay-log")]
        {
            std::mem::take(&mut self.replay)
        }
        #[cfg(not(feature = "replay-log"))]
        {
            mcl_audit::ReplayLog::new()
        }
    }

    #[allow(dead_code)]
    fn shift_is_order_preserving(&self, cell: CellId, new_x: Dbu) -> bool {
        let w = self.soa.width(cell);
        for (seg_idx, i) in self.segment_memberships(cell) {
            let list = &self.seg_cells[seg_idx];
            if i > 0 && new_x < self.soa.end_x(list[i - 1]) {
                return false;
            }
            if i + 1 < list.len() && new_x + w > self.soa.x(list[i + 1]) {
                return false;
            }
            let seg = &self.segments().segments()[seg_idx];
            if new_x < seg.x.lo || new_x + w > seg.x.hi {
                return false;
            }
        }
        true
    }

    /// The segments a placed cell occupies, with its index in each occupant
    /// list.
    pub fn segment_memberships(&self, cell: CellId) -> Vec<(usize, usize)> {
        let p = self.soa.pos(cell).expect("cell not placed");
        let d = self.design;
        let h = self.soa.height_rows(cell) as usize;
        let row = ((p.y - d.core.yl) / d.tech.row_height) as usize;
        let span = Interval::new(p.x, p.x + self.soa.width(cell));
        let mut out = Vec::with_capacity(h);
        for r in row..row + h {
            let seg_idx = self
                .find_covering_segment(r, self.soa.fence(cell), span)
                .expect("placed cell must have segments");
            let i = self.seg_cells[seg_idx]
                .iter()
                .position(|&x| x == cell)
                .expect("cell must be in its segment list");
            out.push((seg_idx, i));
        }
        out
    }

    /// Index of the segment on `row` of fence `fence` covering `span`.
    pub fn find_covering_segment(
        &self,
        row: usize,
        fence: FenceId,
        span: Interval,
    ) -> Option<usize> {
        self.segmap.in_row(row).iter().copied().find(|&i| {
            let s = &self.segmap.segments()[i];
            s.fence == fence && s.x.covers(span)
        })
    }

    /// Segments on `row` of fence `fence` overlapping the x window.
    pub fn segments_overlapping(
        &self,
        row: usize,
        fence: FenceId,
        window: Interval,
    ) -> impl Iterator<Item = usize> + '_ {
        self.segmap.in_row(row).iter().copied().filter(move |&i| {
            let s = &self.segmap.segments()[i];
            s.fence == fence && s.x.overlaps(window)
        })
    }

    /// Number of unplaced movable cells.
    pub fn unplaced_count(&self) -> usize {
        self.design
            .movable_cells()
            .filter(|id| self.soa.pos(*id).is_none())
            .count()
    }

    /// Writes the working positions (and row-derived orientations) back into
    /// a clone of the design.
    pub fn write_back(&self, design: &mut Design) {
        for id in self.design.movable_cells() {
            let c = &mut design.cells[id.0 as usize];
            c.pos = self.soa.pos(id);
            if let Some(p) = c.pos {
                let row = ((p.y - self.design.core.yl) / self.design.tech.row_height) as usize;
                c.orient = self.design.orient_for_row(c.type_id, row);
            }
        }
    }

    fn insert_index(&self, list: &[CellId], x: Dbu) -> usize {
        list.partition_point(|&c| self.soa.x(c) < x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("m", 30, 2));
        for i in 0..8 {
            let t = if i % 3 == 2 {
                CellTypeId(1)
            } else {
                CellTypeId(0)
            };
            d.add_cell(Cell::new(format!("c{i}"), t, Point::new(i as Dbu * 40, 0)));
        }
        d
    }

    #[test]
    fn place_and_remove_roundtrip() {
        let d = design();
        let mut s = PlacementState::new(&d);
        s.place(CellId(0), Point::new(0, 0)).unwrap();
        s.place(CellId(1), Point::new(20, 0)).unwrap();
        assert_eq!(s.pos(CellId(0)), Some(Point::new(0, 0)));
        assert_eq!(s.unplaced_count(), 6);
        s.remove(CellId(0));
        assert_eq!(s.pos(CellId(0)), None);
        assert_eq!(s.unplaced_count(), 7);
        // Slot is free again.
        s.place(CellId(3), Point::new(0, 0)).unwrap();
    }

    #[test]
    fn overlap_rejected() {
        let d = design();
        let mut s = PlacementState::new(&d);
        s.place(CellId(0), Point::new(0, 0)).unwrap();
        assert_eq!(
            s.place(CellId(1), Point::new(10, 0)),
            Err(PlaceError::Occupied { by: CellId(0) })
        );
        // Touching is fine.
        s.place(CellId(1), Point::new(20, 0)).unwrap();
    }

    #[test]
    fn multi_row_occupies_both_rows() {
        let d = design();
        let mut s = PlacementState::new(&d);
        s.place(CellId(2), Point::new(100, 0)).unwrap(); // 2-row cell
                                                         // Single-row cell colliding on row 1.
        assert!(matches!(
            s.place(CellId(0), Point::new(110, 90)),
            Err(PlaceError::Occupied { .. })
        ));
        // And on row 0.
        assert!(matches!(
            s.place(CellId(1), Point::new(110, 0)),
            Err(PlaceError::Occupied { .. })
        ));
    }

    #[test]
    fn parity_enforced_for_even_height() {
        let d = design();
        let mut s = PlacementState::new(&d);
        assert_eq!(
            s.place(CellId(2), Point::new(0, 90)),
            Err(PlaceError::BadParity)
        );
        s.place(CellId(2), Point::new(0, 180)).unwrap();
    }

    #[test]
    fn no_segment_outside_core() {
        let d = design();
        let mut s = PlacementState::new(&d);
        assert!(matches!(
            s.place(CellId(0), Point::new(990, 0)),
            Err(PlaceError::NoSegment { .. })
        ));
    }

    #[test]
    fn fence_respected() {
        let mut d = design();
        let f = d.add_fence(FenceRegion::new("g", vec![Rect::new(500, 0, 700, 180)]));
        d.cells[0].fence = f;
        let mut s = PlacementState::new(&d);
        // Outside its fence: no covering segment of that fence.
        assert!(matches!(
            s.place(CellId(0), Point::new(0, 0)),
            Err(PlaceError::NoSegment { .. })
        ));
        s.place(CellId(0), Point::new(500, 0)).unwrap();
        // Default-fence cell can't sit inside the fence.
        assert!(matches!(
            s.place(CellId(1), Point::new(600, 0)),
            Err(PlaceError::NoSegment { .. })
        ));
    }

    #[test]
    fn shift_x_moves_within_gap() {
        let d = design();
        let mut s = PlacementState::new(&d);
        s.place(CellId(0), Point::new(0, 0)).unwrap();
        s.place(CellId(1), Point::new(100, 0)).unwrap();
        s.shift_x(CellId(1), 50);
        assert_eq!(s.pos(CellId(1)).unwrap().x, 50);
        let m = s.segment_memberships(CellId(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, 1, "order preserved");
    }

    #[test]
    fn from_design_positions_adopts_legal_input() {
        let mut d = design();
        d.cells[0].pos = Some(Point::new(0, 0));
        d.cells[1].pos = Some(Point::new(40, 0));
        let s = PlacementState::from_design_positions(&d).unwrap();
        assert_eq!(s.unplaced_count(), 6);
        assert_eq!(
            s.cells_in_segment(s.segment_memberships(CellId(0))[0].0)
                .len(),
            2
        );
    }

    #[test]
    fn occupants_overlapping_matches_linear_filter() {
        let d = design();
        let mut s = PlacementState::new(&d);
        // Cells 0/1/3/4 are 20 wide on row 0 at x = 0, 40, 120, 200.
        for (id, x) in [(0u32, 0), (1, 40), (3, 120), (4, 200)] {
            s.place(CellId(id), Point::new(x, 0)).unwrap();
        }
        let seg = s.segment_memberships(CellId(0))[0].0;
        for (lo, hi) in [(0, 1000), (10, 130), (20, 40), (60, 120), (500, 900)] {
            let fast: Vec<CellId> = s.occupants_overlapping(seg, lo, hi).to_vec();
            let slow: Vec<CellId> = s
                .cells_in_segment(seg)
                .iter()
                .copied()
                .filter(|&c| s.soa().end_x(c) > lo && s.soa().x(c) < hi)
                .collect();
            assert_eq!(fast, slow, "window [{lo},{hi})");
        }
        // SoA static columns mirror the design.
        assert_eq!(s.soa().width(CellId(2)), 30);
        assert_eq!(s.soa().height_rows(CellId(2)), 2);
        assert_eq!(s.soa().fence(CellId(2)), FenceId::DEFAULT);
    }

    #[test]
    fn from_design_positions_rejects_overlap() {
        let mut d = design();
        d.cells[0].pos = Some(Point::new(0, 0));
        d.cells[1].pos = Some(Point::new(10, 0));
        assert!(PlacementState::from_design_positions(&d).is_err());
    }

    #[test]
    fn write_back_sets_orientation() {
        let d = design();
        let mut s = PlacementState::new(&d);
        s.place(CellId(0), Point::new(0, 90)).unwrap(); // odd row
        let mut out = d.clone();
        s.write_back(&mut out);
        assert_eq!(out.cells[0].pos, Some(Point::new(0, 90)));
        assert_eq!(out.cells[0].orient, Orient::FS);
    }
}
