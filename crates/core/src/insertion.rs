//! Insertion-point enumeration and evaluation for MGL (§3.1, Algorithm 1).
//!
//! For a target cell and a window, this module finds every reasonable
//! *insertion point* — a choice of gap per spanned row — computes its
//! feasible x interval from the left/right push chains, builds the summed
//! displacement curve of the target and the affected local cells, and
//! returns the candidate with the lowest cost.
//!
//! The evaluation loop is the hottest code in the legalizer, so it is
//! written to be **allocation-free in steady state**: every growable buffer
//! (row lineups, region lists, anchor lists, curve terms, the summed curve's
//! event buffer, chain bookkeeping, the slot-tuple dedup set and the shift
//! scratch) lives in a reusable [`InsertionScratch`], and slot tuples are
//! deduplicated by a 64-bit hash of the tuple instead of storing an owned
//! `Vec` per candidate. A seed-faithful, allocating twin lives in
//! [`crate::insertion_reference`] and is differential-tested against this
//! implementation.
//!
//! Simplifications versus the paper, documented in DESIGN.md:
//! - only single-row local cells are shiftable; multi-row neighbours act as
//!   walls (window expansion compensates);
//! - candidate x anchors are derived from current gap boundaries plus the
//!   target's GP x (the paper enumerates gap combinations; the anchor sweep
//!   reaches the same slot tuples for windows of practical size).

use crate::config::DisplacementReference;
use crate::curve::{PwlCurve, PwlTerm};
use crate::routability::RoutOracle;
use crate::state::PlacementState;
use mcl_db::prelude::*;
use std::collections::HashSet;

/// Cost model shared by all insertion evaluations.
#[derive(Debug)]
pub struct CostModel<'a> {
    /// Displacement reference (GP = MGL, Current = MLL).
    pub reference: DisplacementReference,
    /// Normalize local-cell curves to Δ-displacement (see config).
    pub normalize: bool,
    /// Per-cell integer cost weights (indexed by cell id).
    pub weights: &'a [i64],
    /// Routability oracle; `None` disables pin handling.
    pub oracle: Option<&'a RoutOracle<'a>>,
    /// Penalty per IO-pin overlap.
    pub io_penalty: i64,
    /// Penalty per unavoidable vertical-rail violation.
    pub rail_penalty: i64,
}

/// A chosen insertion for a target cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Insertion {
    /// Bottom row of the target.
    pub base_row: usize,
    /// Target x (site-aligned).
    pub x: Dbu,
    /// Weighted cost (displacement + penalties).
    pub cost: i64,
    /// Required shifts of local cells: `(cell, new x)`.
    pub shifts: Vec<(CellId, Dbu)>,
}

/// One cell in a row lineup.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Line {
    pub(crate) id: CellId,
    pub(crate) x: Dbu,
    pub(crate) w: Dbu,
    pub(crate) lc: u8,
    pub(crate) rc: u8,
    pub(crate) shiftable: bool,
}

/// Counters describing how much work one scratch has absorbed; cheap enough
/// to keep always-on and surfaced through `MglStats` perf data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Aligned regions evaluated (per base row × window).
    pub regions: u64,
    /// Candidate anchors inspected.
    pub anchors: u64,
    /// Slot tuples skipped by the dedup hash.
    pub dedup_hits: u64,
    /// Curve minimizations performed.
    pub curve_mins: u64,
    /// Scratches constructed and charged to this run. A fresh scratch
    /// starts at 1; taking the stats (end of run) resets it to 0, so a
    /// reused scratch contributes 0 to its next run — which is exactly
    /// what the engine's buffer-reuse tests assert on.
    pub created: u64,
}

impl ScratchStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &ScratchStats) {
        self.regions += other.regions;
        self.anchors += other.anchors;
        self.dedup_hits += other.dedup_hits;
        self.curve_mins += other.curve_mins;
        self.created += other.created;
    }
}

/// Reusable buffers for [`best_insertion_in`]. One per worker thread; after
/// a few evaluations every buffer reaches steady-state capacity and the hot
/// path stops allocating entirely (the only remaining allocation is cloning
/// the shift list of a *new best* candidate, which is rare by construction).
#[derive(Debug, Default)]
pub struct InsertionScratch {
    /// Per-row lineups (index 0 = base row); only the first `h` are live.
    lineups: Vec<Vec<Line>>,
    /// Aligned-region list for the current base row.
    regions: Vec<Interval>,
    /// Double buffer for region intersection across rows.
    regions_next: Vec<Interval>,
    /// Candidate anchor x positions.
    anchors: Vec<Dbu>,
    /// Slot tuple of the current anchor (one slot index per spanned row).
    tuple: Vec<u32>,
    /// Hashes of slot tuples already evaluated for this region.
    seen: HashSet<u64>,
    /// Curve terms of the current candidate.
    terms: Vec<PwlTerm>,
    /// Summed displacement curve (its event buffer is reused).
    total: PwlCurve,
    /// `(cell, offset, is_left)` per chain member, for shift reconstruction.
    chain_info: Vec<(CellId, Dbu, bool)>,
    /// Shift list of the candidate currently being reconstructed.
    shifts: Vec<(CellId, Dbu)>,
    /// Candidate x positions (optimum plus routability-clear alternates).
    cand_xs: Vec<Dbu>,
    /// Shift-ordering buffers for `apply_insertion_with` (left movers,
    /// right movers).
    apply_left: Vec<(CellId, Dbu)>,
    apply_right: Vec<(CellId, Dbu)>,
    /// Per-row compaction prefix tables, one entry per lineup gap:
    /// `lbp[row][j]` = (right edge, facing edge class) of cells `0..j`
    /// left-compacted against their walls; `ubp[row][j]` mirrors from the
    /// right. `u8::MAX` class = region edge (no spacing). Together they give
    /// every anchor's feasible interval in O(rows) instead of O(lineup).
    lbp: Vec<Vec<(Dbu, u8)>>,
    ubp: Vec<Vec<(Dbu, u8)>>,
    /// Work counters.
    pub stats: ScratchStats,
}

impl InsertionScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        let mut s = Self::default();
        s.stats.created = 1;
        s
    }

    /// Takes the (cleared) apply-ordering buffers out of the scratch; give
    /// them back with [`Self::restore_apply_buffers`] to keep the capacity.
    #[allow(clippy::type_complexity)]
    pub fn take_apply_buffers(&mut self) -> (Vec<(CellId, Dbu)>, Vec<(CellId, Dbu)>) {
        let mut l = std::mem::take(&mut self.apply_left);
        let mut r = std::mem::take(&mut self.apply_right);
        l.clear();
        r.clear();
        (l, r)
    }

    /// Returns the apply-ordering buffers so their capacity is reused.
    pub fn restore_apply_buffers(&mut self, left: Vec<(CellId, Dbu)>, right: Vec<(CellId, Dbu)>) {
        self.apply_left = left;
        self.apply_right = right;
    }
}

/// FNV-1a over the slot tuple; collisions would merge two distinct tuples,
/// but at 64 bits over a handful of `u32`s that is beyond unlikely, and the
/// hash is deterministic so results stay thread-count independent.
fn tuple_hash(tuple: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in tuple {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Finds the best insertion of `target` within `window`, or `None` when no
/// feasible insertion exists there. Convenience wrapper over
/// [`best_insertion_in`] with a throwaway scratch; hot paths should hold a
/// scratch per thread instead.
pub fn best_insertion(
    state: &PlacementState<'_>,
    target: CellId,
    window: Rect,
    model: &CostModel<'_>,
) -> Option<Insertion> {
    let mut scratch = InsertionScratch::new();
    best_insertion_in(state, target, window, model, &mut scratch)
}

/// Finds the best insertion of `target` within `window` using `scratch` for
/// all intermediate buffers, or `None` when no feasible insertion exists.
pub fn best_insertion_in(
    state: &PlacementState<'_>,
    target: CellId,
    window: Rect,
    model: &CostModel<'_>,
    scratch: &mut InsertionScratch,
) -> Option<Insertion> {
    let d = state.design();
    let tc = &d.cells[target.0 as usize];
    let ct = d.type_of(target);
    let h = ct.height_rows as usize;
    let w_t = ct.width;
    let w_target = model.weights[target.0 as usize];
    let gp_x_snapped = d.tech.snap_x_nearest(d.core.xl, tc.gp.x);

    let row_lo = d.row_of_y(window.yl.max(d.core.yl)).unwrap_or(0);
    let row_hi_incl = d.row_of_y((window.yh - 1).min(d.core.yh - 1)).unwrap_or(0);
    let max_base = d.num_rows.checked_sub(h)?;

    let mut best: Option<Insertion> = None;
    // Region buffers are taken out of the scratch so `scratch` can be
    // reborrowed mutably by `evaluate_region` while we iterate them.
    let mut regions = std::mem::take(&mut scratch.regions);
    let mut regions_next = std::mem::take(&mut scratch.regions_next);

    for base_row in row_lo..=row_hi_incl.min(max_base) {
        // Target must fit inside the window vertically.
        if d.row_y(base_row) + h as Dbu * d.tech.row_height > window.yh.min(d.core.yh) {
            continue;
        }
        if let Some(par) = ct.rail_parity {
            if !par.matches(base_row) {
                continue;
            }
        }
        if let Some(o) = model.oracle {
            if !o.h_rails_ok(tc.type_id, base_row) {
                continue;
            }
        }
        let y = d.row_y(base_row);
        let y_cost = w_target.saturating_mul((y - tc.gp.y).abs());

        // Aligned segment regions across the h spanned rows.
        let segmap = state.segments();
        let win_x = Interval::new(window.xl.max(d.core.xl), window.xh.min(d.core.xh));
        regions.clear();
        regions.extend(
            state
                .segments_overlapping(base_row, tc.fence, win_x)
                .map(|i| segmap.segments()[i].x.intersect(win_x)),
        );
        for r in base_row + 1..base_row + h {
            regions_next.clear();
            for region in &regions {
                for i in state.segments_overlapping(r, tc.fence, *region) {
                    let iv = segmap.segments()[i].x.intersect(*region);
                    if iv.len() >= w_t {
                        regions_next.push(iv);
                    }
                }
            }
            std::mem::swap(&mut regions, &mut regions_next);
            if regions.is_empty() {
                break;
            }
        }

        for &region in &regions {
            if region.len() < w_t {
                continue;
            }
            evaluate_region(
                state,
                target,
                model,
                base_row,
                h,
                region,
                y_cost,
                gp_x_snapped,
                scratch,
                &mut best,
            );
        }
    }
    scratch.regions = regions;
    scratch.regions_next = regions_next;
    best
}

/// Whether a candidate keyed by `(cost, base_row, x)` beats the incumbent.
/// The full comparison key is `(cost, |row_y − gp.y|, |x − gp.x|, base_row,
/// x)` — cheapest first, then closest to the GP, then lowest row / leftmost
/// for determinism.
fn candidate_improves(
    best: &Option<Insertion>,
    cost: i64,
    base_row: usize,
    x: Dbu,
    gp_y: Dbu,
    gp_x: Dbu,
    d: &Design,
) -> bool {
    match best {
        None => true,
        Some(b) => {
            let cand_key = (
                cost,
                (d.row_y(base_row) - gp_y).abs(),
                (x - gp_x).abs(),
                base_row,
                x,
            );
            let best_key = (
                b.cost,
                (d.row_y(b.base_row) - gp_y).abs(),
                (b.x - gp_x).abs(),
                b.base_row,
                b.x,
            );
            cand_key < best_key
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn evaluate_region(
    state: &PlacementState<'_>,
    target: CellId,
    model: &CostModel<'_>,
    base_row: usize,
    h: usize,
    region: Interval,
    y_cost: i64,
    gp_x_snapped: Dbu,
    scratch: &mut InsertionScratch,
    best: &mut Option<Insertion>,
) {
    let d = state.design();
    let tc = &d.cells[target.0 as usize];
    let ct = d.type_of(target);
    let w_t = ct.width;
    let sw = d.tech.site_width;
    let snap_up = |x: Dbu| d.core.xl + (x - d.core.xl + sw - 1).div_euclid(sw) * sw;
    let snap_down = |x: Dbu| d.core.xl + (x - d.core.xl).div_euclid(sw) * sw;
    scratch.stats.regions += 1;

    // Build lineups per row into the pooled vectors.
    while scratch.lineups.len() < h {
        scratch.lineups.push(Vec::new());
    }
    let soa = state.soa();
    for (i, r) in (base_row..base_row + h).enumerate() {
        let line = &mut scratch.lineups[i];
        line.clear();
        for seg_idx in state.segments_overlapping(r, tc.fence, region) {
            // Occupants are located by binary search on the SoA x column —
            // O(log row + touched) instead of filtering the whole row.
            for &cid in state.occupants_overlapping(seg_idx, region.lo, region.hi) {
                let x = soa.x(cid);
                let w = soa.width(cid);
                let (lc, rc) = soa.edge_class(cid);
                let shiftable = soa.height_rows(cid) == 1 && region.covers(Interval::new(x, x + w));
                line.push(Line {
                    id: cid,
                    x,
                    w,
                    lc,
                    rc,
                    shiftable,
                });
            }
        }
        line.sort_unstable_by_key(|l| l.x);
    }

    let spacing = |a: u8, b: u8| -> Dbu {
        let s = d.tech.edge_spacing.spacing(a, b);
        (s + sw - 1).div_euclid(sw) * sw
    };

    // Compaction prefix tables. The chain walk below computes, for a slot
    // `s`, `lb` = (nearest wall's right edge) + wall spacing + Σ widths and
    // pair spacings of the shiftable cells between wall and slot — a pure
    // prefix over the lineup (the compaction-horizon early breaks provably
    // leave lb/ub unchanged, see the chain comments). Building the prefix
    // once per region makes each anchor's feasible interval an O(rows)
    // lookup, so infeasible anchors — the overwhelming majority in the
    // saturated pockets that drive window expansion — skip the O(lineup)
    // chain walk entirely. Feasible anchors still walk the chains to build
    // their cost curves, so results are bit-identical.
    while scratch.lbp.len() < h {
        scratch.lbp.push(Vec::new());
        scratch.ubp.push(Vec::new());
    }
    for (i, line) in scratch.lineups[..h].iter().enumerate() {
        let lp = &mut scratch.lbp[i];
        lp.clear();
        let (mut e, mut cls) = (region.lo, u8::MAX);
        lp.push((e, cls));
        for c in line {
            if c.shiftable {
                e += (if cls == u8::MAX {
                    0
                } else {
                    spacing(cls, c.lc)
                }) + c.w;
            } else {
                e = c.x + c.w;
            }
            cls = c.rc;
            lp.push((e, cls));
        }
        let up = &mut scratch.ubp[i];
        up.clear();
        up.resize(line.len() + 1, (0, 0));
        let (mut e, mut cls) = (region.hi, u8::MAX);
        up[line.len()] = (e, cls);
        for (j, c) in line.iter().enumerate().rev() {
            if c.shiftable {
                e -= (if cls == u8::MAX {
                    0
                } else {
                    spacing(c.rc, cls)
                }) + c.w;
            } else {
                e = c.x;
            }
            cls = c.lc;
            up[j] = (e, cls);
        }
    }

    // Slot-level infeasibility scan. Every anchor resolves to a slot tuple,
    // and an anchor's bounds are `max` / `min` of its rows' per-slot bounds,
    // so a row in which *no* slot admits the target (snapped lb > ub even
    // against the region's own edges) proves every anchor in this region
    // infeasible — before any anchors are collected or sorted. This is the
    // out for the expansion-retry tail: a saturated pocket's fully-expanded
    // window fails in O(lineup) per row instead of O(anchors × lineup).
    for (i, line) in scratch.lineups[..h].iter().enumerate() {
        let lp = &scratch.lbp[i];
        let up = &scratch.ubp[i];
        let mut feasible = false;
        for s in 0..=line.len() {
            let (e, cls) = lp[s];
            let lb = e
                + (if cls == u8::MAX {
                    0
                } else {
                    spacing(cls, ct.edge_class.0)
                });
            let (e, cls) = up[s];
            let ub =
                e - (if cls == u8::MAX {
                    0
                } else {
                    spacing(ct.edge_class.1, cls)
                }) - w_t;
            if snap_up(lb.max(region.lo)) <= snap_down(ub.min(region.hi - w_t)) {
                feasible = true;
                break;
            }
        }
        if !feasible {
            return;
        }
    }

    // Candidate anchors.
    let lo_limit = region.lo;
    let hi_limit = region.hi - w_t;
    let anchors = &mut scratch.anchors;
    anchors.clear();
    anchors.push(gp_x_snapped.clamp(lo_limit, hi_limit));
    for line in &scratch.lineups[..h] {
        for c in line {
            anchors.push(snap_up(c.x + c.w).clamp(lo_limit, hi_limit));
            anchors.push(snap_down(c.x - w_t).clamp(lo_limit, hi_limit));
        }
    }
    anchors.sort_unstable();
    anchors.dedup();
    // Bound the work on expanded windows: keep the anchors nearest the
    // target's GP (deterministic; distant anchors are cost-dominated unless
    // the region is badly fragmented, which window expansion revisits).
    const MAX_ANCHORS: usize = 96;
    if anchors.len() > MAX_ANCHORS {
        anchors.sort_unstable_by_key(|&a| ((a - gp_x_snapped).abs(), a));
        anchors.truncate(MAX_ANCHORS);
        anchors.sort_unstable();
    }

    scratch.seen.clear();
    for ai in 0..scratch.anchors.len() {
        let anchor = scratch.anchors[ai];
        scratch.stats.anchors += 1;
        // Slot tuple by center comparison, deduplicated by hash (the tuple
        // itself lives in a reused buffer; nothing is cloned per candidate).
        scratch.tuple.clear();
        for line in &scratch.lineups[..h] {
            scratch
                .tuple
                .push(line.partition_point(|l| 2 * l.x + l.w <= 2 * anchor + w_t) as u32);
        }
        if !scratch.seen.insert(tuple_hash(&scratch.tuple)) {
            scratch.stats.dedup_hits += 1;
            continue;
        }

        // O(rows) feasibility from the prefix tables — exactly the bounds
        // the chain walk would compute; skip hopeless anchors before paying
        // for their chains.
        let mut lb0 = region.lo;
        let mut ub0 = region.hi - w_t;
        for (row_i, &slot) in scratch.tuple.iter().enumerate() {
            let s = slot as usize;
            let (e, cls) = scratch.lbp[row_i][s];
            lb0 = lb0.max(
                e + (if cls == u8::MAX {
                    0
                } else {
                    spacing(cls, ct.edge_class.0)
                }),
            );
            let (e, cls) = scratch.ubp[row_i][s];
            ub0 = ub0.min(
                e - (if cls == u8::MAX {
                    0
                } else {
                    spacing(ct.edge_class.1, cls)
                }) - w_t,
            );
        }
        if snap_up(lb0) > snap_down(ub0) {
            continue;
        }

        // Chains and bounds.
        let mut lb = region.lo;
        let mut ub_x = region.hi - w_t;
        scratch.terms.clear();
        scratch.terms.push(PwlTerm::Vee {
            center: gp_x_snapped,
            w: model.weights[target.0 as usize],
        });
        scratch.chain_info.clear();

        for (row_i, line) in scratch.lineups[..h].iter().enumerate() {
            let slot = scratch.tuple[row_i] as usize;
            // Left chain.
            let mut off: Dbu = 0;
            let mut prev_lc = ct.edge_class.0;
            let mut wall: Option<(Dbu, u8)> = None; // (right edge, right class)
            for j in (0..slot).rev() {
                let c = &line[j];
                if !c.shiftable {
                    wall = Some((c.x + c.w, c.rc));
                    break;
                }
                let off_c = off + spacing(c.rc, prev_lc) + c.w;
                // Compaction horizon: when even the leftmost feasible x
                // cannot push this cell (lb ≥ c.x + off_c, and lb only
                // grows from here), it — and, by the gap-monotonicity of a
                // legal lineup, every cell further left — stays put for
                // every candidate, which under normalized curves is exactly
                // a zero-cost wall. This bounds the per-anchor chain walk
                // by the compaction reach instead of the region width, the
                // difference between O(window) and O(row) evaluation once
                // expanded windows span whole rows.
                if model.normalize && lb >= c.x + off_c {
                    wall = Some((c.x + c.w, c.rc));
                    break;
                }
                off = off_c;
                let (g, base) = gp_ref(d, model, c);
                let wgt = model.weights[c.id.0 as usize];
                // pos(x) = min(cur, x − off). Curves are normalized to the
                // *change* in displacement (their flat region sits at zero)
                // so constants of untouched cells don't bias the comparison
                // across insertion points; pushing a cell toward its GP is
                // a genuine negative cost.
                let dv = if model.normalize { -base * wgt } else { 0 };
                if g >= c.x {
                    scratch.terms.push(PwlTerm::TypeB {
                        a: c.x + off,
                        base,
                        w: wgt,
                        dv,
                    });
                } else {
                    scratch.terms.push(PwlTerm::TypeD {
                        c: g + off,
                        base,
                        w: wgt,
                        dv,
                    });
                }
                scratch.chain_info.push((c.id, off, true));
                prev_lc = c.lc;
            }
            let (wall_edge, wall_rc) = wall.unwrap_or((region.lo, u8::MAX));
            let wall_sp = if wall_rc == u8::MAX {
                0
            } else {
                spacing(wall_rc, prev_lc)
            };
            lb = lb.max(wall_edge + wall_sp + off);

            // Right chain.
            let mut off: Dbu = w_t;
            let mut prev_rc = ct.edge_class.1;
            let mut rwall: Option<(Dbu, u8)> = None; // (left edge, left class)
            let mut last_extent = off;
            for c in line.iter().skip(slot) {
                if !c.shiftable {
                    rwall = Some((c.x, c.lc));
                    break;
                }
                let off_c = off + spacing(prev_rc, c.lc);
                // Mirror of the left chain's compaction horizon: no
                // feasible x can reach this cell, so it is a zero-cost
                // wall and the walk stops.
                if model.normalize && ub_x <= c.x - off_c {
                    rwall = Some((c.x, c.lc));
                    break;
                }
                let (g, base) = gp_ref(d, model, c);
                let wgt = model.weights[c.id.0 as usize];
                // pos(x) = max(cur, x + off_c); normalized as above.
                let dv = if model.normalize { -base * wgt } else { 0 };
                if g <= c.x {
                    scratch.terms.push(PwlTerm::TypeA {
                        a: c.x - off_c,
                        base,
                        w: wgt,
                        dv,
                    });
                } else {
                    scratch.terms.push(PwlTerm::TypeC {
                        a: c.x - off_c,
                        base,
                        w: wgt,
                        dv,
                    });
                }
                scratch.chain_info.push((c.id, off_c, false));
                off = off_c + c.w;
                prev_rc = c.rc;
                last_extent = off;
            }
            let (rwall_edge, rwall_lc) = rwall.unwrap_or((region.hi, u8::MAX));
            let rwall_sp = if rwall_lc == u8::MAX {
                0
            } else {
                spacing(prev_rc, rwall_lc)
            };
            // x + last_extent + rwall_sp ≤ rwall_edge.
            ub_x = ub_x.min(rwall_edge - rwall_sp - last_extent);
        }

        let lb = snap_up(lb);
        let ub = snap_down(ub_x);
        if lb > ub {
            continue;
        }

        scratch.total.sum_terms_into(&scratch.terms);
        let prefer = gp_x_snapped.clamp(lb, ub);
        scratch.stats.curve_mins += 1;
        let Some((x0, _)) = scratch.total.min_on(lb, ub, prefer) else {
            continue;
        };

        // Routability-aware candidate positions.
        scratch.cand_xs.clear();
        scratch.cand_xs.push(x0);
        if let Some(o) = model.oracle {
            if o.v_violations(tc.type_id, base_row, x0) > 0 {
                if let Some(xr) = o.clear_x_right(tc.type_id, base_row, x0, ub) {
                    scratch.cand_xs.push(xr);
                }
                if let Some(xl) = o.clear_x_left(tc.type_id, base_row, x0, lb) {
                    scratch.cand_xs.push(xl);
                }
            }
        }
        for xi in 0..scratch.cand_xs.len() {
            let x = scratch.cand_xs[xi];
            let mut cost = scratch.total.eval(x).saturating_add(y_cost);
            if let Some(o) = model.oracle {
                cost = cost
                    .saturating_add(
                        model
                            .rail_penalty
                            .saturating_mul(o.v_violations(tc.type_id, base_row, x) as i64),
                    )
                    .saturating_add(
                        model
                            .io_penalty
                            .saturating_mul(o.io_overlaps(tc.type_id, base_row, x) as i64),
                    );
            }
            // Reconstruct shifts at this x into the scratch buffer; the
            // owned `Vec` is only cloned out when the candidate wins.
            scratch.shifts.clear();
            let mut ok = true;
            for &(cid, off, is_left) in &scratch.chain_info {
                let cur = soa.x(cid);
                let new_x = if is_left {
                    cur.min(x - off)
                } else {
                    cur.max(x + off)
                };
                if new_x != cur {
                    if (new_x - d.core.xl) % sw != 0 {
                        ok = false;
                        break;
                    }
                    scratch.shifts.push((cid, new_x));
                }
            }
            if !ok {
                continue;
            }
            if candidate_improves(best, cost, base_row, x, tc.gp.y, gp_x_snapped, d) {
                *best = Some(Insertion {
                    base_row,
                    x,
                    cost,
                    shifts: scratch.shifts.clone(),
                });
            }
        }
    }
}

/// The curve reference position and base displacement of a local cell.
pub(crate) fn gp_ref(d: &Design, model: &CostModel<'_>, c: &Line) -> (Dbu, i64) {
    match model.reference {
        DisplacementReference::Current => (c.x, 0),
        DisplacementReference::Gp => {
            let g = d
                .tech
                .snap_x_nearest(d.core.xl, d.cells[c.id.0 as usize].gp.x);
            (g, (c.x - g).abs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DisplacementReference;

    fn design() -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        d.add_cell_type(CellType::new("s", 20, 1)); // type 0
        d.add_cell_type(CellType::new("m", 40, 2)); // type 1
        d
    }

    fn uniform_weights(d: &Design) -> Vec<i64> {
        vec![1; d.cells.len()]
    }

    fn model<'a>(weights: &'a [i64]) -> CostModel<'a> {
        CostModel {
            reference: DisplacementReference::Gp,
            normalize: true,
            weights,
            oracle: None,
            io_penalty: 0,
            rail_penalty: 0,
        }
    }

    #[test]
    fn empty_row_places_at_gp() {
        let mut d = design();
        let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(340, 95)));
        let w = uniform_weights(&d);
        let state = PlacementState::new(&d);
        let ins = best_insertion(&state, t, Rect::new(0, 0, 1000, 900), &model(&w)).unwrap();
        // GP y=95 → nearest row 1 (y=90); x snapped at 340.
        assert_eq!(ins.base_row, 1);
        assert_eq!(ins.x, 340);
        assert_eq!(ins.cost, 5); // |95-90| y displacement
        assert!(ins.shifts.is_empty());
    }

    #[test]
    fn pushes_local_cell_when_cheaper() {
        let mut d = design();
        // Blocker placed exactly at the target's GP; empty space on both
        // sides. Pushing blocker left by its displacement home is free-ish.
        let b = d.add_cell(Cell::new("b", CellTypeId(0), Point::new(300, 0)));
        let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(300, 0)));
        let w = uniform_weights(&d);
        let mut state = PlacementState::new(&d);
        state.place(b, Point::new(300, 0)).unwrap();
        let ins = best_insertion(&state, t, Rect::new(200, 0, 400, 90), &model(&w)).unwrap();
        assert_eq!(ins.base_row, 0);
        // Optimal total displacement is 20 (one cell width), shared or not.
        let mut total = (ins.x - 300).abs();
        for &(_, nx) in &ins.shifts {
            total += (nx - 300).abs();
        }
        assert_eq!(total, 20, "{ins:?}");
        // Result must be overlap-free.
        if let Some(&(_, bx)) = ins.shifts.first() {
            assert!((ins.x - bx).abs() >= 20);
        } else {
            assert!((ins.x - 300).abs() >= 20);
        }
    }

    #[test]
    fn respects_wall_bounds() {
        let mut d = design();
        // Two immovable-ish cells (placed, but outside window) bracket a
        // 40-wide gap; target width 20 fits only inside.
        let a = d.add_cell(Cell::new("a", CellTypeId(0), Point::new(200, 0)));
        let b = d.add_cell(Cell::new("b", CellTypeId(0), Point::new(260, 0)));
        let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(230, 10)));
        let w = uniform_weights(&d);
        let mut state = PlacementState::new(&d);
        state.place(a, Point::new(200, 0)).unwrap();
        state.place(b, Point::new(260, 0)).unwrap();
        // Window covers only the gap, so a and b are walls (not fully
        // inside the *region*? they are inside.. make window tight).
        let ins = best_insertion(&state, t, Rect::new(215, 0, 265, 90), &model(&w)).unwrap();
        assert_eq!(ins.base_row, 0);
        assert!(ins.x >= 220 && ins.x + 20 <= 260, "{ins:?}");
        assert!(ins.shifts.is_empty());
    }

    #[test]
    fn multi_row_target_needs_both_rows() {
        let mut d = design();
        // Row 0 blocked around x=300 by a wall-ish cell (outside window
        // coverage), row 1 free: a 2-row target must avoid the overlap.
        let a = d.add_cell(Cell::new("a", CellTypeId(1), Point::new(280, 0)));
        let t = d.add_cell(Cell::new("t", CellTypeId(1), Point::new(300, 0)));
        let w = uniform_weights(&d);
        let mut state = PlacementState::new(&d);
        state.place(a, Point::new(280, 0)).unwrap();
        let ins = best_insertion(&state, t, Rect::new(100, 0, 600, 400), &model(&w)).unwrap();
        assert_eq!(ins.base_row % 2, 0, "even-height parity");
        // No overlap with a at [280, 320) rows 0-1.
        if ins.base_row == 0 {
            assert!(ins.x >= 320 || ins.x + 40 <= 280, "{ins:?}");
        }
    }

    #[test]
    fn parity_restricts_rows() {
        let mut d = design();
        let t = d.add_cell(Cell::new("t", CellTypeId(1), Point::new(300, 100)));
        let w = uniform_weights(&d);
        let state = PlacementState::new(&d);
        // GP near row 1, but even-height cells must start on even rows.
        let ins = best_insertion(&state, t, Rect::new(0, 0, 1000, 900), &model(&w)).unwrap();
        assert_eq!(ins.base_row % 2, 0);
    }

    #[test]
    fn window_limits_rows() {
        let mut d = design();
        let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(300, 800)));
        let w = uniform_weights(&d);
        let state = PlacementState::new(&d);
        // Window only covers rows 0-1.
        let ins = best_insertion(&state, t, Rect::new(0, 0, 1000, 180), &model(&w)).unwrap();
        assert!(ins.base_row <= 1);
    }

    #[test]
    fn infeasible_when_window_full() {
        let mut d = design();
        let blk = d.add_cell_type(CellType::new("wide", 200, 1));
        let a = d.add_cell(Cell::new("a", blk, Point::new(200, 0)));
        let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(300, 0)));
        let mut state = PlacementState::new(&d);
        state.place(a, Point::new(200, 0)).unwrap();
        let w = uniform_weights(&d);
        // Window strictly inside the wide blocker on row 0 only.
        let ins = best_insertion(&state, t, Rect::new(220, 0, 380, 90), &model(&w));
        assert!(ins.is_none());
    }

    #[test]
    fn mll_mode_ignores_gp_history_of_locals() {
        let mut d = design();
        // Local cell far from its GP; in Current mode its curve has base 0.
        let b = d.add_cell(Cell::new("b", CellTypeId(0), Point::new(700, 0)));
        let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(300, 0)));
        let w = uniform_weights(&d);
        let mut state = PlacementState::new(&d);
        state.place(b, Point::new(300, 0)).unwrap();
        let m_gp = CostModel {
            reference: DisplacementReference::Gp,
            normalize: true,
            weights: &w,
            oracle: None,
            io_penalty: 0,
            rail_penalty: 0,
        };
        let m_cur = CostModel {
            reference: DisplacementReference::Current,
            normalize: true,
            weights: &w,
            oracle: None,
            io_penalty: 0,
            rail_penalty: 0,
        };
        let win = Rect::new(200, 0, 400, 90);
        let gp = best_insertion(&state, t, win, &m_gp).unwrap();
        let cur = best_insertion(&state, t, win, &m_cur).unwrap();
        // In GP mode, pushing b right (toward its GP at 700) is FREE gain:
        // the optimizer should push b right and take x=300.
        assert_eq!(gp.x, 300, "{gp:?}");
        assert_eq!(gp.shifts, vec![(b, 320)]);
        // In Current mode pushing b costs; sliding the target next to b
        // (cost 20) ties with pushing b by 20; tie-break prefers target at
        // its own GP → also cost 20 but shifts b.
        let cur_total: i64 = (cur.x - 300).abs()
            + cur
                .shifts
                .iter()
                .map(|&(_, nx)| (nx - 300).abs())
                .sum::<i64>();
        assert_eq!(cur_total, 20);
    }

    #[test]
    fn fence_restricts_regions() {
        let mut d = design();
        let f = d.add_fence(FenceRegion::new("g", vec![Rect::new(500, 0, 700, 90)]));
        let mut t = Cell::new("t", CellTypeId(0), Point::new(100, 0));
        t.fence = f;
        let t = d.add_cell(t);
        let w = uniform_weights(&d);
        let state = PlacementState::new(&d);
        let ins = best_insertion(&state, t, Rect::new(0, 0, 1000, 900), &model(&w)).unwrap();
        assert!(ins.x >= 500 && ins.x + 20 <= 700, "{ins:?}");
        assert_eq!(ins.base_row, 0);
    }

    #[test]
    fn heavier_cells_attract_the_position() {
        let mut d = design();
        // Local cell with weight 10 sits at its GP; target (weight 1) GP
        // coincides. Pushing the heavy cell is 10x the cost of displacing
        // the target, so the target should move, not the local.
        let b = d.add_cell(Cell::new("b", CellTypeId(0), Point::new(300, 0)));
        let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(300, 0)));
        let mut w = uniform_weights(&d);
        w[b.0 as usize] = 10;
        let mut state = PlacementState::new(&d);
        state.place(b, Point::new(300, 0)).unwrap();
        let ins = best_insertion(&state, t, Rect::new(100, 0, 500, 90), &model(&w)).unwrap();
        assert!(ins.shifts.is_empty(), "{ins:?}");
        assert_eq!((ins.x - 300).abs(), 20);
    }

    #[test]
    fn edge_spacing_inflates_packing() {
        let mut d = design();
        let mut tbl = EdgeSpacingTable::new(2);
        tbl.set(1, 1, 15); // snapped up to 20 (2 sites)
        d.tech.edge_spacing = tbl;
        let mut spaced = CellType::new("e", 20, 1);
        spaced.edge_class = (1, 1);
        let e = d.add_cell_type(spaced);
        let a = d.add_cell(Cell::new("a", e, Point::new(300, 0)));
        let t = d.add_cell(Cell::new("t", e, Point::new(320, 0)));
        let w = uniform_weights(&d);
        let mut state = PlacementState::new(&d);
        state.place(a, Point::new(300, 0)).unwrap();
        let ins = best_insertion(&state, t, Rect::new(200, 0, 460, 90), &model(&w)).unwrap();
        // Needs >= 20 gap from a (after site snapping).
        let a_x = ins
            .shifts
            .iter()
            .find(|&&(c, _)| c == a)
            .map(|&(_, x)| x)
            .unwrap_or(300);
        let gap = if ins.x > a_x {
            ins.x - (a_x + 20)
        } else {
            a_x - (ins.x + 20)
        };
        assert!(gap >= 20, "{ins:?}");
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // Run a sequence of queries through ONE scratch and verify each
        // result matches a fresh-scratch evaluation (buffer reuse must not
        // leak state between calls).
        let mut d = design();
        let b = d.add_cell(Cell::new("b", CellTypeId(0), Point::new(300, 0)));
        let c = d.add_cell(Cell::new("c", CellTypeId(0), Point::new(340, 0)));
        let t1 = d.add_cell(Cell::new("t1", CellTypeId(0), Point::new(300, 0)));
        let t2 = d.add_cell(Cell::new("t2", CellTypeId(1), Point::new(320, 95)));
        let w = uniform_weights(&d);
        let mut state = PlacementState::new(&d);
        state.place(b, Point::new(300, 0)).unwrap();
        state.place(c, Point::new(340, 0)).unwrap();
        let m = model(&w);
        let mut scratch = InsertionScratch::new();
        for (t, win) in [
            (t1, Rect::new(200, 0, 460, 90)),
            (t2, Rect::new(100, 0, 600, 400)),
            (t1, Rect::new(0, 0, 1000, 900)),
            (t2, Rect::new(0, 0, 1000, 900)),
        ] {
            let reused = best_insertion_in(&state, t, win, &m, &mut scratch);
            let fresh = best_insertion(&state, t, win, &m);
            assert_eq!(reused, fresh, "cell {t:?} window {win:?}");
        }
        assert!(scratch.stats.regions > 0 && scratch.stats.anchors > 0);
    }
}
