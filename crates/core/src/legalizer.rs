//! The complete three-stage legalization flow (Fig. 2).
//!
//! [`Legalizer`] is a thin wrapper over the declarative stage pipeline in
//! [`crate::pipeline`]: each entry point builds the initial
//! [`PlacementState`] (fresh for [`Legalizer::run`], adopted from existing
//! positions for [`Legalizer::run_eco`] / [`Legalizer::refine`]) and hands
//! off to [`pipeline::run_stages`] with the appropriate stage list. All
//! span/audit/histogram middleware lives in the pipeline, not here. For
//! batch workloads that should reuse threads and scratch buffers across
//! designs, see [`crate::Engine`].

use crate::config::LegalizerConfig;
use crate::error::{Degradation, FailureRecord, LegalizeError};
use crate::fixed_order::FixedOrderStats;
use crate::insertion::InsertionScratch;
use crate::maxdisp::MaxDispStats;
use crate::mgl::MglStats;
use crate::pipeline::{self, MglExec, Prep, StageTiming, FULL_PIPELINE, POST_PIPELINE};
use crate::state::PlacementState;
use mcl_db::prelude::*;
use mcl_obs::Meter;

/// Combined statistics of a full legalization run.
#[derive(Debug, Clone, Default)]
pub struct LegalizeStats {
    /// Stage 1 statistics.
    pub mgl: MglStats,
    /// Stage 2 statistics (zeroed when disabled).
    pub max_disp: MaxDispStats,
    /// Stage 3 statistics (zeroed when disabled).
    pub fixed_order: FixedOrderStats,
    /// Wall-clock seconds per *enabled* stage, in execution order, keyed by
    /// stage name (`"mgl"`, `"maxdisp"`, `"fixed_order"`). Disabled stages
    /// emit no entry.
    pub stage_seconds: Vec<StageTiming>,
    /// Contained pipeline-level failures (stage panics, deadline misses,
    /// pool breakage) recorded by the driver. Per-cell MGL failures live in
    /// [`MglStats::failures`]; [`Self::failure_rows`] chains both.
    pub failures: Vec<FailureRecord>,
    /// Degradation-ladder rungs taken by the driver, in order (DESIGN.md
    /// §11). Empty on a clean run.
    pub degradations: Vec<Degradation>,
    /// Merged observability meter across all stages: run/stage spans,
    /// algorithm counters, and per-stage displacement histograms.
    pub obs: Meter,
}

impl LegalizeStats {
    /// Wall-clock seconds of the named stage, or `None` when the stage did
    /// not run.
    #[must_use]
    pub fn stage_seconds_for(&self, name: &str) -> Option<f64> {
        self.stage_seconds
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.seconds)
    }

    /// Every failure row of the run: pipeline-level rows first, then the
    /// per-cell rows recorded inside the MGL stage.
    pub fn failure_rows(&self) -> impl Iterator<Item = &FailureRecord> {
        self.failures.iter().chain(self.mgl.failures.iter())
    }

    /// Whether this run may be reported as a full success: no failure rows,
    /// no degradation rungs, no unplaced/quarantined/retried cells.
    #[must_use]
    pub fn claims_full_success(&self) -> bool {
        self.failures.is_empty()
            && self.degradations.is_empty()
            && self.mgl.failures.is_empty()
            && self.mgl.failed == 0
            && self.mgl.quarantined == 0
            && self.mgl.retries == 0
    }
}

impl PartialEq for LegalizeStats {
    /// Compares algorithmic outcomes (including failure and degradation
    /// rows, which are deterministic) only. Timing (`stage_seconds`) and the
    /// meter vary run to run and are excluded.
    fn eq(&self, other: &Self) -> bool {
        self.mgl == other.mgl
            && self.max_disp == other.max_disp
            && self.fixed_order == other.fixed_order
            && self.failures == other.failures
            && self.degradations == other.degradations
    }
}

/// The top-level legalizer.
///
/// ```
/// use mcl_core::{Legalizer, LegalizerConfig};
/// use mcl_db::prelude::*;
///
/// let mut d = Design::new("demo", Technology::example(), Rect::new(0, 0, 1000, 900));
/// let inv = d.add_cell_type(CellType::new("INV", 20, 1));
/// d.add_cell(Cell::new("u1", inv, Point::new(33, 47)));
/// d.add_cell(Cell::new("u2", inv, Point::new(41, 52)));
/// let (legal, stats) = Legalizer::new(LegalizerConfig::contest()).run(&d);
/// assert_eq!(stats.mgl.failed, 0);
/// assert!(Checker::new(&legal).check().is_legal());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Legalizer {
    config: LegalizerConfig,
}

impl Legalizer {
    /// Creates a legalizer with the given configuration.
    pub fn new(config: LegalizerConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &LegalizerConfig {
        &self.config
    }

    /// Legalizes a design, returning the placed design and statistics.
    /// The input design is not modified; its `pos` fields are ignored.
    ///
    /// # Panics
    ///
    /// Panics when the fault-containment ladder is exhausted (only
    /// reachable under injected faults or real stage panics); callers that
    /// want the typed error use [`Self::try_run`].
    pub fn run(&self, design: &Design) -> (Design, LegalizeStats) {
        let (out, stats, _) = self.run_with_replay(design);
        (out, stats)
    }

    /// Fallible variant of [`Self::run`]: a run whose degradation ladder is
    /// exhausted (or whose degraded result fails certification) returns the
    /// typed [`LegalizeError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// The terminal [`LegalizeError`] of the run.
    pub fn try_run(&self, design: &Design) -> Result<(Design, LegalizeStats), LegalizeError> {
        let (out, stats, _) = self.try_run_with_replay(design)?;
        Ok((out, stats))
    }

    /// Like [`Self::run`], additionally returning the replay log of every
    /// committed placement mutation, for the determinism auditor
    /// (`mcl_audit::replay`). Two runs are bit-identical iff their logs are
    /// equal. Empty unless the `replay-log` feature (default) is enabled.
    pub fn run_with_replay(
        &self,
        design: &Design,
    ) -> (Design, LegalizeStats, mcl_audit::ReplayLog) {
        crate::error::expect_run(
            "legalization",
            &design.name,
            self.try_run_with_replay(design),
        )
    }

    /// Fallible variant of [`Self::run_with_replay`].
    ///
    /// # Errors
    ///
    /// The terminal [`LegalizeError`] of the run.
    pub fn try_run_with_replay(
        &self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats, mcl_audit::ReplayLog), LegalizeError> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::new(design);
        let mut scratch = InsertionScratch::new();
        let stats = pipeline::run_stages(
            design,
            &mut state,
            &self.config,
            &FULL_PIPELINE,
            &prep.weights,
            prep.oracle(),
            MglExec::Standalone,
            &mut scratch,
            "run",
        )?;
        let mut out = design.clone();
        state.write_back(&mut out);
        let log = state.take_replay_log();
        Ok((out, stats, log))
    }

    /// Incremental (ECO) legalization: cells that already have a legal
    /// position keep it as their starting point; only unplaced cells (e.g.
    /// newly inserted by an engineering change order) go through MGL
    /// insertion, followed by the configured post-processing over the whole
    /// design.
    ///
    /// # Errors
    ///
    /// The classed [`LegalizeError`] of the run: unadoptable input positions
    /// map to [`LegalizeError::SeedRejected`] (the pre-placed part must be
    /// legal), and an exhausted degradation ladder or failed certification
    /// surfaces as its terminal pipeline error instead of a panic.
    pub fn run_eco(&self, design: &Design) -> Result<(Design, LegalizeStats), LegalizeError> {
        let (out, stats, _) = self.run_eco_with_replay(design)?;
        Ok((out, stats))
    }

    /// Like [`Self::run_eco`], additionally returning the replay log (which
    /// includes the adoption of the pre-placed positions).
    ///
    /// # Errors
    ///
    /// The classed [`LegalizeError`] of the run (see [`Self::run_eco`]).
    pub fn run_eco_with_replay(
        &self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats, mcl_audit::ReplayLog), LegalizeError> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::from_design_positions(design).map_err(|(cell, e)| {
            LegalizeError::SeedRejected {
                cell: Some(cell.0),
                message: e.to_string(),
            }
        })?;
        let mut scratch = InsertionScratch::new();
        let stats = pipeline::run_stages(
            design,
            &mut state,
            &self.config,
            &FULL_PIPELINE,
            &prep.weights,
            prep.oracle(),
            MglExec::Standalone,
            &mut scratch,
            "ECO",
        )?;
        let mut out = design.clone();
        state.write_back(&mut out);
        let log = state.take_replay_log();
        Ok((out, stats, log))
    }

    /// Alias of [`Self::run_eco`], kept for callers written against the
    /// older panicking `run_eco`: every ECO entry point is now fallible
    /// with the same classed error.
    ///
    /// # Errors
    ///
    /// The terminal [`LegalizeError`] of the run.
    pub fn try_run_eco(&self, design: &Design) -> Result<(Design, LegalizeStats), LegalizeError> {
        self.run_eco(design)
    }

    /// Runs only the two post-processing stages on an already-legal design
    /// (used by the Table 3 ablation).
    ///
    /// # Errors
    ///
    /// Returns the offending cell when the input positions are not adoptable
    /// (i.e. the input is not legal).
    pub fn refine(
        &self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), (CellId, crate::state::PlaceError)> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::from_design_positions(design)?;
        let mut scratch = InsertionScratch::new();
        let stats = crate::error::expect_run(
            "refine",
            &design.name,
            pipeline::run_stages(
                design,
                &mut state,
                &self.config,
                &POST_PIPELINE,
                &prep.weights,
                prep.oracle(),
                MglExec::Standalone,
                &mut scratch,
                "refine",
            ),
        );
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }

    /// Fallible variant of [`Self::refine`].
    ///
    /// # Errors
    ///
    /// The terminal [`LegalizeError`] of the run; unadoptable input maps to
    /// [`LegalizeError::SeedRejected`].
    pub fn try_refine(&self, design: &Design) -> Result<(Design, LegalizeStats), LegalizeError> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::from_design_positions(design).map_err(|(cell, e)| {
            LegalizeError::SeedRejected {
                cell: Some(cell.0),
                message: e.to_string(),
            }
        })?;
        let mut scratch = InsertionScratch::new();
        let stats = pipeline::run_stages(
            design,
            &mut state,
            &self.config,
            &POST_PIPELINE,
            &prep.weights,
            prep.oracle(),
            MglExec::Standalone,
            &mut scratch,
            "refine",
        )?;
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }
}

/// A resident incremental-legalization session: the interactive-service
/// counterpart of the one-shot [`Legalizer::run_eco`].
///
/// The session owns the evolving base placement. Each [`Self::apply_delta`]
/// re-targets a handful of cells (new GP homes, positions vacated) and
/// re-legalizes with [`LegalizerConfig::eco_delta`] forced on, so MGL only
/// inserts the delta cells and the post stages confine themselves to the
/// transitive dirty-window closure ([`crate::dirty`]). The result is
/// committed as the next base, ready for the next delta.
///
/// Determinism contract: a delta's output (positions, stats rows, replay
/// log, audit certificate) is byte-identical to a from-scratch
/// [`Legalizer::run_eco`] on the same mutated design under the same
/// configuration, at any thread count — pinned by the `eco_parity` suite.
/// Each delta's end-to-end wall time lands in the `eco.delta_nanos`
/// histogram of the returned stats (observability stratum, never golden).
pub struct EcoSession {
    design: Design,
    config: LegalizerConfig,
    cert: mcl_audit::BandCert,
}

impl EcoSession {
    /// Opens a session over a legal base placement. `eco_delta` is forced
    /// on; every other knob of `config` is honored as-is.
    ///
    /// # Errors
    ///
    /// [`LegalizeError::SeedRejected`] when the base positions are not
    /// adoptable (the base must be legal).
    pub fn open(design: Design, mut config: LegalizerConfig) -> Result<Self, LegalizeError> {
        config.eco_delta = true;
        // Reject an illegal base now, not on the first delta.
        PlacementState::from_design_positions(&design).map_err(|(cell, e)| {
            LegalizeError::SeedRejected {
                cell: Some(cell.0),
                message: e.to_string(),
            }
        })?;
        let cert = mcl_audit::BandCert::build(&design);
        Ok(Self {
            design,
            config,
            cert,
        })
    }

    /// The current base placement (updated after every successful delta).
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Deterministic synthetic delta for demos, benches and parity tests:
    /// picks `n` distinct movable cells by a seeded xorshift walk and
    /// re-targets each a few sites/rows away from its GP home (clamped to
    /// the core). Same `(design, n, seed)` → same moves, everywhere.
    pub fn synthesize_delta(design: &Design, n: usize, seed: u64) -> Vec<(CellId, Point)> {
        let movable: Vec<CellId> = design.movable_cells().collect();
        if movable.is_empty() {
            return Vec::new();
        }
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let sw = design.tech.site_width.max(1);
        let rh = design.tech.row_height.max(1);
        let mut taken = vec![false; movable.len()];
        let mut moves = Vec::with_capacity(n.min(movable.len()));
        while moves.len() < n.min(movable.len()) {
            let i = (rng() % movable.len() as u64) as usize;
            if taken.get(i).copied().unwrap_or(true) {
                continue;
            }
            if let Some(t) = taken.get_mut(i) {
                *t = true;
            }
            let Some(&cell) = movable.get(i) else {
                continue;
            };
            let Some(gp) = design.cells.get(cell.0 as usize).map(|c| c.gp) else {
                continue;
            };
            let dx = ((rng() % 17) as Dbu - 8) * sw;
            let dy = ((rng() % 5) as Dbu - 2) * rh;
            let target = Point::new(
                (gp.x + dx).clamp(design.core.xl, design.core.xh),
                (gp.y + dy).clamp(design.core.yl, design.core.yh),
            );
            moves.push((cell, target));
        }
        moves
    }

    /// The session configuration (with `eco_delta` on).
    pub fn config(&self) -> &LegalizerConfig {
        &self.config
    }

    /// The session's rolling legality certificate: re-certified band-wise
    /// after each delta (only the rows the delta touched are re-swept), and
    /// byte-identical to a from-scratch `mcl_audit::verify` of
    /// [`Self::design`] at all times.
    pub fn certificate(&self) -> &mcl_audit::BandCert {
        &self.cert
    }

    /// Applies one ECO delta: each `(cell, gp)` move re-targets the cell's
    /// global-placement home and vacates its current position, then the
    /// whole delta re-legalizes through the dirty-window pipeline. On
    /// success the result becomes the session's new base; on error the
    /// base is left exactly as it was (the delta is atomic).
    ///
    /// # Errors
    ///
    /// [`LegalizeError::SeedRejected`] for a move naming an out-of-range
    /// or fixed cell, otherwise the classed error of the underlying run
    /// (see [`Legalizer::run_eco`]).
    pub fn apply_delta(
        &mut self,
        moves: &[(CellId, Point)],
    ) -> Result<(LegalizeStats, mcl_audit::ReplayLog), LegalizeError> {
        let sw = mcl_obs::clock::Stopwatch::start();
        for &(cell, _) in moves {
            let bad = |message: String| LegalizeError::SeedRejected {
                cell: Some(cell.0),
                message,
            };
            match self.design.cells.get(cell.0 as usize) {
                None => return Err(bad(format!("delta names nonexistent cell {}", cell.0))),
                Some(c) if c.fixed => {
                    return Err(bad(format!("delta moves fixed cell `{}`", c.name)));
                }
                Some(_) => {}
            }
        }
        let mut candidate = self.design.clone();
        for &(cell, gp) in moves {
            // In range: every move was validated against the cell table
            // above.
            let Some(c) = candidate.cells.get_mut(cell.0 as usize) else {
                continue;
            };
            c.gp = gp;
            c.pos = None;
        }
        let (out, mut stats, log) =
            Legalizer::new(self.config.clone()).run_eco_with_replay(&candidate)?;
        // Per-delta deadline: the session budget (`stage_budget_secs`)
        // bounds the *whole* delta. Inside the run the same budget drives
        // the pipeline's degradation ladder; if even the degraded result
        // lands past the budget, the delta fails atomically with
        // `DeadlineExceeded` — the resident base and its certificate stay
        // exactly as they were, because nothing is spliced or committed
        // until after this check. The injected `StageDeadline { stage:
        // "eco_delta" }` site forces expiry deterministically, mirroring
        // the pipeline's stage-boundary probe.
        let budget = self.config.stage_budget_secs;
        let expired = budget.is_some_and(|b| sw.elapsed_seconds() > b)
            || crate::faultinject::fires(
                self.config.faults.as_ref(),
                &self.design.name,
                &crate::faultinject::FaultSite::StageDeadline { stage: "eco_delta" },
            );
        if expired {
            return Err(LegalizeError::DeadlineExceeded {
                stage: "eco_delta",
                budget_secs: budget.unwrap_or(0.0),
            });
        }
        // Re-certify only the bands the delta touched: dirty = every cell
        // whose committed pos/orient differs from the previous base (the
        // moved cells are covered — a move that lands exactly back home is
        // audit-neutral and legitimately clean).
        let changed: Vec<CellId> = self
            .design
            .cells
            .iter()
            .zip(out.cells.iter())
            .enumerate()
            .filter(|(_, (old, new))| old.pos != new.pos || old.orient != new.orient)
            .map(|(i, _)| CellId(i as u32))
            .collect();
        self.cert.splice(&out, &changed);
        self.design = out;
        stats
            .obs
            .observe(mcl_obs::HistoKind::EcoDeltaNanos, sw.elapsed_nanos());
        Ok((stats, log))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_db::score::Metrics;

    fn messy_design(n: usize, seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 3000, 2700));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        d.add_cell_type(CellType::new("q", 40, 4));
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n {
            let t = match rng() % 12 {
                0..=8 => CellTypeId(0),
                9..=10 => CellTypeId(1),
                _ => CellTypeId(2),
            };
            let x = (rng() % 2900) as Dbu;
            let y = (rng() % 2500) as Dbu;
            d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
        }
        d
    }

    #[test]
    fn full_flow_is_legal_and_better_than_stage1_alone() {
        let d = messy_design(250, 31);
        let full = Legalizer::new(LegalizerConfig::total_displacement());
        let mut cfg1 = LegalizerConfig::total_displacement();
        cfg1.max_disp_matching = false;
        cfg1.fixed_order_refine = false;
        let stage1 = Legalizer::new(cfg1);

        let (out_full, s_full) = full.run(&d);
        let (out_1, s_1) = stage1.run(&d);
        assert_eq!(s_full.mgl.failed, 0);
        assert_eq!(s_1.mgl.failed, 0);
        assert!(Checker::new(&out_full).check().is_legal());
        assert!(Checker::new(&out_1).check().is_legal());

        let m_full = Metrics::measure(&out_full);
        let m_1 = Metrics::measure(&out_1);
        assert!(
            m_full.total_disp_dbu <= m_1.total_disp_dbu,
            "post-processing must not hurt total displacement: {} vs {}",
            m_full.total_disp_dbu,
            m_1.total_disp_dbu
        );
        // With n0 = 0 stage 3 optimizes total displacement only, so the max
        // may drift a little; it must not explode.
        assert!(m_full.max_disp_rows <= 1.5 * m_1.max_disp_rows + 1.0);
    }

    #[test]
    fn stage_timings_are_named_and_follow_enablement() {
        let d = messy_design(120, 9);
        let (_, full) = Legalizer::new(LegalizerConfig::total_displacement()).run(&d);
        let names: Vec<_> = full.stage_seconds.iter().map(|t| t.name).collect();
        assert_eq!(names, ["mgl", "maxdisp", "fixed_order"]);
        assert!(full.stage_seconds_for("mgl").is_some());

        let mut cfg1 = LegalizerConfig::total_displacement();
        cfg1.max_disp_matching = false;
        cfg1.fixed_order_refine = false;
        let (_, only1) = Legalizer::new(cfg1).run(&d);
        let names: Vec<_> = only1.stage_seconds.iter().map(|t| t.name).collect();
        assert_eq!(names, ["mgl"], "disabled stages must emit no timing row");
        assert_eq!(only1.stage_seconds_for("maxdisp"), None);
    }

    #[test]
    fn refine_on_legal_input_improves_or_keeps() {
        let d = messy_design(150, 77);
        let cfg = LegalizerConfig::total_displacement();
        let mut stage1_cfg = cfg.clone();
        stage1_cfg.max_disp_matching = false;
        stage1_cfg.fixed_order_refine = false;
        let (legal, _) = Legalizer::new(stage1_cfg).run(&d);
        let before = Metrics::measure(&legal);
        let (refined, stats) = Legalizer::new(cfg).refine(&legal).unwrap();
        assert!(stats.fixed_order.applied);
        let after = Metrics::measure(&refined);
        assert!(after.total_disp_dbu <= before.total_disp_dbu);
        assert!(Checker::new(&refined).check().is_legal());
    }

    #[test]
    fn eco_mode_keeps_placed_cells_near_home() {
        // Legalize once, then add a handful of new cells (unplaced) and run
        // ECO: pre-placed cells may shift (post-processing) but must stay
        // close; new cells get inserted; everything stays legal.
        let d = messy_design(150, 13);
        let stage1_only = {
            let mut c = LegalizerConfig::total_displacement();
            c.max_disp_matching = false;
            c.fixed_order_refine = false;
            c
        };
        let (mut placed, _) = Legalizer::new(stage1_only).run(&d);
        let n_old = placed.cells.len();
        let baseline: Vec<Point> = placed.cells.iter().map(|c| c.pos.unwrap()).collect();
        for i in 0..10 {
            placed.add_cell(Cell::new(
                format!("eco{i}"),
                CellTypeId(0),
                Point::new(200 + i * 150, 400),
            ));
        }
        let (out, stats) = Legalizer::new(LegalizerConfig::total_displacement())
            .run_eco(&placed)
            .unwrap();
        assert_eq!(stats.mgl.failed, 0);
        assert!(Checker::new(&out).check().is_legal());
        // Old cells: placed, and the vast majority untouched by the ECO.
        let mut moved = 0;
        for (i, base) in baseline.iter().enumerate().take(n_old) {
            let now = out.cells[i].pos.unwrap();
            if now != *base {
                moved += 1;
            }
        }
        assert!(
            moved <= n_old / 3,
            "ECO should disturb few pre-placed cells, moved {moved}/{n_old}"
        );
        // New cells all placed.
        for c in &out.cells[n_old..] {
            assert!(c.pos.is_some());
        }
    }

    #[test]
    fn budget_exceeded_delta_rolls_back_atomically() {
        let d = messy_design(120, 9);
        let base_cfg = LegalizerConfig::total_displacement();
        let (placed, _) = Legalizer::new(base_cfg.clone()).run(&d);

        // A session whose budget is impossible to meet: every delta must
        // fail with `DeadlineExceeded{stage: "eco_delta"}` and leave the
        // resident base and certificate exactly as they were.
        let mut strict = base_cfg.clone();
        strict.stage_budget_secs = Some(0.0);
        let mut session = EcoSession::open(placed.clone(), strict).expect("legal base must open");
        let before: Vec<_> = session.design().cells.iter().map(|c| c.pos).collect();
        let cert_before = session.certificate().report();
        let moves = EcoSession::synthesize_delta(session.design(), 8, 77);
        match session.apply_delta(&moves) {
            Err(LegalizeError::DeadlineExceeded { stage, budget_secs }) => {
                assert_eq!(stage, "eco_delta");
                assert_eq!(budget_secs, 0.0);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let after: Vec<_> = session.design().cells.iter().map(|c| c.pos).collect();
        assert_eq!(before, after, "failed delta must not mutate the base");
        assert_eq!(
            session.certificate().report(),
            cert_before,
            "failed delta must not touch the rolling certificate"
        );

        // The same delta through an unbudgeted session over the same base
        // succeeds — the rollback above was the budget, not the delta.
        let mut relaxed = EcoSession::open(placed, base_cfg).expect("legal base must open");
        relaxed
            .apply_delta(&moves)
            .expect("unbudgeted delta must succeed");
    }

    #[test]
    fn eco_rejects_illegal_input() {
        let mut d = messy_design(10, 3);
        d.cells[0].pos = Some(Point::new(13, 7)); // misaligned
        assert!(Legalizer::new(LegalizerConfig::total_displacement())
            .run_eco(&d)
            .is_err());
    }

    #[test]
    fn fences_and_routability_end_to_end() {
        let mut d = messy_design(120, 5);
        d.grid = PowerGrid {
            h_layer: 2,
            h_width: 6,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: 8,
            v_pitch: 500,
            v_offset: 250,
        };
        d.cell_types[0].pins.push(PinShape {
            name: "a".into(),
            layer: 1,
            rect: Rect::new(4, 30, 12, 50),
        });
        let f = d.add_fence(FenceRegion::new(
            "g0",
            vec![Rect::new(600, 450, 1800, 1350)],
        ));
        // A quarter of the cells belong to the fence.
        let ids: Vec<u32> = (0..d.cells.len() as u32).filter(|i| i % 4 == 0).collect();
        for i in ids {
            d.cells[i as usize].fence = f;
        }
        let (out, stats) = Legalizer::new(LegalizerConfig::contest()).run(&d);
        assert_eq!(stats.mgl.failed, 0, "{stats:?}");
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
        assert_eq!(rep.fence_violations, 0);
    }
}
