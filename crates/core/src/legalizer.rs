//! The complete three-stage legalization flow (Fig. 2).

use crate::config::LegalizerConfig;
use crate::fixed_order::{optimize_fixed_order_metered, FixedOrderStats};
use crate::maxdisp::{optimize_max_disp_metered, MaxDispStats};
use crate::mgl::{compute_weights, run_serial, MglStats};
use crate::routability::RoutOracle;
use crate::scheduler::run_parallel;
use crate::state::PlacementState;
use mcl_db::prelude::*;
use mcl_obs::{clock::Stopwatch, HistoKind, Meter, SpanKind};

/// Combined statistics of a full legalization run.
#[derive(Debug, Clone, Default)]
pub struct LegalizeStats {
    /// Stage 1 statistics.
    pub mgl: MglStats,
    /// Stage 2 statistics (zeroed when disabled).
    pub max_disp: MaxDispStats,
    /// Stage 3 statistics (zeroed when disabled).
    pub fixed_order: FixedOrderStats,
    /// Wall-clock seconds per stage.
    pub seconds: [f64; 3],
    /// Merged observability meter across all stages: run/stage spans,
    /// algorithm counters, and per-stage displacement histograms. Timing
    /// data varies run to run, so it is excluded from `==` (which otherwise
    /// compares every field, including `seconds`, as before).
    pub obs: Meter,
}

impl PartialEq for LegalizeStats {
    fn eq(&self, other: &Self) -> bool {
        self.mgl == other.mgl
            && self.max_disp == other.max_disp
            && self.fixed_order == other.fixed_order
            && self.seconds == other.seconds
    }
}

/// Records the per-cell displacement histogram of the current placement
/// (Manhattan distance from the global-placement position, in site widths)
/// into `obs` under `kind`. Fixed and unplaced cells are skipped, matching
/// `Metrics::measure`.
fn record_disp_histogram(
    obs: &mut Meter,
    state: &PlacementState<'_>,
    design: &Design,
    kind: HistoKind,
) {
    if !(mcl_obs::compiled() && mcl_obs::recording()) {
        return;
    }
    let sw = design.tech.site_width.max(1);
    for (i, cell) in design.cells.iter().enumerate() {
        if cell.fixed {
            continue;
        }
        let Some(p) = state.pos(CellId(i as u32)) else {
            continue;
        };
        let d = (p.x - cell.gp.x).abs() + (p.y - cell.gp.y).abs();
        obs.observe(kind, (d / sw) as u64);
    }
}

/// The top-level legalizer.
///
/// ```
/// use mcl_core::{Legalizer, LegalizerConfig};
/// use mcl_db::prelude::*;
///
/// let mut d = Design::new("demo", Technology::example(), Rect::new(0, 0, 1000, 900));
/// let inv = d.add_cell_type(CellType::new("INV", 20, 1));
/// d.add_cell(Cell::new("u1", inv, Point::new(33, 47)));
/// d.add_cell(Cell::new("u2", inv, Point::new(41, 52)));
/// let (legal, stats) = Legalizer::new(LegalizerConfig::contest()).run(&d);
/// assert_eq!(stats.mgl.failed, 0);
/// assert!(Checker::new(&legal).check().is_legal());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Legalizer {
    config: LegalizerConfig,
}

/// Runs the independent auditor (`mcl_audit`) over the state after a stage
/// and panics on any hard violation among the *placed* cells. Stages may
/// leave overflow cells unplaced (reported through their stats); everything
/// they did place must satisfy every §2 constraint.
///
/// Active under `debug_assertions` and in `--features audit` builds; CI runs
/// the latter so every stage of every test design is independently checked.
#[cfg(any(debug_assertions, feature = "audit"))]
fn audit_stage(state: &PlacementState<'_>, design: &Design, stage: &str) {
    let mut snapshot = design.clone();
    state.write_back(&mut snapshot);
    let rep = mcl_audit::verify(&snapshot);
    assert_eq!(
        rep.placement_violations(),
        0,
        "independent audit failed after {stage}: {:?}",
        rep.notes
    );
}

#[cfg(not(any(debug_assertions, feature = "audit")))]
fn audit_stage(_state: &PlacementState<'_>, _design: &Design, _stage: &str) {}

impl Legalizer {
    /// Creates a legalizer with the given configuration.
    pub fn new(config: LegalizerConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &LegalizerConfig {
        &self.config
    }

    /// Legalizes a design, returning the placed design and statistics.
    /// The input design is not modified; its `pos` fields are ignored.
    pub fn run(&self, design: &Design) -> (Design, LegalizeStats) {
        let (out, stats, _) = self.run_with_replay(design);
        (out, stats)
    }

    /// Like [`Self::run`], additionally returning the replay log of every
    /// committed placement mutation, for the determinism auditor
    /// (`mcl_audit::replay`). Two runs are bit-identical iff their logs are
    /// equal. Empty unless the `replay-log` feature (default) is enabled.
    pub fn run_with_replay(
        &self,
        design: &Design,
    ) -> (Design, LegalizeStats, mcl_audit::ReplayLog) {
        let weights = compute_weights(design, self.config.weights);
        let oracle_store;
        let oracle = if self.config.routability {
            oracle_store = Some(RoutOracle::new(design));
            oracle_store.as_ref()
        } else {
            None
        };

        let mut stats = LegalizeStats::default();
        let mut state = PlacementState::new(design);

        let run_sw = Stopwatch::start();
        let t0 = Stopwatch::start();
        stats.mgl = if self.config.threads > 1 {
            run_parallel(&mut state, &self.config, &weights, oracle)
        } else {
            run_serial(&mut state, &self.config, &weights, oracle)
        };
        stats.seconds[0] = t0.elapsed_seconds();
        stats
            .obs
            .record_span(SpanKind::StageMgl, t0.elapsed_nanos(), 0);
        stats.obs.merge(&stats.mgl.obs);
        record_disp_histogram(&mut stats.obs, &state, design, HistoKind::DispSitesMgl);
        audit_stage(&state, design, "stage 1 (MGL insertion)");

        if self.config.max_disp_matching {
            let t1 = Stopwatch::start();
            stats.max_disp = optimize_max_disp_metered(&mut state, &self.config, &mut stats.obs);
            stats.seconds[1] = t1.elapsed_seconds();
            stats
                .obs
                .record_span(SpanKind::StageMaxDisp, t1.elapsed_nanos(), 0);
            record_disp_histogram(&mut stats.obs, &state, design, HistoKind::DispSitesMaxDisp);
            audit_stage(&state, design, "stage 2 (max-disp matching)");
        }

        if self.config.fixed_order_refine {
            let t2 = Stopwatch::start();
            stats.fixed_order = optimize_fixed_order_metered(
                &mut state,
                &self.config,
                &weights,
                oracle,
                &mut stats.obs,
            );
            stats.seconds[2] = t2.elapsed_seconds();
            stats
                .obs
                .record_span(SpanKind::StageFixedOrder, t2.elapsed_nanos(), 0);
            record_disp_histogram(
                &mut stats.obs,
                &state,
                design,
                HistoKind::DispSitesFixedOrder,
            );
            audit_stage(&state, design, "stage 3 (fixed-order refinement)");
        }

        stats
            .obs
            .record_span(SpanKind::Run, run_sw.elapsed_nanos(), 0);
        let mut out = design.clone();
        state.write_back(&mut out);
        let log = state.take_replay_log();
        (out, stats, log)
    }

    /// Incremental (ECO) legalization: cells that already have a legal
    /// position keep it as their starting point; only unplaced cells (e.g.
    /// newly inserted by an engineering change order) go through MGL
    /// insertion, followed by the configured post-processing over the whole
    /// design.
    ///
    /// # Errors
    ///
    /// Returns the offending cell when an existing position cannot be
    /// adopted (the pre-placed part must be legal).
    pub fn run_eco(
        &self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), (CellId, crate::state::PlaceError)> {
        let weights = compute_weights(design, self.config.weights);
        let oracle_store;
        let oracle = if self.config.routability {
            oracle_store = Some(RoutOracle::new(design));
            oracle_store.as_ref()
        } else {
            None
        };
        let mut state = PlacementState::from_design_positions(design)?;
        let mut stats = LegalizeStats::default();
        let run_sw = Stopwatch::start();
        let t0 = Stopwatch::start();
        stats.mgl = if self.config.threads > 1 {
            run_parallel(&mut state, &self.config, &weights, oracle)
        } else {
            run_serial(&mut state, &self.config, &weights, oracle)
        };
        stats.seconds[0] = t0.elapsed_seconds();
        stats
            .obs
            .record_span(SpanKind::StageMgl, t0.elapsed_nanos(), 0);
        stats.obs.merge(&stats.mgl.obs);
        record_disp_histogram(&mut stats.obs, &state, design, HistoKind::DispSitesMgl);
        audit_stage(&state, design, "ECO stage 1 (MGL insertion)");
        if self.config.max_disp_matching {
            let t1 = Stopwatch::start();
            stats.max_disp = optimize_max_disp_metered(&mut state, &self.config, &mut stats.obs);
            stats.seconds[1] = t1.elapsed_seconds();
            stats
                .obs
                .record_span(SpanKind::StageMaxDisp, t1.elapsed_nanos(), 0);
            record_disp_histogram(&mut stats.obs, &state, design, HistoKind::DispSitesMaxDisp);
            audit_stage(&state, design, "ECO stage 2 (max-disp matching)");
        }
        if self.config.fixed_order_refine {
            let t2 = Stopwatch::start();
            stats.fixed_order = optimize_fixed_order_metered(
                &mut state,
                &self.config,
                &weights,
                oracle,
                &mut stats.obs,
            );
            stats.seconds[2] = t2.elapsed_seconds();
            stats
                .obs
                .record_span(SpanKind::StageFixedOrder, t2.elapsed_nanos(), 0);
            record_disp_histogram(
                &mut stats.obs,
                &state,
                design,
                HistoKind::DispSitesFixedOrder,
            );
            audit_stage(&state, design, "ECO stage 3 (fixed-order refinement)");
        }
        stats
            .obs
            .record_span(SpanKind::Run, run_sw.elapsed_nanos(), 0);
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }

    /// Runs only the two post-processing stages on an already-legal design
    /// (used by the Table 3 ablation).
    ///
    /// # Errors
    ///
    /// Returns the offending cell when the input positions are not adoptable
    /// (i.e. the input is not legal).
    pub fn refine(
        &self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), (CellId, crate::state::PlaceError)> {
        let weights = compute_weights(design, self.config.weights);
        let oracle_store;
        let oracle = if self.config.routability {
            oracle_store = Some(RoutOracle::new(design));
            oracle_store.as_ref()
        } else {
            None
        };
        let mut state = PlacementState::from_design_positions(design)?;
        let mut stats = LegalizeStats::default();
        let run_sw = Stopwatch::start();
        if self.config.max_disp_matching {
            let t1 = Stopwatch::start();
            stats.max_disp = optimize_max_disp_metered(&mut state, &self.config, &mut stats.obs);
            stats.seconds[1] = t1.elapsed_seconds();
            stats
                .obs
                .record_span(SpanKind::StageMaxDisp, t1.elapsed_nanos(), 0);
            record_disp_histogram(&mut stats.obs, &state, design, HistoKind::DispSitesMaxDisp);
            audit_stage(&state, design, "refine stage 2 (max-disp matching)");
        }
        if self.config.fixed_order_refine {
            let t2 = Stopwatch::start();
            stats.fixed_order = optimize_fixed_order_metered(
                &mut state,
                &self.config,
                &weights,
                oracle,
                &mut stats.obs,
            );
            stats.seconds[2] = t2.elapsed_seconds();
            stats
                .obs
                .record_span(SpanKind::StageFixedOrder, t2.elapsed_nanos(), 0);
            record_disp_histogram(
                &mut stats.obs,
                &state,
                design,
                HistoKind::DispSitesFixedOrder,
            );
            audit_stage(&state, design, "refine stage 3 (fixed-order refinement)");
        }
        stats
            .obs
            .record_span(SpanKind::Run, run_sw.elapsed_nanos(), 0);
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_db::score::Metrics;

    fn messy_design(n: usize, seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 3000, 2700));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        d.add_cell_type(CellType::new("q", 40, 4));
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n {
            let t = match rng() % 12 {
                0..=8 => CellTypeId(0),
                9..=10 => CellTypeId(1),
                _ => CellTypeId(2),
            };
            let x = (rng() % 2900) as Dbu;
            let y = (rng() % 2500) as Dbu;
            d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
        }
        d
    }

    #[test]
    fn full_flow_is_legal_and_better_than_stage1_alone() {
        let d = messy_design(250, 31);
        let full = Legalizer::new(LegalizerConfig::total_displacement());
        let mut cfg1 = LegalizerConfig::total_displacement();
        cfg1.max_disp_matching = false;
        cfg1.fixed_order_refine = false;
        let stage1 = Legalizer::new(cfg1);

        let (out_full, s_full) = full.run(&d);
        let (out_1, s_1) = stage1.run(&d);
        assert_eq!(s_full.mgl.failed, 0);
        assert_eq!(s_1.mgl.failed, 0);
        assert!(Checker::new(&out_full).check().is_legal());
        assert!(Checker::new(&out_1).check().is_legal());

        let m_full = Metrics::measure(&out_full);
        let m_1 = Metrics::measure(&out_1);
        assert!(
            m_full.total_disp_dbu <= m_1.total_disp_dbu,
            "post-processing must not hurt total displacement: {} vs {}",
            m_full.total_disp_dbu,
            m_1.total_disp_dbu
        );
        // With n0 = 0 stage 3 optimizes total displacement only, so the max
        // may drift a little; it must not explode.
        assert!(m_full.max_disp_rows <= 1.5 * m_1.max_disp_rows + 1.0);
    }

    #[test]
    fn refine_on_legal_input_improves_or_keeps() {
        let d = messy_design(150, 77);
        let cfg = LegalizerConfig::total_displacement();
        let mut stage1_cfg = cfg.clone();
        stage1_cfg.max_disp_matching = false;
        stage1_cfg.fixed_order_refine = false;
        let (legal, _) = Legalizer::new(stage1_cfg).run(&d);
        let before = Metrics::measure(&legal);
        let (refined, stats) = Legalizer::new(cfg).refine(&legal).unwrap();
        assert!(stats.fixed_order.applied);
        let after = Metrics::measure(&refined);
        assert!(after.total_disp_dbu <= before.total_disp_dbu);
        assert!(Checker::new(&refined).check().is_legal());
    }

    #[test]
    fn eco_mode_keeps_placed_cells_near_home() {
        // Legalize once, then add a handful of new cells (unplaced) and run
        // ECO: pre-placed cells may shift (post-processing) but must stay
        // close; new cells get inserted; everything stays legal.
        let d = messy_design(150, 13);
        let stage1_only = {
            let mut c = LegalizerConfig::total_displacement();
            c.max_disp_matching = false;
            c.fixed_order_refine = false;
            c
        };
        let (mut placed, _) = Legalizer::new(stage1_only).run(&d);
        let n_old = placed.cells.len();
        let baseline: Vec<Point> = placed.cells.iter().map(|c| c.pos.unwrap()).collect();
        for i in 0..10 {
            placed.add_cell(Cell::new(
                format!("eco{i}"),
                CellTypeId(0),
                Point::new(200 + i * 150, 400),
            ));
        }
        let (out, stats) = Legalizer::new(LegalizerConfig::total_displacement())
            .run_eco(&placed)
            .unwrap();
        assert_eq!(stats.mgl.failed, 0);
        assert!(Checker::new(&out).check().is_legal());
        // Old cells: placed, and the vast majority untouched by the ECO.
        let mut moved = 0;
        for (i, base) in baseline.iter().enumerate().take(n_old) {
            let now = out.cells[i].pos.unwrap();
            if now != *base {
                moved += 1;
            }
        }
        assert!(
            moved <= n_old / 3,
            "ECO should disturb few pre-placed cells, moved {moved}/{n_old}"
        );
        // New cells all placed.
        for c in &out.cells[n_old..] {
            assert!(c.pos.is_some());
        }
    }

    #[test]
    fn eco_rejects_illegal_input() {
        let mut d = messy_design(10, 3);
        d.cells[0].pos = Some(Point::new(13, 7)); // misaligned
        assert!(Legalizer::new(LegalizerConfig::total_displacement())
            .run_eco(&d)
            .is_err());
    }

    #[test]
    fn fences_and_routability_end_to_end() {
        let mut d = messy_design(120, 5);
        d.grid = PowerGrid {
            h_layer: 2,
            h_width: 6,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: 8,
            v_pitch: 500,
            v_offset: 250,
        };
        d.cell_types[0].pins.push(PinShape {
            name: "a".into(),
            layer: 1,
            rect: Rect::new(4, 30, 12, 50),
        });
        let f = d.add_fence(FenceRegion::new(
            "g0",
            vec![Rect::new(600, 450, 1800, 1350)],
        ));
        // A quarter of the cells belong to the fence.
        let ids: Vec<u32> = (0..d.cells.len() as u32).filter(|i| i % 4 == 0).collect();
        for i in ids {
            d.cells[i as usize].fence = f;
        }
        let (out, stats) = Legalizer::new(LegalizerConfig::contest()).run(&d);
        assert_eq!(stats.mgl.failed, 0, "{stats:?}");
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
        assert_eq!(rep.fence_violations, 0);
    }
}
