//! Routability oracle: pin access / pin short queries against the P/G grid
//! and IO pins (§3.4).
//!
//! MGL uses three separate mechanisms (as in the paper):
//!
//! 1. **Horizontal rails** depend only on the row the cell lands on (and its
//!    orientation there) — insertion points whose row causes a violation are
//!    rejected outright ([`RoutOracle::h_rails_ok`]).
//! 2. **Vertical stripes** depend on x — the chosen position is nudged left
//!    or right to the nearest clean x ([`RoutOracle::clear_x_right`] /
//!    [`RoutOracle::clear_x_left`]).
//! 3. **IO pins** incur a cost penalty per overlap
//!    ([`RoutOracle::io_overlaps`]).

use mcl_db::prelude::*;
use std::collections::HashMap;
use std::sync::Mutex;

/// Routability query object for one design.
#[derive(Debug)]
pub struct RoutOracle<'d> {
    design: &'d Design,
    /// IO pin rects per layer, sorted by xl.
    io_by_layer: Vec<Vec<Rect>>,
    io_max_w: Dbu,
    /// Cache: (type, base_row % period) -> horizontal rails OK.
    h_cache: Mutex<HashMap<(u32, usize), bool>>,
    /// Row period after which rail geometry (and parity) repeats.
    period: usize,
}

impl<'d> RoutOracle<'d> {
    /// Builds the oracle.
    pub fn new(design: &'d Design) -> Self {
        let nl = design.tech.num_layers as usize + 2;
        let mut io_by_layer = vec![Vec::new(); nl];
        let mut io_max_w = 0;
        for p in &design.io_pins {
            if (p.layer as usize) < nl {
                io_by_layer[p.layer as usize].push(p.rect);
                io_max_w = io_max_w.max(p.rect.width());
            }
        }
        for v in &mut io_by_layer {
            v.sort_unstable_by_key(|r| r.xl);
        }
        let pitch = design.grid.h_pitch_rows.max(1) as usize;
        // Orientation repeats every 2 rows; rail offsets every `pitch` rows.
        let period = lcm(2, pitch);
        Self {
            design,
            io_by_layer,
            io_max_w,
            h_cache: Mutex::new(HashMap::new()),
            period,
        }
    }

    /// Whether placing `type_id` with its bottom on `base_row` keeps all its
    /// pins clear of horizontal P/G rails (both short and access layers).
    pub fn h_rails_ok(&self, type_id: CellTypeId, base_row: usize) -> bool {
        let key = (type_id.0, base_row % self.period);
        if let Some(&v) = self.h_cache.lock().unwrap().get(&key) {
            return v;
        }
        let v = self.compute_h_rails_ok(type_id, base_row);
        self.h_cache.lock().unwrap().insert(key, v);
        v
    }

    fn compute_h_rails_ok(&self, type_id: CellTypeId, base_row: usize) -> bool {
        let d = self.design;
        let ct = &d.cell_types[type_id.0 as usize];
        let orient = d.orient_for_row(type_id, base_row);
        let y0 = d.row_y(base_row);
        for i in 0..ct.pins.len() {
            let local = ct.pin_rect_local(i, orient, d.tech.row_height);
            let y = Interval::new(y0 + local.yl, y0 + local.yh);
            let layer = ct.pins[i].layer;
            for l in [layer, layer + 1] {
                if d.grid.h_rail_overlaps(l, y, d.core.yl, d.tech.row_height) {
                    return false;
                }
            }
        }
        true
    }

    /// Number of pins of `type_id` at `(x, base_row)` that overlap a
    /// vertical P/G stripe (short or access).
    pub fn v_violations(&self, type_id: CellTypeId, base_row: usize, x: Dbu) -> usize {
        let d = self.design;
        let ct = &d.cell_types[type_id.0 as usize];
        let orient = d.orient_for_row(type_id, base_row);
        let mut n = 0;
        for i in 0..ct.pins.len() {
            let local = ct.pin_rect_local(i, orient, d.tech.row_height);
            let xs = Interval::new(x + local.xl, x + local.xh);
            let layer = ct.pins[i].layer;
            if d.grid.v_stripe_overlaps(layer, xs) || d.grid.v_stripe_overlaps(layer + 1, xs) {
                n += 1;
            }
        }
        n
    }

    /// Smallest `x' >= x` such that no pin overlaps a vertical stripe, or
    /// `None` when none exists at or below `limit`.
    pub fn clear_x_right(
        &self,
        type_id: CellTypeId,
        base_row: usize,
        x: Dbu,
        limit: Dbu,
    ) -> Option<Dbu> {
        let d = self.design;
        let sw = d.tech.site_width;
        let mut cur = x;
        // Each pin clears after a bounded shift; iterate a few rounds since
        // clearing one pin may collide another.
        for _ in 0..8 {
            if cur > limit {
                return None;
            }
            let mut shift = 0;
            let ct = &d.cell_types[type_id.0 as usize];
            let orient = d.orient_for_row(type_id, base_row);
            for i in 0..ct.pins.len() {
                let local = ct.pin_rect_local(i, orient, d.tech.row_height);
                let xs = Interval::new(cur + local.xl, cur + local.xh);
                for layer in [ct.pins[i].layer, ct.pins[i].layer + 1] {
                    if let Some(dx) = d.grid.v_clear_shift_right(layer, xs) {
                        shift = shift.max(dx);
                    } else {
                        return None; // pin wider than the clear space
                    }
                }
            }
            if shift == 0 {
                return Some(cur);
            }
            // Snap the shift up to the site grid.
            cur += (shift + sw - 1) / sw * sw;
        }
        None
    }

    /// Mirror of [`Self::clear_x_right`]: largest `x' <= x` clean position,
    /// bounded below by `limit`.
    pub fn clear_x_left(
        &self,
        type_id: CellTypeId,
        base_row: usize,
        x: Dbu,
        limit: Dbu,
    ) -> Option<Dbu> {
        let d = self.design;
        let sw = d.tech.site_width;
        let mut cur = x;
        for _ in 0..8 {
            if cur < limit {
                return None;
            }
            let mut shift = 0;
            let ct = &d.cell_types[type_id.0 as usize];
            let orient = d.orient_for_row(type_id, base_row);
            for i in 0..ct.pins.len() {
                let local = ct.pin_rect_local(i, orient, d.tech.row_height);
                let xs = Interval::new(cur + local.xl, cur + local.xh);
                for layer in [ct.pins[i].layer, ct.pins[i].layer + 1] {
                    if let Some(dx) = d.grid.v_clear_shift_left(layer, xs) {
                        shift = shift.max(dx);
                    } else {
                        return None;
                    }
                }
            }
            if shift == 0 {
                return Some(cur);
            }
            cur -= (shift + sw - 1) / sw * sw;
        }
        None
    }

    /// Number of pins overlapping IO-pin shapes (own layer or one above) at
    /// `(x, base_row)`.
    pub fn io_overlaps(&self, type_id: CellTypeId, base_row: usize, x: Dbu) -> usize {
        if self.design.io_pins.is_empty() {
            return 0;
        }
        let d = self.design;
        let ct = &d.cell_types[type_id.0 as usize];
        let orient = d.orient_for_row(type_id, base_row);
        let y0 = d.row_y(base_row);
        let mut n = 0;
        for i in 0..ct.pins.len() {
            let local = ct.pin_rect_local(i, orient, d.tech.row_height);
            let abs = local.translate(x, y0);
            for layer in [ct.pins[i].layer, ct.pins[i].layer + 1] {
                if self.layer_io_overlap(layer, abs) {
                    n += 1;
                    break;
                }
            }
        }
        n
    }

    /// The x feasible interval around `x_now` on `base_row` within which
    /// `type_id` stays free of vertical-stripe violations. Returns the
    /// containing maximal clean interval clipped to `[lo, hi]`; when `x_now`
    /// itself is dirty, returns the degenerate `[x_now, x_now]`.
    pub fn clean_x_range(
        &self,
        type_id: CellTypeId,
        base_row: usize,
        x_now: Dbu,
        lo: Dbu,
        hi: Dbu,
    ) -> (Dbu, Dbu) {
        let d = self.design;
        if d.grid.v_pitch == 0 || d.grid.v_width == 0 {
            return (lo, hi);
        }
        if self.v_violations(type_id, base_row, x_now) > 0 {
            return (x_now, x_now);
        }
        // Expand outward in site steps until a dirty position or the bound.
        // Rail pitch bounds the scan.
        let sw = d.tech.site_width;
        let max_steps = (d.grid.v_pitch / sw + 2) as usize;
        let mut l = x_now;
        for _ in 0..max_steps {
            if l - sw < lo || self.v_violations(type_id, base_row, l - sw) > 0 {
                break;
            }
            l -= sw;
        }
        let mut r = x_now;
        for _ in 0..max_steps {
            if r + sw > hi || self.v_violations(type_id, base_row, r + sw) > 0 {
                break;
            }
            r += sw;
        }
        (l.max(lo), r.min(hi))
    }

    /// Independent recount of soft pin violations over every placed movable
    /// cell: `(pin_shorts, pin_access)` — pins overlapping a P/G shape or IO
    /// pin on their own layer, resp. one layer above. The class definitions
    /// match `mcl_db::legal::Checker`, but the totals are recomposed from
    /// the oracle's rail / stripe / IO primitives, giving a second
    /// accounting path for the report cross-check property test.
    pub fn recount_pin_violations(&self) -> (u64, u64) {
        let d = self.design;
        let mut shorts = 0u64;
        let mut access = 0u64;
        for (i, cell) in d.cells.iter().enumerate() {
            if cell.fixed {
                continue;
            }
            let Some(pos) = cell.pos else { continue };
            let id = CellId(i as u32);
            let ct = d.type_of(id);
            for pin in 0..ct.pins.len() {
                let layer = ct.pins[pin].layer;
                let pr = d.pin_rect_at(id, pin, pos, cell.orient);
                if self.pin_rect_blocked(layer, pr) {
                    shorts += 1;
                }
                if self.pin_rect_blocked(layer + 1, pr) {
                    access += 1;
                }
            }
        }
        (shorts, access)
    }

    /// Whether `pr` overlaps any P/G rail, P/G stripe, or IO pin on `layer`.
    fn pin_rect_blocked(&self, layer: u8, pr: Rect) -> bool {
        let d = self.design;
        d.grid
            .h_rail_overlaps(layer, pr.y_interval(), d.core.yl, d.tech.row_height)
            || d.grid.v_stripe_overlaps(layer, pr.x_interval())
            || self.layer_io_overlap(layer, pr)
    }

    fn layer_io_overlap(&self, layer: u8, q: Rect) -> bool {
        let Some(list) = self.io_by_layer.get(layer as usize) else {
            return false;
        };
        let start = list.partition_point(|r| r.xl < q.xl - self.io_max_w);
        list[start..]
            .iter()
            .take_while(|r| r.xl < q.xh)
            .any(|r| r.overlaps(q))
    }
}

fn lcm(a: usize, b: usize) -> usize {
    let gcd = |mut a: usize, mut b: usize| {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    };
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 900));
        d.grid = PowerGrid {
            h_layer: 2,
            h_width: 10,
            h_pitch_rows: 2, // rails only on even row boundaries
            v_layer: 3,
            v_width: 8,
            v_pitch: 200,
            v_offset: 100,
        };
        // Type 0: M2 pin near the top -> violates rails above even rows only.
        let mut risky = CellType::new("risky", 20, 1);
        risky.pins.push(PinShape {
            name: "a".into(),
            layer: 2,
            rect: Rect::new(5, 86, 10, 90),
        });
        d.add_cell_type(risky);
        // Type 1: M2 pin in the middle -> h-clean everywhere; M2 pins check
        // against M3 stripes for access.
        let mut safe = CellType::new("safe", 20, 1);
        safe.pins.push(PinShape {
            name: "a".into(),
            layer: 2,
            rect: Rect::new(5, 40, 10, 50),
        });
        d.add_cell_type(safe);
        d
    }

    #[test]
    fn h_rail_depends_on_row() {
        let d = design();
        let o = RoutOracle::new(&d);
        // Rails at y = 0, 180, 360... Type 0's pin sits at [86, 90) above an
        // even row r: top boundary y=(r+1)*90 has a rail iff (r+1) even ->
        // violations on odd rows. But odd rows flip the cell (FS), moving the
        // pin to [0, 4) near the *bottom* boundary y=r*90, rail iff r even ->
        // clean on odd rows. Net: violation on... check both.
        let risky = CellTypeId(0);
        // Row 1 (odd): FS, pin near bottom at y=90..94; boundary 90 has no
        // rail (90/90=1 odd) -> clean.
        assert!(o.h_rails_ok(risky, 1));
        // Row 2 (even): N, pin near top y=266..270; boundary 270 = row 3
        // boundary -> 270/90 = 3, odd, no rail -> clean too. Row 3: FS, pin
        // at bottom y=270..274, no rail at 270 -> clean. Row 0: N, pin at
        // y=86..90, boundary 90 no rail -> clean. Hmm - rails at 0,180,360:
        // boundary index even. Pin top at boundary (r+1): violation iff
        // (r+1) % 2 == 0 and orientation N (r even) -> r odd... but r odd
        // flips. So this type is always clean; use a symmetric double pin to
        // force a violation.
        for r in 0..6 {
            assert!(o.h_rails_ok(risky, r), "row {r}");
        }
        // A type with pins at both top and bottom violates on rows where
        // either boundary carries a rail.
        let mut d2 = design();
        let mut both = CellType::new("both", 20, 1);
        both.pins.push(PinShape {
            name: "t".into(),
            layer: 2,
            rect: Rect::new(5, 86, 10, 90),
        });
        both.pins.push(PinShape {
            name: "b".into(),
            layer: 2,
            rect: Rect::new(5, 0, 10, 4),
        });
        let both_id = d2.add_cell_type(both);
        let o2 = RoutOracle::new(&d2);
        // Bottom boundary of row r has a rail iff r even; top iff r+1 even.
        // Either way one of the two pins hits a rail on every row.
        for r in 0..4 {
            assert!(!o2.h_rails_ok(both_id, r), "row {r}");
        }
    }

    #[test]
    fn v_violation_and_clearing() {
        let d = design();
        let o = RoutOracle::new(&d);
        let safe = CellTypeId(1);
        // Stripes (M3) centered at x=100, 300, ... width 8 -> [96,104).
        // Pin local x [5,10): at cell x=93 the pin covers [98,103) -> access
        // violation (M2 pin under M3 stripe).
        assert_eq!(o.v_violations(safe, 0, 93), 1);
        assert_eq!(o.v_violations(safe, 0, 120), 0);
        let right = o.clear_x_right(safe, 0, 93, 500).unwrap();
        assert!(right > 93 && o.v_violations(safe, 0, right) == 0);
        let left = o.clear_x_left(safe, 0, 93, 0).unwrap();
        assert!(left < 93 && o.v_violations(safe, 0, left) == 0);
        // Clearing is impossible within a tight limit.
        assert_eq!(o.clear_x_right(safe, 0, 93, 94), None);
    }

    #[test]
    fn clean_x_range_brackets_stripes() {
        let d = design();
        let o = RoutOracle::new(&d);
        let safe = CellTypeId(1);
        let (lo, hi) = o.clean_x_range(safe, 0, 120, 0, 2000);
        assert!(lo <= 120 && hi >= 120);
        // Every site position in range is clean; positions just outside are
        // dirty or out of bounds.
        assert_eq!(o.v_violations(safe, 0, lo), 0);
        assert_eq!(o.v_violations(safe, 0, hi), 0);
        if lo > 0 {
            assert!(o.v_violations(safe, 0, lo - 10) > 0);
        }
        assert!(o.v_violations(safe, 0, hi + 10) > 0);
        // Dirty current position degenerates.
        assert_eq!(o.clean_x_range(safe, 0, 93, 0, 2000), (93, 93));
    }

    #[test]
    fn io_overlap_counted() {
        let mut d = design();
        d.io_pins.push(IoPin {
            name: "io".into(),
            layer: 2,
            rect: Rect::new(500, 40, 520, 60),
        });
        let o = RoutOracle::new(&d);
        let safe = CellTypeId(1);
        // Pin local [5,10)x[40,50): at x=498, abs [503,508)x[40,50) overlaps.
        assert_eq!(o.io_overlaps(safe, 0, 498), 1);
        assert_eq!(o.io_overlaps(safe, 0, 600), 0);
    }

    #[test]
    fn no_grid_means_everything_clean() {
        let mut d = design();
        d.grid = PowerGrid::none();
        let o = RoutOracle::new(&d);
        assert!(o.h_rails_ok(CellTypeId(0), 0));
        assert_eq!(o.v_violations(CellTypeId(1), 0, 93), 0);
        assert_eq!(o.clean_x_range(CellTypeId(1), 0, 120, 0, 2000), (0, 2000));
    }
}
