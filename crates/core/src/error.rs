//! Typed failure taxonomy for the legalization pipeline.
//!
//! Every containable failure in the pipeline is described by a
//! [`LegalizeError`] carrying stage/window/cell provenance and a
//! [`FailureClass`] that tells the driver how to react:
//!
//! * [`FailureClass::Retryable`] — a transient per-cell failure (e.g. a
//!   panicked insertion evaluation). The scheduler retries it a bounded,
//!   deterministic number of times and quarantines the cell if it keeps
//!   failing.
//! * [`FailureClass::Degradable`] — the stage as a whole cannot complete,
//!   but a declared fallback rung exists (parallel MGL → serial MGL,
//!   maxdisp → skip with identity assignment, refine → skip). The driver
//!   rolls the placement back to the pre-stage checkpoint and takes the
//!   rung; the rung taken is recorded as a [`Degradation`].
//! * [`FailureClass::Fatal`] — no rung is left (or a degraded result
//!   failed the clean-room audit); the job errors out as a whole. In a
//!   batch this stays per-job: other jobs are unaffected.
//!
//! See DESIGN.md §11 for the full failure model.

use std::fmt;

/// How the pipeline driver reacts to a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureClass {
    /// Transient; retried deterministically, then quarantined.
    Retryable,
    /// Stage-level; a degradation-ladder rung absorbs it.
    Degradable,
    /// Unrecoverable for this job; surfaces as a per-job error.
    Fatal,
}

impl FailureClass {
    /// Stable lowercase label used in reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::Retryable => "retryable",
            FailureClass::Degradable => "degradable",
            FailureClass::Fatal => "fatal",
        }
    }
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed pipeline failure with provenance.
///
/// `#[non_exhaustive]`: downstream matches must carry a wildcard arm so new
/// failure modes can be added without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LegalizeError {
    /// A stage body (or an injected fault standing in for one) panicked.
    /// The placement has been rolled back to the pre-stage checkpoint.
    StagePanicked {
        /// Stage name (`"mgl"`, `"maxdisp"`, `"fixed_order"`).
        stage: &'static str,
        /// Redacted panic payload (message only).
        message: String,
    },
    /// A stage exceeded its wall-clock budget (or an injected deadline
    /// fault fired) before it started; the ladder decides what to skip.
    DeadlineExceeded {
        /// Stage name that was denied its slot.
        stage: &'static str,
        /// Budget that was exhausted, in seconds.
        budget_secs: f64,
    },
    /// A stage could not obtain the memory it needed (only reachable via
    /// the fault-injection harness today; a real allocator hook would land
    /// here too).
    ResourceExhausted {
        /// Stage name.
        stage: &'static str,
        /// What ran out.
        what: &'static str,
    },
    /// A cell's insertion evaluation kept failing after the deterministic
    /// retry budget and the cell was quarantined (left unplaced).
    CellQuarantined {
        /// Stage name (always `"mgl"` today).
        stage: &'static str,
        /// The quarantined cell.
        cell: u32,
        /// Number of retry attempts that were burned before giving up.
        retries: u32,
        /// Message of the last failure.
        message: String,
    },
    /// The worker pool broke (a worker hung up mid-protocol); the parallel
    /// MGL round loop cannot continue and the serial rung takes over.
    PoolBroken {
        /// What the coordinator was doing when the pool went away.
        during: &'static str,
    },
    /// A degraded (or repaired) result failed the clean-room legality
    /// audit: the pipeline must report an error, never claim success over
    /// an uncertified placement.
    AuditFailed {
        /// Stage name after which certification ran.
        stage: &'static str,
        /// Number of violations the auditor reported.
        violations: usize,
    },
    /// A batch job could not be seeded from its input design (ECO adoption
    /// of an illegal placement, etc.).
    SeedRejected {
        /// The offending cell, when known.
        cell: Option<u32>,
        /// Human-readable reason.
        message: String,
    },
}

impl LegalizeError {
    /// The [`FailureClass`] driving the containment reaction.
    pub fn class(&self) -> FailureClass {
        match self {
            LegalizeError::StagePanicked { .. }
            | LegalizeError::DeadlineExceeded { .. }
            | LegalizeError::ResourceExhausted { .. }
            | LegalizeError::PoolBroken { .. } => FailureClass::Degradable,
            LegalizeError::CellQuarantined { .. } => FailureClass::Retryable,
            LegalizeError::AuditFailed { .. } | LegalizeError::SeedRejected { .. } => {
                FailureClass::Fatal
            }
        }
    }

    /// The stage the failure is attributed to, when one applies.
    pub fn stage(&self) -> Option<&'static str> {
        match self {
            LegalizeError::StagePanicked { stage, .. }
            | LegalizeError::DeadlineExceeded { stage, .. }
            | LegalizeError::ResourceExhausted { stage, .. }
            | LegalizeError::CellQuarantined { stage, .. }
            | LegalizeError::AuditFailed { stage, .. } => Some(stage),
            LegalizeError::PoolBroken { .. } => Some("mgl"),
            LegalizeError::SeedRejected { .. } => None,
        }
    }

    /// Converts to the flat [`FailureRecord`] embedded in stats/reports.
    pub fn to_record(&self) -> FailureRecord {
        FailureRecord {
            stage: self.stage().unwrap_or("seed"),
            class: self.class(),
            message: self.to_string(),
        }
    }
}

impl fmt::Display for LegalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LegalizeError::StagePanicked { stage, message } => {
                write!(f, "stage {stage} panicked: {message}")
            }
            LegalizeError::DeadlineExceeded { stage, budget_secs } => {
                write!(f, "stage {stage} missed its {budget_secs}s budget")
            }
            LegalizeError::ResourceExhausted { stage, what } => {
                write!(f, "stage {stage} exhausted {what}")
            }
            LegalizeError::CellQuarantined {
                stage,
                cell,
                retries,
                message,
            } => write!(
                f,
                "cell {cell} quarantined in {stage} after {retries} retries: {message}"
            ),
            LegalizeError::PoolBroken { during } => {
                write!(f, "worker pool broke during {during}")
            }
            LegalizeError::AuditFailed { stage, violations } => write!(
                f,
                "clean-room audit after {stage} found {violations} violations"
            ),
            LegalizeError::SeedRejected { cell, message } => match cell {
                Some(c) => write!(f, "seed rejected at cell {c}: {message}"),
                None => write!(f, "seed rejected: {message}"),
            },
        }
    }
}

impl std::error::Error for LegalizeError {}

/// Flat failure row carried in [`crate::LegalizeStats`] and serialized into
/// the RunReport `failures` array (schema v2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    /// Stage name (`"seed"` for pre-pipeline failures).
    pub stage: &'static str,
    /// Containment class at the time the failure was recorded.
    pub class: FailureClass,
    /// Human-readable description (the `Display` of the source error).
    pub message: String,
}

/// One degradation-ladder rung taken by the driver, carried in
/// [`crate::LegalizeStats`] and the RunReport `degradations` array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// Stage the rung applies to.
    pub stage: &'static str,
    /// The rung taken: `"serial"` (parallel MGL fell back to the serial
    /// algorithm) or `"skip"` (the stage was skipped; for maxdisp this is
    /// the identity assignment).
    pub rung: &'static str,
    /// Why the rung was taken (deadline, panic message, ...).
    pub reason: String,
}

/// Bridges an infallible-claiming entry point onto the fallible core:
/// unwraps a run result, panicking with the operation and design name on
/// failure. The legacy `run`/`refine`-style APIs document this panic as
/// their contract; fallible callers use the `try_*` twins instead. Keeping
/// the panic in one audited function (allowlisted in
/// `xtask/analyze-allow.txt`) is what lets the `panic-uncontained` ratchet
/// hold the always-on daemon path at zero ad-hoc panic sites.
pub(crate) fn expect_run<T, E: fmt::Display>(op: &str, design: &str, r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("{op} of `{design}` failed: {e}"),
    }
}

/// Extracts a printable message from a `catch_unwind` payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_stable() {
        let e = LegalizeError::StagePanicked {
            stage: "mgl",
            message: "boom".into(),
        };
        assert_eq!(e.class(), FailureClass::Degradable);
        assert_eq!(e.stage(), Some("mgl"));
        let q = LegalizeError::CellQuarantined {
            stage: "mgl",
            cell: 7,
            retries: 1,
            message: "boom".into(),
        };
        assert_eq!(q.class(), FailureClass::Retryable);
        let a = LegalizeError::AuditFailed {
            stage: "maxdisp",
            violations: 3,
        };
        assert_eq!(a.class(), FailureClass::Fatal);
    }

    #[test]
    fn record_round_trip() {
        let e = LegalizeError::DeadlineExceeded {
            stage: "fixed_order",
            budget_secs: 0.5,
        };
        let r = e.to_record();
        assert_eq!(r.stage, "fixed_order");
        assert_eq!(r.class, FailureClass::Degradable);
        assert!(r.message.contains("budget"));
    }

    #[test]
    fn display_is_informative() {
        let e = LegalizeError::PoolBroken { during: "round" };
        assert_eq!(e.to_string(), "worker pool broke during round");
        assert_eq!(FailureClass::Fatal.label(), "fatal");
    }
}
