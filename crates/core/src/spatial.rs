//! Two-level hierarchical spatial index over axis-aligned rectangles.
//!
//! [`HierGrid`] deepens the flat row-band layout (one bucket list per row
//! of the core) with a second level of x-buckets inside every band. A
//! query therefore inspects only the rectangles whose band *and* x-bucket
//! ranges can possibly intersect the probe — at 1M cells a core holds
//! hundreds of rows with thousands of windows live per round, and the
//! flat per-band lists become the linear structure that stops scaling.
//!
//! The grid is purely a pruning layer: every candidate is confirmed with
//! the exact strict-overlap predicate, so query results are identical to
//! a naive scan over all live rectangles (the property suite in
//! `crates/core/tests/spatial_props.rs` pins this). Degenerate (zero
//! width/height) rectangles are stored and indexable but never overlap
//! anything, exactly like the naive predicate says.
//!
//! Entries carry a `u64` key so callers can filter (e.g. by fence region)
//! during traversal, and an id for incremental removal — the ECO path
//! and the window selector reuse one grid across rounds via [`HierGrid::
//! clear`], which is O(touched buckets), not O(grid).

use mcl_db::prelude::*;

/// Default number of x-buckets per band; windows are narrow relative to
/// the core, so a modest fan-out keeps bucket lists near-constant size
/// without blowing up the clear cost.
const DEFAULT_X_BUCKETS: usize = 64;

/// Stable handle of an inserted rectangle, valid until removal or clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ItemId(u32);

#[derive(Debug, Clone)]
struct Item {
    rect: Rect,
    key: u64,
    alive: bool,
}

/// Two-level (y-band × x-bucket) rectangle index.
#[derive(Debug)]
pub struct HierGrid {
    /// Origin of the band grid (core lower-left).
    x0: Dbu,
    y0: Dbu,
    /// Level 1: band height (typically the row height).
    band_h: Dbu,
    /// Level 2: x-bucket width within a band.
    bucket_w: Dbu,
    nx: usize,
    ny: usize,
    /// `ny × nx` bucket lists of item indices (row-major by band).
    buckets: Vec<Vec<u32>>,
    /// Item arena; removal marks dead and detaches from buckets.
    items: Vec<Item>,
    /// Buckets with at least one entry, for O(touched) clearing.
    touched: Vec<u32>,
    /// Per-item visit stamp, deduplicating multi-bucket hits per query.
    stamp: Vec<u32>,
    cur_stamp: u32,
}

impl HierGrid {
    /// An empty grid over `core` with `band_h`-tall bands and the default
    /// x fan-out.
    pub fn new(core: Rect, band_h: Dbu) -> Self {
        Self::with_buckets(core, band_h, DEFAULT_X_BUCKETS)
    }

    /// An empty grid with an explicit number of x-buckets per band.
    pub fn with_buckets(core: Rect, band_h: Dbu, nx: usize) -> Self {
        let band_h = band_h.max(1);
        let ny = ((core.yh - core.yl).max(1) as u64)
            .div_ceil(band_h as u64)
            .max(1) as usize;
        let nx = nx.max(1);
        let bucket_w = ((core.xh - core.xl).max(1) as u64)
            .div_ceil(nx as u64)
            .max(1) as Dbu;
        Self {
            x0: core.xl,
            y0: core.yl,
            band_h,
            bucket_w,
            nx,
            ny,
            buckets: vec![Vec::new(); nx * ny],
            items: Vec::new(),
            touched: Vec::new(),
            stamp: Vec::new(),
            cur_stamp: 0,
        }
    }

    /// Number of live rectangles.
    pub fn len(&self) -> usize {
        self.items.iter().filter(|i| i.alive).count()
    }

    /// Whether no rectangle is live.
    pub fn is_empty(&self) -> bool {
        self.items.iter().all(|i| !i.alive)
    }

    /// The inclusive band range of a rect's y-extent (clamped; degenerate
    /// y-extents map to the band of `yl`).
    fn band_range(&self, r: Rect) -> (usize, usize) {
        let last = self.ny - 1;
        let lo = ((r.yl - self.y0).max(0) / self.band_h) as usize;
        let hi = ((r.yh.max(r.yl + 1) - 1 - self.y0).max(0) / self.band_h) as usize;
        (lo.min(last), hi.min(last).max(lo.min(last)))
    }

    /// The inclusive x-bucket range of a rect's x-extent (clamped).
    fn bucket_range(&self, r: Rect) -> (usize, usize) {
        let last = self.nx - 1;
        let lo = ((r.xl - self.x0).max(0) / self.bucket_w) as usize;
        let hi = ((r.xh.max(r.xl + 1) - 1 - self.x0).max(0) / self.bucket_w) as usize;
        (lo.min(last), hi.min(last).max(lo.min(last)))
    }

    /// Inserts a rectangle with a caller-defined key, returning its id.
    pub fn insert(&mut self, rect: Rect, key: u64) -> ItemId {
        let idx = self.items.len() as u32;
        self.items.push(Item {
            rect,
            key,
            alive: true,
        });
        self.stamp.push(0);
        let (blo, bhi) = self.band_range(rect);
        let (xlo, xhi) = self.bucket_range(rect);
        for b in blo..=bhi {
            for x in xlo..=xhi {
                let bucket = &mut self.buckets[b * self.nx + x];
                if bucket.is_empty() {
                    self.touched.push((b * self.nx + x) as u32);
                }
                bucket.push(idx);
            }
        }
        ItemId(idx)
    }

    /// Removes a rectangle by id. Idempotent: removing twice is a no-op.
    pub fn remove(&mut self, id: ItemId) {
        let idx = id.0 as usize;
        if idx >= self.items.len() || !self.items[idx].alive {
            return;
        }
        self.items[idx].alive = false;
        let rect = self.items[idx].rect;
        let (blo, bhi) = self.band_range(rect);
        let (xlo, xhi) = self.bucket_range(rect);
        for b in blo..=bhi {
            for x in xlo..=xhi {
                self.buckets[b * self.nx + x].retain(|&i| i != id.0);
            }
        }
    }

    /// Whether any live rectangle strictly overlaps `probe` (touching
    /// edges do not conflict; degenerate rects overlap nothing).
    pub fn overlaps_any(&self, probe: Rect) -> bool {
        self.find_overlap(probe, |_| true).is_some()
    }

    /// The first live rectangle (in bucket traversal order) strictly
    /// overlapping `probe` whose key passes `filter`.
    pub fn find_overlap(&self, probe: Rect, mut filter: impl FnMut(u64) -> bool) -> Option<ItemId> {
        let (blo, bhi) = self.band_range(probe);
        let (xlo, xhi) = self.bucket_range(probe);
        for b in blo..=bhi {
            for x in xlo..=xhi {
                for &i in &self.buckets[b * self.nx + x] {
                    let it = &self.items[i as usize];
                    if it.alive && it.rect.overlaps(probe) && filter(it.key) {
                        return Some(ItemId(i));
                    }
                }
            }
        }
        None
    }

    /// Visits every live rectangle strictly overlapping `probe` whose key
    /// passes `filter`, exactly once each, in ascending id order.
    pub fn range_query(
        &mut self,
        probe: Rect,
        mut filter: impl FnMut(u64) -> bool,
        mut visit: impl FnMut(ItemId, Rect, u64),
    ) {
        self.cur_stamp = self.cur_stamp.wrapping_add(1);
        if self.cur_stamp == 0 {
            // Stamp wrapped: reset so stale stamps can't alias the new one.
            self.stamp.fill(0);
            self.cur_stamp = 1;
        }
        let (blo, bhi) = self.band_range(probe);
        let (xlo, xhi) = self.bucket_range(probe);
        // Collect ids first so visit order is bucket-layout independent.
        let mut hits: Vec<u32> = Vec::new();
        for b in blo..=bhi {
            for x in xlo..=xhi {
                for &i in &self.buckets[b * self.nx + x] {
                    if self.stamp[i as usize] == self.cur_stamp {
                        continue;
                    }
                    self.stamp[i as usize] = self.cur_stamp;
                    let it = &self.items[i as usize];
                    if it.alive && it.rect.overlaps(probe) && filter(it.key) {
                        hits.push(i);
                    }
                }
            }
        }
        hits.sort_unstable();
        for i in hits {
            let it = &self.items[i as usize];
            visit(ItemId(i), it.rect, it.key);
        }
    }

    /// The live rectangle nearest to `p` by Manhattan distance to the
    /// rect (0 inside), keyed `(distance, id)` so ties break on the lowest
    /// id — identical to a naive full scan. Expands outward over bucket
    /// rings and stops once the ring's lower-bound distance exceeds the
    /// incumbent.
    pub fn nearest(&self, p: Point, mut filter: impl FnMut(u64) -> bool) -> Option<(ItemId, Dbu)> {
        let px = (((p.x - self.x0).max(0)) / self.bucket_w).min(self.nx as Dbu - 1) as usize;
        let py = (((p.y - self.y0).max(0)) / self.band_h).min(self.ny as Dbu - 1) as usize;
        let max_ring = self.nx.max(self.ny);
        let mut best: Option<(Dbu, u32)> = None;
        for ring in 0..=max_ring {
            // Any rect in a bucket `ring` steps away is at least
            // `(ring-1) * min(bucket_w, band_h)` from p (its own bucket and
            // the adjacent ring can touch p's bucket edge).
            if let Some((bd, _)) = best {
                let lower = (ring as Dbu - 1).max(0) * self.bucket_w.min(self.band_h);
                if lower > bd {
                    break;
                }
            }
            let mut any_bucket = false;
            let xlo = px.saturating_sub(ring);
            let xhi = (px + ring).min(self.nx - 1);
            let ylo = py.saturating_sub(ring);
            let yhi = (py + ring).min(self.ny - 1);
            for b in ylo..=yhi {
                for x in xlo..=xhi {
                    // Ring perimeter only (interior was visited earlier).
                    let on_ring = b == ylo || b == yhi || x == xlo || x == xhi;
                    let is_outer =
                        b + ring == py || b == py + ring || x + ring == px || x == px + ring;
                    if ring > 0 && !(on_ring && is_outer) {
                        continue;
                    }
                    any_bucket = true;
                    for &i in &self.buckets[b * self.nx + x] {
                        let it = &self.items[i as usize];
                        if !it.alive || !filter(it.key) {
                            continue;
                        }
                        let dx = (it.rect.xl - p.x).max(p.x - (it.rect.xh - 1).max(it.rect.xl));
                        let dy = (it.rect.yl - p.y).max(p.y - (it.rect.yh - 1).max(it.rect.yl));
                        let d = dx.max(0) + dy.max(0);
                        let cand = (d, i);
                        if best.is_none_or(|b| cand < b) {
                            best = Some(cand);
                        }
                    }
                }
            }
            if !any_bucket
                && ring > 0
                && xlo == 0
                && ylo == 0
                && xhi == self.nx - 1
                && yhi == self.ny - 1
            {
                break;
            }
        }
        best.map(|(d, i)| (ItemId(i), d))
    }

    /// The rect of a live item.
    pub fn rect_of(&self, id: ItemId) -> Option<Rect> {
        self.items
            .get(id.0 as usize)
            .filter(|i| i.alive)
            .map(|i| i.rect)
    }

    /// Drops every item, retaining bucket and arena capacity.
    /// O(touched buckets), not O(grid).
    pub fn clear(&mut self) {
        for &b in &self.touched {
            self.buckets[b as usize].clear();
        }
        self.touched.clear();
        self.items.clear();
        self.stamp.clear();
    }
}
