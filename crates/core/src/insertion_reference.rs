//! Seed-faithful insertion evaluation, kept verbatim from before the
//! allocation-free rewrite of [`crate::insertion`].
//!
//! This module is **not** used by the legalizer. It exists for two reasons:
//!
//! 1. **Differential testing** — `best_insertion_reference` must return
//!    bit-identical results to [`crate::insertion::best_insertion`] on any
//!    input; `tests/insertion_diff.rs` checks this on randomized designs.
//! 2. **Benchmark baseline** — `crates/bench/src/bin/speedup.rs` measures
//!    the new hot path against this implementation (fresh `Vec`s and
//!    `PwlCurve`s per candidate, owned-`Vec` tuple dedup, `PwlCurve::sum`).
//!
//! Do not optimize this module; its value is being the fixed point of
//! comparison.

use crate::curve::PwlCurve;
use crate::insertion::{gp_ref, CostModel, Insertion, Line};
use crate::state::PlacementState;
use mcl_db::prelude::*;
use std::collections::HashSet;

/// Finds the best insertion of `target` within `window` using the original
/// allocating evaluation strategy. See the module docs; use
/// [`crate::insertion::best_insertion`] in real code.
pub fn best_insertion_reference(
    state: &PlacementState<'_>,
    target: CellId,
    window: Rect,
    model: &CostModel<'_>,
) -> Option<Insertion> {
    let d = state.design();
    let tc = &d.cells[target.0 as usize];
    let ct = d.type_of(target);
    let h = ct.height_rows as usize;
    let w_t = ct.width;
    let w_target = model.weights[target.0 as usize];
    let gp_x_snapped = d.tech.snap_x_nearest(d.core.xl, tc.gp.x);

    let row_lo = d.row_of_y(window.yl.max(d.core.yl)).unwrap_or(0);
    let row_hi_incl = d.row_of_y((window.yh - 1).min(d.core.yh - 1)).unwrap_or(0);
    let max_base = d.num_rows.checked_sub(h)?;

    let mut best: Option<Insertion> = None;
    let mut consider = |cand: Insertion, gp_y: Dbu, gp_x: Dbu, d: &Design| {
        let better = match &best {
            None => true,
            Some(b) => {
                let key = |c: &Insertion| {
                    (
                        c.cost,
                        (d.row_y(c.base_row) - gp_y).abs(),
                        (c.x - gp_x).abs(),
                        c.base_row,
                        c.x,
                    )
                };
                key(&cand) < key(b)
            }
        };
        if better {
            best = Some(cand);
        }
    };

    for base_row in row_lo..=row_hi_incl.min(max_base) {
        if d.row_y(base_row) + h as Dbu * d.tech.row_height > window.yh.min(d.core.yh) {
            continue;
        }
        if let Some(par) = ct.rail_parity {
            if !par.matches(base_row) {
                continue;
            }
        }
        if let Some(o) = model.oracle {
            if !o.h_rails_ok(tc.type_id, base_row) {
                continue;
            }
        }
        let y = d.row_y(base_row);
        let y_cost = w_target.saturating_mul((y - tc.gp.y).abs());

        let segmap = state.segments();
        let win_x = Interval::new(window.xl.max(d.core.xl), window.xh.min(d.core.xh));
        let mut regions: Vec<Interval> = state
            .segments_overlapping(base_row, tc.fence, win_x)
            .map(|i| segmap.segments()[i].x.intersect(win_x))
            .collect();
        for r in base_row + 1..base_row + h {
            let mut next = Vec::new();
            for region in &regions {
                for i in state.segments_overlapping(r, tc.fence, *region) {
                    let iv = segmap.segments()[i].x.intersect(*region);
                    if iv.len() >= w_t {
                        next.push(iv);
                    }
                }
            }
            regions = next;
            if regions.is_empty() {
                break;
            }
        }

        for region in regions {
            if region.len() < w_t {
                continue;
            }
            evaluate_region_reference(
                state,
                target,
                model,
                base_row,
                h,
                region,
                y_cost,
                gp_x_snapped,
                &mut consider,
            );
        }
    }
    best
}

#[allow(clippy::too_many_arguments)]
fn evaluate_region_reference(
    state: &PlacementState<'_>,
    target: CellId,
    model: &CostModel<'_>,
    base_row: usize,
    h: usize,
    region: Interval,
    y_cost: i64,
    gp_x_snapped: Dbu,
    consider: &mut impl FnMut(Insertion, Dbu, Dbu, &Design),
) {
    let d = state.design();
    let tc = &d.cells[target.0 as usize];
    let ct = d.type_of(target);
    let w_t = ct.width;
    let sw = d.tech.site_width;
    let snap_up = |x: Dbu| d.core.xl + (x - d.core.xl + sw - 1).div_euclid(sw) * sw;
    let snap_down = |x: Dbu| d.core.xl + (x - d.core.xl).div_euclid(sw) * sw;

    // Build lineups per row.
    let mut lineups: Vec<Vec<Line>> = Vec::with_capacity(h);
    for r in base_row..base_row + h {
        let mut line = Vec::new();
        for seg_idx in state.segments_overlapping(r, tc.fence, region) {
            for &cid in state.cells_in_segment(seg_idx) {
                let p = state.pos(cid).unwrap();
                let cct = d.type_of(cid);
                let span = Interval::new(p.x, p.x + cct.width);
                if !span.overlaps(region) {
                    continue;
                }
                let shiftable = cct.height_rows == 1 && region.covers(span);
                line.push(Line {
                    id: cid,
                    x: p.x,
                    w: cct.width,
                    lc: cct.edge_class.0,
                    rc: cct.edge_class.1,
                    shiftable,
                });
            }
        }
        line.sort_unstable_by_key(|l| l.x);
        lineups.push(line);
    }

    // Candidate anchors.
    let lo_limit = region.lo;
    let hi_limit = region.hi - w_t;
    let mut anchors: Vec<Dbu> = vec![gp_x_snapped.clamp(lo_limit, hi_limit)];
    for line in &lineups {
        for c in line {
            anchors.push(snap_up(c.x + c.w).clamp(lo_limit, hi_limit));
            anchors.push(snap_down(c.x - w_t).clamp(lo_limit, hi_limit));
        }
    }
    anchors.sort_unstable();
    anchors.dedup();
    const MAX_ANCHORS: usize = 96;
    if anchors.len() > MAX_ANCHORS {
        anchors.sort_unstable_by_key(|&a| ((a - gp_x_snapped).abs(), a));
        anchors.truncate(MAX_ANCHORS);
        anchors.sort_unstable();
    }

    let spacing = |a: u8, b: u8| -> Dbu {
        let s = d.tech.edge_spacing.spacing(a, b);
        (s + sw - 1).div_euclid(sw) * sw
    };

    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    for &anchor in &anchors {
        // Slot tuple by center comparison.
        let tuple: Vec<u32> = lineups
            .iter()
            .map(|line| line.partition_point(|l| 2 * l.x + l.w <= 2 * anchor + w_t) as u32)
            .collect();
        if !seen.insert(tuple.clone()) {
            continue;
        }

        // Chains and bounds.
        let mut lb = region.lo;
        let mut ub_x = region.hi - w_t;
        let mut curves: Vec<PwlCurve> = Vec::new();
        curves.push(PwlCurve::vee(
            gp_x_snapped,
            model.weights[target.0 as usize],
        ));
        let mut chain_info: Vec<(CellId, Dbu, bool)> = Vec::new();

        for (row_i, line) in lineups.iter().enumerate() {
            let slot = tuple[row_i] as usize;
            // Left chain.
            let mut off: Dbu = 0;
            let mut prev_lc = ct.edge_class.0;
            let mut wall: Option<(Dbu, u8)> = None;
            for j in (0..slot).rev() {
                let c = &line[j];
                if !c.shiftable {
                    wall = Some((c.x + c.w, c.rc));
                    break;
                }
                off += spacing(c.rc, prev_lc) + c.w;
                let (g, base) = gp_ref(d, model, c);
                let wgt = model.weights[c.id.0 as usize];
                let dv = if model.normalize { -base * wgt } else { 0 };
                if g >= c.x {
                    curves.push(PwlCurve::type_b(c.x + off, base, wgt).offset(dv));
                } else {
                    curves.push(PwlCurve::type_d(g + off, base, wgt).offset(dv));
                }
                chain_info.push((c.id, off, true));
                prev_lc = c.lc;
            }
            let (wall_edge, wall_rc) = wall.unwrap_or((region.lo, u8::MAX));
            let wall_sp = if wall_rc == u8::MAX {
                0
            } else {
                spacing(wall_rc, prev_lc)
            };
            lb = lb.max(wall_edge + wall_sp + off);

            // Right chain.
            let mut off: Dbu = w_t;
            let mut prev_rc = ct.edge_class.1;
            let mut rwall: Option<(Dbu, u8)> = None;
            let mut last_extent = off;
            for c in line.iter().skip(slot) {
                if !c.shiftable {
                    rwall = Some((c.x, c.lc));
                    break;
                }
                let off_c = off + spacing(prev_rc, c.lc);
                let (g, base) = gp_ref(d, model, c);
                let wgt = model.weights[c.id.0 as usize];
                let dv = if model.normalize { -base * wgt } else { 0 };
                if g <= c.x {
                    curves.push(PwlCurve::type_a(c.x - off_c, base, wgt).offset(dv));
                } else {
                    curves.push(PwlCurve::type_c(c.x - off_c, base, wgt).offset(dv));
                }
                chain_info.push((c.id, off_c, false));
                off = off_c + c.w;
                prev_rc = c.rc;
                last_extent = off;
            }
            let (rwall_edge, rwall_lc) = rwall.unwrap_or((region.hi, u8::MAX));
            let rwall_sp = if rwall_lc == u8::MAX {
                0
            } else {
                spacing(prev_rc, rwall_lc)
            };
            ub_x = ub_x.min(rwall_edge - rwall_sp - last_extent);
        }

        let lb = snap_up(lb);
        let ub = snap_down(ub_x);
        if lb > ub {
            continue;
        }

        let total = PwlCurve::sum(curves);
        let prefer = gp_x_snapped.clamp(lb, ub);
        let Some((x0, _)) = total.min_on(lb, ub, prefer) else {
            continue;
        };

        // Routability-aware candidate positions.
        let mut cand_xs = vec![x0];
        if let Some(o) = model.oracle {
            if o.v_violations(tc.type_id, base_row, x0) > 0 {
                if let Some(xr) = o.clear_x_right(tc.type_id, base_row, x0, ub) {
                    cand_xs.push(xr);
                }
                if let Some(xl) = o.clear_x_left(tc.type_id, base_row, x0, lb) {
                    cand_xs.push(xl);
                }
            }
        }
        for x in cand_xs {
            let mut cost = total.eval(x).saturating_add(y_cost);
            if let Some(o) = model.oracle {
                cost = cost
                    .saturating_add(
                        model
                            .rail_penalty
                            .saturating_mul(o.v_violations(tc.type_id, base_row, x) as i64),
                    )
                    .saturating_add(
                        model
                            .io_penalty
                            .saturating_mul(o.io_overlaps(tc.type_id, base_row, x) as i64),
                    );
            }
            // Reconstruct shifts at this x.
            let mut shifts = Vec::new();
            let mut ok = true;
            for &(cid, off, is_left) in &chain_info {
                let cur = state.pos(cid).unwrap().x;
                let new_x = if is_left {
                    cur.min(x - off)
                } else {
                    cur.max(x + off)
                };
                if new_x != cur {
                    if (new_x - d.core.xl) % sw != 0 {
                        ok = false;
                        break;
                    }
                    shifts.push((cid, new_x));
                }
            }
            if !ok {
                continue;
            }
            consider(
                Insertion {
                    base_row,
                    x,
                    cost,
                    shifts,
                },
                tc.gp.y,
                gp_x_snapped,
                d,
            );
        }
    }
}
