//! Deterministic fault-injection harness (`faultinject` feature).
//!
//! A [`FaultPlan`] is a set of armed [`FaultSite`]s with per-site fire
//! budgets. Sites are keyed by *semantic identity* (cell id, stage name),
//! never by invocation order, thread id, wall clock or RNG state, so a
//! plan fires at exactly the same algorithmic points regardless of thread
//! count — the property the chaos suite leans on to assert bit-identical
//! containment behavior at 1/2/4 threads.
//!
//! Without the `faultinject` feature the plan type still compiles (so
//! `LegalizerConfig` keeps one shape) but no constructor can arm a site:
//! every probe is a `None`-check that the optimizer folds away.

use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Fire budget meaning "every time" (never decremented to zero).
pub const PERSISTENT: u32 = u32::MAX;

/// A semantic point in the pipeline where a fault can be injected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultSite {
    /// Panic inside the insertion evaluation of one cell (worker or
    /// coordinator, whichever evaluates it — the outcome is identical).
    MglEval {
        /// Cell id whose evaluation panics.
        cell: u32,
    },
    /// Panic while committing one cell's accepted insertion, after some
    /// sibling moves may already be staged — the nastiest partial-mutation
    /// spot in the pipeline.
    MglApply {
        /// Cell id whose commit panics.
        cell: u32,
    },
    /// Panic at the entry of a whole stage.
    StagePanic {
        /// Stage name (`"mgl"`, `"maxdisp"`, `"fixed_order"`).
        stage: &'static str,
    },
    /// Force the stage-boundary deadline check to report expiry without
    /// waiting for wall-clock time to pass.
    StageDeadline {
        /// Stage name.
        stage: &'static str,
    },
    /// Simulate an allocation failure at stage entry (surfaces as
    /// `LegalizeError::ResourceExhausted`).
    StageAlloc {
        /// Stage name.
        stage: &'static str,
    },
    /// Server layer (`mcl-serve`): force the admission decision to lose a
    /// capacity race — the job is rejected with `RETRY_AFTER` even though
    /// the queue had room when the client observed it.
    ServeAdmission,
    /// Server layer: the client connection drops after the job is accepted
    /// but before the final response line is written. The job must still
    /// complete, journal `DONE` and persist its report.
    ServeDisconnect,
    /// Server layer: the write-ahead journal append fails at admission.
    /// The daemon must fail the job closed (classed response, no enqueue)
    /// rather than run work it could not record.
    ServeJournal,
}

struct Arm {
    site: FaultSite,
    remaining: AtomicU32,
}

/// A deterministic set of armed fault sites, shared by every thread of a
/// run via `Arc` so fire budgets are decremented exactly once per fire no
/// matter which thread hits the site.
#[derive(Default)]
pub struct FaultPlan {
    /// When set, the plan only fires for the design with this name —
    /// the lever batch chaos tests use to poison one job out of four.
    design: Option<String>,
    arms: Vec<Arm>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("design", &self.design)
            .field("arms", &self.arms.len())
            .finish()
    }
}

/// Plans are compared by identity: two configs are "equal" only when they
/// share the same plan instance (fire budgets are mutable state, so value
/// equality would be meaningless).
impl PartialEq for FaultPlan {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self, other)
    }
}

#[cfg(feature = "faultinject")]
impl FaultPlan {
    /// An empty plan (fires nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Restrict the plan to one design by name; probes from any other
    /// design never fire. Returns `self` for chaining.
    #[must_use]
    pub fn for_design(mut self, name: &str) -> Self {
        self.design = Some(name.to_string());
        self
    }

    /// Arm `site` to fire `times` times ([`PERSISTENT`] = every probe).
    #[must_use]
    pub fn arm(mut self, site: FaultSite, times: u32) -> Self {
        self.arms.push(Arm {
            site,
            remaining: AtomicU32::new(times),
        });
        self
    }

    /// Arm `site` to fire exactly once.
    #[must_use]
    pub fn arm_once(self, site: FaultSite) -> Self {
        self.arm(site, 1)
    }

    /// Arm `site` to fire on every probe.
    #[must_use]
    pub fn arm_persistent(self, site: FaultSite) -> Self {
        self.arm(site, PERSISTENT)
    }

    /// Wraps the plan for [`crate::LegalizerConfig::faults`].
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }
}

impl FaultPlan {
    /// Probes the plan: returns `true` (consuming one unit of the site's
    /// budget, unless persistent) when `site` is armed for `design`.
    pub fn fires(&self, design: &str, site: &FaultSite) -> bool {
        if let Some(d) = &self.design {
            if d != design {
                return false;
            }
        }
        for arm in &self.arms {
            if arm.site == *site {
                let fired = arm
                    .remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| match v {
                        0 => None,
                        PERSISTENT => Some(PERSISTENT),
                        n => Some(n - 1),
                    })
                    .is_ok();
                if fired {
                    return true;
                }
            }
        }
        false
    }
}

/// Probes an optional shared plan; the `None` fast path is one branch.
pub(crate) fn fires(plan: Option<&Arc<FaultPlan>>, design: &str, site: &FaultSite) -> bool {
    match plan {
        Some(p) => p.fires(design, site),
        None => false,
    }
}

/// Panics with the canonical deterministic message for an injected fault.
/// Kept as one function so chaos assertions can match the prefix.
pub(crate) fn injected_panic(site: &FaultSite) -> ! {
    panic!("injected fault at {site:?}")
}

/// Deterministically corrupts a Bookshelf (or any line-oriented) text
/// bundle for parser-fault tests: the middle line is replaced by
/// unparsable garbage. No RNG — same input, same corruption.
pub fn corrupt_text(text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return "%%corrupted%%".to_string();
    }
    let mid = lines.len() / 2;
    let mut out = String::with_capacity(text.len() + 16);
    for (i, line) in lines.iter().enumerate() {
        if i == mid {
            out.push_str("%%corrupted line : : :%%");
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[cfg(all(test, feature = "faultinject"))]
mod tests {
    use super::*;

    #[test]
    fn one_shot_budget_is_consumed() {
        let p = FaultPlan::new().arm_once(FaultSite::MglEval { cell: 3 });
        let site = FaultSite::MglEval { cell: 3 };
        assert!(p.fires("d", &site));
        assert!(!p.fires("d", &site));
        assert!(!p.fires("d", &FaultSite::MglEval { cell: 4 }));
    }

    #[test]
    fn persistent_never_exhausts() {
        let p = FaultPlan::new().arm_persistent(FaultSite::StagePanic { stage: "mgl" });
        let site = FaultSite::StagePanic { stage: "mgl" };
        for _ in 0..100 {
            assert!(p.fires("d", &site));
        }
    }

    #[test]
    fn design_filter_gates_fires() {
        let p = FaultPlan::new()
            .for_design("victim")
            .arm_persistent(FaultSite::StagePanic { stage: "mgl" });
        let site = FaultSite::StagePanic { stage: "mgl" };
        assert!(!p.fires("bystander", &site));
        assert!(p.fires("victim", &site));
    }

    #[test]
    fn corruption_is_deterministic_and_corrupting() {
        let text = "a 1\nb 2\nc 3\n";
        let c1 = corrupt_text(text);
        let c2 = corrupt_text(text);
        assert_eq!(c1, c2);
        assert_ne!(c1, text);
        assert!(c1.contains("%%corrupted"));
    }
}
