//! Lightweight performance instrumentation for MGL runs.
//!
//! All fields are integers (nanoseconds or event counts) so the containing
//! [`crate::mgl::MglStats`] can stay `Eq`-comparable; note that `MglStats`
//! equality deliberately ignores these timings (two runs with identical
//! placements but different wall-clock are equal).

use crate::insertion::ScratchStats;

/// Per-stage wall-clock and throughput counters of one MGL run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfStats {
    /// Scheduler rounds executed (1 for the serial path... one per
    /// select/evaluate/apply cycle in the parallel scheduler; for the serial
    /// path, one per target cell).
    pub rounds: u64,
    /// Windows evaluated (`best_insertion` calls, including re-evaluations
    /// of expanded windows).
    pub windows_evaluated: u64,
    /// Wall-clock nanoseconds spent selecting non-overlapping windows.
    pub select_nanos: u64,
    /// Wall-clock nanoseconds of the evaluate phase (as seen by the
    /// coordinating thread, i.e. elapsed time, not CPU time).
    pub eval_nanos: u64,
    /// CPU nanoseconds spent inside insertion evaluation, summed over all
    /// workers (≥ `eval_nanos` when parallelism is effective).
    pub eval_cpu_nanos: u64,
    /// Wall-clock nanoseconds applying winning insertions.
    pub apply_nanos: u64,
    /// Wall-clock nanoseconds in the whole-design fallback scan.
    pub fallback_nanos: u64,
    /// Wall-clock nanoseconds of the full MGL run.
    pub total_nanos: u64,
    /// Merged hot-path counters from every worker's insertion scratch.
    pub scratch: ScratchStats,
}

impl PerfStats {
    /// Windows evaluated per second of total wall-clock (0 when untimed).
    pub fn windows_per_sec(&self) -> f64 {
        if self.total_nanos == 0 {
            return 0.0;
        }
        self.windows_evaluated as f64 / (self.total_nanos as f64 / 1e9)
    }

    /// Effective evaluation parallelism: CPU time / wall time of the
    /// evaluate phase (≈ thread count when scaling is perfect).
    pub fn eval_parallelism(&self) -> f64 {
        if self.eval_nanos == 0 {
            return 0.0;
        }
        self.eval_cpu_nanos as f64 / self.eval_nanos as f64
    }

    /// Share of candidate slot tuples skipped by the dedup set.
    pub fn dedup_hit_rate(&self) -> f64 {
        let total = self.scratch.anchors;
        if total == 0 {
            return 0.0;
        }
        self.scratch.dedup_hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut p = PerfStats {
            windows_evaluated: 500,
            total_nanos: 2_000_000_000,
            eval_nanos: 1_000_000_000,
            eval_cpu_nanos: 3_500_000_000,
            ..Default::default()
        };
        p.scratch.anchors = 100;
        p.scratch.dedup_hits = 25;
        assert!((p.windows_per_sec() - 250.0).abs() < 1e-9);
        assert!((p.eval_parallelism() - 3.5).abs() < 1e-9);
        assert!((p.dedup_hit_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_safe() {
        let p = PerfStats::default();
        assert_eq!(p.windows_per_sec(), 0.0);
        assert_eq!(p.eval_parallelism(), 0.0);
        assert_eq!(p.dedup_hit_rate(), 0.0);
    }
}
