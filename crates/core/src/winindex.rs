//! Window-overlap index for the scheduler's `L_p` selection.
//!
//! The parallel scheduler's `L_p` selection must answer "does this window
//! overlap any already-selected window?" once per pending cell per round.
//! The naive scan is O(|selected|) per query — quadratic per round. This
//! index is a thin façade over the two-level [`HierGrid`] (y-bands deepened
//! with x-buckets, see [`crate::spatial`]): a query only inspects windows
//! whose band *and* x-bucket ranges can possibly intersect the probe's,
//! which keeps selection near-linear even when a round selects tens of
//! thousands of windows across a million-cell core.
//!
//! The grid test is purely a pruning step: entries store the full rectangle
//! and every candidate is confirmed with the exact [`Rect::overlaps`]
//! predicate (strict overlap — touching edges do not conflict), so results
//! are identical to the naive scan. Selection order — and therefore every
//! replay log and golden — is unchanged by the deepening.

use crate::spatial::HierGrid;
use mcl_db::prelude::*;

/// Spatial index over a round's selected windows.
#[derive(Debug)]
pub struct WindowIndex {
    grid: HierGrid,
}

impl WindowIndex {
    /// An empty index covering `core`, with one band per `band_h` of height
    /// (pass the row height).
    pub fn new(core: Rect, band_h: Dbu) -> Self {
        Self {
            grid: HierGrid::new(core, band_h),
        }
    }

    /// Whether `w` strictly overlaps any inserted window.
    pub fn overlaps_any(&self, w: Rect) -> bool {
        self.grid.overlaps_any(w)
    }

    /// Inserts a window.
    pub fn insert(&mut self, w: Rect) {
        self.grid.insert(w, 0);
    }

    /// Removes all windows, retaining bucket capacity. O(buckets touched).
    pub fn clear(&mut self) {
        self.grid.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Rect {
        Rect::new(0, 0, 3000, 1800)
    }

    #[test]
    fn empty_overlaps_nothing() {
        let idx = WindowIndex::new(core(), 90);
        assert!(!idx.overlaps_any(Rect::new(0, 0, 3000, 1800)));
    }

    #[test]
    fn matches_naive_scan() {
        let mut idx = WindowIndex::new(core(), 90);
        let mut naive: Vec<Rect> = Vec::new();
        // Deterministic pseudo-random rectangles.
        let mut s = 0x1234_5678_9abc_def0u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let make = |rng: &mut dyn FnMut() -> u64| {
            let xl = (rng() % 2800) as Dbu;
            let yl = (rng() % 1600) as Dbu;
            let w = 20 + (rng() % 400) as Dbu;
            let h = 30 + (rng() % 350) as Dbu;
            Rect::new(xl, yl, (xl + w).min(3000), (yl + h).min(1800))
        };
        for i in 0..400 {
            let probe = make(&mut rng);
            let expect = naive.iter().any(|r| r.overlaps(probe));
            assert_eq!(idx.overlaps_any(probe), expect, "probe {i}: {probe:?}");
            if !expect {
                idx.insert(probe);
                naive.push(probe);
            }
        }
        assert!(naive.len() > 10, "test must actually insert windows");
    }

    #[test]
    fn touching_edges_do_not_overlap() {
        let mut idx = WindowIndex::new(core(), 90);
        idx.insert(Rect::new(100, 100, 200, 200));
        // Abutting on each side: strict overlap is false.
        assert!(!idx.overlaps_any(Rect::new(200, 100, 300, 200)));
        assert!(!idx.overlaps_any(Rect::new(0, 100, 100, 200)));
        assert!(!idx.overlaps_any(Rect::new(100, 200, 200, 300)));
        assert!(!idx.overlaps_any(Rect::new(100, 0, 200, 100)));
        // One unit of intrusion overlaps.
        assert!(idx.overlaps_any(Rect::new(199, 100, 300, 200)));
    }

    #[test]
    fn clear_resets() {
        let mut idx = WindowIndex::new(core(), 90);
        idx.insert(Rect::new(0, 0, 500, 500));
        assert!(idx.overlaps_any(Rect::new(100, 100, 200, 200)));
        idx.clear();
        assert!(!idx.overlaps_any(Rect::new(100, 100, 200, 200)));
        // Reusable after clear.
        idx.insert(Rect::new(1000, 1000, 1200, 1100));
        assert!(idx.overlaps_any(Rect::new(1100, 1050, 1300, 1200)));
    }

    #[test]
    fn windows_taller_than_core_are_clamped() {
        let mut idx = WindowIndex::new(core(), 90);
        // window_for clamps to the core, but be defensive about inputs at
        // the boundary.
        idx.insert(Rect::new(0, 0, 3000, 1800));
        assert!(idx.overlaps_any(Rect::new(2999, 1799, 3000, 1800)));
    }
}
