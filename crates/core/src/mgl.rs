//! Multi-row global legalization — stage 1 (§3.1, Algorithm 1).
//!
//! Cells are legalized sequentially. For each target cell a window around
//! its GP location is searched with [`crate::insertion::best_insertion`];
//! failed windows expand geometrically; cells that still fail fall back to a
//! whole-design scan for the nearest feasible gap (guaranteeing completion
//! whenever capacity exists).

use crate::config::{CellOrder, LegalizerConfig, WeightMode};
use crate::error::{FailureClass, FailureRecord, LegalizeError};
use crate::faultinject::FaultSite;
use crate::insertion::{best_insertion_in, CostModel, Insertion, InsertionScratch};
use crate::routability::RoutOracle;
use crate::state::{PlaceError, PlacementState};
use mcl_db::prelude::*;
use mcl_obs::{clock::Stopwatch, CounterKind, HistoKind, Meter, SpanKind};

/// Statistics of one MGL run.
///
/// Equality compares the *placement outcome* counters only; [`Self::perf`]
/// and [`Self::obs`] carry wall-clock data that legitimately differs
/// between otherwise identical runs and are excluded from `==`.
#[derive(Debug, Clone, Default)]
pub struct MglStats {
    /// Cells placed through window insertion.
    pub placed_in_window: usize,
    /// Total window expansions performed.
    pub expansions: usize,
    /// Cells placed by the global fallback scan.
    pub fallbacks: usize,
    /// Cells that could not be placed at all.
    pub failed: usize,
    /// Contained per-cell evaluation failures that were retried (the
    /// deterministic repair pass; DESIGN.md §11). Zero on fault-free runs.
    pub retries: u64,
    /// Cells quarantined (left unplaced) after the retry budget ran out.
    pub quarantined: usize,
    /// Failure rows for quarantines and rejected fallback placements,
    /// surfaced into `LegalizeStats` and the RunReport `failures` array.
    pub failures: Vec<FailureRecord>,
    /// Per-stage timings and throughput counters (not part of equality).
    pub perf: crate::perf::PerfStats,
    /// Structured spans/counters/histograms (not part of equality).
    pub obs: Meter,
}

impl PartialEq for MglStats {
    fn eq(&self, other: &Self) -> bool {
        self.placed_in_window == other.placed_in_window
            && self.expansions == other.expansions
            && self.fallbacks == other.fallbacks
            && self.failed == other.failed
            && self.retries == other.retries
            && self.quarantined == other.quarantined
            && self.failures == other.failures
    }
}

impl Eq for MglStats {}

/// Computes per-cell cost weights according to the weight mode.
///
/// [`WeightMode::ContestAverage`] weighs every cell by `m / |C_h|` so the
/// summed objective matches the height-averaged metric of Eq. 2 up to a
/// constant factor.
pub fn compute_weights(design: &Design, mode: WeightMode) -> Vec<i64> {
    match mode {
        WeightMode::Uniform => vec![1; design.cells.len()],
        WeightMode::ContestAverage => {
            let h_max = design.max_height_rows() as usize;
            let mut counts = vec![0i64; h_max + 1];
            let mut m = 0i64;
            for id in design.movable_cells() {
                counts[design.type_of(id).height_rows as usize] += 1;
                m += 1;
            }
            design
                .cells
                .iter()
                .map(|c| {
                    let h = design.cell_types[c.type_id.0 as usize].height_rows as usize;
                    if c.fixed || counts[h] == 0 {
                        1
                    } else {
                        (m / counts[h]).max(1)
                    }
                })
                .collect()
        }
    }
}

/// The deterministic order MGL processes cells in.
pub fn cell_order(design: &Design, order: CellOrder) -> Vec<CellId> {
    let mut ids: Vec<CellId> = design.movable_cells().collect();
    let order = match order {
        CellOrder::Auto => {
            if design.density() > 0.82 {
                CellOrder::HeightThenShuffled
            } else {
                CellOrder::GpX
            }
        }
        o => o,
    };
    match order {
        CellOrder::Auto => unreachable!("resolved above"),
        CellOrder::Id => {}
        CellOrder::GpX => {
            ids.sort_by_key(|&id| {
                let c = &design.cells[id.0 as usize];
                (c.gp.x, c.gp.y, id.0)
            });
        }
        CellOrder::HeightThenWidth => {
            ids.sort_by_key(|&id| {
                let c = &design.cells[id.0 as usize];
                let ct = &design.cell_types[c.type_id.0 as usize];
                (
                    std::cmp::Reverse(ct.height_rows),
                    std::cmp::Reverse(ct.width),
                    c.gp.x,
                    c.gp.y,
                    id.0,
                )
            });
        }
        CellOrder::HeightThenShuffled => {
            // splitmix64 of the id: deterministic, input-order independent.
            let mix = |mut z: u64| {
                z = z.wrapping_add(0x9E3779B97F4A7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            ids.sort_by_key(|&id| {
                let c = &design.cells[id.0 as usize];
                let ct = &design.cell_types[c.type_id.0 as usize];
                (std::cmp::Reverse(ct.height_rows), mix(id.0 as u64), id.0)
            });
        }
    }
    ids
}

/// The search window around a cell's GP location after `n` expansions,
/// clamped to the core.
pub fn window_for(design: &Design, cell: CellId, config: &LegalizerConfig, n: usize) -> Rect {
    let c = &design.cells[cell.0 as usize];
    let ct = design.type_of(cell);
    let rh = design.tech.row_height;
    let sw = design.tech.site_width;
    let cx = c.gp.x + ct.width / 2;
    let cy = c.gp.y + ct.height_rows as Dbu * rh / 2;
    let hw = (config.window_sites_after(n) as Dbu * sw).max(ct.width / 2 + sw);
    let hh = (config.window_rows_after(n) as Dbu * rh).max(ct.height_rows as Dbu * rh / 2 + rh);
    Rect::new(
        (cx - hw).max(design.core.xl),
        (cy - hh).max(design.core.yl),
        (cx + hw).min(design.core.xh),
        (cy + hh).min(design.core.yh),
    )
}

/// Applies an insertion to the state: shifts local cells (in an order that
/// keeps intermediate states overlap-free), then places the target.
/// Allocates two small ordering buffers; hot loops should use
/// [`apply_insertion_with`] with a pooled scratch instead.
pub fn apply_insertion(state: &mut PlacementState<'_>, target: CellId, ins: &Insertion) {
    let mut scratch = InsertionScratch::new();
    apply_insertion_with(state, target, ins, &mut scratch);
}

/// [`apply_insertion`] with the shift-ordering buffers drawn from `scratch`,
/// so applying stays allocation-free in steady state.
pub fn apply_insertion_with(
    state: &mut PlacementState<'_>,
    target: CellId,
    ins: &Insertion,
    scratch: &mut InsertionScratch,
) {
    let d = state.design();
    // Left-moving cells first (ascending current x), then right-moving
    // (descending current x): no transient overlap.
    let (mut left, mut right) = scratch.take_apply_buffers();
    for &(cid, nx) in &ins.shifts {
        // A shift can only target a placed cell; an unplaced one (impossible
        // for a well-formed insertion) has nothing to move.
        let Some(cur) = state.pos(cid).map(|p| p.x) else {
            continue;
        };
        if nx < cur {
            left.push((cid, nx));
        } else if nx > cur {
            right.push((cid, nx));
        }
    }
    // Every retained cid is placed (filtered above); the fallback key only
    // keeps the sort total without a panic path.
    left.sort_by_key(|&(cid, _)| state.pos(cid).map_or(Dbu::MAX, |p| p.x));
    right.sort_by_key(|&(cid, _)| std::cmp::Reverse(state.pos(cid).map_or(Dbu::MIN, |p| p.x)));
    for &(cid, nx) in left.iter().chain(right.iter()) {
        state.shift_x(cid, nx);
    }
    scratch.restore_apply_buffers(left, right);
    let y = d.row_y(ins.base_row);
    if let Err(e) = state.place(target, Point::new(ins.x, y)) {
        // An unplaceable insertion is corrupted eval output; panicking here
        // is the designed fault signal, contained at the Apply-replay and
        // stage catch_unwind boundaries.
        panic!("insertion must be placeable: {e}");
    }
}

/// Runs MGL sequentially over all unplaced movable cells.
pub fn run_serial(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    weights: &[i64],
    oracle: Option<&RoutOracle<'_>>,
) -> MglStats {
    let mut scratch = InsertionScratch::new();
    run_serial_with_scratch(state, config, weights, oracle, &mut scratch)
}

/// [`run_serial`] with a caller-owned scratch, so the engine can reuse one
/// warmed scratch across a whole batch of designs. The scratch's work
/// counters are taken (and reset) into the returned stats.
pub fn run_serial_with_scratch(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    weights: &[i64],
    oracle: Option<&RoutOracle<'_>>,
    scratch: &mut InsertionScratch,
) -> MglStats {
    let t_total = Stopwatch::start();
    let design = state.design();
    let order = cell_order(design, config.order);
    let model = CostModel {
        reference: config.reference,
        normalize: config.normalize_curves,
        weights,
        oracle,
        io_penalty: config.io_penalty,
        rail_penalty: config.rail_penalty,
    };
    let mut stats = MglStats::default();
    for cell in order {
        if state.pos(cell).is_some() {
            continue;
        }
        stats.perf.rounds += 1;
        let mut done = false;
        let mut quarantined = false;
        let t_window = Stopwatch::start();
        for n in 0..=config.max_expansions {
            let window = window_for(design, cell, config, n);
            let t_eval = Stopwatch::start();
            let Ok(ins) = eval_contained(state, cell, window, &model, scratch, config, &mut stats)
            else {
                quarantined = true;
                break;
            };
            let dt = t_eval.elapsed_nanos();
            stats.perf.eval_nanos += dt;
            stats.perf.eval_cpu_nanos += dt;
            stats.perf.windows_evaluated += 1;
            stats.obs.record_span(SpanKind::InsertionEval, dt, 0);
            stats.obs.observe(HistoKind::InsertionEvalNanos, dt);
            stats.obs.add(CounterKind::WindowsEvaluated, 1);
            if let Some(ins) = ins {
                let site = FaultSite::MglApply { cell: cell.0 };
                if crate::faultinject::fires(config.faults.as_ref(), &design.name, &site) {
                    crate::faultinject::injected_panic(&site);
                }
                let t_apply = Stopwatch::start();
                apply_insertion_with(state, cell, &ins, scratch);
                stats.perf.apply_nanos += t_apply.elapsed_nanos();
                stats.placed_in_window += 1;
                done = true;
                break;
            }
            // Stop expanding once the window covers the whole core.
            if window == design.core && n > 0 {
                break;
            }
            // The next iteration (if any) retries with a grown window:
            // count that expansion when it is performed, so retries that
            // end in fallback are counted too.
            if n < config.max_expansions {
                stats.expansions += 1;
                stats.obs.add(CounterKind::WindowsExpanded, 1);
            }
        }
        stats
            .obs
            .record_span(SpanKind::Window, t_window.elapsed_nanos(), 0);
        if quarantined {
            // Quarantined cells take no fallback either: they stay
            // unplaced, and the failure row already explains why.
            continue;
        }
        if !done {
            // Last resorts: nearest gap honoring routability, then nearest
            // gap accepting pin violations (a placed cell with a soft
            // violation beats an unplaced cell).
            let t_fb = Stopwatch::start();
            stats.obs.add(CounterKind::FallbackScans, 1);
            let p = match fallback_scan(state, cell, oracle) {
                Some(p) => Some(p),
                None => {
                    stats.obs.add(CounterKind::FallbackScans, 1);
                    fallback_scan(state, cell, None)
                }
            };
            match p {
                Some(p) => match state.place(cell, p) {
                    Ok(()) => stats.fallbacks += 1,
                    Err(e) => record_fallback_reject(&mut stats, cell, p, &e),
                },
                None => stats.failed += 1,
            }
            let fb = t_fb.elapsed_nanos();
            stats.perf.fallback_nanos += fb;
            stats.obs.record_span(SpanKind::FallbackScan, fb, 0);
        }
    }
    stats.perf.scratch = std::mem::take(&mut scratch.stats);
    record_scratch_counters(&mut stats.obs, &stats.perf.scratch);
    stats.perf.total_nanos = t_total.elapsed_nanos();
    stats
}

/// Serial-path guarded evaluation with the same deterministic
/// retry/quarantine semantics as the parallel scheduler's repair pass.
/// Only engaged while a fault plan is armed: without one, the evaluator is
/// called directly and a (hypothetical) real panic propagates to the
/// pipeline's stage boundary, which rolls back and classifies it.
/// `Err(())` means the cell was quarantined and must be skipped entirely.
fn eval_contained(
    state: &PlacementState<'_>,
    cell: CellId,
    window: Rect,
    model: &CostModel<'_>,
    scratch: &mut InsertionScratch,
    config: &LegalizerConfig,
    stats: &mut MglStats,
) -> Result<Option<Insertion>, ()> {
    if config.faults.is_none() {
        return Ok(best_insertion_in(state, cell, window, model, scratch));
    }
    let mut attempts = 0u32;
    loop {
        let last = match crate::scheduler::eval_job(
            state,
            cell,
            window,
            model,
            scratch,
            config.faults.as_ref(),
        ) {
            Ok(r) => return Ok(r),
            Err(m) => m,
        };
        if attempts >= config.fault_retry_budget {
            stats.quarantined += 1;
            stats.failures.push(
                LegalizeError::CellQuarantined {
                    stage: "mgl",
                    cell: cell.0,
                    retries: attempts,
                    message: last,
                }
                .to_record(),
            );
            return Err(());
        }
        attempts += 1;
        stats.retries += 1;
    }
}

/// Records a fallback position the state rejected: the cell counts as
/// failed (with a typed failure row) instead of panicking the run — the
/// invariant "fallback positions are free" is now audited, not assumed.
pub(crate) fn record_fallback_reject(stats: &mut MglStats, cell: CellId, p: Point, e: &PlaceError) {
    stats.failed += 1;
    stats.failures.push(FailureRecord {
        stage: "mgl",
        class: FailureClass::Degradable,
        message: format!(
            "fallback for cell {} at ({}, {}) rejected: {e}",
            cell.0, p.x, p.y
        ),
    });
}

/// Mirrors the insertion-eval scratch counters into the typed obs counters.
pub(crate) fn record_scratch_counters(obs: &mut Meter, s: &crate::insertion::ScratchStats) {
    obs.add(CounterKind::AlignedRegions, s.regions);
    obs.add(CounterKind::InsertionAnchors, s.anchors);
    obs.add(CounterKind::DedupHits, s.dedup_hits);
    obs.add(CounterKind::CurveMinimizations, s.curve_mins);
}

/// Whole-design scan: nearest gap (no pushing) that fits the cell, honoring
/// fences, parity and horizontal rails. Used as a last resort.
///
/// Rows are visited outward from the cell's GP y (lower row first on equal
/// distance), so the scan stops as soon as a row's y displacement alone can
/// no longer beat the incumbent; within a row, segments whose x interval
/// cannot beat the incumbent either are pruned before the gap walk. On
/// cost ties between rows this prefers the row closer to the GP.
pub fn fallback_scan(
    state: &PlacementState<'_>,
    cell: CellId,
    oracle: Option<&RoutOracle<'_>>,
) -> Option<Point> {
    let d = state.design();
    let c = &d.cells[cell.0 as usize];
    let ct = d.type_of(cell);
    let h = ct.height_rows as usize;
    let w = ct.width;
    let sw = d.tech.site_width;
    let snap_up = |x: Dbu| d.core.xl + (x - d.core.xl + sw - 1).div_euclid(sw) * sw;
    let snap_down = |x: Dbu| d.core.xl + (x - d.core.xl).div_euclid(sw) * sw;
    let max_sp = d.tech.edge_spacing.max_spacing();
    let pad = (max_sp + sw - 1).div_euclid(sw) * sw;

    let rows_total = d.num_rows.saturating_sub(h - 1);
    if rows_total == 0 {
        return None;
    }
    // Two-pointer outward walk from the base row nearest the GP; visit
    // order is nondecreasing in |row_y − gp.y|.
    let rh = d.tech.row_height;
    let raw = (c.gp.y - d.core.yl).div_euclid(rh);
    let mut down: i64 = raw.min(rows_total as i64 - 1);
    let mut up: usize = if down < 0 { 0 } else { down as usize + 1 };

    // For multi-row cells every candidate is re-checked on the upper rows
    // via a placement probe. Conflicting occupants are located by binary
    // search on the SoA x column instead of filtering the whole row.
    let candidate_ok = |base_row: usize, x: Dbu| -> bool {
        if h > 1 {
            let span = Interval::new(x, x + w);
            for r in base_row..base_row + h {
                let Some(si) = state.find_covering_segment(r, c.fence, span) else {
                    return false;
                };
                if !state
                    .occupants_overlapping(si, x - pad, x + w + pad)
                    .is_empty()
                {
                    return false;
                }
            }
        }
        true
    };

    let mut best: Option<(i64, Point)> = None;
    // Upper-bound seed (pruning only): probe a handful of gaps around the
    // GP x in each row outward until any feasible candidate turns up, and
    // enter it as a pseudo-incumbent at `cost + 1`. Every bound below
    // compares strictly, so the seed prunes strictly-greater costs while
    // keeping ties admissible, and the canonical walk revisits the probe
    // candidate itself — the returned point is the exact candidate the
    // unseeded walk would pick, but every row walk is bounded from the
    // start instead of only after the first organically-found incumbent.
    {
        const PROBE_GAPS: usize = 3;
        const PROBE_BUDGET: usize = 96;
        let mut budget = PROBE_BUDGET;
        let mut pdown = down;
        let mut pup = up;
        'probe: loop {
            let base_row = match (pdown >= 0, pup < rows_total) {
                (false, false) => break,
                (true, false) => {
                    let r = pdown as usize;
                    pdown -= 1;
                    r
                }
                (false, true) => {
                    let r = pup;
                    pup += 1;
                    r
                }
                (true, true) => {
                    let yd = (d.row_y(pdown as usize) - c.gp.y).abs();
                    let yu = (d.row_y(pup) - c.gp.y).abs();
                    if yd <= yu {
                        let r = pdown as usize;
                        pdown -= 1;
                        r
                    } else {
                        let r = pup;
                        pup += 1;
                        r
                    }
                }
            };
            if let Some(par) = ct.rail_parity {
                if !par.matches(base_row) {
                    continue;
                }
            }
            if let Some(o) = oracle {
                if !o.h_rails_ok(c.type_id, base_row) {
                    continue;
                }
            }
            let y = d.row_y(base_row);
            let y_cost = (y - c.gp.y).abs();
            let segmap = state.segments();
            for &s0 in segmap.in_row(base_row) {
                let seg = &segmap.segments()[s0];
                if seg.fence != c.fence || seg.x.len() < w {
                    continue;
                }
                let soa = state.soa();
                let occupants = state.cells_in_segment(s0);
                // Jump straight to the gap straddling the GP x; the gap
                // edge bookkeeping mirrors the canonical walk below so a
                // probe hit is byte-for-byte one of its candidates.
                let mut idx =
                    occupants.partition_point(|&o| soa.pos(o).is_some_and(|p| p.x < c.gp.x));
                let mut gap_lo = seg.x.lo;
                for j in (0..idx).rev() {
                    if soa.pos(occupants[j]).is_some() {
                        gap_lo = soa.end_x(occupants[j]);
                        break;
                    }
                }
                for _ in 0..PROBE_GAPS {
                    if budget == 0 {
                        break 'probe;
                    }
                    budget -= 1;
                    let gap_hi = if idx < occupants.len() {
                        soa.pos(occupants[idx]).map_or(seg.x.hi, |p| p.x)
                    } else {
                        seg.x.hi
                    };
                    let lo = snap_up(if gap_lo > seg.x.lo {
                        gap_lo + pad
                    } else {
                        gap_lo
                    });
                    let hi = snap_down(if gap_hi < seg.x.hi {
                        gap_hi - pad
                    } else {
                        gap_hi
                    }) - w;
                    if hi >= lo {
                        let x = c.gp.x.clamp(lo, hi);
                        let x = snap_up(x).min(hi).max(lo);
                        if candidate_ok(base_row, x) {
                            let cost = (x - c.gp.x).abs() + y_cost;
                            best = Some((cost + 1, Point::new(x, y)));
                            break 'probe;
                        }
                    }
                    if idx >= occupants.len() {
                        break;
                    }
                    gap_lo = soa
                        .pos(occupants[idx])
                        .map_or(gap_lo, |_| soa.end_x(occupants[idx]));
                    idx += 1;
                }
            }
        }
    }
    loop {
        let base_row = match (down >= 0, up < rows_total) {
            (false, false) => break,
            (true, false) => {
                let r = down as usize;
                down -= 1;
                r
            }
            (false, true) => {
                let r = up;
                up += 1;
                r
            }
            (true, true) => {
                let yd = (d.row_y(down as usize) - c.gp.y).abs();
                let yu = (d.row_y(up) - c.gp.y).abs();
                if yd <= yu {
                    let r = down as usize;
                    down -= 1;
                    r
                } else {
                    let r = up;
                    up += 1;
                    r
                }
            }
        };
        let y = d.row_y(base_row);
        let y_cost = (y - c.gp.y).abs();
        // Rows are visited nearest-first: once the y displacement alone
        // cannot strictly beat the incumbent, no remaining row can.
        if let Some((bc, _)) = best {
            if y_cost >= bc {
                break;
            }
        }
        if let Some(par) = ct.rail_parity {
            if !par.matches(base_row) {
                continue;
            }
        }
        if let Some(o) = oracle {
            if !o.h_rails_ok(c.type_id, base_row) {
                continue;
            }
        }
        // Candidate spans: for each segment column, walk gaps.
        let segmap = state.segments();
        for &s0 in segmap.in_row(base_row) {
            let seg = &segmap.segments()[s0];
            if seg.fence != c.fence || seg.x.len() < w {
                continue;
            }
            if let Some((bc, _)) = best {
                // Closest feasible x in this segment is still too far: the
                // gap walk cannot produce a strict improvement.
                let min_x_dist = if c.gp.x < seg.x.lo {
                    seg.x.lo - c.gp.x
                } else if c.gp.x > seg.x.hi - w {
                    c.gp.x - (seg.x.hi - w)
                } else {
                    0
                };
                if y_cost + min_x_dist >= bc {
                    continue;
                }
            }
            // Gap walk on the base row; for multi-row cells every candidate
            // is re-checked on the upper rows via a placement probe.
            let soa = state.soa();
            let occupants = state.cells_in_segment(s0);
            // With an incumbent of cost `bc`, only gaps intersecting
            // `(gp.x − budget, gp.x + budget)` with `budget = bc − y_cost`
            // can strictly improve: jump the walk to the first such gap
            // (by binary search on the x-sorted occupants) instead of
            // walking the whole segment — without fences a segment spans
            // the entire row, so this is the difference between O(row)
            // and O(log row) per visited row.
            let mut idx = match best {
                Some((bc, _)) => occupants
                    .partition_point(|&o| soa.pos(o).is_some_and(|p| p.x < c.gp.x - (bc - y_cost))),
                None => 0,
            };
            // The gap's left edge is the end of the nearest placed
            // occupant before the jump target (unplaced entries cannot
            // bound a gap, mirroring the sequential walk).
            let mut gap_lo = seg.x.lo;
            for j in (0..idx).rev() {
                if soa.pos(occupants[j]).is_some() {
                    gap_lo = soa.end_x(occupants[j]);
                    break;
                }
            }
            loop {
                // Gap edges only move right: once the left edge passes
                // `gp.x + budget`, every remaining candidate displaces at
                // least `budget` and cannot strictly improve.
                if let Some((bc, _)) = best {
                    if gap_lo >= c.gp.x + (bc - y_cost) {
                        break;
                    }
                }
                let gap_hi = if idx < occupants.len() {
                    // Segment occupants are placed by definition; an
                    // unplaced one degrades to "gap runs to segment end".
                    soa.pos(occupants[idx]).map_or(seg.x.hi, |p| p.x)
                } else {
                    seg.x.hi
                };
                // Conservative pad for edge spacing against gap neighbours.
                let lo = snap_up(if gap_lo > seg.x.lo {
                    gap_lo + pad
                } else {
                    gap_lo
                });
                let hi = snap_down(if gap_hi < seg.x.hi {
                    gap_hi - pad
                } else {
                    gap_hi
                }) - w;
                if hi >= lo {
                    let x = c.gp.x.clamp(lo, hi);
                    let x = snap_up(x).min(hi).max(lo);
                    let cost = (x - c.gp.x).abs() + y_cost;
                    if candidate_ok(base_row, x) && best.map(|(bc, _)| cost < bc).unwrap_or(true) {
                        best = Some((cost, Point::new(x, y)));
                    }
                }
                if idx >= occupants.len() {
                    break;
                }
                let occ = occupants[idx];
                // An unplaced occupant cannot bound the gap; keep the
                // current lower edge and move on.
                gap_lo = soa.pos(occ).map_or(gap_lo, |_| soa.end_x(occ));
                idx += 1;
            }
        }
    }
    best.map(|(_, p)| p)
}

/// Convenience wrapper: builds state, weights and oracle, then runs MGL.
pub fn legalize_mgl(design: &Design, config: &LegalizerConfig) -> (Design, MglStats) {
    let weights = compute_weights(design, config.weights);
    let oracle_store;
    let oracle = if config.routability {
        oracle_store = Some(RoutOracle::new(design));
        oracle_store.as_ref()
    } else {
        None
    };
    let mut state = PlacementState::new(design);
    let stats = if config.threads > 1 {
        crate::scheduler::run_parallel(&mut state, config, &weights, oracle)
    } else {
        run_serial(&mut state, config, &weights, oracle)
    };
    let mut out = design.clone();
    state.write_back(&mut out);
    (out, stats)
}

/// Reference-mode re-export for baselines.
pub use crate::config::DisplacementReference as Reference;

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_db::legal::Checker;

    fn dense_design(n_cells: usize, seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        d.add_cell_type(CellType::new("t3", 40, 3));
        // Simple xorshift for reproducible pseudo-random GP.
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n_cells {
            let t = match rng() % 10 {
                0..=6 => CellTypeId(0),
                7..=8 => CellTypeId(1),
                _ => CellTypeId(2),
            };
            let x = (rng() % 1900) as Dbu;
            let y = (rng() % 1700) as Dbu;
            d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
        }
        d
    }

    #[test]
    fn legalizes_a_dense_block() {
        let d = dense_design(120, 42);
        let cfg = LegalizerConfig::total_displacement();
        let (out, stats) = legalize_mgl(&d, &cfg);
        assert_eq!(stats.failed, 0, "{stats:?}");
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
    }

    #[test]
    fn deterministic_across_runs() {
        let d = dense_design(80, 7);
        let cfg = LegalizerConfig::total_displacement();
        let (a, _) = legalize_mgl(&d, &cfg);
        let (b, _) = legalize_mgl(&d, &cfg);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.pos, cb.pos);
        }
    }

    #[test]
    fn weights_contest_mode() {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        for i in 0..9 {
            d.add_cell(Cell::new(format!("s{i}"), CellTypeId(0), Point::new(0, 0)));
        }
        d.add_cell(Cell::new("d0", CellTypeId(1), Point::new(0, 0)));
        let w = compute_weights(&d, WeightMode::ContestAverage);
        // 10 cells: 9 single (weight 10/9 -> 1), 1 double (weight 10).
        assert_eq!(w[0], 1);
        assert_eq!(w[9], 10);
    }

    #[test]
    fn fallback_scan_finds_far_gap() {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 180));
        let wide = d.add_cell_type(CellType::new("wide", 480, 1));
        let s = d.add_cell_type(CellType::new("s", 20, 1));
        // Fill row 0 almost fully.
        let a = d.add_cell(Cell::new("a", wide, Point::new(0, 0)));
        let b = d.add_cell(Cell::new("b", wide, Point::new(480, 0)));
        let t = d.add_cell(Cell::new("t", s, Point::new(500, 10)));
        let mut st = PlacementState::new(&d);
        st.place(a, Point::new(0, 0)).unwrap();
        st.place(b, Point::new(480, 0)).unwrap();
        let p = fallback_scan(&st, t, None).unwrap();
        // Gap on row 0 at [960, 1000) or row 1 anywhere; nearest to GP
        // (500,10) by total displacement: row 1 at x=500 costs 80; row 0 at
        // 960 costs 460.
        assert_eq!(p, Point::new(500, 90));
        let _ = t;
    }

    #[test]
    fn order_height_first() {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        d.add_cell(Cell::new("a", CellTypeId(0), Point::new(0, 0)));
        d.add_cell(Cell::new("b", CellTypeId(1), Point::new(0, 0)));
        let ord = cell_order(&d, CellOrder::HeightThenWidth);
        assert_eq!(ord[0], CellId(1), "taller first");
    }

    #[test]
    fn routability_mode_keeps_design_legal() {
        let mut d = dense_design(60, 99);
        d.grid = PowerGrid {
            h_layer: 2,
            h_width: 6,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: 8,
            v_pitch: 400,
            v_offset: 200,
        };
        // Give the single-height type a pin that can collide with stripes.
        d.cell_types[0].pins.push(PinShape {
            name: "a".into(),
            layer: 2,
            rect: Rect::new(4, 30, 12, 50),
        });
        let cfg = LegalizerConfig::contest();
        let (out, stats) = legalize_mgl(&d, &cfg);
        assert_eq!(stats.failed, 0);
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
        // Vertical-stripe avoidance should leave zero pin violations here
        // (stripes are sparse enough to dodge).
        assert_eq!(rep.pin_shorts + rep.pin_access, 0, "{:?}", rep.details);
    }
}
