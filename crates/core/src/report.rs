//! Builds a [`RunReport`] from a finished legalization run.
//!
//! The golden strata (quality metrics, outcome counts) come from
//! `mcl_db`'s deterministic measurements — [`Metrics::measure`] and
//! [`Checker::check`] — plus the legalizer's outcome counters, so the
//! golden subset is byte-stable across thread counts and feature sets.
//! The observability strata (stage seconds, spans, counters, histograms)
//! are harvested from the run's merged [`Meter`](mcl_obs::Meter).

use crate::config::LegalizerConfig;
use crate::legalizer::LegalizeStats;
use mcl_db::prelude::*;
use mcl_db::score::Metrics;
use mcl_obs::report::RunReport;

/// Assembles the structured report for one legalization run.
///
/// `placed` is the legalized output design (its `pos` fields are read for
/// quality metrics); `stats` and `config` are the run's statistics and
/// configuration.
///
/// ```
/// use mcl_core::{build_run_report, Legalizer, LegalizerConfig};
/// use mcl_db::prelude::*;
///
/// let mut d = Design::new("demo", Technology::example(), Rect::new(0, 0, 1000, 900));
/// let inv = d.add_cell_type(CellType::new("INV", 20, 1));
/// d.add_cell(Cell::new("u1", inv, Point::new(33, 47)));
/// let config = LegalizerConfig::contest();
/// let (placed, stats) = Legalizer::new(config.clone()).run(&d);
/// let report = build_run_report(&placed, &stats, &config);
/// assert_eq!(report.design, "demo");
/// assert!(report.golden_json().contains("\"quality\""));
/// ```
#[must_use]
pub fn build_run_report(
    placed: &Design,
    stats: &LegalizeStats,
    config: &LegalizerConfig,
) -> RunReport {
    let mut rep = RunReport::new(&placed.name);
    rep.threads = config.threads as u64;
    rep.cells = placed.cells.iter().filter(|c| !c.fixed).count() as u64;
    rep.fences = placed.fences.len() as u64;

    let m = Metrics::measure(placed);
    rep.quality_f64("avg_disp_rows", m.avg_disp_rows);
    rep.quality_f64("max_disp_rows", m.max_disp_rows);
    rep.quality_f64("total_disp_sites", m.total_disp_sites);
    rep.quality_u64("total_disp_dbu", m.total_disp_dbu.unsigned_abs());
    rep.quality_u64("hpwl", m.hpwl.unsigned_abs());

    let legality = Checker::new(placed).check();
    rep.quality_u64("hard_violations", legality.hard_violations() as u64);
    rep.quality_u64("edge_spacing_violations", legality.edge_spacing as u64);
    rep.quality_u64("pin_shorts", legality.pin_shorts as u64);
    rep.quality_u64("pin_access_violations", legality.pin_access as u64);

    rep.outcome("placed_in_window", stats.mgl.placed_in_window as u64);
    rep.outcome("expansions", stats.mgl.expansions as u64);
    rep.outcome("fallbacks", stats.mgl.fallbacks as u64);
    rep.outcome("failed", stats.mgl.failed as u64);
    rep.outcome("retries", stats.mgl.retries);
    rep.outcome("quarantined", stats.mgl.quarantined as u64);
    rep.outcome("matching_groups", stats.max_disp.groups as u64);
    rep.outcome(
        "matching_groups_changed",
        stats.max_disp.groups_changed as u64,
    );
    rep.outcome("matching_cells_moved", stats.max_disp.cells_moved as u64);
    rep.outcome("refine_cells_moved", stats.fixed_order.cells_moved as u64);
    rep.outcome("refine_applied", u64::from(stats.fixed_order.applied));

    for f in stats.failure_rows() {
        rep.failure(f.stage, f.class.label(), &f.message);
    }
    for d in &stats.degradations {
        rep.degradation(d.stage, d.rung, &d.reason);
    }

    for t in &stats.stage_seconds {
        rep.stage(t.name, t.seconds);
    }
    rep.attach_meter(&stats.obs);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalizer::Legalizer;

    fn design() -> Design {
        let mut d = Design::new("rep", Technology::example(), Rect::new(0, 0, 2000, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        let mut s = 41u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..120 {
            let t = CellTypeId(u32::from(rng() % 4 == 0));
            let x = (rng() % 1900) as Dbu;
            let y = (rng() % 1600) as Dbu;
            d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
        }
        d
    }

    #[test]
    fn golden_subset_is_thread_invariant() {
        let d = design();
        let mut c1 = LegalizerConfig::total_displacement();
        c1.threads = 1;
        let mut c2 = c1.clone();
        c2.threads = 2;
        c2.clamp_threads_to_hardware = false;
        let (p1, s1) = Legalizer::new(c1.clone()).run(&d);
        let (p2, s2) = Legalizer::new(c2.clone()).run(&d);
        let mut g1 = build_run_report(&p1, &s1, &c1);
        let mut g2 = build_run_report(&p2, &s2, &c2);
        // Thread count is an input descriptor, not a result; normalize it
        // so the rest of the golden subset must match bit-for-bit.
        g1.threads = 0;
        g2.threads = 0;
        assert_eq!(g1.golden_json(), g2.golden_json());
    }

    #[test]
    fn report_carries_quality_outcome_and_stages() {
        let d = design();
        let config = LegalizerConfig::total_displacement();
        let (placed, stats) = Legalizer::new(config.clone()).run(&d);
        let rep = build_run_report(&placed, &stats, &config);
        assert_eq!(rep.cells, 120);
        let quality: Vec<&str> = rep.quality.iter().map(|(n, _)| n.as_str()).collect();
        assert!(quality.contains(&"total_disp_sites"));
        assert!(quality.contains(&"pin_shorts"));
        assert!(quality.contains(&"edge_spacing_violations"));
        let outcome: Vec<&str> = rep.outcome.iter().map(|(n, _)| n.as_str()).collect();
        assert!(outcome.contains(&"placed_in_window"));
        assert_eq!(rep.stage_seconds.len(), 3);
        if mcl_obs::compiled() && mcl_obs::recording() {
            assert!(
                rep.spans.iter().any(|s| s.name == "stage.mgl"),
                "stage span missing: {:?}",
                rep.spans
            );
            assert!(
                rep.histograms
                    .iter()
                    .any(|h| h.name == "mgl.cell_disp_sites"),
                "displacement histogram missing: {:?}",
                rep.histograms
            );
        }
        // The full JSON parses as one object and keeps the golden prefix.
        let full = rep.to_json();
        assert!(full.starts_with(&rep.golden_json()[..rep.golden_json().len() - 1]));
    }
}
