//! Legalizer configuration.

use crate::faultinject::FaultPlan;
use mcl_db::geom::Dbu;
use std::sync::Arc;

/// Which reference the displacement curves measure against.
///
/// The paper's key improvement over MLL (Chow et al., DAC'16) is measuring
/// displacement from the *global placement* positions rather than the cells'
/// current positions; MLL is recovered with [`DisplacementReference::Current`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DisplacementReference {
    /// Minimize displacement from the GP input (MGL, this paper).
    #[default]
    Gp,
    /// Minimize displacement from current positions (MLL baseline).
    Current,
}

/// Order in which MGL legalizes cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CellOrder {
    /// Taller cells first, then wider, then by GP position. Multi-row cells
    /// are hardest to insert late; best when the multi-height fraction is
    /// large.
    HeightThenWidth,
    /// Sweep by GP x (Abacus-style ordering).
    GpX,
    /// By cell id (input order).
    Id,
    /// Taller cells first, then a deterministic pseudo-random shuffle
    /// within each height. Interleaving insertion sites avoids the
    /// systematic pressure fronts of sorted sweeps and measures best on
    /// dense designs.
    HeightThenShuffled,
    /// Pick by design density: [`CellOrder::GpX`] below 82% utilization,
    /// [`CellOrder::HeightThenShuffled`] above (the GP-x sweep wins on
    /// quality and speed up to very high densities, where interleaved
    /// insertion takes over; measured crossover ≈ 0.82).
    #[default]
    Auto,
}

/// How cost weights are assigned per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightMode {
    /// All cells weigh 1: optimizes plain total displacement (Table 2 mode).
    #[default]
    Uniform,
    /// Cells weigh ∝ 1/|C_h| per Eq. 2, so the average-displacement metric
    /// of the contest is what the flow optimizes (Table 1 mode).
    ContestAverage,
}

/// Full legalizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LegalizerConfig {
    /// Displacement reference for stage 1.
    pub reference: DisplacementReference,
    /// Cell processing order.
    pub order: CellOrder,
    /// Cost weighting mode.
    pub weights: WeightMode,
    /// Initial window half-width in sites.
    pub window_sites: usize,
    /// Initial window half-height in rows.
    pub window_rows: usize,
    /// Growth factor numerator/denominator on failed insertion (3/2 = ×1.5).
    pub window_growth: (usize, usize),
    /// Maximum number of window expansions before falling back to a global
    /// scan.
    pub max_expansions: usize,
    /// Enable routability handling (edge spacing always honored; this gates
    /// pin-access/short avoidance).
    pub routability: bool,
    /// Normalize local-cell displacement curves to Δ-displacement (their
    /// untouched plateau sits at zero). Disabling reverts to the raw
    /// absolute curves for ablation studies; see DESIGN.md §5.
    pub normalize_curves: bool,
    /// Cost penalty per IO-pin overlap (in dbu of displacement-equivalent).
    pub io_penalty: i64,
    /// Cost penalty per unavoidable vertical-rail violation.
    pub rail_penalty: i64,
    /// Enable stage 2 (bipartite matching on max displacement).
    pub max_disp_matching: bool,
    /// `δ₀` of Eq. 3: tolerable max displacement, in rows.
    pub delta0_rows: f64,
    /// Largest group size stage 2 matches densely; bigger groups use a
    /// sparse neighborhood graph.
    pub matching_dense_limit: usize,
    /// Enable stage 3 (fixed row & order dual-MCF refinement).
    pub fixed_order_refine: bool,
    /// Delta-first ECO mode: the post stages (2 and 3) restrict themselves
    /// to the transitive dirty-window closure of the cells mutated since
    /// adoption ([`crate::dirty`]) — stage 2 re-matches only groups with a
    /// dirty member (restricted to closure members), stage 3 solves the
    /// flow over closure members with their nearest clean neighbors as
    /// fixed walls. Only effective when the state adopted existing
    /// positions (`run_eco` / [`crate::legalizer::EcoSession`]); a fresh
    /// full run ignores it. Off by default: batch runs keep today's
    /// whole-design post stages.
    pub eco_delta: bool,
    /// `n₀`: weight of the max-displacement terms in stage 3, relative to a
    /// unit cell weight (0 disables the extension).
    pub n0_factor: i64,
    /// Number of worker threads for MGL (1 = serial). Results are identical
    /// for any value.
    pub threads: usize,
    /// Clamp `threads` to the hardware's available parallelism. Oversub-
    /// scribing buys nothing (results are thread-count-invariant) and costs
    /// context switches, so this defaults to on; tests disable it to
    /// exercise the worker pool regardless of the host's core count.
    pub clamp_threads_to_hardware: bool,
    /// Admission bound for `Engine` batch calls: how many designs may be
    /// in flight at once (0 = auto, meaning `threads`). Each in-flight
    /// design gets a runner thread out of the `threads` budget; leftover
    /// threads become shared eval workers that interleave rounds from all
    /// in-flight designs. Memory scales with in-flight work, never batch
    /// size, and per-design results are identical for any value.
    pub max_inflight_designs: usize,
    /// Capacity of the concurrent-window list `L_p` (§3.5). Determinism is
    /// per capacity value; small capacities track the sequential schedule
    /// closely (capacity 1 reproduces it exactly), large ones admit more
    /// parallelism at some displacement cost.
    pub window_list_capacity: usize,
    /// Wall-clock budget for the whole pipeline, checked at stage
    /// boundaries only (never mid-stage, so fault-free results stay
    /// deterministic). Once exceeded, remaining stages take their
    /// degradation rung: MGL runs serially, maxdisp and refine are
    /// skipped. `None` disables the budget.
    pub stage_budget_secs: Option<f64>,
    /// Deterministic retry budget for a failed per-cell insertion
    /// evaluation before the cell is quarantined (DESIGN.md §11). Retries
    /// run on the coordinator in cell order, so the outcome is independent
    /// of thread count.
    pub fault_retry_budget: u32,
    /// Armed fault-injection plan (chaos testing; see [`crate::faultinject`]).
    /// `None` in production — every probe is then a single branch.
    pub faults: Option<Arc<FaultPlan>>,
}

impl LegalizerConfig {
    /// Contest-style configuration: fences + routability + average-weighted
    /// displacement (Table 1). Multi-row cells dominate the height-averaged
    /// metric (weight ∝ 1/|C_h|), so they are processed first.
    pub fn contest() -> Self {
        Self {
            order: CellOrder::HeightThenWidth,
            ..Self::default()
        }
    }

    /// Plain total-displacement configuration: routability off, uniform
    /// weights (Table 2, comparison with prior displacement-driven work).
    pub fn total_displacement() -> Self {
        Self {
            weights: WeightMode::Uniform,
            routability: false,
            n0_factor: 0,
            ..Self::default()
        }
    }

    /// MLL baseline: stage 1 only, current-position reference.
    pub fn mll_baseline() -> Self {
        Self {
            reference: DisplacementReference::Current,
            weights: WeightMode::Uniform,
            routability: false,
            max_disp_matching: false,
            fixed_order_refine: false,
            ..Self::default()
        }
    }

    /// The window half-extent after `n` expansions, in sites.
    pub fn window_sites_after(&self, n: usize) -> usize {
        let (num, den) = self.window_growth;
        let mut w = self.window_sites.max(1);
        for _ in 0..n {
            w = (w * num / den).max(w + 1);
        }
        w
    }

    /// The window half-extent after `n` expansions, in rows.
    pub fn window_rows_after(&self, n: usize) -> usize {
        let (num, den) = self.window_growth;
        let mut w = self.window_rows.max(1);
        for _ in 0..n {
            w = (w * num / den).max(w + 1);
        }
        w
    }

    /// `δ₀` in database units for a given row height.
    pub fn delta0_dbu(&self, row_height: Dbu) -> Dbu {
        mcl_db::geom::dbu_from_f64_saturating(
            (self.delta0_rows * mcl_db::geom::dbu_to_f64(row_height)).round(),
        )
    }
}

impl Default for LegalizerConfig {
    fn default() -> Self {
        Self {
            reference: DisplacementReference::Gp,
            order: CellOrder::Auto,
            weights: WeightMode::ContestAverage,
            window_sites: 24,
            window_rows: 3,
            window_growth: (2, 1),
            max_expansions: 12,
            routability: true,
            normalize_curves: true,
            io_penalty: 2_000,
            rail_penalty: 1_000,
            max_disp_matching: true,
            delta0_rows: 10.0,
            matching_dense_limit: 192,
            fixed_order_refine: true,
            eco_delta: false,
            n0_factor: 4,
            threads: 1,
            clamp_threads_to_hardware: true,
            max_inflight_designs: 0,
            window_list_capacity: 8,
            stage_budget_secs: None,
            fault_retry_budget: 1,
            faults: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_growth_monotone() {
        let c = LegalizerConfig::default();
        let mut prev = 0;
        for n in 0..8 {
            let w = c.window_sites_after(n);
            assert!(w > prev);
            prev = w;
        }
    }

    #[test]
    fn presets_differ_sensibly() {
        assert!(LegalizerConfig::contest().routability);
        assert!(!LegalizerConfig::total_displacement().routability);
        let mll = LegalizerConfig::mll_baseline();
        assert_eq!(mll.reference, DisplacementReference::Current);
        assert!(!mll.fixed_order_refine);
    }

    #[test]
    fn delta0_conversion() {
        let c = LegalizerConfig::default();
        assert_eq!(c.delta0_dbu(90), 900);
    }
}
