//! Piecewise-linear displacement curves (Fig. 4 of the paper).
//!
//! When evaluating an insertion point, every *local cell* contributes a
//! piecewise-linear curve mapping the target cell's x position to the
//! displacement that local cell would incur. Cells right of the insertion
//! point produce type **A** (GP at/left of current position: flat, then
//! slope +1) or type **C** (GP right of current: flat, slope −1 down to
//! zero, then +1) curves; cells on the left mirror these as types **B** and
//! **D**. The target cell itself contributes a weighted V. Summing all
//! curves and probing every breakpoint yields the optimal position — the
//! paper evaluates all breakpoints rather than relying on the convexity
//! guaranteed by its Theorem 1, and so do we.

use mcl_db::geom::Dbu;

/// A piecewise-linear function of one variable, closed under addition.
///
/// Stored as a slope at −∞, a list of `(x, slope_delta)` events, and the
/// value at a reference point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PwlCurve {
    /// Slope left of every event.
    slope0: i64,
    /// Sorted, deduplicated slope-change events.
    events: Vec<(Dbu, i64)>,
    /// Reference x for [`Self::eval`].
    x_ref: Dbu,
    /// Value at `x_ref`.
    v_ref: i64,
}

impl PwlCurve {
    /// The constant-zero curve.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant curve.
    pub fn constant(v: i64) -> Self {
        Self {
            v_ref: v,
            ..Self::default()
        }
    }

    /// The weighted V `w·|x − center|`.
    pub fn vee(center: Dbu, w: i64) -> Self {
        Self {
            slope0: -w,
            events: vec![(center, 2 * w)],
            x_ref: center,
            v_ref: 0,
        }
    }

    /// Type **A** (Fig. 4): flat at `w·base` up to `a`, then slope `+w`.
    /// `base` is the cell's current displacement.
    pub fn type_a(a: Dbu, base: i64, w: i64) -> Self {
        Self {
            slope0: 0,
            events: vec![(a, w)],
            x_ref: a,
            v_ref: base.saturating_mul(w),
        }
    }

    /// Type **B**: slope `−w` up to `a`, then flat at `w·base`.
    pub fn type_b(a: Dbu, base: i64, w: i64) -> Self {
        Self {
            slope0: -w,
            events: vec![(a, w)],
            x_ref: a,
            v_ref: base.saturating_mul(w),
        }
    }

    /// Type **C**: flat at `w·base` up to `a`, slope `−w` down to zero at
    /// `c`, then slope `+w`. Requires `c = a + base` (the descending stretch
    /// ends exactly at zero).
    pub fn type_c(a: Dbu, base: i64, w: i64) -> Self {
        debug_assert!(base >= 0);
        Self {
            slope0: 0,
            events: vec![(a, -w), (a + base, 2 * w)],
            x_ref: a,
            v_ref: base.saturating_mul(w),
        }
    }

    /// Type **D**: slope `−w` down to zero at `c`, slope `+w` up to
    /// `a = c + base`, then flat at `w·base`.
    pub fn type_d(c: Dbu, base: i64, w: i64) -> Self {
        debug_assert!(base >= 0);
        Self {
            slope0: -w,
            events: vec![(c, 2 * w), (c + base, -w)],
            x_ref: c,
            v_ref: 0,
        }
    }

    /// Returns the curve shifted vertically by `dv`.
    pub fn offset(mut self, dv: i64) -> Self {
        self.v_ref = self.v_ref.saturating_add(dv);
        self
    }

    /// Evaluates the curve at `x`.
    pub fn eval(&self, x: Dbu) -> i64 {
        // Integrate slope from x_ref to x.
        let mut v = self.v_ref as i128;
        if x >= self.x_ref {
            let mut cur = self.x_ref;
            let mut slope = self.slope_at_ref();
            for &(ex, ds) in self.events.iter().skip_while(|&&(ex, _)| ex <= self.x_ref) {
                if ex >= x {
                    break;
                }
                v += slope as i128 * (ex - cur) as i128;
                cur = ex;
                slope += ds;
            }
            v += slope as i128 * (x - cur) as i128;
        } else {
            let mut cur = self.x_ref;
            // Walk events left of x_ref from right to left.
            let mut slope = self.slope_at_ref();
            for &(ex, ds) in self
                .events
                .iter()
                .rev()
                .skip_while(|&&(ex, _)| ex > self.x_ref)
            {
                // Arriving at event ex from the right: slope left of ex.
                if ex <= x {
                    break;
                }
                v -= slope as i128 * (cur - ex) as i128;
                slope -= ds;
                cur = ex;
            }
            v -= slope as i128 * (cur - x) as i128;
        }
        clamp_i64(v)
    }

    /// Slope immediately right of `x_ref`.
    fn slope_at_ref(&self) -> i64 {
        let mut s = self.slope0;
        for &(ex, ds) in &self.events {
            if ex <= self.x_ref {
                s += ds;
            } else {
                break;
            }
        }
        s
    }

    /// All event x coordinates (breakpoints).
    pub fn breakpoints(&self) -> impl Iterator<Item = Dbu> + '_ {
        self.events.iter().map(|&(x, _)| x)
    }

    /// Whether the curve is convex (slopes non-decreasing left to right).
    /// Theorem 1 of the paper states the summed insertion curve is convex
    /// when all local cells start at their fixed-row-and-order optimum.
    pub fn is_convex(&self) -> bool {
        self.events.iter().all(|&(_, ds)| ds >= 0)
    }

    /// Sums an iterator of curves into one.
    pub fn sum<I: IntoIterator<Item = PwlCurve>>(curves: I) -> PwlCurve {
        let mut events: Vec<(Dbu, i64)> = Vec::new();
        let mut slope0 = 0i64;
        let mut parts: Vec<PwlCurve> = Vec::new();
        for c in curves {
            slope0 += c.slope0;
            events.extend_from_slice(&c.events);
            parts.push(c);
        }
        events.sort_unstable_by_key(|&(x, _)| x);
        // Merge events at equal x.
        let mut merged: Vec<(Dbu, i64)> = Vec::with_capacity(events.len());
        for (x, ds) in events {
            match merged.last_mut() {
                Some((lx, lds)) if *lx == x => *lds += ds,
                _ => merged.push((x, ds)),
            }
        }
        merged.retain(|&(_, ds)| ds != 0);
        let x_ref = merged.first().map(|&(x, _)| x).unwrap_or(0);
        let v_ref = parts.iter().map(|c| c.eval(x_ref) as i128).sum::<i128>();
        PwlCurve {
            slope0,
            events: merged,
            x_ref,
            v_ref: clamp_i64(v_ref),
        }
    }

    /// Minimum over the closed interval `[lo, hi]`: returns `(x, value)`.
    /// The minimum of a piecewise-linear function on an interval occurs at a
    /// breakpoint or an endpoint, so probing those suffices (no convexity
    /// needed). Ties prefer the x closest to `prefer`.
    ///
    /// Runs in one left-to-right sweep (O(events)); the probe order — `lo`,
    /// `hi`, interior breakpoints ascending, then `prefer` — is part of the
    /// tie-breaking contract and must not change.
    ///
    /// Returns `None` when `lo > hi`.
    pub fn min_on(&self, lo: Dbu, hi: Dbu, prefer: Dbu) -> Option<(Dbu, i64)> {
        if lo > hi {
            return None;
        }
        let mut best: Option<(Dbu, i64)> = None;
        let mut probe = |x: Dbu, v: i64| {
            best = Some(match best {
                None => (x, v),
                Some((bx, bv)) => {
                    if v < bv || (v == bv && (x - prefer).abs() < (bx - prefer).abs()) {
                        (x, v)
                    } else {
                        (bx, bv)
                    }
                }
            });
        };
        let v_lo = self.eval(lo);
        probe(lo, v_lo);
        probe(hi, self.eval(hi));
        // Interior breakpoints (and `prefer` on the way) by slope
        // integration from lo — one pass instead of one eval per probe.
        let mut cur = lo;
        let mut v = v_lo as i128;
        let mut slope = self.slope_right_of(lo) as i128;
        let mut v_prefer: Option<i64> = None;
        for &(ex, ds) in self.events.iter().skip_while(|&&(ex, _)| ex <= lo) {
            if ex >= hi {
                break;
            }
            if cur < prefer && prefer <= ex && prefer < hi {
                v_prefer = Some(clamp_i64(v + slope * (prefer - cur) as i128));
            }
            v += slope * (ex - cur) as i128;
            cur = ex;
            probe(ex, clamp_i64(v));
            slope += ds as i128;
        }
        // The preferred point itself is probed too: on flat stretches the
        // minimum is attained on a whole interval and we want the tie-break
        // to favor it.
        if prefer > lo && prefer < hi {
            let vp = v_prefer.unwrap_or_else(|| clamp_i64(v + slope * (prefer - cur) as i128));
            probe(prefer, vp);
        }
        best
    }

    /// Slope immediately right of `x` (relative to `slope0`, counting every
    /// event at or before `x`).
    fn slope_right_of(&self, x: Dbu) -> i64 {
        let mut s = self.slope0;
        for &(ex, ds) in &self.events {
            if ex <= x {
                s += ds;
            } else {
                break;
            }
        }
        s
    }

    /// Rebuilds `self` as the sum of `terms`, reusing the event buffer.
    /// Semantically identical to `PwlCurve::sum` over the equivalent curves,
    /// but allocation-free once the buffer has grown to a steady size.
    pub fn sum_terms_into(&mut self, terms: &[PwlTerm]) {
        self.events.clear();
        let mut slope0 = 0i64;
        for t in terms {
            slope0 += t.slope0();
            t.events_into(&mut self.events);
        }
        self.events.sort_unstable_by_key(|&(x, _)| x);
        // Merge events at equal x in place, dropping zero deltas.
        let mut w = 0usize;
        for r in 0..self.events.len() {
            let (x, ds) = self.events[r];
            if w > 0 && self.events[w - 1].0 == x {
                self.events[w - 1].1 += ds;
            } else {
                self.events[w] = (x, ds);
                w += 1;
            }
        }
        self.events.truncate(w);
        self.events.retain(|&(_, ds)| ds != 0);
        self.slope0 = slope0;
        self.x_ref = self.events.first().map(|&(x, _)| x).unwrap_or(0);
        let v: i128 = terms.iter().map(|t| t.eval(self.x_ref) as i128).sum();
        self.v_ref = clamp_i64(v);
    }
}

/// Narrows an `i128` accumulator to `i64`, saturating at the bounds. Curve
/// values saturate rather than wrap: a clamped displacement sum stays a
/// valid (if pessimistic) upper bound, while wrap-around would invert the
/// comparison in [`PwlCurve::min_on`].
fn clamp_i64(v: i128) -> i64 {
    i64::try_from(v).unwrap_or(if v > 0 { i64::MAX } else { i64::MIN })
}

/// A displacement-curve contribution in closed form (Fig. 4 curve types plus
/// the target's V), small enough to be `Copy`: building one allocates
/// nothing, unlike the equivalent [`PwlCurve`] constructors. Hot-path
/// insertion evaluation collects terms and sums them once with
/// [`PwlCurve::sum_terms_into`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PwlTerm {
    /// The target's weighted V `w·|x − center|`.
    Vee {
        /// The V's apex.
        center: Dbu,
        /// Weight.
        w: i64,
    },
    /// Type **A**: flat at `w·base` up to `a`, then slope `+w`; plus `dv`.
    TypeA {
        /// Breakpoint.
        a: Dbu,
        /// Current displacement of the local cell.
        base: i64,
        /// Weight.
        w: i64,
        /// Vertical offset (Δ-displacement normalization).
        dv: i64,
    },
    /// Type **B**: slope `−w` up to `a`, then flat at `w·base`; plus `dv`.
    TypeB {
        /// Breakpoint.
        a: Dbu,
        /// Current displacement of the local cell.
        base: i64,
        /// Weight.
        w: i64,
        /// Vertical offset.
        dv: i64,
    },
    /// Type **C**: flat at `w·base` up to `a`, descending to zero at
    /// `a + base`, then slope `+w`; plus `dv`.
    TypeC {
        /// Breakpoint where the plateau ends.
        a: Dbu,
        /// Current displacement of the local cell.
        base: i64,
        /// Weight.
        w: i64,
        /// Vertical offset.
        dv: i64,
    },
    /// Type **D**: slope `−w` down to zero at `c`, ascending to `w·base` at
    /// `c + base`, then flat; plus `dv`.
    TypeD {
        /// The zero point.
        c: Dbu,
        /// Current displacement of the local cell.
        base: i64,
        /// Weight.
        w: i64,
        /// Vertical offset.
        dv: i64,
    },
}

impl PwlTerm {
    /// Slope at −∞.
    fn slope0(&self) -> i64 {
        match *self {
            PwlTerm::Vee { w, .. } | PwlTerm::TypeB { w, .. } | PwlTerm::TypeD { w, .. } => -w,
            PwlTerm::TypeA { .. } | PwlTerm::TypeC { .. } => 0,
        }
    }

    /// Appends this term's slope-change events to `out`.
    fn events_into(&self, out: &mut Vec<(Dbu, i64)>) {
        match *self {
            PwlTerm::Vee { center, w } => out.push((center, 2 * w)),
            PwlTerm::TypeA { a, w, .. } | PwlTerm::TypeB { a, w, .. } => out.push((a, w)),
            PwlTerm::TypeC { a, base, w, .. } => {
                out.push((a, -w));
                out.push((a + base, 2 * w));
            }
            PwlTerm::TypeD { c, base, w, .. } => {
                out.push((c, 2 * w));
                out.push((c + base, -w));
            }
        }
    }

    /// Evaluates the term at `x` (closed form).
    pub fn eval(&self, x: Dbu) -> i64 {
        match *self {
            PwlTerm::Vee { center, w } => w.saturating_mul((x - center).abs()),
            PwlTerm::TypeA { a, base, w, dv } => {
                let slope_part = if x > a { w.saturating_mul(x - a) } else { 0 };
                base.saturating_mul(w)
                    .saturating_add(slope_part)
                    .saturating_add(dv)
            }
            PwlTerm::TypeB { a, base, w, dv } => {
                let slope_part = if x < a { w.saturating_mul(a - x) } else { 0 };
                base.saturating_mul(w)
                    .saturating_add(slope_part)
                    .saturating_add(dv)
            }
            PwlTerm::TypeC { a, base, w, dv } => {
                let v = if x <= a {
                    base.saturating_mul(w)
                } else if x <= a + base {
                    w.saturating_mul(a + base - x)
                } else {
                    w.saturating_mul(x - a - base)
                };
                v.saturating_add(dv)
            }
            PwlTerm::TypeD { c, base, w, dv } => {
                let v = if x <= c {
                    w.saturating_mul(c - x)
                } else if x <= c + base {
                    w.saturating_mul(x - c)
                } else {
                    base.saturating_mul(w)
                };
                v.saturating_add(dv)
            }
        }
    }

    /// The equivalent [`PwlCurve`], for tests and the reference path.
    pub fn to_curve(self) -> PwlCurve {
        match self {
            PwlTerm::Vee { center, w } => PwlCurve::vee(center, w),
            PwlTerm::TypeA { a, base, w, dv } => PwlCurve::type_a(a, base, w).offset(dv),
            PwlTerm::TypeB { a, base, w, dv } => PwlCurve::type_b(a, base, w).offset(dv),
            PwlTerm::TypeC { a, base, w, dv } => PwlCurve::type_c(a, base, w).offset(dv),
            PwlTerm::TypeD { c, base, w, dv } => PwlCurve::type_d(c, base, w).offset(dv),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vee_shape() {
        let c = PwlCurve::vee(10, 1);
        assert_eq!(c.eval(10), 0);
        assert_eq!(c.eval(13), 3);
        assert_eq!(c.eval(4), 6);
        let w = PwlCurve::vee(0, 3);
        assert_eq!(w.eval(-5), 15);
        assert_eq!(w.eval(5), 15);
    }

    #[test]
    fn type_a_shape() {
        // Flat at 7 until x=100, then rising.
        let c = PwlCurve::type_a(100, 7, 1);
        assert_eq!(c.eval(0), 7);
        assert_eq!(c.eval(100), 7);
        assert_eq!(c.eval(130), 37);
    }

    #[test]
    fn type_b_shape() {
        // Falling until x=100, flat at 7 after.
        let c = PwlCurve::type_b(100, 7, 1);
        assert_eq!(c.eval(200), 7);
        assert_eq!(c.eval(100), 7);
        assert_eq!(c.eval(90), 17);
    }

    #[test]
    fn type_c_shape() {
        // Flat at 20 until a=50, descending to 0 at 70, then rising.
        let c = PwlCurve::type_c(50, 20, 1);
        assert_eq!(c.eval(0), 20);
        assert_eq!(c.eval(50), 20);
        assert_eq!(c.eval(60), 10);
        assert_eq!(c.eval(70), 0);
        assert_eq!(c.eval(85), 15);
    }

    #[test]
    fn type_d_shape() {
        // Descending to 0 at c=70, rising to 20 at 90, flat after.
        let c = PwlCurve::type_d(70, 20, 1);
        assert_eq!(c.eval(40), 30);
        assert_eq!(c.eval(70), 0);
        assert_eq!(c.eval(80), 10);
        assert_eq!(c.eval(90), 20);
        assert_eq!(c.eval(500), 20);
    }

    #[test]
    fn weighted_curves_scale() {
        let c = PwlCurve::type_a(10, 5, 3);
        assert_eq!(c.eval(0), 15);
        assert_eq!(c.eval(12), 21);
    }

    #[test]
    fn sum_of_curves_matches_pointwise() {
        let parts = vec![
            PwlCurve::vee(10, 2),
            PwlCurve::type_a(5, 3, 1),
            PwlCurve::type_c(0, 8, 1),
            PwlCurve::type_d(-20, 4, 2),
            PwlCurve::constant(11),
        ];
        let total = PwlCurve::sum(parts.clone());
        for x in (-40..40).step_by(3) {
            let expect: i64 = parts.iter().map(|c| c.eval(x)).sum();
            assert_eq!(total.eval(x), expect, "x = {x}");
        }
    }

    #[test]
    fn min_on_interval() {
        let c = PwlCurve::vee(10, 1);
        assert_eq!(c.min_on(0, 20, 0), Some((10, 0)));
        // Clamped minimum at an endpoint.
        assert_eq!(c.min_on(15, 30, 15), Some((15, 5)));
        assert_eq!(c.min_on(-10, 5, 0), Some((5, 5)));
        // Empty interval.
        assert_eq!(c.min_on(5, 4, 0), None);
    }

    #[test]
    fn min_prefers_closest_to_prefer_on_ties() {
        // Flat region between 10 and 20 (sum of two opposing hockey sticks).
        let c = PwlCurve::sum(vec![PwlCurve::type_b(10, 0, 1), PwlCurve::type_a(20, 0, 1)]);
        assert_eq!(c.eval(12), 0);
        assert_eq!(c.eval(18), 0);
        let (x, v) = c.min_on(0, 30, 17).unwrap();
        assert_eq!(v, 0);
        assert_eq!(x, 17);
    }

    #[test]
    fn min_of_nonconvex_sum_found() {
        // Two valleys: vees at 0 and 100, one deeper (weighted).
        let c = PwlCurve::sum(vec![
            PwlCurve::type_d(0, 10, 1),  // valley at 0, plateaus at 10 after 10
            PwlCurve::type_c(90, 10, 1), // valley at 100
            PwlCurve::vee(100, 1),       // deepen the right valley
        ]);
        let (x, _) = c.min_on(-50, 150, -50).unwrap();
        assert_eq!(x, 100, "global minimum in the deeper right valley");
    }

    #[test]
    fn eval_left_of_all_events() {
        let c = PwlCurve::type_a(0, 1, 1);
        assert_eq!(c.eval(-1000), 1);
    }

    #[test]
    fn convexity_detection() {
        assert!(PwlCurve::vee(5, 2).is_convex());
        assert!(PwlCurve::type_a(10, 3, 1).is_convex());
        assert!(PwlCurve::type_b(10, 3, 1).is_convex());
        // C and D have a descending stretch after/before a flat one:
        // individually non-convex.
        assert!(!PwlCurve::type_c(10, 3, 1).is_convex());
        assert!(!PwlCurve::type_d(10, 3, 1).is_convex());
        // Sums of convex curves stay convex.
        let s = PwlCurve::sum(vec![PwlCurve::vee(0, 1), PwlCurve::type_a(5, 2, 3)]);
        assert!(s.is_convex());
    }

    #[test]
    fn sum_of_nothing_is_zero() {
        let c = PwlCurve::sum(std::iter::empty());
        assert_eq!(c.eval(123), 0);
    }
}
