//! Reusable legalization engine for batch workloads.
//!
//! [`Legalizer`](crate::Legalizer) is stateless: every call pays full setup
//! (thread spawn, scratch-arena growth) again. The [`Engine`] owns that
//! state instead — a small pool of [`InsertionScratch`] arenas and, for the
//! whole of a batch call, one shared [`EvalPool`] of worker threads — and
//! runs each design through the same [`crate::pipeline`] driver. Results
//! are bit-identical to the equivalent [`Legalizer`](crate::Legalizer)
//! calls (pinned by the golden corpus); only the setup cost is amortized.
//!
//! ## Batch scheduling
//!
//! A batch call splits `config.threads` into **runners** and **workers**
//! (DESIGN.md §12). Runners pull whole designs off a shared cursor —
//! bounded admission: at most `max_inflight_designs` designs are in flight,
//! so memory scales with in-flight work, never batch size — and each drives
//! its design's rounds to completion. Leftover threads become shared
//! [`EvalPool`] workers serving *all* in-flight designs at once: eval jobs
//! from different designs interleave freely (work conservation — no worker
//! idles while any design has runnable jobs). When the batch is at least as
//! wide as the thread budget, every thread is a runner and designs run
//! inline with zero cross-thread round traffic — the engine's throughput
//! lever over per-design solo runs, which pay replica clones, apply
//! replays and round synchronization on every design.
//!
//! Determinism is per design: selection, retry and apply order are decided
//! by each design's own runner, so outputs, replay logs and reports are
//! bit-identical to solo runs at any thread count, any admission bound and
//! any batch composition (pinned by `tests/batch_parity.rs`).
//!
//! Buffer-reuse contract (asserted by tests via [`EngineDiag`] and the
//! scratch `created` counter): within one [`Engine::legalize_batch`] call,
//! at most one pool is spawned, and every scratch — one per runner plus one
//! per worker — is constructed at most once for the engine's lifetime.

use crate::config::LegalizerConfig;
use crate::error::LegalizeError;
use crate::insertion::InsertionScratch;
use crate::legalizer::LegalizeStats;
use crate::pipeline::{self, includes_mgl, MglExec, Prep, Stage, FULL_PIPELINE, POST_PIPELINE};
use crate::scheduler::{EvalPool, PoolClient};
use crate::state::{PlaceError, PlacementState};
use mcl_db::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Setup-cost and scheduling counters for asserting the engine's reuse
/// contract and observing cross-design work conservation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineDiag {
    /// Pipeline runs driven by this engine (one per design).
    pub runs: u64,
    /// Shared worker pools spawned. A batch call spawns **at most one**
    /// pool for its whole lifetime — and only when threads are left over
    /// after admission (`threads` exceeds the runner count); a batch whose
    /// every thread is a design runner spawns none. Single-design calls
    /// spawn one per call when `threads > 1`.
    pub pool_spawns: u64,
    /// Total shared eval worker threads spawned across all pools.
    pub worker_spawns: u64,
    /// Runner threads spawned by batch calls. The calling thread doubles
    /// as runner 0 and is not counted, so a batch at `R` in-flight designs
    /// adds `R − 1`.
    pub runner_spawns: u64,
    /// Rounds in which a shared pool worker switched designs: incremented
    /// when a worker claims at least one eval job from a different design
    /// than the one it last served. Nonzero means cross-design work
    /// conservation actually happened.
    pub cross_design_steals: u64,
}

/// A seed error from a position-adopting batch run: design `design` could
/// not adopt `cell`'s existing position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSeedError {
    /// Index of the offending design in the batch slice.
    pub design: usize,
    /// The cell whose position could not be adopted.
    pub cell: CellId,
    /// Why adoption failed.
    pub error: PlaceError,
}

/// One batch job's successful output.
type BatchItem = (Design, LegalizeStats, mcl_audit::ReplayLog);

/// One design's seed-in / result-out cell. Each slot is claimed by exactly
/// one runner (via the shared admission cursor), so the lock is always
/// uncontended; it exists to let runners write results without aliasing.
struct Slot<'d> {
    seed: Option<PlacementState<'d>>,
    out: Option<Result<BatchItem, LegalizeError>>,
}

/// A reusable legalization engine: configuration plus long-lived scratch.
///
/// ```
/// use mcl_core::{Engine, LegalizerConfig};
/// use mcl_db::prelude::*;
///
/// let mut designs = Vec::new();
/// for k in 0..3 {
///     let mut d = Design::new(format!("d{k}"), Technology::example(), Rect::new(0, 0, 1000, 900));
///     let inv = d.add_cell_type(CellType::new("INV", 20, 1));
///     d.add_cell(Cell::new("u1", inv, Point::new(33 + k * 7, 47)));
///     d.add_cell(Cell::new("u2", inv, Point::new(41, 52 + k * 11)));
///     designs.push(d);
/// }
/// let mut engine = Engine::new(LegalizerConfig::contest());
/// let results = engine.legalize_batch(&designs);
/// assert_eq!(results.len(), 3);
/// for (legal, stats) in &results {
///     assert_eq!(stats.mgl.failed, 0);
///     assert!(Checker::new(legal).check().is_legal());
/// }
/// ```
#[derive(Debug)]
pub struct Engine {
    config: LegalizerConfig,
    /// Runner scratch arenas, grown lazily to the batch runner count and
    /// reused across calls (index 0 doubles as the solo-path scratch).
    scratches: Vec<InsertionScratch>,
    diag: EngineDiag,
}

impl Engine {
    /// Creates an engine. The hardware thread clamp is resolved here, once,
    /// instead of on every run.
    pub fn new(mut config: LegalizerConfig) -> Self {
        if config.clamp_threads_to_hardware {
            let hw = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            config.threads = config.threads.max(1).min(hw);
            config.clamp_threads_to_hardware = false;
        } else {
            config.threads = config.threads.max(1);
        }
        Self {
            config,
            scratches: vec![InsertionScratch::new()],
            diag: EngineDiag::default(),
        }
    }

    /// The (clamp-resolved) configuration.
    pub fn config(&self) -> &LegalizerConfig {
        &self.config
    }

    /// Setup-cost counters since construction.
    pub fn diag(&self) -> EngineDiag {
        self.diag
    }

    fn pool_workers(&self) -> usize {
        self.config.threads - 1
    }

    /// How many runner threads a batch of `n` designs gets: the admission
    /// bound (`config.max_inflight_designs`, 0 = auto meaning `threads`),
    /// clamped to the thread budget and the batch size. The remaining
    /// `threads − runners` threads become shared eval workers.
    pub fn batch_runners(&self, n: usize) -> usize {
        let limit = match self.config.max_inflight_designs {
            0 => self.config.threads,
            m => m,
        };
        limit.min(self.config.threads).min(n.max(1)).max(1)
    }

    /// Legalizes one design from scratch (the engine twin of
    /// [`crate::Legalizer::run`]).
    pub fn legalize(&mut self, design: &Design) -> (Design, LegalizeStats) {
        let (out, stats, _) = self.legalize_with_replay(design);
        (out, stats)
    }

    /// Fallible variant of [`Self::legalize`]: a run whose degradation
    /// ladder is exhausted returns the typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// The terminal [`LegalizeError`] of the run.
    pub fn try_legalize(
        &mut self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), LegalizeError> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::new(design);
        let stats = self.run_single(design, &mut state, &FULL_PIPELINE, &prep)?;
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }

    /// Like [`Self::legalize`], additionally returning the replay log.
    pub fn legalize_with_replay(
        &mut self,
        design: &Design,
    ) -> (Design, LegalizeStats, mcl_audit::ReplayLog) {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::new(design);
        let stats = crate::error::expect_run(
            "legalization",
            &design.name,
            self.run_single(design, &mut state, &FULL_PIPELINE, &prep),
        );
        let mut out = design.clone();
        state.write_back(&mut out);
        let log = state.take_replay_log();
        (out, stats, log)
    }

    /// Incremental legalization adopting existing positions (the engine
    /// twin of [`crate::Legalizer::run_eco`]).
    ///
    /// # Errors
    ///
    /// The classed [`LegalizeError`] of the run: unadoptable input
    /// positions map to [`LegalizeError::SeedRejected`] (the pre-placed
    /// part must be legal), and pipeline failures surface typed instead of
    /// panicking.
    pub fn legalize_eco(
        &mut self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), LegalizeError> {
        self.try_legalize_eco(design)
    }

    /// Opens a resident incremental-legalization session over `design`
    /// with this engine's configuration (the interactive twin of
    /// [`Self::legalize_eco`]; see [`crate::EcoSession`]).
    ///
    /// # Errors
    ///
    /// [`LegalizeError::SeedRejected`] when the base positions are not
    /// adoptable (the base must be legal).
    pub fn eco_session(&self, design: Design) -> Result<crate::EcoSession, LegalizeError> {
        crate::EcoSession::open(design, self.config.clone())
    }

    /// Alias of [`Self::legalize_eco`], kept for callers written against
    /// the older panicking variant: every ECO entry point is now fallible
    /// with the same classed error.
    ///
    /// # Errors
    ///
    /// The terminal [`LegalizeError`] of the run.
    pub fn try_legalize_eco(
        &mut self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), LegalizeError> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::from_design_positions(design).map_err(|(cell, e)| {
            LegalizeError::SeedRejected {
                cell: Some(cell.0),
                message: e.to_string(),
            }
        })?;
        let stats = self.run_single(design, &mut state, &FULL_PIPELINE, &prep)?;
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }

    /// Post-processing only (the engine twin of
    /// [`crate::Legalizer::refine`]).
    ///
    /// # Errors
    ///
    /// Returns the offending cell when the input positions are not
    /// adoptable (i.e. the input is not legal).
    pub fn refine(
        &mut self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), (CellId, PlaceError)> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::from_design_positions(design)?;
        let stats = crate::error::expect_run(
            "refine",
            &design.name,
            self.run_single(design, &mut state, &POST_PIPELINE, &prep),
        );
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }

    /// Legalizes a batch of designs from scratch, interleaving up to
    /// [`Self::batch_runners`] designs on the thread budget. Output is
    /// bit-identical to calling [`Self::legalize`] per design; only the
    /// per-design overhead is eliminated.
    pub fn legalize_batch(&mut self, designs: &[Design]) -> Vec<(Design, LegalizeStats)> {
        // Fresh seeding never adopts positions, so it cannot fail.
        crate::error::expect_run(
            "batch legalization",
            "batch",
            self.legalize_batch_with(designs, &FULL_PIPELINE, false)
                .map_err(|e| format!("design {} cell {}: {}", e.design, e.cell.0, e.error)),
        )
    }

    /// ECO-legalizes a batch: every design's existing positions are adopted
    /// before the full pipeline runs.
    ///
    /// # Errors
    ///
    /// Returns the first design/cell whose position could not be adopted;
    /// no design is legalized in that case.
    pub fn legalize_batch_eco(
        &mut self,
        designs: &[Design],
    ) -> Result<Vec<(Design, LegalizeStats)>, BatchSeedError> {
        self.legalize_batch_with(designs, &FULL_PIPELINE, true)
    }

    /// The general batch entry point: run an explicit stage list over every
    /// design. Positions are adopted when `adopt_positions` is set *or* the
    /// stage list skips MGL (post-processing needs a placed input).
    ///
    /// # Errors
    ///
    /// Returns the first design/cell whose position could not be adopted;
    /// no design is legalized in that case.
    pub fn legalize_batch_with(
        &mut self,
        designs: &[Design],
        stages: &[&dyn Stage],
        adopt_positions: bool,
    ) -> Result<Vec<(Design, LegalizeStats)>, BatchSeedError> {
        let adopt = adopt_positions || !includes_mgl(stages);
        // Seed every state up-front so seed errors surface before any work
        // is done (the fault-isolating path seeds per job instead).
        let preps: Vec<Prep<'_>> = designs.iter().map(|d| Prep::new(d, &self.config)).collect();
        let mut seeds: Vec<Result<PlacementState<'_>, LegalizeError>> =
            Vec::with_capacity(designs.len());
        for (i, d) in designs.iter().enumerate() {
            seeds.push(Ok(if adopt {
                PlacementState::from_design_positions(d).map_err(|(cell, error)| {
                    BatchSeedError {
                        design: i,
                        cell,
                        error,
                    }
                })?
            } else {
                PlacementState::new(d)
            }));
        }
        let out = self
            .run_batch(designs, &preps, seeds, stages, None)
            .into_iter()
            .zip(designs)
            .map(|(r, d)| {
                let (out, stats, _) = crate::error::expect_run("batch legalization", &d.name, r);
                (out, stats)
            })
            .collect();
        Ok(out)
    }

    /// Fault-isolating batch entry point: every design gets its own
    /// [`Result`]. One job exhausting its degradation ladder (or failing to
    /// seed) does not abort the batch — the remaining jobs still run, and
    /// their outputs are bit-identical to fault-free solo runs (pinned by
    /// the chaos suite, including under cross-design interleaving).
    pub fn try_legalize_batch(
        &mut self,
        designs: &[Design],
    ) -> Vec<Result<(Design, LegalizeStats), LegalizeError>> {
        self.try_legalize_batch_with(designs, &FULL_PIPELINE, false)
    }

    /// The general fault-isolating batch entry point (see
    /// [`Self::try_legalize_batch`]). Seeding happens per job: a design
    /// whose positions cannot be adopted yields
    /// [`LegalizeError::SeedRejected`] for that job only.
    pub fn try_legalize_batch_with(
        &mut self,
        designs: &[Design],
        stages: &[&dyn Stage],
        adopt_positions: bool,
    ) -> Vec<Result<(Design, LegalizeStats), LegalizeError>> {
        self.try_legalize_batch_with_replay(designs, stages, adopt_positions)
            .into_iter()
            .map(|r| r.map(|(d, s, _)| (d, s)))
            .collect()
    }

    /// Like [`Self::try_legalize_batch_with`], additionally returning each
    /// successful job's replay log — the batch twin of
    /// [`Self::legalize_with_replay`], used by the batch-parity suite to
    /// pin per-design replay logs against solo runs.
    pub fn try_legalize_batch_with_replay(
        &mut self,
        designs: &[Design],
        stages: &[&dyn Stage],
        adopt_positions: bool,
    ) -> Vec<Result<BatchItem, LegalizeError>> {
        self.try_legalize_batch_budgeted_with_replay(designs, stages, adopt_positions, &[])
    }

    /// Fault-isolating batch run with **per-job deadline budgets**: job `i`
    /// runs under `budgets[i]` seconds (when set), overriding the engine's
    /// `stage_budget_secs` for that design only. This is how `mclegal
    /// serve` maps a client's deadline onto the degradation ladder — a
    /// deadline-pressed job degrades and re-certifies inside its own slot
    /// while peers keep the engine-wide configuration (and stay
    /// bit-identical to solo runs; the budget is the *only* config field
    /// that differs per job, and it never changes the fault-free result).
    ///
    /// `budgets` shorter than `designs` leaves the tail on the engine
    /// config; when both the engine and the job set a budget, the tighter
    /// one wins.
    pub fn try_legalize_batch_budgeted(
        &mut self,
        designs: &[Design],
        budgets: &[Option<f64>],
    ) -> Vec<Result<(Design, LegalizeStats), LegalizeError>> {
        self.try_legalize_batch_budgeted_with_replay(designs, &FULL_PIPELINE, false, budgets)
            .into_iter()
            .map(|r| r.map(|(d, s, _)| (d, s)))
            .collect()
    }

    /// The replay-carrying core of the budgeted batch path (see
    /// [`Self::try_legalize_batch_budgeted`]).
    pub fn try_legalize_batch_budgeted_with_replay(
        &mut self,
        designs: &[Design],
        stages: &[&dyn Stage],
        adopt_positions: bool,
        budgets: &[Option<f64>],
    ) -> Vec<Result<BatchItem, LegalizeError>> {
        let adopt = adopt_positions || !includes_mgl(stages);
        let overrides: Option<Vec<LegalizerConfig>> = if budgets.iter().any(Option::is_some) {
            Some(
                designs
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let mut c = self.config.clone();
                        if let Some(b) = budgets.get(i).copied().flatten() {
                            c.stage_budget_secs = Some(match c.stage_budget_secs {
                                Some(engine_b) => engine_b.min(b),
                                None => b,
                            });
                        }
                        c
                    })
                    .collect(),
            )
        } else {
            None
        };
        let preps: Vec<Prep<'_>> = designs.iter().map(|d| Prep::new(d, &self.config)).collect();
        let seeds: Vec<Result<PlacementState<'_>, LegalizeError>> = designs
            .iter()
            .map(|d| {
                if adopt {
                    PlacementState::from_design_positions(d).map_err(|(cell, e)| {
                        LegalizeError::SeedRejected {
                            cell: Some(cell.0),
                            message: e.to_string(),
                        }
                    })
                } else {
                    Ok(PlacementState::new(d))
                }
            })
            .collect();
        self.run_batch(designs, &preps, seeds, stages, overrides.as_deref())
    }

    /// The batch core: admission-bounded runners interleaving on a shared
    /// worker pool. Runner 0 is the calling thread; each runner claims the
    /// next unprocessed design off a shared cursor and drives it start to
    /// finish, so design results land in deterministic slots while the
    /// *schedule* (which runner gets which design, how rounds interleave)
    /// is free to race.
    fn run_batch<'d>(
        &mut self,
        designs: &'d [Design],
        preps: &[Prep<'d>],
        seeds: Vec<Result<PlacementState<'d>, LegalizeError>>,
        stages: &[&dyn Stage],
        overrides: Option<&[LegalizerConfig]>,
    ) -> Vec<Result<BatchItem, LegalizeError>> {
        let runners = self.batch_runners(designs.len());
        let workers = self.config.threads.saturating_sub(runners);
        while self.scratches.len() < runners {
            self.scratches.push(InsertionScratch::new());
        }
        let Self {
            config,
            scratches,
            diag,
        } = self;
        let slots: Vec<Mutex<Slot<'d>>> = seeds
            .into_iter()
            .map(|s| {
                Mutex::new(match s {
                    Ok(state) => Slot {
                        seed: Some(state),
                        out: None,
                    },
                    Err(e) => Slot {
                        seed: None,
                        out: Some(Err(e)),
                    },
                })
            })
            .collect();
        let next = AtomicUsize::new(0);
        let runs = AtomicU64::new(0);
        let mut steal_counter = None;
        // The scratch pool is pre-grown to `runners >= 1` above; degrade to
        // typed errors rather than assert if that invariant ever breaks.
        let Some((main_scratch, rest_scratches)) = scratches.split_first_mut() else {
            return (0..designs.len())
                .map(|_| {
                    Err(LegalizeError::ResourceExhausted {
                        stage: "mgl",
                        what: "runner scratch pool",
                    })
                })
                .collect();
        };
        std::thread::scope(|scope| {
            let pool = (workers > 0).then(|| EvalPool::spawn(scope, workers));
            if let Some(p) = &pool {
                diag.pool_spawns += 1;
                diag.worker_spawns += workers as u64;
                steal_counter = Some(p.steal_counter());
            }
            for scratch in rest_scratches.iter_mut().take(runners - 1) {
                diag.runner_spawns += 1;
                let client = pool.as_ref().map(EvalPool::client);
                let (slots, next, runs) = (&slots, &next, &runs);
                let config: &LegalizerConfig = config;
                scope.spawn(move || {
                    batch_runner(
                        designs,
                        preps,
                        slots,
                        next,
                        runs,
                        config,
                        overrides,
                        stages,
                        scratch,
                        client.as_ref(),
                    );
                });
            }
            let client = pool.as_ref().map(EvalPool::client);
            batch_runner(
                designs,
                preps,
                &slots,
                &next,
                &runs,
                config,
                overrides,
                stages,
                main_scratch,
                client.as_ref(),
            );
            // The scope joins the extra runners (and, once every client is
            // dropped, the pool workers) before returning.
        });
        diag.runs += runs.load(Ordering::Relaxed);
        if let Some(c) = steal_counter {
            diag.cross_design_steals += c.load(Ordering::Relaxed);
        }
        slots
            .into_iter()
            .map(|m| {
                let slot = m.into_inner().unwrap_or_else(PoisonError::into_inner);
                match slot.out {
                    Some(r) => r,
                    // Unreachable: every claimed slot stores a result and
                    // every seed error is stored up front; degrade to a
                    // typed error rather than assert.
                    None => Err(LegalizeError::PoolBroken {
                        during: "batch slot",
                    }),
                }
            })
            .collect()
    }

    /// Runs one prepared design through the pipeline, spawning a pool for
    /// the call when the configuration is multi-threaded.
    fn run_single<'d>(
        &mut self,
        design: &'d Design,
        state: &mut PlacementState<'d>,
        stages: &[&dyn Stage],
        prep: &Prep<'d>,
    ) -> Result<LegalizeStats, LegalizeError> {
        let workers = self.pool_workers();
        let Self {
            config,
            scratches,
            diag,
        } = self;
        // Constructed with one scratch and never shrunk; degrade to a typed
        // error rather than index-panic if that invariant ever breaks.
        let Some(scratch) = scratches.first_mut() else {
            return Err(LegalizeError::ResourceExhausted {
                stage: "mgl",
                what: "runner scratch pool",
            });
        };
        diag.runs += 1;
        if workers == 0 {
            pipeline::run_stages(
                design,
                state,
                config,
                stages,
                &prep.weights,
                prep.oracle(),
                MglExec::Batch {
                    client: None,
                    run: 0,
                },
                scratch,
                "engine",
            )
        } else {
            std::thread::scope(|scope| {
                let pool = EvalPool::spawn(scope, workers);
                diag.pool_spawns += 1;
                diag.worker_spawns += workers as u64;
                let client = pool.client();
                pipeline::run_stages(
                    design,
                    state,
                    config,
                    stages,
                    &prep.weights,
                    prep.oracle(),
                    MglExec::Batch {
                        client: Some(&client),
                        run: 0,
                    },
                    scratch,
                    "engine",
                )
            })
        }
    }
}

/// One runner's admission loop: claim the next unprocessed design, run it
/// start to finish, repeat until the batch cursor runs dry. A free function
/// (not a closure) because the `'d: 'p` bound between the designs and the
/// pool's prepared borrows cannot be spelled on closure parameters.
#[allow(clippy::too_many_arguments)]
fn batch_runner<'d: 'p, 'p>(
    designs: &'d [Design],
    preps: &'p [Prep<'d>],
    slots: &[Mutex<Slot<'d>>],
    next: &AtomicUsize,
    runs: &AtomicU64,
    config: &LegalizerConfig,
    overrides: Option<&[LegalizerConfig]>,
    stages: &[&dyn Stage],
    scratch: &mut InsertionScratch,
    client: Option<&PoolClient<'p>>,
) {
    loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let (Some(design), Some(prep), Some(slot)) = (designs.get(i), preps.get(i), slots.get(i))
        else {
            break; // cursor ran past the batch: done
        };
        // The guard is scoped to the seed takeout: the run below sends on
        // the pool channels, and no lock guard may be live across a send
        // (`cargo xtask analyze`, rule pool-lock-across-send). The slot is
        // claimed by exactly one runner, so re-locking to store the result
        // races with nobody; a panic escaping the run leaves `out` empty,
        // which the collector degrades to a typed PoolBroken error.
        let seed = slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .seed
            .take();
        let Some(mut state) = seed else {
            continue; // seed error, result already recorded
        };
        runs.fetch_add(1, Ordering::Relaxed);
        // Per-job config override (today: the serve path's per-job deadline
        // budget); everything schedule-relevant is identical across jobs.
        let job_config = match overrides {
            Some(c) => c.get(i).unwrap_or(config),
            None => config,
        };
        let out = batch_run_one(
            job_config, scratch, stages, design, prep, &mut state, client, i,
        );
        slot.lock().unwrap_or_else(PoisonError::into_inner).out = Some(out);
        // `state` drops here: a finished design's working memory is
        // released immediately, keeping residency proportional to the
        // in-flight count.
    }
}

/// Runs one batch member through the pipeline and writes its output design.
/// `run` is the design's batch index, tagging its messages on the shared
/// pool.
#[allow(clippy::too_many_arguments)]
fn batch_run_one<'d: 'p, 'p>(
    config: &LegalizerConfig,
    scratch: &mut InsertionScratch,
    stages: &[&dyn Stage],
    d: &'d Design,
    prep: &'p Prep<'d>,
    state: &mut PlacementState<'d>,
    client: Option<&PoolClient<'p>>,
    run: usize,
) -> Result<BatchItem, LegalizeError> {
    let stats = pipeline::run_stages(
        d,
        state,
        config,
        stages,
        &prep.weights,
        prep.oracle(),
        MglExec::Batch { client, run },
        scratch,
        "batch",
    )?;
    let mut out = d.clone();
    state.write_back(&mut out);
    Ok((out, stats, state.take_replay_log()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalizer::Legalizer;

    fn batch_designs(n: usize) -> Vec<Design> {
        (0..n)
            .map(|k| {
                let mut d = Design::new(
                    format!("b{k}"),
                    Technology::example(),
                    Rect::new(0, 0, 2400, 1800),
                );
                d.add_cell_type(CellType::new("s", 20, 1));
                d.add_cell_type(CellType::new("d", 30, 2));
                let mut s = 0x9e37_79b9u64.wrapping_mul(k as u64 + 1) | 1;
                let mut rng = move || {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s
                };
                for i in 0..140 {
                    let t = CellTypeId(u32::from(rng() % 5 == 0));
                    let x = (rng() % 2300) as Dbu;
                    let y = (rng() % 1700) as Dbu;
                    d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
                }
                d
            })
            .collect()
    }

    fn cfg(threads: usize) -> LegalizerConfig {
        let mut c = LegalizerConfig::total_displacement();
        c.threads = threads;
        c.clamp_threads_to_hardware = false;
        c
    }

    #[test]
    fn batch_matches_individual_runs_bit_identically() {
        let designs = batch_designs(4);
        for threads in [1usize, 3] {
            let mut engine = Engine::new(cfg(threads));
            let batch = engine.legalize_batch(&designs);
            for (d, (out, stats)) in designs.iter().zip(&batch) {
                let (solo_out, solo_stats) = Legalizer::new(cfg(threads)).run(d);
                assert_eq!(
                    solo_out.cells.iter().map(|c| c.pos).collect::<Vec<_>>(),
                    out.cells.iter().map(|c| c.pos).collect::<Vec<_>>(),
                    "engine batch diverged from Legalizer::run at {threads} threads"
                );
                assert_eq!(&solo_stats, stats);
            }
        }
    }

    #[test]
    fn interleaved_batch_matches_solo_bit_identically() {
        // Force the shared-worker regime: 4 threads but only 2 in flight
        // leaves 2 pool workers serving both runners' rounds interleaved.
        let designs = batch_designs(6);
        let mut c = cfg(4);
        c.max_inflight_designs = 2;
        let mut engine = Engine::new(c);
        assert_eq!(engine.batch_runners(designs.len()), 2);
        let batch = engine.legalize_batch(&designs);
        assert_eq!(engine.diag().pool_spawns, 1);
        assert_eq!(engine.diag().worker_spawns, 2);
        for (d, (out, stats)) in designs.iter().zip(&batch) {
            let (solo_out, solo_stats) = Legalizer::new(cfg(4)).run(d);
            assert_eq!(
                solo_out.cells.iter().map(|c| c.pos).collect::<Vec<_>>(),
                out.cells.iter().map(|c| c.pos).collect::<Vec<_>>(),
                "interleaved batch diverged from solo for `{}`",
                d.name
            );
            assert_eq!(&solo_stats, stats, "stats diverged for `{}`", d.name);
        }
    }

    #[test]
    fn batch_reuses_pool_and_scratch() {
        let designs = batch_designs(4);
        // Default admission: every thread is a runner, so no pool at all.
        let mut engine = Engine::new(cfg(3));
        let batch = engine.legalize_batch(&designs);
        let diag = engine.diag();
        assert_eq!(diag.runs, 4);
        assert_eq!(
            diag.pool_spawns, 0,
            "full-width admission needs no shared pool"
        );
        assert_eq!(diag.runner_spawns, 2, "3 runners = main + 2 spawned");
        // Which runner ran which design races (a runner that arrives after
        // the cursor drains reports nothing), but the lifetime bound is
        // exact: at most one construction per runner scratch, ever. Without
        // reuse each of the 8 runs below would construct its own.
        let created: u64 = batch.iter().map(|(_, s)| s.mgl.perf.scratch.created).sum();
        assert!((1..=3).contains(&created), "saw {created} constructions");
        let batch2 = engine.legalize_batch(&designs);
        let created2: u64 = batch2.iter().map(|(_, s)| s.mgl.perf.scratch.created).sum();
        assert!(
            created + created2 <= 3,
            "second batch call must reuse runner scratches (saw {created} then {created2})"
        );

        // Legacy admission (one in-flight design) keeps the old sequential
        // schedule: one pool, deterministic per-design scratch charging.
        let mut c = cfg(3);
        c.max_inflight_designs = 1;
        let mut engine = Engine::new(c);
        let batch = engine.legalize_batch(&designs);
        let diag = engine.diag();
        assert_eq!(diag.runs, 4);
        assert_eq!(diag.pool_spawns, 1, "single-runner batch shares one pool");
        assert_eq!(diag.worker_spawns, 2);
        assert_eq!(diag.runner_spawns, 0);
        let created: Vec<u64> = batch
            .iter()
            .map(|(_, s)| s.mgl.perf.scratch.created)
            .collect();
        assert_eq!(created, vec![3, 0, 0, 0]);

        // Per-design engines pay the pool (and scratches) once per design.
        let mut spawns = 0u64;
        for d in &designs {
            let mut solo = Engine::new(cfg(3));
            let _ = solo.legalize(d);
            spawns += solo.diag().pool_spawns;
        }
        assert_eq!(spawns, 4);
    }

    #[test]
    fn engine_single_design_paths_match_legalizer() {
        let designs = batch_designs(2);
        let d = &designs[0];
        let mut engine = Engine::new(cfg(4));
        let legalizer = Legalizer::new(cfg(4));

        let (eo, es, elog) = engine.legalize_with_replay(d);
        let (lo, ls, llog) = legalizer.run_with_replay(d);
        assert_eq!(
            eo.cells.iter().map(|c| c.pos).collect::<Vec<_>>(),
            lo.cells.iter().map(|c| c.pos).collect::<Vec<_>>()
        );
        assert_eq!(es, ls);
        assert_eq!(elog, llog, "replay logs must be bit-identical");

        // refine twins: run stage 1 only, then refine the result both ways.
        let mut s1 = cfg(4);
        s1.max_disp_matching = false;
        s1.fixed_order_refine = false;
        let (placed, _) = Legalizer::new(s1).run(d);
        let (er, ers) = engine.refine(&placed).unwrap();
        let (lr, lrs) = legalizer.refine(&placed).unwrap();
        assert_eq!(
            er.cells.iter().map(|c| c.pos).collect::<Vec<_>>(),
            lr.cells.iter().map(|c| c.pos).collect::<Vec<_>>()
        );
        assert_eq!(ers, lrs);
    }

    #[test]
    fn batch_eco_adopts_and_reports_seed_errors() {
        let designs = batch_designs(2);
        let mut engine = Engine::new(cfg(2));
        // Legal inputs: stage-1 legalize, then batch-ECO adopts cleanly.
        let placed: Vec<Design> = {
            let mut s1 = cfg(2);
            s1.max_disp_matching = false;
            s1.fixed_order_refine = false;
            designs
                .iter()
                .map(|d| Legalizer::new(s1.clone()).run(d).0)
                .collect()
        };
        let out = engine.legalize_batch_eco(&placed);
        assert!(out.is_ok());

        // An illegal position in design 1 is reported with its index.
        let mut bad = placed.clone();
        bad[1].cells[0].pos = Some(Point::new(13, 7));
        match engine.legalize_batch_eco(&bad) {
            Err(e) => assert_eq!((e.design, e.cell), (1, CellId(0))),
            Ok(_) => panic!("misaligned seed position must be rejected"),
        }
    }
}
