//! Reusable legalization engine for batch workloads.
//!
//! [`Legalizer`](crate::Legalizer) is stateless: every call pays full setup
//! (thread spawn, scratch-arena growth) again. The [`Engine`] owns that
//! state instead — one [`InsertionScratch`] and, for the whole of a batch
//! call, one persistent [`EvalPool`] of worker threads — and runs each
//! design through the same [`crate::pipeline`] driver. Results are
//! bit-identical to the equivalent [`Legalizer`](crate::Legalizer) calls
//! (pinned by the golden corpus); only the setup cost is amortized.
//!
//! Buffer-reuse contract (asserted by tests via [`EngineDiag`] and the
//! scratch `created` counter): within one [`Engine::legalize_batch`] call,
//! exactly one pool is spawned (`threads − 1` workers), and every scratch —
//! the coordinator's and each worker's — is constructed at most once for
//! the engine's lifetime.

use crate::config::LegalizerConfig;
use crate::error::LegalizeError;
use crate::insertion::InsertionScratch;
use crate::legalizer::LegalizeStats;
use crate::pipeline::{self, includes_mgl, Prep, Stage, FULL_PIPELINE, POST_PIPELINE};
use crate::scheduler::EvalPool;
use crate::state::{PlaceError, PlacementState};
use mcl_db::prelude::*;

/// Setup-cost counters for asserting the engine's reuse contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineDiag {
    /// Pipeline runs driven by this engine (one per design).
    pub runs: u64,
    /// Worker pools spawned ([`Engine::legalize_batch`] spawns one per
    /// *call*, not per design; single-design calls spawn one per call too).
    pub pool_spawns: u64,
    /// Total worker threads spawned across all pools.
    pub worker_spawns: u64,
}

/// A seed error from a position-adopting batch run: design `design` could
/// not adopt `cell`'s existing position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSeedError {
    /// Index of the offending design in the batch slice.
    pub design: usize,
    /// The cell whose position could not be adopted.
    pub cell: CellId,
    /// Why adoption failed.
    pub error: PlaceError,
}

/// A reusable legalization engine: configuration plus long-lived scratch.
///
/// ```
/// use mcl_core::{Engine, LegalizerConfig};
/// use mcl_db::prelude::*;
///
/// let mut designs = Vec::new();
/// for k in 0..3 {
///     let mut d = Design::new(format!("d{k}"), Technology::example(), Rect::new(0, 0, 1000, 900));
///     let inv = d.add_cell_type(CellType::new("INV", 20, 1));
///     d.add_cell(Cell::new("u1", inv, Point::new(33 + k * 7, 47)));
///     d.add_cell(Cell::new("u2", inv, Point::new(41, 52 + k * 11)));
///     designs.push(d);
/// }
/// let mut engine = Engine::new(LegalizerConfig::contest());
/// let results = engine.legalize_batch(&designs);
/// assert_eq!(results.len(), 3);
/// for (legal, stats) in &results {
///     assert_eq!(stats.mgl.failed, 0);
///     assert!(Checker::new(legal).check().is_legal());
/// }
/// ```
#[derive(Debug)]
pub struct Engine {
    config: LegalizerConfig,
    scratch: InsertionScratch,
    diag: EngineDiag,
}

impl Engine {
    /// Creates an engine. The hardware thread clamp is resolved here, once,
    /// instead of on every run.
    pub fn new(mut config: LegalizerConfig) -> Self {
        if config.clamp_threads_to_hardware {
            let hw = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            config.threads = config.threads.max(1).min(hw);
            config.clamp_threads_to_hardware = false;
        } else {
            config.threads = config.threads.max(1);
        }
        Self {
            config,
            scratch: InsertionScratch::new(),
            diag: EngineDiag::default(),
        }
    }

    /// The (clamp-resolved) configuration.
    pub fn config(&self) -> &LegalizerConfig {
        &self.config
    }

    /// Setup-cost counters since construction.
    pub fn diag(&self) -> EngineDiag {
        self.diag
    }

    fn pool_workers(&self) -> usize {
        self.config.threads - 1
    }

    /// Legalizes one design from scratch (the engine twin of
    /// [`crate::Legalizer::run`]).
    pub fn legalize(&mut self, design: &Design) -> (Design, LegalizeStats) {
        let (out, stats, _) = self.legalize_with_replay(design);
        (out, stats)
    }

    /// Fallible variant of [`Self::legalize`]: a run whose degradation
    /// ladder is exhausted returns the typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// The terminal [`LegalizeError`] of the run.
    pub fn try_legalize(
        &mut self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), LegalizeError> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::new(design);
        let stats = self.run_single(design, &mut state, &FULL_PIPELINE, &prep)?;
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }

    /// Like [`Self::legalize`], additionally returning the replay log.
    pub fn legalize_with_replay(
        &mut self,
        design: &Design,
    ) -> (Design, LegalizeStats, mcl_audit::ReplayLog) {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::new(design);
        let stats = self
            .run_single(design, &mut state, &FULL_PIPELINE, &prep)
            .unwrap_or_else(|e| panic!("legalization of `{}` failed: {e}", design.name));
        let mut out = design.clone();
        state.write_back(&mut out);
        let log = state.take_replay_log();
        (out, stats, log)
    }

    /// Incremental legalization adopting existing positions (the engine
    /// twin of [`crate::Legalizer::run_eco`]).
    ///
    /// # Errors
    ///
    /// Returns the offending cell when an existing position cannot be
    /// adopted (the pre-placed part must be legal).
    pub fn legalize_eco(
        &mut self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), (CellId, PlaceError)> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::from_design_positions(design)?;
        let stats = self
            .run_single(design, &mut state, &FULL_PIPELINE, &prep)
            .unwrap_or_else(|e| panic!("ECO legalization of `{}` failed: {e}", design.name));
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }

    /// Fallible variant of [`Self::legalize_eco`]: seed rejection maps to
    /// [`LegalizeError::SeedRejected`] and pipeline failures come back
    /// typed.
    ///
    /// # Errors
    ///
    /// The terminal [`LegalizeError`] of the run.
    pub fn try_legalize_eco(
        &mut self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), LegalizeError> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::from_design_positions(design).map_err(|(cell, e)| {
            LegalizeError::SeedRejected {
                cell: Some(cell.0),
                message: e.to_string(),
            }
        })?;
        let stats = self.run_single(design, &mut state, &FULL_PIPELINE, &prep)?;
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }

    /// Post-processing only (the engine twin of
    /// [`crate::Legalizer::refine`]).
    ///
    /// # Errors
    ///
    /// Returns the offending cell when the input positions are not
    /// adoptable (i.e. the input is not legal).
    pub fn refine(
        &mut self,
        design: &Design,
    ) -> Result<(Design, LegalizeStats), (CellId, PlaceError)> {
        let prep = Prep::new(design, &self.config);
        let mut state = PlacementState::from_design_positions(design)?;
        let stats = self
            .run_single(design, &mut state, &POST_PIPELINE, &prep)
            .unwrap_or_else(|e| panic!("refine of `{}` failed: {e}", design.name));
        let mut out = design.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }

    /// Legalizes a batch of designs from scratch through one shared worker
    /// pool and one shared coordinator scratch. Output is bit-identical to
    /// calling [`Self::legalize`] per design; only setup is amortized.
    pub fn legalize_batch(&mut self, designs: &[Design]) -> Vec<(Design, LegalizeStats)> {
        match self.legalize_batch_with(designs, &FULL_PIPELINE, false) {
            Ok(results) => results,
            // Fresh seeding never adopts positions, so it cannot fail.
            Err(_) => unreachable!("fresh-seeded batch cannot hit a seed error"),
        }
    }

    /// ECO-legalizes a batch: every design's existing positions are adopted
    /// before the full pipeline runs.
    ///
    /// # Errors
    ///
    /// Returns the first design/cell whose position could not be adopted;
    /// no design is legalized in that case.
    pub fn legalize_batch_eco(
        &mut self,
        designs: &[Design],
    ) -> Result<Vec<(Design, LegalizeStats)>, BatchSeedError> {
        self.legalize_batch_with(designs, &FULL_PIPELINE, true)
    }

    /// The general batch entry point: run an explicit stage list over every
    /// design. Positions are adopted when `adopt_positions` is set *or* the
    /// stage list skips MGL (post-processing needs a placed input).
    ///
    /// # Errors
    ///
    /// Returns the first design/cell whose position could not be adopted;
    /// no design is legalized in that case.
    pub fn legalize_batch_with(
        &mut self,
        designs: &[Design],
        stages: &[&dyn Stage],
        adopt_positions: bool,
    ) -> Result<Vec<(Design, LegalizeStats)>, BatchSeedError> {
        let adopt = adopt_positions || !includes_mgl(stages);
        // Prepare weights/oracles and seed every state up-front: seed errors
        // surface before any work is done, and the prepared borrows outlive
        // the pool scope below.
        let preps: Vec<Prep<'_>> = designs.iter().map(|d| Prep::new(d, &self.config)).collect();
        let mut states: Vec<PlacementState<'_>> = Vec::with_capacity(designs.len());
        for (i, d) in designs.iter().enumerate() {
            states.push(if adopt {
                PlacementState::from_design_positions(d).map_err(|(cell, error)| {
                    BatchSeedError {
                        design: i,
                        cell,
                        error,
                    }
                })?
            } else {
                PlacementState::new(d)
            });
        }

        let workers = self.pool_workers();
        let Self {
            config,
            scratch,
            diag,
        } = self;
        let mut results = Vec::with_capacity(designs.len());
        if workers == 0 {
            for ((d, prep), state) in designs.iter().zip(&preps).zip(states.iter_mut()) {
                diag.runs += 1;
                results.push(
                    Self::batch_run_one(config, scratch, stages, d, prep, state, None)
                        .unwrap_or_else(|e| {
                            panic!("batch legalization of `{}` failed: {e}", d.name)
                        }),
                );
            }
        } else {
            std::thread::scope(|scope| {
                let pool = EvalPool::spawn(scope, workers);
                diag.pool_spawns += 1;
                diag.worker_spawns += workers as u64;
                for ((d, prep), state) in designs.iter().zip(&preps).zip(states.iter_mut()) {
                    diag.runs += 1;
                    results.push(
                        Self::batch_run_one(config, scratch, stages, d, prep, state, Some(&pool))
                            .unwrap_or_else(|e| {
                                panic!("batch legalization of `{}` failed: {e}", d.name)
                            }),
                    );
                }
            });
        }
        Ok(results)
    }

    /// Fault-isolating batch entry point: every design gets its own
    /// [`Result`]. One job exhausting its degradation ladder (or failing to
    /// seed) does not abort the batch — the remaining jobs still run on the
    /// shared pool, and their outputs are bit-identical to fault-free solo
    /// runs (pinned by the chaos suite).
    pub fn try_legalize_batch(
        &mut self,
        designs: &[Design],
    ) -> Vec<Result<(Design, LegalizeStats), LegalizeError>> {
        self.try_legalize_batch_with(designs, &FULL_PIPELINE, false)
    }

    /// The general fault-isolating batch entry point (see
    /// [`Self::try_legalize_batch`]). Seeding happens per job: a design
    /// whose positions cannot be adopted yields
    /// [`LegalizeError::SeedRejected`] for that job only.
    pub fn try_legalize_batch_with(
        &mut self,
        designs: &[Design],
        stages: &[&dyn Stage],
        adopt_positions: bool,
    ) -> Vec<Result<(Design, LegalizeStats), LegalizeError>> {
        let adopt = adopt_positions || !includes_mgl(stages);
        let preps: Vec<Prep<'_>> = designs.iter().map(|d| Prep::new(d, &self.config)).collect();
        let mut states: Vec<Result<PlacementState<'_>, LegalizeError>> = designs
            .iter()
            .map(|d| {
                if adopt {
                    PlacementState::from_design_positions(d).map_err(|(cell, e)| {
                        LegalizeError::SeedRejected {
                            cell: Some(cell.0),
                            message: e.to_string(),
                        }
                    })
                } else {
                    Ok(PlacementState::new(d))
                }
            })
            .collect();

        let workers = self.pool_workers();
        let Self {
            config,
            scratch,
            diag,
        } = self;
        let mut results = Vec::with_capacity(designs.len());
        if workers == 0 {
            for ((d, prep), state) in designs.iter().zip(&preps).zip(states.iter_mut()) {
                match state {
                    Ok(state) => {
                        diag.runs += 1;
                        results.push(Self::batch_run_one(
                            config, scratch, stages, d, prep, state, None,
                        ));
                    }
                    Err(e) => results.push(Err(e.clone())),
                }
            }
        } else {
            std::thread::scope(|scope| {
                let pool = EvalPool::spawn(scope, workers);
                diag.pool_spawns += 1;
                diag.worker_spawns += workers as u64;
                for ((d, prep), state) in designs.iter().zip(&preps).zip(states.iter_mut()) {
                    match state {
                        Ok(state) => {
                            diag.runs += 1;
                            results.push(Self::batch_run_one(
                                config,
                                scratch,
                                stages,
                                d,
                                prep,
                                state,
                                Some(&pool),
                            ));
                        }
                        Err(e) => results.push(Err(e.clone())),
                    }
                }
            });
        }
        results
    }

    /// Runs one batch member through the pipeline and writes its output
    /// design. A free function (not a closure) because the `'d: 'p` bound
    /// between the design and the pool's prepared borrows cannot be spelled
    /// on closure parameters.
    #[allow(clippy::too_many_arguments)]
    fn batch_run_one<'d: 'p, 'p>(
        config: &LegalizerConfig,
        scratch: &mut InsertionScratch,
        stages: &[&dyn Stage],
        d: &'d Design,
        prep: &'p Prep<'d>,
        state: &mut PlacementState<'d>,
        pool: Option<&EvalPool<'p>>,
    ) -> Result<(Design, LegalizeStats), LegalizeError> {
        let stats = pipeline::run_stages(
            d,
            state,
            config,
            stages,
            &prep.weights,
            prep.oracle(),
            pool,
            scratch,
            "batch",
        )?;
        let mut out = d.clone();
        state.write_back(&mut out);
        Ok((out, stats))
    }

    /// Runs one prepared design through the pipeline, spawning a pool for
    /// the call when the configuration is multi-threaded.
    fn run_single<'d>(
        &mut self,
        design: &'d Design,
        state: &mut PlacementState<'d>,
        stages: &[&dyn Stage],
        prep: &Prep<'d>,
    ) -> Result<LegalizeStats, LegalizeError> {
        let workers = self.pool_workers();
        let Self {
            config,
            scratch,
            diag,
        } = self;
        diag.runs += 1;
        if workers == 0 {
            pipeline::run_stages(
                design,
                state,
                config,
                stages,
                &prep.weights,
                prep.oracle(),
                None,
                scratch,
                "engine",
            )
        } else {
            std::thread::scope(|scope| {
                let pool = EvalPool::spawn(scope, workers);
                diag.pool_spawns += 1;
                diag.worker_spawns += workers as u64;
                pipeline::run_stages(
                    design,
                    state,
                    config,
                    stages,
                    &prep.weights,
                    prep.oracle(),
                    Some(&pool),
                    scratch,
                    "engine",
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legalizer::Legalizer;

    fn batch_designs(n: usize) -> Vec<Design> {
        (0..n)
            .map(|k| {
                let mut d = Design::new(
                    format!("b{k}"),
                    Technology::example(),
                    Rect::new(0, 0, 2400, 1800),
                );
                d.add_cell_type(CellType::new("s", 20, 1));
                d.add_cell_type(CellType::new("d", 30, 2));
                let mut s = 0x9e37_79b9u64.wrapping_mul(k as u64 + 1) | 1;
                let mut rng = move || {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    s
                };
                for i in 0..140 {
                    let t = CellTypeId(u32::from(rng() % 5 == 0));
                    let x = (rng() % 2300) as Dbu;
                    let y = (rng() % 1700) as Dbu;
                    d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
                }
                d
            })
            .collect()
    }

    fn cfg(threads: usize) -> LegalizerConfig {
        let mut c = LegalizerConfig::total_displacement();
        c.threads = threads;
        c.clamp_threads_to_hardware = false;
        c
    }

    #[test]
    fn batch_matches_individual_runs_bit_identically() {
        let designs = batch_designs(4);
        for threads in [1usize, 3] {
            let mut engine = Engine::new(cfg(threads));
            let batch = engine.legalize_batch(&designs);
            for (d, (out, stats)) in designs.iter().zip(&batch) {
                let (solo_out, solo_stats) = Legalizer::new(cfg(threads)).run(d);
                assert_eq!(
                    solo_out.cells.iter().map(|c| c.pos).collect::<Vec<_>>(),
                    out.cells.iter().map(|c| c.pos).collect::<Vec<_>>(),
                    "engine batch diverged from Legalizer::run at {threads} threads"
                );
                assert_eq!(&solo_stats, stats);
            }
        }
    }

    #[test]
    fn batch_reuses_pool_and_scratch() {
        let designs = batch_designs(4);
        let workers = 2usize;
        let mut engine = Engine::new(cfg(workers + 1));
        let batch = engine.legalize_batch(&designs);
        let diag = engine.diag();
        assert_eq!(diag.runs, 4);
        assert_eq!(diag.pool_spawns, 1, "batch must share one pool");
        assert_eq!(diag.worker_spawns, workers as u64);
        // The first run is charged with every scratch construction (one
        // coordinator + one per worker); later runs construct none.
        let created: Vec<u64> = batch
            .iter()
            .map(|(_, s)| s.mgl.perf.scratch.created)
            .collect();
        assert_eq!(created, vec![1 + workers as u64, 0, 0, 0]);

        // Per-design engines pay the pool (and scratches) once per design.
        let mut spawns = 0u64;
        for d in &designs {
            let mut solo = Engine::new(cfg(workers + 1));
            let _ = solo.legalize(d);
            spawns += solo.diag().pool_spawns;
        }
        assert_eq!(spawns, 4);
    }

    #[test]
    fn engine_single_design_paths_match_legalizer() {
        let designs = batch_designs(2);
        let d = &designs[0];
        let mut engine = Engine::new(cfg(4));
        let legalizer = Legalizer::new(cfg(4));

        let (eo, es, elog) = engine.legalize_with_replay(d);
        let (lo, ls, llog) = legalizer.run_with_replay(d);
        assert_eq!(
            eo.cells.iter().map(|c| c.pos).collect::<Vec<_>>(),
            lo.cells.iter().map(|c| c.pos).collect::<Vec<_>>()
        );
        assert_eq!(es, ls);
        assert_eq!(elog, llog, "replay logs must be bit-identical");

        // refine twins: run stage 1 only, then refine the result both ways.
        let mut s1 = cfg(4);
        s1.max_disp_matching = false;
        s1.fixed_order_refine = false;
        let (placed, _) = Legalizer::new(s1).run(d);
        let (er, ers) = engine.refine(&placed).unwrap();
        let (lr, lrs) = legalizer.refine(&placed).unwrap();
        assert_eq!(
            er.cells.iter().map(|c| c.pos).collect::<Vec<_>>(),
            lr.cells.iter().map(|c| c.pos).collect::<Vec<_>>()
        );
        assert_eq!(ers, lrs);
    }

    #[test]
    fn batch_eco_adopts_and_reports_seed_errors() {
        let designs = batch_designs(2);
        let mut engine = Engine::new(cfg(2));
        // Legal inputs: stage-1 legalize, then batch-ECO adopts cleanly.
        let placed: Vec<Design> = {
            let mut s1 = cfg(2);
            s1.max_disp_matching = false;
            s1.fixed_order_refine = false;
            designs
                .iter()
                .map(|d| Legalizer::new(s1.clone()).run(d).0)
                .collect()
        };
        let out = engine.legalize_batch_eco(&placed);
        assert!(out.is_ok());

        // An illegal position in design 1 is reported with its index.
        let mut bad = placed.clone();
        bad[1].cells[0].pos = Some(Point::new(13, 7));
        match engine.legalize_batch_eco(&bad) {
            Err(e) => assert_eq!((e.design, e.cell), (1, CellId(0))),
            Ok(_) => panic!("misaligned seed position must be rejected"),
        }
    }
}
