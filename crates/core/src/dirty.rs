//! Transitive dirty-window closure for delta-first (ECO) legalization.
//!
//! A delta run mutates a handful of cells; everything the post stages are
//! allowed to touch must be derivable from those mutations alone. This
//! module turns the raw dirty set tracked by
//! [`PlacementState`](crate::state::PlacementState) (epoch-stamped cells
//! plus the rects they vacated) into its *transitive geometric closure*:
//! every placed cell within the edge-spacing halo of a dirty rect becomes
//! dirty itself, and its own halo-expanded rect is scanned in turn, until
//! a fixed point — re-running the closure on its own result adds nothing
//! (pinned by the property suite in `crates/core/tests/dirty_props.rs`).
//!
//! The scanned windows are deduplicated through a [`HierGrid`] so repeat
//! coverage of the same region is skipped instead of re-walked; the grid
//! is also how the windows are reported outward (`eco.windows_dirty`).
//! Cells outside the closure are guaranteed untouched by the delta post
//! stages: stage 2 only re-matches groups restricted to closure members
//! and stage 3 treats the nearest clean neighbors as fixed walls.

use crate::spatial::HierGrid;
use crate::state::PlacementState;
use mcl_db::prelude::*;

/// The transitive closure of a delta's dirty set: the cells a delta-mode
/// post stage may move, and the halo-expanded windows that were scanned
/// to find them.
#[derive(Debug, Clone, Default)]
pub struct DirtyClosure {
    /// Per-cell membership, indexed by `CellId`.
    in_closure: Vec<bool>,
    /// Closure members in ascending id order.
    cells: Vec<CellId>,
    /// Every halo-expanded window scanned while growing the closure (in
    /// scan order, deduplicated by containment).
    windows: Vec<Rect>,
}

impl DirtyClosure {
    /// Whether `cell` is in the closure (may be moved by delta stages).
    #[inline]
    pub fn contains(&self, cell: CellId) -> bool {
        self.in_closure
            .get(cell.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Closure members in ascending id order.
    pub fn cells(&self) -> &[CellId] {
        &self.cells
    }

    /// The scanned dirty windows (halo-expanded, containment-deduped).
    pub fn windows(&self) -> &[Rect] {
        &self.windows
    }

    /// Number of closure members.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the closure is empty (nothing moved).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// The halo a dirty rect is expanded by before scanning for neighbors:
/// the worst-case edge spacing rounded up to whole sites (the farthest a
/// cell can constrain a neighbor it does not overlap), plus one site so
/// snap-rounding at the boundary can never exclude a constrained cell.
pub fn halo(d: &Design) -> Dbu {
    let sw = d.tech.site_width;
    let s = d.tech.edge_spacing.max_spacing();
    (s + sw - 1).div_euclid(sw) * sw + sw
}

/// Computes the transitive dirty-window closure of the state's current
/// dirty set (see [`PlacementState::dirty_cells`]): seeds are each dirty
/// cell's pre-mutation rect and current rect; any placed cell overlapping
/// a halo-expanded window joins the closure and contributes its own
/// window, until no window finds a new cell.
pub fn compute(state: &PlacementState<'_>) -> DirtyClosure {
    let seeds: Vec<(CellId, Option<Rect>)> = state.dirty_cells().to_vec();
    compute_from_seeds(state, &seeds)
}

/// [`compute`] over an explicit seed list (cell, pre-mutation rect).
/// Exposed for the fixed-point property suite.
pub fn compute_from_seeds(
    state: &PlacementState<'_>,
    seeds: &[(CellId, Option<Rect>)],
) -> DirtyClosure {
    let d = state.design();
    let h = halo(d);
    let n = d.cells.len();
    let mut out = DirtyClosure {
        in_closure: vec![false; n],
        cells: Vec::new(),
        windows: Vec::new(),
    };
    // Windows already scanned, for containment dedup; a generous band
    // height keeps multi-row windows in few bands.
    let mut scanned = HierGrid::new(d.core, d.tech.row_height.max(1) * 4);
    let mut worklist: Vec<Rect> = Vec::new();

    let expand = |r: Rect| Rect::new(r.xl - h, r.yl, r.xh + h, r.yh);
    for &(cell, origin) in seeds {
        if !out.in_closure[cell.0 as usize] {
            out.in_closure[cell.0 as usize] = true;
            out.cells.push(cell);
        }
        if let Some(r) = origin {
            worklist.push(expand(r));
        }
        if let Some(r) = state.cell_rect(cell) {
            worklist.push(expand(r));
        }
    }

    let rh = d.tech.row_height;
    while let Some(win) = worklist.pop() {
        // Skip windows fully covered by an already-scanned window.
        let mut covered = false;
        scanned.range_query(
            win,
            |_| true,
            |_, r, _| {
                if r.xl <= win.xl && r.yl <= win.yl && r.xh >= win.xh && r.yh >= win.yh {
                    covered = true;
                }
            },
        );
        if covered {
            continue;
        }
        scanned.insert(win, 0);
        out.windows.push(win);

        // Scan every segment row the window touches for overlapping
        // occupants (any fence — spacing constraints cross fence walls
        // only through the segment padding, but group restriction in
        // stage 2 needs the member set per fence anyway).
        let row_lo = ((win.yl - d.core.yl).div_euclid(rh)).max(0) as usize;
        let row_hi = (((win.yh - d.core.yl - 1).div_euclid(rh)).max(0) as usize)
            .min(d.num_rows.saturating_sub(1));
        for row in row_lo..=row_hi.max(row_lo) {
            if row >= d.num_rows {
                break;
            }
            for &seg in state.segments().in_row(row) {
                let s = &state.segments().segments()[seg];
                if !s.x.overlaps(Interval::new(win.xl, win.xh)) {
                    continue;
                }
                for &c in state.occupants_overlapping(seg, win.xl, win.xh) {
                    if out.in_closure[c.0 as usize] {
                        continue;
                    }
                    out.in_closure[c.0 as usize] = true;
                    out.cells.push(c);
                    if let Some(r) = state.cell_rect(c) {
                        worklist.push(expand(r));
                    }
                }
            }
        }
    }
    out.cells.sort_unstable_by_key(|c| c.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Design {
        let mut d = Design::new("dc", Technology::example(), Rect::new(0, 0, 2000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        for i in 0..12 {
            d.add_cell(Cell::new(
                format!("c{i}"),
                CellTypeId(0),
                Point::new(i as Dbu * 60, 0),
            ));
        }
        d
    }

    #[test]
    fn closure_empty_without_mutations() {
        let mut d = design();
        for i in 0..12 {
            d.cells[i].pos = Some(Point::new(i as Dbu * 60, 0));
        }
        let s = PlacementState::from_design_positions(&d).unwrap();
        let c = compute(&s);
        assert!(c.is_empty());
        assert!(c.windows().is_empty());
    }

    #[test]
    fn closure_pulls_in_halo_neighbors_transitively() {
        let mut d = design();
        // Abutted chain at the left: cells 0..4 at x = 0,20,40,60,80.
        for i in 0..5 {
            d.cells[i].pos = Some(Point::new(i as Dbu * 20, 0));
        }
        // Far-away cell untouched by any halo.
        d.cells[11].pos = Some(Point::new(1500, 0));
        let mut s = PlacementState::from_design_positions(&d).unwrap();
        // Move cell 2 out of the chain: its vacated rect borders 1 and 3,
        // whose rects border 0 and 4 — the whole chain is in the closure.
        s.remove(CellId(2));
        s.place(CellId(2), Point::new(400, 0)).unwrap();
        let c = compute(&s);
        for i in 0..5 {
            assert!(c.contains(CellId(i)), "chain member {i} missing");
        }
        assert!(!c.contains(CellId(11)), "distant cell must stay clean");
        assert!(!c.windows().is_empty());
    }
}
