//! Fixed row & fixed order optimization — stage 3 (§3.3).
//!
//! Keeping every cell's row assignment and left-to-right order, the x
//! coordinates solve the LP of Eq. 4 (weighted total displacement, neighbor
//! separation, segment/feasible-range bounds), extended with the
//! max-displacement terms of Eq. 8. The LP is solved through its dual
//! min-cost flow (Eq. 5–9) with `m + 1` vertices (plus `v_p`, `v_n` for the
//! extension), and the optimal positions are recovered from the network
//! simplex node potentials: `x_i = π_i − π_z`.
//!
//! ## Flow construction (derivation summary)
//!
//! Working in site units with reduced cost `rc(a) = cost − π(from) + π(to)`:
//!
//! | dual var | arc | cap | cost | certifies |
//! |---|---|---|---|---|
//! | `f_i⁺` | `z→i` | `n_i` | `−x'_i` | `f=0 ⇒ x_i ≥ x'_i`, `f=cap ⇒ x_i ≤ x'_i` |
//! | `f_i⁻` | `i→z` | `n_i` | `+x'_i` | mirror |
//! | `f_ij` | `i→j` | ∞ | `−w̃_ij` | `x_j − x_i ≥ w̃_ij` |
//! | `f_i^l` | `z→i` | ∞ | `−l_i` | `x_i ≥ l_i` |
//! | `f_i^r` | `i→z` | ∞ | `+r_i` | `x_i ≤ r_i` |
//! | `f_i^p` | `p→i` | ∞ | `−(x'_i + δ_yi)` | `δ⁻ ≤ x_i − x'_i − δ_yi` |
//! | `f_i^n` | `i→n` | ∞ | `+(x'_i − δ_yi)` | `δ⁺ ≥ x_i − x'_i + δ_yi` |
//! | `f^p` | `z→p` | `n₀` | `+max δ_y` | caps the max-disp weight |
//! | `f^n` | `n→z` | `n₀` | `+max δ_y` | mirror |
//!
//! With routability enabled, `[l_i, r_i]` is additionally intersected with
//! the maximal x range where the cell's pins stay clear of vertical P/G
//! stripes (§3.4), i.e. `C_L = C_R = C`.

use crate::config::LegalizerConfig;
use crate::routability::RoutOracle;
use crate::state::PlacementState;
use mcl_db::prelude::*;
use mcl_flow::{FlowGraph, NetworkSimplex, NodeId, INF_CAP};
use mcl_obs::Meter;
use std::collections::HashSet;

/// Statistics of one stage-3 run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FixedOrderStats {
    /// Cells in the flow (placed movable cells).
    pub cells: usize,
    /// Neighbor-separation arcs (`|E|`).
    pub neighbor_arcs: usize,
    /// Cells whose x changed.
    pub cells_moved: usize,
    /// Weighted x-displacement before, in site units.
    pub weighted_before: i64,
    /// Weighted x-displacement after, in site units.
    pub weighted_after: i64,
    /// Whether the solution was applied (false on solver failure or
    /// validation mismatch — the placement is then left untouched).
    pub applied: bool,
}

/// Runs the fixed row & order refinement in place.
pub fn optimize_fixed_order(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    weights: &[i64],
    oracle: Option<&RoutOracle<'_>>,
) -> FixedOrderStats {
    let mut obs = Meter::new();
    optimize_fixed_order_metered(state, config, weights, oracle, &mut obs, None)
}

/// [`optimize_fixed_order`] that records the dual flow solve (span + pivot
/// count) into `obs`.
///
/// With `delta` set (ECO delta mode) the flow is built over dirty-closure
/// members only; a closure cell's nearest clean segment neighbors become
/// fixed walls (its `[l_i, r_i]` is clipped at their edges under the same
/// soft-violation relaxation as the pair arcs), so clean cells are never
/// moved and never crossed.
pub fn optimize_fixed_order_metered(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    weights: &[i64],
    oracle: Option<&RoutOracle<'_>>,
    obs: &mut Meter,
    delta: Option<&crate::dirty::DirtyClosure>,
) -> FixedOrderStats {
    let d = state.design();
    let sw = d.tech.site_width;
    let mut stats = FixedOrderStats::default();

    // Index placed movable cells (closure members only in delta mode).
    let cells: Vec<CellId> = d
        .movable_cells()
        .filter(|&c| state.pos(c).is_some() && delta.is_none_or(|dc| dc.contains(c)))
        .collect();
    let k = cells.len();
    if k == 0 {
        stats.applied = true;
        return stats;
    }
    let mut index = vec![usize::MAX; d.cells.len()];
    for (i, &c) in cells.iter().enumerate() {
        index[c.0 as usize] = i;
    }
    stats.cells = k;

    let to_sites = |x: Dbu| -> i64 { (x - d.core.xl) / sw };
    let snap = |x: Dbu| d.tech.snap_x_nearest(d.core.xl, x);

    // Per-cell data.
    let mut xp = vec![0i64; k]; // x'_i in sites
    let mut lo = vec![0i64; k];
    let mut hi = vec![0i64; k];
    let mut dy = vec![0i64; k]; // δ_yi in sites
    let mut cur = vec![0i64; k];
    for (i, &c) in cells.iter().enumerate() {
        let cell = &d.cells[c.0 as usize];
        let p = state.pos(c).unwrap();
        let w = d.type_of(c).width;
        cur[i] = to_sites(p.x);
        xp[i] = to_sites(snap(cell.gp.x));
        dy[i] = ((p.y - cell.gp.y).abs() + sw / 2) / sw;
        // Segment bounds across all spanned rows.
        let mut l = d.core.xl;
        let mut r = d.core.xh;
        for (seg_idx, _) in state.segment_memberships(c) {
            let seg = &state.segments().segments()[seg_idx];
            l = l.max(seg.x.lo);
            r = r.min(seg.x.hi - w);
        }
        // Routability feasible range (C_L = C_R = C with pins constrained).
        if let Some(o) = oracle {
            let row = state.row_of(c).unwrap();
            let (cl, ch) = o.clean_x_range(cell.type_id, row, p.x, l, r);
            l = cl;
            r = ch;
        }
        lo[i] = to_sites(l);
        hi[i] = to_sites(r);
        debug_assert!(lo[i] <= cur[i] && cur[i] <= hi[i]);
    }

    // Neighbor pairs from segment occupant lists (deduped across rows).
    let mut pairs: Vec<(usize, usize, i64)> = Vec::new();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let spacing_snapped = |a: u8, b: u8| -> i64 {
        let s = d.tech.edge_spacing.spacing(a, b);
        (s + sw - 1).div_euclid(sw)
    };
    for seg in 0..state.segments().len() {
        let occ = state.cells_in_segment(seg);
        for w2 in occ.windows(2) {
            let (a, b) = (w2[0], w2[1]);
            if seen.insert((a.0, b.0)) {
                let ia = index[a.0 as usize];
                let ib = index[b.0 as usize];
                let ta = d.type_of(a);
                let tb = d.type_of(b);
                let sep = ta.width / sw + spacing_snapped(ta.edge_class.1, tb.edge_class.0);
                // On dense designs stage 1 may leave *soft* edge-spacing
                // violations; requiring the full rule here would make the
                // constraint system infeasible (the dual flow then pushes
                // INF_CAP around a negative cycle and its potentials are
                // meaningless). Never ask for more separation than the
                // incumbent has: the LP stays feasible and an existing
                // soft gap can only grow, never shrink.
                match (ia != usize::MAX, ib != usize::MAX) {
                    (true, true) => pairs.push((ia, ib, sep.min(cur[ib] - cur[ia]))),
                    // Delta mode: a clean neighbor is a fixed wall. Clip
                    // the closure cell's bound at the wall minus the
                    // (relaxed) separation; the incumbent stays feasible
                    // because the relaxation never asks for more than the
                    // current gap.
                    (true, false) => {
                        let bx = to_sites(state.soa().x(b));
                        let s = sep.min(bx - cur[ia]);
                        hi[ia] = hi[ia].min(bx - s);
                    }
                    (false, true) => {
                        let ax = to_sites(state.soa().x(a));
                        let s = sep.min(cur[ib] - ax);
                        lo[ib] = lo[ib].max(ax + s);
                    }
                    // Both clean: nothing in the flow touches them.
                    (false, false) => {}
                }
            }
        }
    }
    stats.neighbor_arcs = pairs.len();

    // Weighted displacement before.
    let weighted = |xs: &dyn Fn(usize) -> i64| -> i64 {
        cells
            .iter()
            .enumerate()
            .map(|(i, &c)| weights[c.0 as usize] * (xs(i) - xp[i]).abs())
            .sum()
    };
    stats.weighted_before = weighted(&|i| cur[i]);

    // Build the flow graph: node 0 = z, 1..=k cells, then p, n.
    let n0 = if config.n0_factor > 0 {
        config.n0_factor
            * cells
                .iter()
                .map(|&c| weights[c.0 as usize])
                .max()
                .unwrap_or(1)
    } else {
        0
    };
    let extension = n0 > 0;
    let num_nodes = 1 + k + if extension { 2 } else { 0 };
    let mut g = FlowGraph::with_nodes(num_nodes);
    let z = NodeId(0);
    let node = |i: usize| NodeId(1 + i);
    for (i, &c) in cells.iter().enumerate() {
        let ni = weights[c.0 as usize];
        g.add_arc(z, node(i), ni, -xp[i]);
        g.add_arc(node(i), z, ni, xp[i]);
        g.add_arc(z, node(i), INF_CAP, -lo[i]);
        g.add_arc(node(i), z, INF_CAP, hi[i]);
    }
    for &(ia, ib, sep) in &pairs {
        g.add_arc(node(ia), node(ib), INF_CAP, -sep);
    }
    if extension {
        let p = NodeId(1 + k);
        let nn = NodeId(2 + k);
        let max_dy = dy.iter().copied().max().unwrap_or(0);
        for i in 0..k {
            g.add_arc(p, node(i), INF_CAP, -(xp[i] + dy[i]));
            g.add_arc(node(i), nn, INF_CAP, xp[i] - dy[i]);
        }
        g.add_arc(z, p, n0, max_dy);
        g.add_arc(nn, z, n0, max_dy);
    }

    let Ok(sol) = NetworkSimplex::new().solve_metered(&g, obs, 0) else {
        return stats;
    };
    debug_assert_eq!(sol.verify(&g), None, "dual solution failed certification");
    let pi_z = sol.potential[0];
    let xs: Vec<i64> = (0..k).map(|i| sol.potential[1 + i] - pi_z).collect();

    // Validate the recovered primal solution.
    for i in 0..k {
        if xs[i] < lo[i] || xs[i] > hi[i] {
            debug_assert!(
                false,
                "bound violated for cell {i}: {} not in [{}, {}]",
                xs[i], lo[i], hi[i]
            );
            return stats;
        }
    }
    for &(ia, ib, sep) in &pairs {
        if xs[ib] - xs[ia] < sep {
            debug_assert!(false, "separation violated");
            return stats;
        }
    }
    stats.weighted_after = weighted(&|i| xs[i]);
    if !extension && stats.weighted_after > stats.weighted_before {
        // Without the max-disp terms the optimum can't be worse than the
        // incumbent; guard against solver surprises. With the extension the
        // total displacement may legitimately grow in exchange for a
        // smaller maximum.
        debug_assert!(false, "stage 3 must not worsen the objective");
        return stats;
    }

    // Apply: left-movers in ascending current x, then right-movers in
    // descending current x (no transient overlap).
    let mut order: Vec<usize> = (0..k).filter(|&i| xs[i] != cur[i]).collect();
    order.sort_by_key(|&i| {
        if xs[i] < cur[i] {
            (0, cur[i], 0i64)
        } else {
            (1, 0, -cur[i])
        }
    });
    for i in order {
        let c = cells[i];
        let new_x = d.core.xl + xs[i] * sw;
        state.shift_x(c, new_x);
        stats.cells_moved += 1;
    }
    stats.applied = true;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_db::score::Metrics;

    fn row_design(cells_at: &[(Dbu, Dbu)]) -> Design {
        // (gp_x, placed_x) single-row cells of width 20 on row 0.
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        for (i, &(gx, px)) in cells_at.iter().enumerate() {
            let mut c = Cell::new(format!("c{i}"), CellTypeId(0), Point::new(gx, 0));
            c.pos = Some(Point::new(px, 0));
            d.add_cell(c);
        }
        d
    }

    fn run(d: &Design, n0: i64) -> (Design, FixedOrderStats) {
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.n0_factor = n0;
        let weights = vec![1i64; d.cells.len()];
        let mut state = PlacementState::from_design_positions(d).unwrap();
        let stats = optimize_fixed_order(&mut state, &cfg, &weights, None);
        let mut out = d.clone();
        state.write_back(&mut out);
        (out, stats)
    }

    #[test]
    fn cells_return_to_gp_when_space_allows() {
        let d = row_design(&[(100, 300), (400, 340), (800, 380)]);
        let (out, stats) = run(&d, 0);
        assert!(stats.applied);
        assert_eq!(out.cells[0].pos.unwrap().x, 100);
        assert_eq!(out.cells[1].pos.unwrap().x, 400);
        assert_eq!(out.cells[2].pos.unwrap().x, 800);
        assert_eq!(stats.weighted_after, 0);
    }

    #[test]
    fn tolerates_soft_edge_spacing_violations_in_input() {
        // Two cells of a spacing-constrained class placed abutted (a *soft*
        // violation stage 1 may legitimately leave on dense designs). The
        // full-rule separation would make the LP infeasible; the builder
        // must relax to the incumbent gap, keep the dual meaningful, and
        // still apply an improvement without shrinking the bad gap.
        let mut d = row_design(&[(100, 300), (400, 320), (800, 380)]);
        let mut table = EdgeSpacingTable::new(2);
        table.set(1, 1, 40);
        d.tech.edge_spacing = table;
        d.cell_types[0].edge_class = (1, 1);
        let (out, stats) = run(&d, 0);
        assert!(stats.applied, "LP must stay feasible: {stats:?}");
        let xs: Vec<Dbu> = out.cells.iter().map(|c| c.pos.unwrap().x).collect();
        // The violated pair keeps at least its incumbent gap (cells are 20
        // wide, so the abutted pair keeps >= 20); satisfied pairs keep the
        // full rule (20 width + 40 spacing).
        assert!(xs[1] - xs[0] >= 20, "{xs:?}");
        assert!(xs[2] - xs[1] >= 60, "{xs:?}");
        assert!(stats.weighted_after <= stats.weighted_before);
    }

    #[test]
    fn separation_respected_when_gps_collide() {
        // Both cells want x=100; order fixed, so optimum is x=100, x=120
        // (or 80/100 — same cost 2 sites).
        let d = row_design(&[(100, 200), (100, 260)]);
        let (out, stats) = run(&d, 0);
        assert!(stats.applied);
        let x0 = out.cells[0].pos.unwrap().x;
        let x1 = out.cells[1].pos.unwrap().x;
        assert!(x1 - x0 >= 20);
        let total = (x0 - 100).abs() + (x1 - 100).abs();
        assert_eq!(total, 20);
        assert!(Checker::new(&out).check().is_legal());
    }

    #[test]
    fn optimum_is_never_worse_and_matches_dp_on_random_rows() {
        // Exhaustive DP reference on a single row with site granularity.
        let mut seed = 0xDEADBEEFu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..20 {
            let n = 2 + (rng() % 5) as usize;
            // Legal placement: pack cells with random gaps.
            let mut placed = Vec::new();
            let mut x = (rng() % 5) as Dbu * 10;
            for _ in 0..n {
                placed.push(x);
                x += 20 + (rng() % 6) as Dbu * 10;
            }
            let cells: Vec<(Dbu, Dbu)> = placed
                .iter()
                .map(|&px| (((rng() % 40) as Dbu) * 10, px))
                .collect();
            let d = row_design(&cells);
            let (_, stats) = run(&d, 0);
            assert!(stats.applied, "case {case}");
            // DP over site positions 0..=W for ordered cells.
            let sites = 200usize; // core width 2000 / 10
            let wsites = 2usize;
            let inf = i64::MAX / 4;
            let gxs: Vec<i64> = cells.iter().map(|&(g, _)| g / 10).collect();
            let mut dp = vec![inf; sites + 1];
            for (i, &gx) in gxs.iter().enumerate() {
                let mut ndp = vec![inf; sites + 1];
                let lo_i = i * wsites;
                let mut best_prev = inf;
                for s in lo_i..=sites - (gxs.len() - i) * wsites {
                    if i == 0 {
                        best_prev = 0;
                    } else if s >= wsites && dp[s - wsites] < best_prev {
                        best_prev = dp[s - wsites];
                    }
                    if best_prev < inf {
                        ndp[s] = best_prev + (s as i64 - gx).abs();
                    }
                }
                // Make dp[s] = min over positions ≤ s handled via best_prev;
                // store raw.
                dp = ndp;
            }
            let opt = dp.iter().copied().min().unwrap();
            assert_eq!(stats.weighted_after, opt, "case {case}: cells {cells:?}");
        }
    }

    #[test]
    fn multi_row_cells_couple_rows() {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 40, 2));
        // Double-height cell between two singles on different rows.
        let mut a = Cell::new("a", CellTypeId(0), Point::new(0, 0));
        a.pos = Some(Point::new(100, 0));
        d.add_cell(a);
        let mut m = Cell::new("m", CellTypeId(1), Point::new(200, 0));
        m.pos = Some(Point::new(120, 0));
        d.add_cell(m);
        let mut b = Cell::new("b", CellTypeId(0), Point::new(0, 90));
        b.pos = Some(Point::new(160, 90));
        d.add_cell(b);
        let (out, stats) = run(&d, 0);
        assert!(stats.applied);
        assert!(Checker::new(&out).check().is_legal());
        // a wants 0, m wants 200, b wants 0 but must stay right of m (row 1
        // order: m then b). Check order retained.
        let xa = out.cells[0].pos.unwrap().x;
        let xm = out.cells[1].pos.unwrap().x;
        let xb = out.cells[2].pos.unwrap().x;
        assert!(xa + 20 <= xm);
        assert!(xm + 40 <= xb);
        assert!(stats.weighted_after <= stats.weighted_before);
    }

    #[test]
    fn n0_extension_trades_total_for_max() {
        // c0 is displaced 72 sites left of its GP behind a chain of cells
        // sitting at their GPs; shrinking c0's displacement pushes the chain
        // right of *their* GPs. The weighted-sum surrogate n0(δ⁻ − δ⁺) is
        // indifferent to that 1:1 trade on its own (δ⁺ grows as |δ⁻|
        // shrinks), so a fifth cell with a fixed 45-site *y* displacement
        // pins δ⁺ ≥ 45 and δ⁻ ≤ −45, making the trade profitable until the
        // x outlier drops to 45 sites.
        let mut d = row_design(&[(900, 100), (200, 200), (300, 300), (400, 400)]);
        let mut c4 = Cell::new("c4", CellTypeId(0), Point::new(1500, 450));
        c4.pos = Some(Point::new(1500, 0)); // at GP x, 5 rows below GP y
        d.add_cell(c4);
        let (out0, s0) = run(&d, 0);
        // Plain optimum is a plateau of value 72 sites of x displacement
        // (c4's y displacement is constant to stage 3); without the
        // extension c0 keeps a 64-72 site displacement.
        assert_eq!(s0.weighted_after, 72);
        let disp0 = out0.cells[0].displacement();
        assert!(disp0 >= 640, "plain optimum leaves the outlier at {disp0}");
        // With a strong n0 the chain shifts right until the x outlier
        // matches the pinned 45-site bound.
        let (out1, s1) = run(&d, 50);
        let max0 = Metrics::measure(&out0).max_disp_rows;
        let max1 = Metrics::measure(&out1).max_disp_rows;
        assert!(
            max1 < max0,
            "extension should cut max disp: {max0} -> {max1}"
        );
        assert_eq!(out1.cells[0].displacement(), 450);
        assert!(s1.weighted_after >= s0.weighted_after, "total may grow");
        assert!(Checker::new(&out1).check().is_legal());
    }

    #[test]
    fn weights_bias_who_moves() {
        // Two cells with colliding GPs; the heavy one wins the spot.
        let mut d = row_design(&[(100, 200), (100, 260)]);
        let _ = &mut d;
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.n0_factor = 0;
        let mut weights = vec![1i64; d.cells.len()];
        weights[1] = 10;
        let mut state = PlacementState::from_design_positions(&d).unwrap();
        let stats = optimize_fixed_order(&mut state, &cfg, &weights, None);
        assert!(stats.applied);
        let mut out = d.clone();
        state.write_back(&mut out);
        // Heavy cell 1 sits at its GP (100); cell 0 pushed left to 80.
        assert_eq!(out.cells[1].pos.unwrap().x, 100);
        assert_eq!(out.cells[0].pos.unwrap().x, 80);
    }

    #[test]
    fn bounds_from_fences_respected() {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        let f = d.add_fence(FenceRegion::new("g", vec![Rect::new(500, 0, 700, 90)]));
        let mut c = Cell::new("c", CellTypeId(0), Point::new(100, 0));
        c.fence = f;
        c.pos = Some(Point::new(600, 0));
        d.add_cell(c);
        let (out, stats) = run(&d, 0);
        assert!(stats.applied);
        // GP pull is to 100 but the fence holds it at its left edge 500.
        assert_eq!(out.cells[0].pos.unwrap().x, 500);
        assert!(Checker::new(&out).check().is_legal());
    }
}
