//! # mcl-core — the three-stage mixed-cell-height legalizer
//!
//! Reproduction of Li et al., "Routability-Driven and Fence-Aware
//! Legalization for Mixed-Cell-Height Circuits" (DAC 2018):
//!
//! 1. **MGL** ([`mgl`], [`scheduler`]): window-based sequential insertion
//!    minimizing displacement from *global placement* positions via
//!    piecewise-linear displacement curves ([`curve`]).
//! 2. **Max-displacement matching** ([`maxdisp`]): per (type × fence)
//!    min-cost bipartite matching under the convex `φ` of Eq. 3.
//! 3. **Fixed row & order refinement** ([`fixed_order`]): the LP of Eq. 4/8
//!    solved through its dual min-cost flow with positions recovered from
//!    network-simplex potentials.
//!
//! Entry point: [`Legalizer`].

#![forbid(unsafe_code)]

pub mod config;
pub mod curve;
pub mod dirty;
pub mod engine;
pub mod error;
pub mod faultinject;
pub mod fixed_order;
pub mod insertion;
pub mod insertion_reference;
pub mod legalizer;
pub mod maxdisp;
pub mod mgl;
pub mod perf;
pub mod pipeline;
pub mod report;
pub mod routability;
pub mod scheduler;
pub mod spatial;
pub mod state;
pub mod winindex;

pub use config::{CellOrder, DisplacementReference, LegalizerConfig, WeightMode};
pub use dirty::DirtyClosure;
pub use engine::{BatchSeedError, Engine, EngineDiag};
pub use error::{Degradation, FailureClass, FailureRecord, LegalizeError};
pub use faultinject::{FaultPlan, FaultSite};
pub use legalizer::{EcoSession, LegalizeStats, Legalizer};
pub use pipeline::{Stage, StageStats, StageTiming};
pub use report::build_run_report;
pub use spatial::{HierGrid, ItemId};
pub use state::{CellSoA, PlaceError, PlacementState};
