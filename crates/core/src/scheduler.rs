//! Deterministic multi-threaded MGL (§3.5).
//!
//! The scheduler runs in rounds. Each round selects, in the fixed cell
//! order, up to `window_list_capacity` cells whose search windows do not
//! overlap each other (`L_p` in the paper); their insertions are evaluated
//! concurrently against the round-start state and applied sequentially in
//! selection order. Cells whose windows overlap a selected window wait for a
//! later round (`L_w`), and failed windows re-enter expanded. Because the
//! selected set, the evaluation inputs and the application order are all
//! independent of thread count, results are bit-identical for any number of
//! threads (given a fixed list capacity).
//!
//! ## Execution model
//!
//! Workers live in an [`EvalPool`]: OS threads spawned once and reused for
//! **any number of runs** (the [`crate::engine::Engine`] keeps one pool
//! alive across a whole batch of designs; the standalone [`run_parallel`]
//! spawns a pool for its single run). Each run starts with a `Begin`
//! message carrying a full replica of the placement state, which the worker
//! keeps in lockstep by replaying the applied insertions broadcast after
//! every round — so evaluation needs no locks at all. Jobs are pulled from
//! a shared atomic cursor (work stealing), which keeps all workers busy
//! even when one window is much more expensive than the rest; the
//! coordinating thread steals jobs too, so `threads == n` means `n`
//! evaluating threads (and `threads == 1` runs inline with no pool, no
//! replica and no channels). Results are keyed by job index, making the
//! apply order independent of which worker produced each result. An `End`
//! message closes the run: the worker reports (and resets) its per-run
//! counters, then waits for the next `Begin`.
//!
//! Window-overlap selection uses a [`WindowIndex`] (row-band interval
//! index) instead of scanning the selected list per pending cell, keeping
//! each round's selection near-linear in the pending count.

use crate::config::LegalizerConfig;
use crate::error::{panic_message, LegalizeError};
use crate::faultinject::{FaultPlan, FaultSite};
use crate::insertion::{best_insertion_in, CostModel, Insertion, InsertionScratch};
use crate::mgl::{
    apply_insertion, cell_order, fallback_scan, record_fallback_reject, window_for, MglStats,
};
use crate::routability::RoutOracle;
use crate::state::PlacementState;
use crate::winindex::WindowIndex;
use mcl_db::prelude::*;
use mcl_obs::{clock::Stopwatch, CounterKind, HistoKind, Meter, SpanKind};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// One evaluation job: target cell, expansion level, search window.
type Job = (CellId, usize, Rect);

/// How long the coordinator waits on a pool channel before declaring the
/// pool broken. Only reachable on error paths — the happy path never
/// blocks this long because workers answer every message.
const POOL_WAIT: Duration = Duration::from_mins(1);

/// One evaluation outcome: the best insertion (or none), or the message of
/// a panic the worker contained at its job boundary.
type EvalResult = Result<Option<Insertion>, String>;

/// Evaluates one window with panic containment: an injected [`FaultSite::
/// MglEval`] fault or a real panic inside the evaluator surfaces as
/// `Err(message)` instead of unwinding into the caller. Shared by workers,
/// the coordinator's steal loop, the deterministic retry pass and the
/// serial algorithm, so every path contains failures identically.
pub(crate) fn eval_job(
    state: &PlacementState<'_>,
    cell: CellId,
    win: Rect,
    model: &CostModel<'_>,
    scratch: &mut InsertionScratch,
    faults: Option<&Arc<FaultPlan>>,
) -> EvalResult {
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        let site = FaultSite::MglEval { cell: cell.0 };
        if crate::faultinject::fires(faults, &state.design().name, &site) {
            crate::faultinject::injected_panic(&site);
        }
        best_insertion_in(state, cell, win, model, scratch)
    }))
    .map_err(|p| panic_message(&*p))
}

/// Everything a worker needs to evaluate windows for one run: its private
/// state replica plus the run's cost-model inputs. Sent once per run via
/// [`Msg::Begin`]; the replica is kept in lockstep via [`Msg::Apply`].
struct RunSpec<'a> {
    replica: PlacementState<'a>,
    weights: &'a [i64],
    oracle: Option<&'a RoutOracle<'a>>,
    reference: crate::config::DisplacementReference,
    normalize: bool,
    io_penalty: i64,
    rail_penalty: i64,
    faults: Option<Arc<FaultPlan>>,
}

impl<'a> RunSpec<'a> {
    fn model(&self) -> CostModel<'_> {
        CostModel {
            reference: self.reference,
            normalize: self.normalize,
            weights: self.weights,
            oracle: self.oracle,
            io_penalty: self.io_penalty,
            rail_penalty: self.rail_penalty,
        }
    }
}

/// Messages broadcast from the coordinator to every pool worker.
enum Msg<'a> {
    /// Start a run: adopt the replica and cost model.
    Begin(Box<RunSpec<'a>>),
    /// Evaluate jobs pulled from the shared cursor against the replica.
    Round {
        jobs: Arc<Vec<Job>>,
        cursor: Arc<AtomicUsize>,
    },
    /// Replay the round's applied insertions to keep the replica in sync.
    Apply { ops: Arc<Vec<(CellId, Insertion)>> },
    /// End the run: report per-run counters, drop the replica, await the
    /// next `Begin`.
    End,
}

/// End-of-run report from one worker.
struct WorkerReport {
    scratch: crate::insertion::ScratchStats,
    eval_nanos: u64,
    /// Thread-local spans/histograms. Which worker evaluated which window
    /// depends on the work-stealing race, so per-thread attribution is
    /// best-effort; the merged aggregate is well-defined regardless because
    /// meter merging is commutative.
    obs: Meter,
}

/// A persistent pool of evaluation workers, reusable across runs (and
/// across designs, when the caller's scope outlives them). Workers own
/// their [`InsertionScratch`] for the pool's whole lifetime, so scratch
/// arenas warmed by one design are reused by the next.
pub struct EvalPool<'a> {
    senders: Vec<mpsc::Sender<Msg<'a>>>,
    results_rx: mpsc::Receiver<(usize, EvalResult)>,
    report_rx: mpsc::Receiver<WorkerReport>,
    workers: usize,
}

impl<'a> EvalPool<'a> {
    /// Spawns `workers` evaluation threads onto `scope`. The pool lives
    /// until dropped (closing the channels exits the threads); the scope
    /// must outlive it.
    pub fn spawn<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        workers: usize,
    ) -> EvalPool<'a>
    where
        'a: 'scope,
    {
        let (results_tx, results_rx) = mpsc::channel::<(usize, EvalResult)>();
        let (report_tx, report_rx) = mpsc::channel::<WorkerReport>();
        let mut senders: Vec<mpsc::Sender<Msg<'a>>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<Msg<'a>>();
            senders.push(tx);
            let results_tx = results_tx.clone();
            let report_tx = report_tx.clone();
            scope.spawn(move || {
                let mut scratch = InsertionScratch::new();
                let mut eval_nanos = 0u64;
                let mut obs = Meter::new();
                let mut cur: Option<Box<RunSpec<'a>>> = None;
                // Set when a panic escaped an `Apply` replay: the replica
                // may be half-mutated, so the worker sits the rest of the
                // run out (safe — the shared cursor lets the coordinator
                // and healthy workers drain every round regardless of who
                // participates). `Begin` installs a fresh replica and
                // clears the flag.
                let mut poisoned = false;
                // Worker thread ids start at 1; 0 is the coordinator.
                let thread_id = w + 1;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Begin(spec) => {
                            cur = Some(spec);
                            poisoned = false;
                        }
                        Msg::Round { jobs, cursor } => {
                            if poisoned {
                                continue;
                            }
                            let Some(spec) = cur.as_ref() else { continue };
                            let model = spec.model();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= jobs.len() {
                                    break;
                                }
                                let (cell, _, win) = jobs[i];
                                let t = Stopwatch::start();
                                // Panic-safe boundary: a panicking job
                                // becomes an `Err` result and the worker
                                // lives on to serve the next job.
                                let r = eval_job(
                                    &spec.replica,
                                    cell,
                                    win,
                                    &model,
                                    &mut scratch,
                                    spec.faults.as_ref(),
                                );
                                let dt = t.elapsed_nanos();
                                eval_nanos += dt;
                                obs.record_span(SpanKind::InsertionEval, dt, thread_id);
                                obs.observe(HistoKind::InsertionEvalNanos, dt);
                                if results_tx.send((i, r)).is_err() {
                                    return; // coordinator gone
                                }
                            }
                        }
                        Msg::Apply { ops } => {
                            if poisoned {
                                continue;
                            }
                            if let Some(spec) = cur.as_mut() {
                                let replayed = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    for (cell, ins) in ops.iter() {
                                        apply_insertion(&mut spec.replica, *cell, ins);
                                    }
                                }));
                                if replayed.is_err() {
                                    poisoned = true;
                                }
                            }
                        }
                        Msg::End => {
                            cur = None;
                            poisoned = false;
                            let report = WorkerReport {
                                scratch: std::mem::take(&mut scratch.stats),
                                eval_nanos: std::mem::take(&mut eval_nanos),
                                obs: std::mem::take(&mut obs),
                            };
                            if report_tx.send(report).is_err() {
                                return;
                            }
                        }
                    }
                }
            });
        }
        EvalPool {
            senders,
            results_rx,
            report_rx,
            workers,
        }
    }

    /// Number of worker threads (the coordinator is not counted).
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn begin(
        &self,
        state: &PlacementState<'a>,
        config: &LegalizerConfig,
        weights: &'a [i64],
        oracle: Option<&'a RoutOracle<'a>>,
    ) -> Result<(), LegalizeError> {
        for tx in &self.senders {
            let spec = Box::new(RunSpec {
                replica: state.clone(),
                weights,
                oracle,
                reference: config.reference,
                normalize: config.normalize_curves,
                io_penalty: config.io_penalty,
                rail_penalty: config.rail_penalty,
                faults: config.faults.clone(),
            });
            if tx.send(Msg::Begin(spec)).is_err() {
                return Err(LegalizeError::PoolBroken { during: "begin" });
            }
        }
        Ok(())
    }

    /// Ends the current run: every worker reports and resets its per-run
    /// counters, which are folded into `stats`. Reports arrive in
    /// worker-finish order, which is nondeterministic; scratch and meter
    /// merging are commutative, so the fold is order-independent.
    fn finish(&self, stats: &mut MglStats) -> Result<(), LegalizeError> {
        for tx in &self.senders {
            if tx.send(Msg::End).is_err() {
                return Err(LegalizeError::PoolBroken { during: "finish" });
            }
        }
        for _ in 0..self.workers {
            let report = self
                .report_rx
                .recv_timeout(POOL_WAIT)
                .map_err(|_| LegalizeError::PoolBroken { during: "finish" })?;
            stats.perf.scratch.merge(&report.scratch);
            stats.perf.eval_cpu_nanos += report.eval_nanos;
            stats.obs.merge(&report.obs);
        }
        Ok(())
    }

    /// Resynchronizes the pool after the coordinator abandoned a run
    /// mid-protocol (a contained stage panic or a pool error): tells every
    /// worker the run is over, absorbs their end-of-run reports, and
    /// drains stale results so the next [`Self::begin`] starts from clean
    /// channels. Returns `false` when a worker is unreachable, in which
    /// case the pool must not be reused.
    pub(crate) fn reset(&self) -> bool {
        let mut ok = true;
        for tx in &self.senders {
            ok &= tx.send(Msg::End).is_ok();
        }
        if ok {
            for _ in 0..self.workers {
                if self.report_rx.recv_timeout(POOL_WAIT).is_err() {
                    ok = false;
                    break;
                }
            }
        }
        // Workers drain any in-flight round before they answer `End`, so
        // by now every stale result is in the channel; flush them.
        while self.results_rx.try_recv().is_ok() {}
        ok
    }
}

/// Runs MGL with the parallel window scheduler, spawning a private
/// [`EvalPool`] for this one run. The engine path reuses a long-lived pool
/// instead — see [`drive_rounds`].
///
/// This is the raw, infallible entry point used by benches and the
/// determinism tests; a pool failure here (impossible in practice: workers
/// contain every panic) escalates to a panic. Fallible callers — the
/// pipeline driver, which owns the degradation ladder — use
/// [`try_run_parallel`] instead.
pub fn run_parallel(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    weights: &[i64],
    oracle: Option<&RoutOracle<'_>>,
) -> MglStats {
    match try_run_parallel(state, config, weights, oracle) {
        Ok(stats) => stats,
        Err(e) => panic!("parallel MGL failed outside a containing pipeline: {e}"),
    }
}

/// Fallible [`run_parallel`]: pool-protocol failures surface as
/// [`LegalizeError::PoolBroken`] so the pipeline driver can take the
/// serial degradation rung instead of crashing the job.
pub fn try_run_parallel(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    weights: &[i64],
    oracle: Option<&RoutOracle<'_>>,
) -> Result<MglStats, LegalizeError> {
    // Results are bit-identical for any worker count, so clamping to the
    // hardware is free: extra workers past the core count only add context
    // switches and replica clones.
    let hw = if config.clamp_threads_to_hardware {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        usize::MAX
    };
    let threads = config.threads.max(1).min(hw);
    let unplaced = state.unplaced_count();
    let workers = threads.saturating_sub(1).min(unplaced.saturating_sub(1));
    let mut scratch = InsertionScratch::new();
    std::thread::scope(|scope| {
        let pool = EvalPool::spawn(scope, workers);
        drive_rounds(state, config, weights, oracle, &pool, &mut scratch)
    })
}

/// The deterministic round loop: select non-overlapping windows, evaluate
/// them on `pool` (coordinator steals too), apply in selection order,
/// broadcast the applied ops. This is the single MGL driver behind both
/// [`run_parallel`] and the engine's batch path; the caller owns the pool
/// and the coordinator scratch, so both survive across runs.
pub(crate) fn drive_rounds<'d: 'p, 'p>(
    state: &mut PlacementState<'d>,
    config: &LegalizerConfig,
    weights: &'p [i64],
    oracle: Option<&'p RoutOracle<'p>>,
    pool: &EvalPool<'p>,
    main_scratch: &mut InsertionScratch,
) -> Result<MglStats, LegalizeError> {
    let t_total = Stopwatch::start();
    let design = state.design();
    let capacity = config.window_list_capacity.max(1);
    let mut stats = MglStats::default();

    // (cell, expansion level) in processing order.
    let mut pending: VecDeque<(CellId, usize)> = cell_order(design, config.order)
        .into_iter()
        .filter(|&c| state.pos(c).is_none())
        .map(|c| (c, 0usize))
        .collect();
    let mut fallback_queue: Vec<CellId> = Vec::new();
    let mut windex = WindowIndex::new(design.core, design.tech.row_height);
    // A run with 0 or 1 pending cells never fans out; skip the replica
    // clones entirely.
    let use_pool = pool.workers > 0 && pending.len() > 1;
    if use_pool {
        let replica_src: &PlacementState<'p> = &*state;
        pool.begin(replica_src, config, weights, oracle)?;
    }

    let model = CostModel {
        reference: config.reference,
        normalize: config.normalize_curves,
        weights,
        oracle,
        io_penalty: config.io_penalty,
        rail_penalty: config.rail_penalty,
    };
    // Reused per round; results are slotted by job index. A slot left at
    // `None` after the repair pass marks a quarantined cell.
    let mut results: Vec<Option<EvalResult>> = Vec::new();

    while !pending.is_empty() {
        stats.perf.rounds += 1;
        // Select non-overlapping windows, preserving order for the rest.
        let t_select = Stopwatch::start();
        let mut selected: Vec<Job> = Vec::new();
        let mut deferred: VecDeque<(CellId, usize)> = VecDeque::new();
        windex.clear();
        while let Some((cell, n)) = pending.pop_front() {
            let win = window_for(design, cell, config, n);
            if windex.overlaps_any(win) {
                deferred.push_back((cell, n));
            } else {
                windex.insert(win);
                selected.push((cell, n, win));
                if selected.len() >= capacity {
                    // Capacity reached: everything else waits for the
                    // next round, order preserved.
                    deferred.extend(pending.drain(..));
                    break;
                }
            }
        }
        let select_nanos = t_select.elapsed_nanos();
        stats.perf.select_nanos += select_nanos;
        stats
            .obs
            .record_span(SpanKind::SchedSelect, select_nanos, 0);

        // Evaluate concurrently against the immutable round-start state:
        // broadcast the job list, then steal from the shared cursor
        // alongside the workers until it runs dry, then collect.
        let t_eval = Stopwatch::start();
        stats.perf.windows_evaluated += selected.len() as u64;
        stats
            .obs
            .add(CounterKind::WindowsEvaluated, selected.len() as u64);
        results.clear();
        results.resize(selected.len(), None);
        let mut outstanding = 0usize;
        if use_pool && selected.len() > 1 {
            let jobs = Arc::new(selected.clone());
            let cursor = Arc::new(AtomicUsize::new(0));
            for tx in &pool.senders {
                let msg = Msg::Round {
                    jobs: Arc::clone(&jobs),
                    cursor: Arc::clone(&cursor),
                };
                if tx.send(msg).is_err() {
                    return Err(LegalizeError::PoolBroken { during: "round" });
                }
            }
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let t = Stopwatch::start();
                let r = eval_job(
                    state,
                    jobs[i].0,
                    jobs[i].2,
                    &model,
                    main_scratch,
                    config.faults.as_ref(),
                );
                let dt = t.elapsed_nanos();
                stats.perf.eval_cpu_nanos += dt;
                stats.obs.record_span(SpanKind::InsertionEval, dt, 0);
                stats.obs.observe(HistoKind::InsertionEvalNanos, dt);
                results[i] = Some(r);
                outstanding += 1;
            }
            while outstanding < selected.len() {
                let (i, r) = pool
                    .results_rx
                    .recv_timeout(POOL_WAIT)
                    .map_err(|_| LegalizeError::PoolBroken { during: "collect" })?;
                results[i] = Some(r);
                outstanding += 1;
            }
        } else {
            for (i, &(cell, _, win)) in selected.iter().enumerate() {
                let t = Stopwatch::start();
                let r = eval_job(
                    state,
                    cell,
                    win,
                    &model,
                    main_scratch,
                    config.faults.as_ref(),
                );
                let dt = t.elapsed_nanos();
                stats.perf.eval_cpu_nanos += dt;
                stats.obs.record_span(SpanKind::InsertionEval, dt, 0);
                stats.obs.observe(HistoKind::InsertionEvalNanos, dt);
                results[i] = Some(r);
            }
        }
        let eval_nanos = t_eval.elapsed_nanos();
        stats.perf.eval_nanos += eval_nanos;
        stats.obs.record_span(SpanKind::SchedEval, eval_nanos, 0);

        // Deterministic repair pass: a job whose evaluation panicked (on
        // any thread) is retried on the coordinator, in job-index order,
        // against the same round-start state — so the outcome never
        // depends on which thread hit the panic or on the thread count.
        // A job that keeps failing past the retry budget quarantines its
        // cell: the slot reverts to `None` and the cell is left unplaced.
        for (i, &(cell, _, win)) in selected.iter().enumerate() {
            let mut last = match &results[i] {
                Some(Err(m)) => m.clone(),
                _ => continue,
            };
            let mut attempts = 0u32;
            loop {
                if attempts >= config.fault_retry_budget {
                    stats.quarantined += 1;
                    stats.failures.push(
                        LegalizeError::CellQuarantined {
                            stage: "mgl",
                            cell: cell.0,
                            retries: attempts,
                            message: last,
                        }
                        .to_record(),
                    );
                    results[i] = None;
                    break;
                }
                attempts += 1;
                stats.retries += 1;
                match eval_job(
                    state,
                    cell,
                    win,
                    &model,
                    main_scratch,
                    config.faults.as_ref(),
                ) {
                    Ok(r) => {
                        results[i] = Some(Ok(r));
                        break;
                    }
                    Err(m) => last = m,
                }
            }
        }

        // Apply sequentially in selection order; broadcast the applied
        // ops so replicas stay in lockstep.
        let t_apply = Stopwatch::start();
        let mut ops: Vec<(CellId, Insertion)> = Vec::new();
        for (i, (cell, n, win)) in selected.into_iter().enumerate() {
            match results[i].take() {
                // Quarantined by the repair pass: the cell stays unplaced
                // and takes no further part in the run.
                None => {}
                // Unreachable (the repair pass resolves every `Err`), but
                // degrading to quarantine beats asserting here.
                Some(Err(_)) => {}
                Some(Ok(Some(ins))) => {
                    let site = FaultSite::MglApply { cell: cell.0 };
                    if crate::faultinject::fires(config.faults.as_ref(), &design.name, &site) {
                        crate::faultinject::injected_panic(&site);
                    }
                    apply_insertion(state, cell, &ins);
                    stats.placed_in_window += 1;
                    // Expansions were already counted one-by-one when
                    // each failed window re-entered expanded (the
                    // previous `+= n` here double-counted every retry).
                    ops.push((cell, ins));
                }
                Some(Ok(None)) => {
                    // Mirror the serial algorithm: stop expanding once
                    // the window already covers the whole core.
                    let full_core = win == design.core && n > 0;
                    if n < config.max_expansions && !full_core {
                        stats.expansions += 1;
                        stats.obs.add(CounterKind::WindowsExpanded, 1);
                        // Retry the expanded window first thing next
                        // round, like the sequential algorithm's
                        // immediate retry — otherwise neighbours fill
                        // the cell's space while it waits.
                        deferred.push_front((cell, n + 1));
                    } else {
                        fallback_queue.push(cell);
                    }
                }
            }
        }
        if use_pool && !ops.is_empty() {
            let ops = Arc::new(ops);
            for tx in &pool.senders {
                let msg = Msg::Apply {
                    ops: Arc::clone(&ops),
                };
                if tx.send(msg).is_err() {
                    return Err(LegalizeError::PoolBroken { during: "apply" });
                }
            }
        }
        let apply_nanos = t_apply.elapsed_nanos();
        stats.perf.apply_nanos += apply_nanos;
        stats.obs.record_span(SpanKind::SchedApply, apply_nanos, 0);
        pending = deferred;
    }

    // Close the run and fold worker counters into the run stats. The
    // workers stay alive for the pool owner's next run.
    if use_pool {
        pool.finish(&mut stats)?;
    }
    stats
        .perf
        .scratch
        .merge(&std::mem::take(&mut main_scratch.stats));
    crate::mgl::record_scratch_counters(&mut stats.obs, &stats.perf.scratch);

    let t_fb = Stopwatch::start();
    for cell in fallback_queue {
        stats.obs.add(CounterKind::FallbackScans, 1);
        let p = match fallback_scan(state, cell, oracle) {
            Some(p) => Some(p),
            None => {
                stats.obs.add(CounterKind::FallbackScans, 1);
                fallback_scan(state, cell, None)
            }
        };
        match p {
            Some(p) => match state.place(cell, p) {
                Ok(()) => stats.fallbacks += 1,
                Err(e) => record_fallback_reject(&mut stats, cell, p, &e),
            },
            None => stats.failed += 1,
        }
    }
    let fb_nanos = t_fb.elapsed_nanos();
    stats.perf.fallback_nanos += fb_nanos;
    if fb_nanos > 0 && stats.fallbacks + stats.failed > 0 {
        stats.obs.record_span(SpanKind::FallbackScan, fb_nanos, 0);
    }
    stats.perf.total_nanos = t_total.elapsed_nanos();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CellOrder;
    use crate::mgl::compute_weights;
    use mcl_db::legal::Checker;

    fn dense_design(n_cells: usize, seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 3000, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n_cells {
            let t = if rng() % 5 == 0 {
                CellTypeId(1)
            } else {
                CellTypeId(0)
            };
            let x = (rng() % 2900) as Dbu;
            let y = (rng() % 1700) as Dbu;
            d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
        }
        d
    }

    fn run_with_threads(d: &Design, threads: usize) -> Vec<Option<Point>> {
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = threads;
        cfg.clamp_threads_to_hardware = false;
        cfg.window_list_capacity = 8;
        let weights = compute_weights(d, cfg.weights);
        let mut state = PlacementState::new(d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        assert_eq!(stats.failed, 0);
        d.movable_cells().map(|c| state.pos(c)).collect()
    }

    #[test]
    fn parallel_results_independent_of_thread_count() {
        let d = dense_design(150, 1234);
        let p1 = run_with_threads(&d, 1);
        let p2 = run_with_threads(&d, 2);
        let p4 = run_with_threads(&d, 4);
        assert_eq!(p1, p2);
        assert_eq!(p2, p4);
    }

    #[test]
    fn thread_count_invariance_with_oracle() {
        // The routability oracle feeds penalties and alternate candidate
        // positions into the evaluation; they must be identical whether a
        // window was evaluated by the coordinator or any worker replica.
        let mut d = dense_design(140, 4321);
        d.grid = PowerGrid {
            h_layer: 2,
            h_width: 6,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: 8,
            v_pitch: 400,
            v_offset: 200,
        };
        d.cell_types[0].pins.push(PinShape {
            name: "a".into(),
            layer: 2,
            rect: Rect::new(4, 30, 12, 50),
        });
        let mut cfg = LegalizerConfig::contest();
        cfg.window_list_capacity = 8;
        let oracle = RoutOracle::new(&d);
        let run = |threads: usize| {
            let mut c = cfg.clone();
            c.threads = threads;
            c.clamp_threads_to_hardware = false;
            let weights = compute_weights(&d, c.weights);
            let mut state = PlacementState::new(&d);
            let stats = run_parallel(&mut state, &c, &weights, Some(&oracle));
            assert_eq!(stats.failed, 0, "{stats:?}");
            d.movable_cells()
                .map(|cl| state.pos(cl))
                .collect::<Vec<_>>()
        };
        let p1 = run(1);
        let p2 = run(2);
        let p4 = run(4);
        assert_eq!(p1, p2);
        assert_eq!(p2, p4);
    }

    #[test]
    fn thread_count_invariance_with_shuffled_order() {
        // HeightThenShuffled changes the pending order (and thus the
        // selected sets); determinism across thread counts must hold for it
        // too.
        let d = dense_design(150, 777);
        let run = |threads: usize| {
            let mut cfg = LegalizerConfig::total_displacement();
            cfg.threads = threads;
            cfg.window_list_capacity = 8;
            cfg.order = CellOrder::HeightThenShuffled;
            let weights = compute_weights(&d, cfg.weights);
            let mut state = PlacementState::new(&d);
            let stats = run_parallel(&mut state, &cfg, &weights, None);
            assert_eq!(stats.failed, 0);
            d.movable_cells().map(|c| state.pos(c)).collect::<Vec<_>>()
        };
        let p1 = run(1);
        let p2 = run(2);
        let p4 = run(4);
        assert_eq!(p1, p2);
        assert_eq!(p2, p4);
    }

    #[test]
    fn capacity_one_matches_any_capacity_for_legality() {
        // Different list capacities may give different (all legal)
        // placements; each capacity must be internally deterministic.
        let d = dense_design(120, 99);
        let run_cap = |cap: usize| {
            let mut cfg = LegalizerConfig::total_displacement();
            cfg.threads = 2;
            cfg.clamp_threads_to_hardware = false;
            cfg.window_list_capacity = cap;
            let weights = compute_weights(&d, cfg.weights);
            let mut state = PlacementState::new(&d);
            let stats = run_parallel(&mut state, &cfg, &weights, None);
            assert_eq!(stats.failed, 0);
            let mut out = d.clone();
            state.write_back(&mut out);
            assert!(Checker::new(&out).check().is_legal());
            out.cells.iter().map(|c| c.pos).collect::<Vec<_>>()
        };
        for cap in [1usize, 4, 64] {
            assert_eq!(run_cap(cap), run_cap(cap), "capacity {cap} deterministic");
        }
    }

    #[test]
    fn parallel_output_is_legal() {
        let d = dense_design(200, 555);
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 4;
        cfg.clamp_threads_to_hardware = false;
        let weights = compute_weights(&d, cfg.weights);
        let mut state = PlacementState::new(&d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        assert_eq!(stats.failed, 0, "{stats:?}");
        let mut out = d.clone();
        state.write_back(&mut out);
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
    }

    #[test]
    fn full_core_windows_stop_expanding() {
        // An overfull design forces window failures; once a cell's window
        // covers the whole core, the scheduler must send it to the fallback
        // queue instead of burning the remaining expansions on identical
        // full-core searches (regression test: the seed scheduler kept
        // expanding to max_expansions).
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 200, 180));
        let wide = d.add_cell_type(CellType::new("wide", 180, 1));
        for i in 0..4 {
            d.add_cell(Cell::new(format!("w{i}"), wide, Point::new(0, 0)));
        }
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 2;
        cfg.clamp_threads_to_hardware = false;
        cfg.max_expansions = 40;
        let weights = compute_weights(&d, cfg.weights);
        let mut state = PlacementState::new(&d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        // Core holds two rows of one wide cell each: 2 placed, 2 impossible.
        assert_eq!(stats.placed_in_window + stats.fallbacks, 2, "{stats:?}");
        assert_eq!(stats.failed, 2, "{stats:?}");
        // The window growth (2 sites, 1 row per expansion) covers the
        // 20×2-row core within a few expansions; without the early stop the
        // two impossible cells alone would burn 2 × 40 expansions.
        assert!(
            stats.expansions < 40,
            "full-core early stop must bound expansions, got {}",
            stats.expansions
        );
    }

    #[test]
    fn perf_counters_populated() {
        let d = dense_design(100, 2024);
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 2;
        cfg.clamp_threads_to_hardware = false;
        let weights = compute_weights(&d, cfg.weights);
        let mut state = PlacementState::new(&d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        assert!(stats.perf.rounds > 0);
        assert!(stats.perf.windows_evaluated >= stats.placed_in_window as u64);
        assert!(stats.perf.total_nanos > 0);
        assert!(stats.perf.scratch.regions > 0);
        assert!(stats.perf.scratch.anchors > 0);
        // Exactly one coordinator scratch and one worker scratch were
        // constructed for this standalone run.
        assert_eq!(stats.perf.scratch.created, 2);
    }

    #[test]
    fn pool_reuse_across_runs_is_bit_identical() {
        // One pool serving two consecutive runs must produce exactly what
        // two private pools produce, and the second run must not allocate
        // new scratches.
        let d1 = dense_design(120, 42);
        let d2 = dense_design(130, 43);
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 3;
        cfg.clamp_threads_to_hardware = false;
        let w1 = compute_weights(&d1, cfg.weights);
        let w2 = compute_weights(&d2, cfg.weights);

        let solo = |d: &Design, w: &[i64]| {
            let mut state = PlacementState::new(d);
            let stats = run_parallel(&mut state, &cfg, w, None);
            assert_eq!(stats.failed, 0);
            d.movable_cells().map(|c| state.pos(c)).collect::<Vec<_>>()
        };
        let (solo1, solo2) = (solo(&d1, &w1), solo(&d2, &w2));

        let mut scratch = InsertionScratch::new();
        let mut created = Vec::new();
        let (pool1, pool2) = std::thread::scope(|scope| {
            let pool = EvalPool::spawn(scope, 2);
            let mut state1 = PlacementState::new(&d1);
            let s1 = drive_rounds(&mut state1, &cfg, &w1, None, &pool, &mut scratch).unwrap();
            assert_eq!(s1.failed, 0);
            created.push(s1.perf.scratch.created);
            let p1: Vec<_> = d1.movable_cells().map(|c| state1.pos(c)).collect();
            let mut state2 = PlacementState::new(&d2);
            let s2 = drive_rounds(&mut state2, &cfg, &w2, None, &pool, &mut scratch).unwrap();
            assert_eq!(s2.failed, 0);
            created.push(s2.perf.scratch.created);
            let p2: Vec<_> = d2.movable_cells().map(|c| state2.pos(c)).collect();
            (p1, p2)
        });
        assert_eq!(solo1, pool1);
        assert_eq!(solo2, pool2);
        // First run sees the coordinator + 2 worker scratch constructions;
        // the second run reuses all three.
        assert_eq!(created, vec![3, 0]);
    }
}
