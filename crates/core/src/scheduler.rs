//! Deterministic multi-threaded MGL (§3.5).
//!
//! The scheduler runs in rounds. Each round selects, in the fixed cell
//! order, up to `window_list_capacity` cells whose search windows do not
//! overlap each other (`L_p` in the paper); their insertions are evaluated
//! concurrently against the round-start state and applied sequentially in
//! selection order. Cells whose windows overlap a selected window wait for a
//! later round (`L_w`), and failed windows re-enter expanded. Because the
//! selected set, the evaluation inputs and the application order are all
//! independent of thread count, results are bit-identical for any number of
//! threads (given a fixed list capacity).
//!
//! ## Execution model
//!
//! Workers live in an [`EvalPool`]: OS threads spawned once and shared by
//! **any number of concurrent runs** — every message is tagged with a run
//! id, so eval jobs from multiple in-flight designs interleave on the same
//! workers (the [`crate::engine::Engine`] drives a whole batch of designs
//! through one pool; the standalone [`run_parallel`] spawns a pool for its
//! single run). Each run starts with a `Begin` message carrying a full
//! replica of the placement state, which the worker keeps in lockstep by
//! replaying the applied insertions broadcast after every round — so
//! evaluation needs no locks at all. Jobs are pulled from a per-round
//! atomic cursor (work stealing), which keeps all workers busy even when
//! one window is much more expensive than the rest; the run's coordinator
//! steals jobs too, and a worker that drains one design's round
//! immediately serves whichever design publishes next (work conservation —
//! no worker idles while any in-flight design has runnable jobs). Results
//! travel on per-run reply channels keyed by job index, making each
//! design's apply order independent of which worker produced each result
//! and of what the other designs are doing. An `End` message closes a run:
//! the worker drops that replica, reports its counters, and keeps serving
//! the other runs.
//!
//! Determinism is per design: the selected sets, the evaluation inputs and
//! the application order are all decided by the design's own coordinator
//! from its own state, so a design's output is bit-identical to its solo
//! run for any thread count and any batch composition.
//!
//! Window-overlap selection uses a [`WindowIndex`] (row-band interval
//! index) instead of scanning the selected list per pending cell, keeping
//! each round's selection near-linear in the pending count.

use crate::config::LegalizerConfig;
use crate::error::{panic_message, LegalizeError};
use crate::faultinject::{FaultPlan, FaultSite};
use crate::insertion::{best_insertion_in, CostModel, Insertion, InsertionScratch};
use crate::mgl::{
    apply_insertion_with, cell_order, fallback_scan, record_fallback_reject, window_for, MglStats,
};
use crate::routability::RoutOracle;
use crate::state::PlacementState;
use crate::winindex::WindowIndex;
use mcl_db::prelude::*;
use mcl_obs::{clock::Stopwatch, CounterKind, HistoKind, Meter, SpanKind};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// One evaluation job: target cell, expansion level, search window.
type Job = (CellId, usize, Rect);

/// How long the coordinator waits on a pool channel before declaring the
/// pool broken. Only reachable on error paths — the happy path never
/// blocks this long because workers answer every message.
const POOL_WAIT: Duration = Duration::from_mins(1);

/// One evaluation outcome: the best insertion (or none), or the message of
/// a panic the worker contained at its job boundary.
type EvalResult = Result<Option<Insertion>, String>;

/// Evaluates one window with panic containment: an injected [`FaultSite::
/// MglEval`] fault or a real panic inside the evaluator surfaces as
/// `Err(message)` instead of unwinding into the caller. Shared by workers,
/// the coordinator's steal loop, the deterministic retry pass and the
/// serial algorithm, so every path contains failures identically.
pub(crate) fn eval_job(
    state: &PlacementState<'_>,
    cell: CellId,
    win: Rect,
    model: &CostModel<'_>,
    scratch: &mut InsertionScratch,
    faults: Option<&Arc<FaultPlan>>,
) -> EvalResult {
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        let site = FaultSite::MglEval { cell: cell.0 };
        if crate::faultinject::fires(faults, &state.design().name, &site) {
            crate::faultinject::injected_panic(&site);
        }
        best_insertion_in(state, cell, win, model, scratch)
    }))
    .map_err(|p| panic_message(&*p))
}

/// Everything a worker needs to evaluate windows for one run: its private
/// state replica, the run's cost-model inputs, and the run's private reply
/// channels. Sent once per run via [`Msg::Begin`]; the replica is kept in
/// lockstep via [`Msg::Apply`]. Reply channels are per run so results from
/// interleaved designs can never mix: a result lands in its own design's
/// coordinator or (if the run was abandoned) in a closed channel.
struct RunSpec<'a> {
    replica: PlacementState<'a>,
    weights: &'a [i64],
    oracle: Option<&'a RoutOracle<'a>>,
    reference: crate::config::DisplacementReference,
    normalize: bool,
    io_penalty: i64,
    rail_penalty: i64,
    faults: Option<Arc<FaultPlan>>,
    results_tx: mpsc::Sender<(usize, EvalResult)>,
    report_tx: mpsc::Sender<WorkerReport>,
}

impl<'a> RunSpec<'a> {
    fn model(&self) -> CostModel<'_> {
        CostModel {
            reference: self.reference,
            normalize: self.normalize,
            weights: self.weights,
            oracle: self.oracle,
            io_penalty: self.io_penalty,
            rail_penalty: self.rail_penalty,
        }
    }
}

/// Messages broadcast from a run's coordinator to every pool worker. Every
/// message carries its run id, so messages from concurrently-driven runs
/// interleave freely on the same worker channels.
enum Msg<'a> {
    /// Start run `run`: adopt its replica and cost model.
    Begin { run: usize, spec: Box<RunSpec<'a>> },
    /// Evaluate `run`'s jobs pulled from the shared cursor against that
    /// run's replica.
    Round {
        run: usize,
        jobs: Arc<Vec<Job>>,
        cursor: Arc<AtomicUsize>,
    },
    /// Replay `run`'s applied insertions to keep its replica in sync.
    Apply {
        run: usize,
        ops: Arc<Vec<(CellId, Insertion)>>,
    },
    /// End run `run`: report its per-run counters on its report channel,
    /// drop its replica, keep serving the other runs.
    End { run: usize },
}

/// End-of-run report from one worker.
struct WorkerReport {
    /// Scratch counters accumulated since the worker's last report. The
    /// worker's scratch arena is shared by every run it serves, so under
    /// interleaving these charge to whichever run ends first; sums over a
    /// batch are exact.
    scratch: crate::insertion::ScratchStats,
    eval_nanos: u64,
    /// Thread-local spans/histograms. Which worker evaluated which window
    /// depends on the work-stealing race, so per-thread attribution is
    /// best-effort; the merged aggregate is well-defined regardless because
    /// meter merging is commutative.
    obs: Meter,
}

/// One run's live state inside a worker.
struct WorkerRun<'a> {
    spec: Box<RunSpec<'a>>,
    /// Set when a panic escaped an `Apply` replay or the run's coordinator
    /// went away: the replica may be half-mutated (or orphaned), so the
    /// worker sits this run out. Safe — each round's shared cursor lets
    /// the coordinator and healthy workers drain it regardless of who
    /// participates.
    poisoned: bool,
    eval_nanos: u64,
    obs: Meter,
}

/// A persistent pool of evaluation workers shared by any number of
/// concurrent runs; each worker keeps one replica per active run and
/// serves whichever run publishes a round next. Workers own their
/// [`InsertionScratch`] for the pool's whole lifetime, so scratch arenas
/// warmed by one design are reused by the next.
pub struct EvalPool<'a> {
    senders: Vec<mpsc::Sender<Msg<'a>>>,
    workers: usize,
    steals: Arc<AtomicU64>,
}

impl<'a> EvalPool<'a> {
    /// Spawns `workers` evaluation threads onto `scope`. The pool lives
    /// until dropped (closing the channels exits the threads once every
    /// [`PoolClient`] clone is gone too); the scope must outlive it.
    pub fn spawn<'scope, 'env>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        workers: usize,
    ) -> EvalPool<'a>
    where
        'a: 'scope,
    {
        let steals = Arc::new(AtomicU64::new(0));
        let mut senders: Vec<mpsc::Sender<Msg<'a>>> = Vec::with_capacity(workers);
        for w in 0..workers {
            let (tx, rx) = mpsc::channel::<Msg<'a>>();
            senders.push(tx);
            let steals = Arc::clone(&steals);
            scope.spawn(move || {
                let mut scratch = InsertionScratch::new();
                let mut runs: Vec<(usize, WorkerRun<'a>)> = Vec::new();
                // The run this worker last evaluated a job for; claiming a
                // job from a different run is a cross-design steal.
                let mut last_run: Option<usize> = None;
                // Worker thread ids start at 1; 0 is the coordinator.
                let thread_id = w + 1;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Begin { run, spec } => {
                            runs.retain(|(id, _)| *id != run);
                            runs.push((
                                run,
                                WorkerRun {
                                    spec,
                                    poisoned: false,
                                    eval_nanos: 0,
                                    obs: Meter::new(),
                                },
                            ));
                        }
                        Msg::Round { run, jobs, cursor } => {
                            let Some((_, wr)) = runs.iter_mut().find(|(id, _)| *id == run) else {
                                continue;
                            };
                            if wr.poisoned {
                                continue;
                            }
                            let WorkerRun {
                                spec,
                                poisoned,
                                eval_nanos,
                                obs,
                            } = wr;
                            let model = spec.model();
                            let mut claimed = false;
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= jobs.len() {
                                    break;
                                }
                                if !claimed {
                                    claimed = true;
                                    if last_run.is_some_and(|p| p != run) {
                                        steals.fetch_add(1, Ordering::Relaxed);
                                        // Attributed to the run being served
                                        // (the stealing beneficiary); lands
                                        // in its report via `WorkerReport`.
                                        obs.add(CounterKind::CrossDesignSteals, 1);
                                    }
                                    last_run = Some(run);
                                }
                                let (cell, _, win) = jobs[i];
                                let t = Stopwatch::start();
                                // Panic-safe boundary: a panicking job
                                // becomes an `Err` result and the worker
                                // lives on to serve the next job.
                                let r = eval_job(
                                    &spec.replica,
                                    cell,
                                    win,
                                    &model,
                                    &mut scratch,
                                    spec.faults.as_ref(),
                                );
                                let dt = t.elapsed_nanos();
                                *eval_nanos += dt;
                                obs.record_span(SpanKind::InsertionEval, dt, thread_id);
                                obs.observe(HistoKind::InsertionEvalNanos, dt);
                                if spec.results_tx.send((i, r)).is_err() {
                                    // This run's coordinator abandoned it;
                                    // stop serving the run but keep the
                                    // worker alive for the other runs.
                                    *poisoned = true;
                                    break;
                                }
                            }
                        }
                        Msg::Apply { run, ops } => {
                            let Some((_, wr)) = runs.iter_mut().find(|(id, _)| *id == run) else {
                                continue;
                            };
                            if wr.poisoned {
                                continue;
                            }
                            let replayed = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                for (cell, ins) in ops.iter() {
                                    // Reuse the worker's scratch for the
                                    // apply-ordering buffers: replaying a
                                    // round's ops must not allocate one
                                    // throwaway scratch per op.
                                    apply_insertion_with(
                                        &mut wr.spec.replica,
                                        *cell,
                                        ins,
                                        &mut scratch,
                                    );
                                }
                            }));
                            if replayed.is_err() {
                                wr.poisoned = true;
                            }
                        }
                        Msg::End { run } => {
                            let Some(pos) = runs.iter().position(|(id, _)| *id == run) else {
                                continue;
                            };
                            let (_, wr) = runs.swap_remove(pos);
                            let report = WorkerReport {
                                scratch: std::mem::take(&mut scratch.stats),
                                eval_nanos: wr.eval_nanos,
                                obs: wr.obs,
                            };
                            // A closed report channel means the run was
                            // cancelled rather than finished; its counters
                            // are forfeit but the worker lives on.
                            let _ = wr.spec.report_tx.send(report);
                        }
                    }
                }
            });
        }
        EvalPool {
            senders,
            workers,
            steals,
        }
    }

    /// Number of worker threads (run coordinators are not counted).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// An owned connection to this pool. Clients are cheap sender clones,
    /// so each runner thread of a batch can own one and mint run handles
    /// without borrowing the pool across threads.
    pub fn client(&self) -> PoolClient<'a> {
        PoolClient {
            senders: self.senders.clone(),
            workers: self.workers,
        }
    }

    /// Shared counter of cross-design steals: rounds in which a worker
    /// switched to a different run than it last served. Read it after the
    /// pool's scope to fold into engine diagnostics.
    pub fn steal_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.steals)
    }
}

/// An owned, cloneable connection to an [`EvalPool`]: the worker message
/// senders. Run coordinators use it to mint per-run handles; dropping
/// every client plus the pool closes the worker channels.
#[derive(Clone)]
pub struct PoolClient<'a> {
    senders: Vec<mpsc::Sender<Msg<'a>>>,
    workers: usize,
}

impl<'a> PoolClient<'a> {
    /// Number of worker threads (run coordinators are not counted).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Creates the reply channels for run `run`. The handle is the run's
    /// private mailbox: results and end-of-run reports from interleaved
    /// runs can never land here because workers answer on the channels
    /// carried by each run's own [`RunSpec`].
    fn run_handle(&self, run: usize) -> RunHandle<'_, 'a> {
        let (results_tx, results_rx) = mpsc::channel::<(usize, EvalResult)>();
        let (report_tx, report_rx) = mpsc::channel::<WorkerReport>();
        RunHandle {
            run,
            client: self,
            results_tx,
            results_rx,
            report_tx,
            report_rx,
        }
    }

    /// Tells every worker run `run` is over after its coordinator
    /// abandoned it mid-protocol (a contained stage panic or a pool
    /// error): workers drop that run's replica and keep serving the other
    /// runs; the abandoned run's stale results and reports go to its
    /// dropped reply channels. Returns `false` when a worker is
    /// unreachable, in which case the pool must not be reused.
    pub(crate) fn cancel_run(&self, run: usize) -> bool {
        let mut ok = true;
        for tx in &self.senders {
            ok &= tx.send(Msg::End { run }).is_ok();
        }
        ok
    }
}

/// One run's connection to the pool: the broadcast senders plus the run's
/// private reply channels.
struct RunHandle<'c, 'a> {
    run: usize,
    client: &'c PoolClient<'a>,
    results_tx: mpsc::Sender<(usize, EvalResult)>,
    results_rx: mpsc::Receiver<(usize, EvalResult)>,
    report_tx: mpsc::Sender<WorkerReport>,
    report_rx: mpsc::Receiver<WorkerReport>,
}

impl<'a> RunHandle<'_, 'a> {
    fn begin(
        &self,
        state: &PlacementState<'a>,
        config: &LegalizerConfig,
        weights: &'a [i64],
        oracle: Option<&'a RoutOracle<'a>>,
    ) -> Result<(), LegalizeError> {
        for tx in &self.client.senders {
            let spec = Box::new(RunSpec {
                replica: state.clone(),
                weights,
                oracle,
                reference: config.reference,
                normalize: config.normalize_curves,
                io_penalty: config.io_penalty,
                rail_penalty: config.rail_penalty,
                faults: config.faults.clone(),
                results_tx: self.results_tx.clone(),
                report_tx: self.report_tx.clone(),
            });
            if tx
                .send(Msg::Begin {
                    run: self.run,
                    spec,
                })
                .is_err()
            {
                return Err(LegalizeError::PoolBroken { during: "begin" });
            }
        }
        Ok(())
    }

    fn round(&self, jobs: &Arc<Vec<Job>>, cursor: &Arc<AtomicUsize>) -> Result<(), LegalizeError> {
        for tx in &self.client.senders {
            let msg = Msg::Round {
                run: self.run,
                jobs: Arc::clone(jobs),
                cursor: Arc::clone(cursor),
            };
            if tx.send(msg).is_err() {
                return Err(LegalizeError::PoolBroken { during: "round" });
            }
        }
        Ok(())
    }

    fn apply(&self, ops: Vec<(CellId, Insertion)>) -> Result<(), LegalizeError> {
        let ops = Arc::new(ops);
        for tx in &self.client.senders {
            let msg = Msg::Apply {
                run: self.run,
                ops: Arc::clone(&ops),
            };
            if tx.send(msg).is_err() {
                return Err(LegalizeError::PoolBroken { during: "apply" });
            }
        }
        Ok(())
    }

    /// Ends the run: every worker reports this run's counters, which are
    /// folded into `stats`. Reports arrive in worker-finish order, which
    /// is nondeterministic; scratch and meter merging are commutative, so
    /// the fold is order-independent.
    fn finish(&self, stats: &mut MglStats) -> Result<(), LegalizeError> {
        for tx in &self.client.senders {
            if tx.send(Msg::End { run: self.run }).is_err() {
                return Err(LegalizeError::PoolBroken { during: "finish" });
            }
        }
        for _ in 0..self.client.workers {
            let report = self
                .report_rx
                .recv_timeout(POOL_WAIT)
                .map_err(|_| LegalizeError::PoolBroken { during: "finish" })?;
            stats.perf.scratch.merge(&report.scratch);
            stats.perf.eval_cpu_nanos += report.eval_nanos;
            stats.obs.merge(&report.obs);
        }
        Ok(())
    }
}

/// Runs MGL with the parallel window scheduler, spawning a private
/// [`EvalPool`] for this one run. The engine path reuses a long-lived pool
/// instead — see [`drive_rounds`].
///
/// This is the raw, infallible entry point used by benches and the
/// determinism tests; a pool failure here (impossible in practice: workers
/// contain every panic) escalates to a panic. Fallible callers — the
/// pipeline driver, which owns the degradation ladder — use
/// [`try_run_parallel`] instead.
pub fn run_parallel(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    weights: &[i64],
    oracle: Option<&RoutOracle<'_>>,
) -> MglStats {
    match try_run_parallel(state, config, weights, oracle) {
        Ok(stats) => stats,
        Err(e) => panic!("parallel MGL failed outside a containing pipeline: {e}"),
    }
}

/// Fallible [`run_parallel`]: pool-protocol failures surface as
/// [`LegalizeError::PoolBroken`] so the pipeline driver can take the
/// serial degradation rung instead of crashing the job.
pub fn try_run_parallel(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    weights: &[i64],
    oracle: Option<&RoutOracle<'_>>,
) -> Result<MglStats, LegalizeError> {
    // Results are bit-identical for any worker count, so clamping to the
    // hardware is free: extra workers past the core count only add context
    // switches and replica clones.
    let hw = if config.clamp_threads_to_hardware {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        usize::MAX
    };
    let threads = config.threads.max(1).min(hw);
    let unplaced = state.unplaced_count();
    let workers = threads.saturating_sub(1).min(unplaced.saturating_sub(1));
    let mut scratch = InsertionScratch::new();
    std::thread::scope(|scope| {
        let pool = EvalPool::spawn(scope, workers);
        let client = pool.client();
        drive_rounds(
            state,
            config,
            weights,
            oracle,
            Some((&client, 0)),
            &mut scratch,
        )
    })
}

/// The deterministic round loop: select non-overlapping windows, evaluate
/// them on the pool behind `pool`'s client (coordinator steals too), apply
/// in selection order, broadcast the applied ops. This is the single MGL
/// driver behind [`run_parallel`], the engine's solo path and every run of
/// an engine batch; `pool` carries the run id that tags this design's
/// messages on the shared workers, and `None` (or a workerless pool) runs
/// every round inline on the calling thread — same rounds, same results.
/// The caller owns the pool and the coordinator scratch, so both survive
/// across runs.
pub(crate) fn drive_rounds<'d: 'p, 'p>(
    state: &mut PlacementState<'d>,
    config: &LegalizerConfig,
    weights: &'p [i64],
    oracle: Option<&'p RoutOracle<'p>>,
    pool: Option<(&PoolClient<'p>, usize)>,
    main_scratch: &mut InsertionScratch,
) -> Result<MglStats, LegalizeError> {
    let t_total = Stopwatch::start();
    let design = state.design();
    let capacity = config.window_list_capacity.max(1);
    let mut stats = MglStats::default();

    // (cell, expansion level) in processing order, split in two: `carry`
    // holds cells deferred by the previous round (expanded retries first,
    // then overlap-deferred), `backlog` the never-yet-considered tail in
    // original order. A round pops carry-then-backlog, which is exactly
    // the order a single queue would yield — but on a capacity break the
    // untouched backlog tail stays where it is instead of being drained
    // into the deferred queue, turning the total selection work from
    // quadratic in the cell count (ruinous at 1M cells) into linear.
    let mut backlog: VecDeque<(CellId, usize)> = cell_order(design, config.order)
        .into_iter()
        .filter(|&c| state.pos(c).is_none())
        .map(|c| (c, 0usize))
        .collect();
    let mut carry: VecDeque<(CellId, usize)> = VecDeque::new();
    let mut fallback_queue: Vec<CellId> = Vec::new();
    let mut windex = WindowIndex::new(design.core, design.tech.row_height);
    // A run with 0 or 1 pending cells never fans out; skip the replica
    // clones entirely.
    let handle = match pool {
        Some((client, run)) if client.workers() > 0 && backlog.len() > 1 => {
            let h = client.run_handle(run);
            let replica_src: &PlacementState<'p> = &*state;
            h.begin(replica_src, config, weights, oracle)?;
            Some(h)
        }
        _ => None,
    };

    let model = CostModel {
        reference: config.reference,
        normalize: config.normalize_curves,
        weights,
        oracle,
        io_penalty: config.io_penalty,
        rail_penalty: config.rail_penalty,
    };
    // Reused per round; results are slotted by job index. A slot left at
    // `None` after the repair pass marks a quarantined cell.
    let mut results: Vec<Option<EvalResult>> = Vec::new();

    while !(carry.is_empty() && backlog.is_empty()) {
        stats.perf.rounds += 1;
        // Select non-overlapping windows, preserving order for the rest.
        let t_select = Stopwatch::start();
        let mut selected: Vec<Job> = Vec::new();
        let mut deferred: VecDeque<(CellId, usize)> = VecDeque::new();
        windex.clear();
        while let Some((cell, n)) = carry.pop_front().or_else(|| backlog.pop_front()) {
            let win = window_for(design, cell, config, n);
            if windex.overlaps_any(win) {
                deferred.push_back((cell, n));
            } else {
                windex.insert(win);
                selected.push((cell, n, win));
                if selected.len() >= capacity {
                    // Capacity reached: everything not yet popped simply
                    // stays in carry/backlog for the next round, order
                    // preserved at zero cost.
                    break;
                }
            }
        }
        let select_nanos = t_select.elapsed_nanos();
        stats.perf.select_nanos += select_nanos;
        stats
            .obs
            .record_span(SpanKind::SchedSelect, select_nanos, 0);

        // Evaluate concurrently against the immutable round-start state:
        // broadcast the job list, then steal from the shared cursor
        // alongside the workers until it runs dry, then collect.
        let t_eval = Stopwatch::start();
        stats.perf.windows_evaluated += selected.len() as u64;
        stats
            .obs
            .add(CounterKind::WindowsEvaluated, selected.len() as u64);
        results.clear();
        results.resize(selected.len(), None);
        let mut outstanding = 0usize;
        if let Some(h) = handle.as_ref().filter(|_| selected.len() > 1) {
            let jobs = Arc::new(selected.clone());
            let cursor = Arc::new(AtomicUsize::new(0));
            h.round(&jobs, &cursor)?;
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let t = Stopwatch::start();
                let r = eval_job(
                    state,
                    jobs[i].0,
                    jobs[i].2,
                    &model,
                    main_scratch,
                    config.faults.as_ref(),
                );
                let dt = t.elapsed_nanos();
                stats.perf.eval_cpu_nanos += dt;
                stats.obs.record_span(SpanKind::InsertionEval, dt, 0);
                stats.obs.observe(HistoKind::InsertionEvalNanos, dt);
                results[i] = Some(r);
                outstanding += 1;
            }
            // Queue-wait: time this coordinator blocks on results its jobs
            // spent queued or running on the shared workers. One
            // observation per pooled round, so interleaved batches expose
            // per-design queue pressure in the report histograms.
            let t_wait = Stopwatch::start();
            while outstanding < selected.len() {
                let (i, r) = h
                    .results_rx
                    .recv_timeout(POOL_WAIT)
                    .map_err(|_| LegalizeError::PoolBroken { during: "collect" })?;
                results[i] = Some(r);
                outstanding += 1;
            }
            stats
                .obs
                .observe(HistoKind::SchedQueueWaitNanos, t_wait.elapsed_nanos());
        } else {
            for (i, &(cell, _, win)) in selected.iter().enumerate() {
                let t = Stopwatch::start();
                let r = eval_job(
                    state,
                    cell,
                    win,
                    &model,
                    main_scratch,
                    config.faults.as_ref(),
                );
                let dt = t.elapsed_nanos();
                stats.perf.eval_cpu_nanos += dt;
                stats.obs.record_span(SpanKind::InsertionEval, dt, 0);
                stats.obs.observe(HistoKind::InsertionEvalNanos, dt);
                results[i] = Some(r);
            }
        }
        let eval_nanos = t_eval.elapsed_nanos();
        stats.perf.eval_nanos += eval_nanos;
        stats.obs.record_span(SpanKind::SchedEval, eval_nanos, 0);

        // Deterministic repair pass: a job whose evaluation panicked (on
        // any thread) is retried on the coordinator, in job-index order,
        // against the same round-start state — so the outcome never
        // depends on which thread hit the panic or on the thread count.
        // A job that keeps failing past the retry budget quarantines its
        // cell: the slot reverts to `None` and the cell is left unplaced.
        for (i, &(cell, _, win)) in selected.iter().enumerate() {
            let mut last = match &results[i] {
                Some(Err(m)) => m.clone(),
                _ => continue,
            };
            let mut attempts = 0u32;
            loop {
                if attempts >= config.fault_retry_budget {
                    stats.quarantined += 1;
                    stats.failures.push(
                        LegalizeError::CellQuarantined {
                            stage: "mgl",
                            cell: cell.0,
                            retries: attempts,
                            message: last,
                        }
                        .to_record(),
                    );
                    results[i] = None;
                    break;
                }
                attempts += 1;
                stats.retries += 1;
                match eval_job(
                    state,
                    cell,
                    win,
                    &model,
                    main_scratch,
                    config.faults.as_ref(),
                ) {
                    Ok(r) => {
                        results[i] = Some(Ok(r));
                        break;
                    }
                    Err(m) => last = m,
                }
            }
        }

        // Apply sequentially in selection order; broadcast the applied
        // ops so replicas stay in lockstep.
        let t_apply = Stopwatch::start();
        let mut ops: Vec<(CellId, Insertion)> = Vec::new();
        for (i, (cell, n, win)) in selected.into_iter().enumerate() {
            match results[i].take() {
                // Quarantined by the repair pass: the cell stays unplaced
                // and takes no further part in the run.
                None => {}
                // Unreachable (the repair pass resolves every `Err`), but
                // degrading to quarantine beats asserting here.
                Some(Err(_)) => {}
                Some(Ok(Some(ins))) => {
                    let site = FaultSite::MglApply { cell: cell.0 };
                    if crate::faultinject::fires(config.faults.as_ref(), &design.name, &site) {
                        crate::faultinject::injected_panic(&site);
                    }
                    // Pooled apply buffers: the throwaway-scratch variant
                    // would construct (and count) one scratch per applied
                    // cell — at 1M cells that is 1M needless allocations on
                    // the coordinator's sequential apply path.
                    apply_insertion_with(state, cell, &ins, main_scratch);
                    stats.placed_in_window += 1;
                    // Expansions were already counted one-by-one when
                    // each failed window re-entered expanded (the
                    // previous `+= n` here double-counted every retry).
                    ops.push((cell, ins));
                }
                Some(Ok(None)) => {
                    // Mirror the serial algorithm: stop expanding once
                    // the window already covers the whole core.
                    let full_core = win == design.core && n > 0;
                    if n < config.max_expansions && !full_core {
                        stats.expansions += 1;
                        stats.obs.add(CounterKind::WindowsExpanded, 1);
                        // Retry the expanded window first thing next
                        // round, like the sequential algorithm's
                        // immediate retry — otherwise neighbours fill
                        // the cell's space while it waits.
                        deferred.push_front((cell, n + 1));
                    } else {
                        fallback_queue.push(cell);
                    }
                }
            }
        }
        if let Some(h) = handle.as_ref().filter(|_| !ops.is_empty()) {
            h.apply(ops)?;
        }
        let apply_nanos = t_apply.elapsed_nanos();
        stats.perf.apply_nanos += apply_nanos;
        stats.obs.record_span(SpanKind::SchedApply, apply_nanos, 0);
        // Next round processes this round's deferred cells first, then
        // whatever was left unpopped. `append` drains `carry` (bounded by
        // cells actually examined this round, not by the design size).
        deferred.append(&mut carry);
        carry = deferred;
    }

    // Close the run and fold worker counters into the run stats. The
    // workers stay alive for the pool's other (possibly concurrent) runs.
    if let Some(h) = &handle {
        h.finish(&mut stats)?;
    }
    stats
        .perf
        .scratch
        .merge(&std::mem::take(&mut main_scratch.stats));
    crate::mgl::record_scratch_counters(&mut stats.obs, &stats.perf.scratch);

    let t_fb = Stopwatch::start();
    for cell in fallback_queue {
        stats.obs.add(CounterKind::FallbackScans, 1);
        let p = match fallback_scan(state, cell, oracle) {
            Some(p) => Some(p),
            None => {
                stats.obs.add(CounterKind::FallbackScans, 1);
                fallback_scan(state, cell, None)
            }
        };
        match p {
            Some(p) => match state.place(cell, p) {
                Ok(()) => stats.fallbacks += 1,
                Err(e) => record_fallback_reject(&mut stats, cell, p, &e),
            },
            None => stats.failed += 1,
        }
    }
    let fb_nanos = t_fb.elapsed_nanos();
    stats.perf.fallback_nanos += fb_nanos;
    if fb_nanos > 0 && stats.fallbacks + stats.failed > 0 {
        stats.obs.record_span(SpanKind::FallbackScan, fb_nanos, 0);
    }
    stats.perf.total_nanos = t_total.elapsed_nanos();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CellOrder;
    use crate::mgl::compute_weights;
    use mcl_db::legal::Checker;

    fn dense_design(n_cells: usize, seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 3000, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n_cells {
            let t = if rng() % 5 == 0 {
                CellTypeId(1)
            } else {
                CellTypeId(0)
            };
            let x = (rng() % 2900) as Dbu;
            let y = (rng() % 1700) as Dbu;
            d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
        }
        d
    }

    fn run_with_threads(d: &Design, threads: usize) -> Vec<Option<Point>> {
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = threads;
        cfg.clamp_threads_to_hardware = false;
        cfg.window_list_capacity = 8;
        let weights = compute_weights(d, cfg.weights);
        let mut state = PlacementState::new(d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        assert_eq!(stats.failed, 0);
        d.movable_cells().map(|c| state.pos(c)).collect()
    }

    #[test]
    fn parallel_results_independent_of_thread_count() {
        let d = dense_design(150, 1234);
        let p1 = run_with_threads(&d, 1);
        let p2 = run_with_threads(&d, 2);
        let p4 = run_with_threads(&d, 4);
        assert_eq!(p1, p2);
        assert_eq!(p2, p4);
    }

    #[test]
    fn thread_count_invariance_with_oracle() {
        // The routability oracle feeds penalties and alternate candidate
        // positions into the evaluation; they must be identical whether a
        // window was evaluated by the coordinator or any worker replica.
        let mut d = dense_design(140, 4321);
        d.grid = PowerGrid {
            h_layer: 2,
            h_width: 6,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: 8,
            v_pitch: 400,
            v_offset: 200,
        };
        d.cell_types[0].pins.push(PinShape {
            name: "a".into(),
            layer: 2,
            rect: Rect::new(4, 30, 12, 50),
        });
        let mut cfg = LegalizerConfig::contest();
        cfg.window_list_capacity = 8;
        let oracle = RoutOracle::new(&d);
        let run = |threads: usize| {
            let mut c = cfg.clone();
            c.threads = threads;
            c.clamp_threads_to_hardware = false;
            let weights = compute_weights(&d, c.weights);
            let mut state = PlacementState::new(&d);
            let stats = run_parallel(&mut state, &c, &weights, Some(&oracle));
            assert_eq!(stats.failed, 0, "{stats:?}");
            d.movable_cells()
                .map(|cl| state.pos(cl))
                .collect::<Vec<_>>()
        };
        let p1 = run(1);
        let p2 = run(2);
        let p4 = run(4);
        assert_eq!(p1, p2);
        assert_eq!(p2, p4);
    }

    #[test]
    fn thread_count_invariance_with_shuffled_order() {
        // HeightThenShuffled changes the pending order (and thus the
        // selected sets); determinism across thread counts must hold for it
        // too.
        let d = dense_design(150, 777);
        let run = |threads: usize| {
            let mut cfg = LegalizerConfig::total_displacement();
            cfg.threads = threads;
            cfg.window_list_capacity = 8;
            cfg.order = CellOrder::HeightThenShuffled;
            let weights = compute_weights(&d, cfg.weights);
            let mut state = PlacementState::new(&d);
            let stats = run_parallel(&mut state, &cfg, &weights, None);
            assert_eq!(stats.failed, 0);
            d.movable_cells().map(|c| state.pos(c)).collect::<Vec<_>>()
        };
        let p1 = run(1);
        let p2 = run(2);
        let p4 = run(4);
        assert_eq!(p1, p2);
        assert_eq!(p2, p4);
    }

    #[test]
    fn capacity_one_matches_any_capacity_for_legality() {
        // Different list capacities may give different (all legal)
        // placements; each capacity must be internally deterministic.
        let d = dense_design(120, 99);
        let run_cap = |cap: usize| {
            let mut cfg = LegalizerConfig::total_displacement();
            cfg.threads = 2;
            cfg.clamp_threads_to_hardware = false;
            cfg.window_list_capacity = cap;
            let weights = compute_weights(&d, cfg.weights);
            let mut state = PlacementState::new(&d);
            let stats = run_parallel(&mut state, &cfg, &weights, None);
            assert_eq!(stats.failed, 0);
            let mut out = d.clone();
            state.write_back(&mut out);
            assert!(Checker::new(&out).check().is_legal());
            out.cells.iter().map(|c| c.pos).collect::<Vec<_>>()
        };
        for cap in [1usize, 4, 64] {
            assert_eq!(run_cap(cap), run_cap(cap), "capacity {cap} deterministic");
        }
    }

    #[test]
    fn parallel_output_is_legal() {
        let d = dense_design(200, 555);
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 4;
        cfg.clamp_threads_to_hardware = false;
        let weights = compute_weights(&d, cfg.weights);
        let mut state = PlacementState::new(&d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        assert_eq!(stats.failed, 0, "{stats:?}");
        let mut out = d.clone();
        state.write_back(&mut out);
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
    }

    #[test]
    fn full_core_windows_stop_expanding() {
        // An overfull design forces window failures; once a cell's window
        // covers the whole core, the scheduler must send it to the fallback
        // queue instead of burning the remaining expansions on identical
        // full-core searches (regression test: the seed scheduler kept
        // expanding to max_expansions).
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 200, 180));
        let wide = d.add_cell_type(CellType::new("wide", 180, 1));
        for i in 0..4 {
            d.add_cell(Cell::new(format!("w{i}"), wide, Point::new(0, 0)));
        }
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 2;
        cfg.clamp_threads_to_hardware = false;
        cfg.max_expansions = 40;
        let weights = compute_weights(&d, cfg.weights);
        let mut state = PlacementState::new(&d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        // Core holds two rows of one wide cell each: 2 placed, 2 impossible.
        assert_eq!(stats.placed_in_window + stats.fallbacks, 2, "{stats:?}");
        assert_eq!(stats.failed, 2, "{stats:?}");
        // The window growth (2 sites, 1 row per expansion) covers the
        // 20×2-row core within a few expansions; without the early stop the
        // two impossible cells alone would burn 2 × 40 expansions.
        assert!(
            stats.expansions < 40,
            "full-core early stop must bound expansions, got {}",
            stats.expansions
        );
    }

    #[test]
    fn perf_counters_populated() {
        let d = dense_design(100, 2024);
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 2;
        cfg.clamp_threads_to_hardware = false;
        let weights = compute_weights(&d, cfg.weights);
        let mut state = PlacementState::new(&d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        assert!(stats.perf.rounds > 0);
        assert!(stats.perf.windows_evaluated >= stats.placed_in_window as u64);
        assert!(stats.perf.total_nanos > 0);
        assert!(stats.perf.scratch.regions > 0);
        assert!(stats.perf.scratch.anchors > 0);
        // Exactly one coordinator scratch and one worker scratch were
        // constructed for this standalone run.
        assert_eq!(stats.perf.scratch.created, 2);
    }

    #[test]
    fn pool_reuse_across_runs_is_bit_identical() {
        // One pool serving two consecutive runs must produce exactly what
        // two private pools produce, and the second run must not allocate
        // new scratches.
        let d1 = dense_design(120, 42);
        let d2 = dense_design(130, 43);
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 3;
        cfg.clamp_threads_to_hardware = false;
        let w1 = compute_weights(&d1, cfg.weights);
        let w2 = compute_weights(&d2, cfg.weights);

        let solo = |d: &Design, w: &[i64]| {
            let mut state = PlacementState::new(d);
            let stats = run_parallel(&mut state, &cfg, w, None);
            assert_eq!(stats.failed, 0);
            d.movable_cells().map(|c| state.pos(c)).collect::<Vec<_>>()
        };
        let (solo1, solo2) = (solo(&d1, &w1), solo(&d2, &w2));

        let mut scratch = InsertionScratch::new();
        let mut created = Vec::new();
        let (pool1, pool2) = std::thread::scope(|scope| {
            let pool = EvalPool::spawn(scope, 2);
            let client = pool.client();
            let mut state1 = PlacementState::new(&d1);
            let s1 = drive_rounds(
                &mut state1,
                &cfg,
                &w1,
                None,
                Some((&client, 0)),
                &mut scratch,
            )
            .unwrap();
            assert_eq!(s1.failed, 0);
            created.push(s1.perf.scratch.created);
            let p1: Vec<_> = d1.movable_cells().map(|c| state1.pos(c)).collect();
            let mut state2 = PlacementState::new(&d2);
            let s2 = drive_rounds(
                &mut state2,
                &cfg,
                &w2,
                None,
                Some((&client, 1)),
                &mut scratch,
            )
            .unwrap();
            assert_eq!(s2.failed, 0);
            created.push(s2.perf.scratch.created);
            let p2: Vec<_> = d2.movable_cells().map(|c| state2.pos(c)).collect();
            (p1, p2)
        });
        assert_eq!(solo1, pool1);
        assert_eq!(solo2, pool2);
        // First run sees the coordinator + 2 worker scratch constructions;
        // the second run reuses all three.
        assert_eq!(created, vec![3, 0]);
    }

    #[test]
    fn concurrent_runs_interleave_without_perturbing_each_other() {
        // Two coordinator threads drive two designs through ONE shared
        // pool at the same time: eval jobs interleave on the same workers,
        // yet each design's result must be byte-identical to its solo run.
        let d1 = dense_design(150, 2025);
        let d2 = dense_design(160, 4050);
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 3;
        cfg.clamp_threads_to_hardware = false;
        let w1 = compute_weights(&d1, cfg.weights);
        let w2 = compute_weights(&d2, cfg.weights);

        let solo = |d: &Design, w: &[i64]| {
            let mut state = PlacementState::new(d);
            let stats = run_parallel(&mut state, &cfg, w, None);
            assert_eq!(stats.failed, 0);
            d.movable_cells().map(|c| state.pos(c)).collect::<Vec<_>>()
        };
        let (solo1, solo2) = (solo(&d1, &w1), solo(&d2, &w2));

        for _ in 0..4 {
            let (pool1, pool2) = std::thread::scope(|scope| {
                let pool = EvalPool::spawn(scope, 2);
                let c1 = pool.client();
                let c2 = pool.client();
                // Shadow with references so the `move` closure captures
                // borrows of the outer data plus ownership of its client.
                let (d2, w2, cfg2) = (&d2, &w2, &cfg);
                let runner2 = scope.spawn(move || {
                    let mut scratch = InsertionScratch::new();
                    let mut state = PlacementState::new(d2);
                    let s = drive_rounds(&mut state, cfg2, w2, None, Some((&c2, 1)), &mut scratch)
                        .unwrap();
                    assert_eq!(s.failed, 0);
                    d2.movable_cells().map(|c| state.pos(c)).collect::<Vec<_>>()
                });
                let mut scratch = InsertionScratch::new();
                let mut state = PlacementState::new(&d1);
                let s = drive_rounds(&mut state, &cfg, &w1, None, Some((&c1, 0)), &mut scratch)
                    .unwrap();
                assert_eq!(s.failed, 0);
                let p1: Vec<_> = d1.movable_cells().map(|c| state.pos(c)).collect();
                (p1, runner2.join().unwrap())
            });
            assert_eq!(solo1, pool1);
            assert_eq!(solo2, pool2);
        }
    }

    #[test]
    fn inline_rounds_match_pooled_rounds() {
        // `drive_rounds` with no pool must reproduce the pooled scheduler
        // bit-for-bit (it runs the same rounds inline) — this is what lets
        // batch runners skip the pool when every thread is a runner.
        let d = dense_design(140, 909);
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 4;
        cfg.clamp_threads_to_hardware = false;
        let w = compute_weights(&d, cfg.weights);
        let pooled = run_with_threads(&d, 4);
        let mut scratch = InsertionScratch::new();
        let mut state = PlacementState::new(&d);
        let stats = drive_rounds(&mut state, &cfg, &w, None, None, &mut scratch).unwrap();
        assert_eq!(stats.failed, 0);
        let inline: Vec<_> = d.movable_cells().map(|c| state.pos(c)).collect();
        assert_eq!(pooled, inline);
    }
}
