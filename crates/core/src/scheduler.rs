//! Deterministic multi-threaded MGL (§3.5).
//!
//! The scheduler runs in rounds. Each round selects, in the fixed cell
//! order, up to `window_list_capacity` cells whose search windows do not
//! overlap each other (`L_p` in the paper); their insertions are evaluated
//! concurrently against the round-start state and applied sequentially in
//! selection order. Cells whose windows overlap a selected window wait for a
//! later round (`L_w`), and failed windows re-enter expanded. Because the
//! selected set, the evaluation inputs and the application order are all
//! independent of thread count, results are bit-identical for any number of
//! threads (given a fixed list capacity).

use crate::config::LegalizerConfig;
use crate::insertion::{best_insertion, CostModel, Insertion};
use crate::mgl::{apply_insertion, cell_order, fallback_scan, window_for, MglStats};
use crate::routability::RoutOracle;
use crate::state::PlacementState;
use mcl_db::prelude::*;
use std::collections::VecDeque;

/// Runs MGL with the parallel window scheduler.
pub fn run_parallel(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    weights: &[i64],
    oracle: Option<&RoutOracle<'_>>,
) -> MglStats {
    let design = state.design();
    let threads = config.threads.max(1);
    let capacity = config.window_list_capacity.max(1);
    let mut stats = MglStats::default();

    // (cell, expansion level) in processing order.
    let mut pending: VecDeque<(CellId, usize)> = cell_order(design, config.order)
        .into_iter()
        .filter(|&c| state.pos(c).is_none())
        .map(|c| (c, 0usize))
        .collect();
    let mut fallback_queue: Vec<CellId> = Vec::new();

    while !pending.is_empty() {
        // Select non-overlapping windows, preserving order for the rest.
        let mut selected: Vec<(CellId, usize, Rect)> = Vec::new();
        let mut deferred: VecDeque<(CellId, usize)> = VecDeque::new();
        while let Some((cell, n)) = pending.pop_front() {
            if selected.len() >= capacity {
                deferred.push_back((cell, n));
                continue;
            }
            let win = window_for(design, cell, config, n);
            if selected.iter().any(|(_, _, w)| w.overlaps(win)) {
                deferred.push_back((cell, n));
            } else {
                selected.push((cell, n, win));
            }
        }

        // Evaluate concurrently against the immutable round-start state.
        let model = CostModel {
            reference: config.reference,
            normalize: config.normalize_curves,
            weights,
            oracle,
            io_penalty: config.io_penalty,
            rail_penalty: config.rail_penalty,
        };
        let results: Vec<Option<Insertion>> = if threads == 1 || selected.len() == 1 {
            selected
                .iter()
                .map(|&(cell, _, win)| best_insertion(state, cell, win, &model))
                .collect()
        } else {
            let state_ref: &PlacementState<'_> = state;
            let model_ref = &model;
            let jobs = &selected;
            let mut out: Vec<Option<Insertion>> = Vec::new();
            std::thread::scope(|scope| {
                let chunk = jobs.len().div_ceil(threads);
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(jobs.len());
                    if lo >= hi {
                        break;
                    }
                    handles.push(scope.spawn(move || {
                        jobs[lo..hi]
                            .iter()
                            .map(|&(cell, _, win)| {
                                best_insertion(state_ref, cell, win, model_ref)
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    out.extend(h.join().expect("worker thread panicked"));
                }
            });
            out
        };

        // Apply sequentially in selection order.
        for ((cell, n, _win), result) in selected.into_iter().zip(results) {
            match result {
                Some(ins) => {
                    apply_insertion(state, cell, &ins);
                    stats.placed_in_window += 1;
                    stats.expansions += n;
                }
                None if n < config.max_expansions => {
                    stats.expansions += 1;
                    // Retry the expanded window first thing next round, like
                    // the sequential algorithm's immediate retry — otherwise
                    // neighbours fill the cell's space while it waits.
                    deferred.push_front((cell, n + 1));
                }
                None => fallback_queue.push(cell),
            }
        }
        pending = deferred;
    }

    for cell in fallback_queue {
        let p = fallback_scan(state, cell, oracle)
            .or_else(|| fallback_scan(state, cell, None));
        match p {
            Some(p) => {
                state.place(cell, p).expect("fallback position must be free");
                stats.fallbacks += 1;
            }
            None => stats.failed += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgl::compute_weights;
    use mcl_db::legal::Checker;

    fn dense_design(n_cells: usize, seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 3000, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n_cells {
            let t = if rng() % 5 == 0 { CellTypeId(1) } else { CellTypeId(0) };
            let x = (rng() % 2900) as Dbu;
            let y = (rng() % 1700) as Dbu;
            d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
        }
        d
    }

    fn run_with_threads(d: &Design, threads: usize) -> Vec<Option<Point>> {
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = threads;
        cfg.window_list_capacity = 8;
        let weights = compute_weights(d, cfg.weights);
        let mut state = PlacementState::new(d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        assert_eq!(stats.failed, 0);
        d.movable_cells().map(|c| state.pos(c)).collect()
    }

    #[test]
    fn parallel_results_independent_of_thread_count() {
        let d = dense_design(150, 1234);
        let p1 = run_with_threads(&d, 1);
        let p2 = run_with_threads(&d, 2);
        let p4 = run_with_threads(&d, 4);
        assert_eq!(p1, p2);
        assert_eq!(p2, p4);
    }

    #[test]
    fn capacity_one_matches_any_capacity_for_legality() {
        // Different list capacities may give different (all legal)
        // placements; each capacity must be internally deterministic.
        let d = dense_design(120, 99);
        let run_cap = |cap: usize| {
            let mut cfg = LegalizerConfig::total_displacement();
            cfg.threads = 2;
            cfg.window_list_capacity = cap;
            let weights = compute_weights(&d, cfg.weights);
            let mut state = PlacementState::new(&d);
            let stats = run_parallel(&mut state, &cfg, &weights, None);
            assert_eq!(stats.failed, 0);
            let mut out = d.clone();
            state.write_back(&mut out);
            assert!(Checker::new(&out).check().is_legal());
            out.cells.iter().map(|c| c.pos).collect::<Vec<_>>()
        };
        for cap in [1usize, 4, 64] {
            assert_eq!(run_cap(cap), run_cap(cap), "capacity {cap} deterministic");
        }
    }

    #[test]
    fn parallel_output_is_legal() {
        let d = dense_design(200, 555);
        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = 4;
        let weights = compute_weights(&d, cfg.weights);
        let mut state = PlacementState::new(&d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        assert_eq!(stats.failed, 0, "{stats:?}");
        let mut out = d.clone();
        state.write_back(&mut out);
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
    }
}
