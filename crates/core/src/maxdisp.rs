//! Maximum-displacement optimization — stage 2 (§3.2).
//!
//! For every (cell type × fence region) group, cells of the group may freely
//! permute over the multiset of positions they currently occupy: the
//! footprint is identical, so no overlap, edge-spacing, P/G or pin violation
//! can appear. A min-cost perfect matching under the convex cost
//! `φ(δ) = δ for δ ≤ δ₀, δ⁵/δ₀⁴ otherwise` (Eq. 3) simultaneously preserves
//! the average displacement (linear region) and squeezes outliers (the
//! steep region).
//!
//! Groups are independent (their position multisets are disjoint), so they
//! are solved concurrently when [`LegalizerConfig::threads`] allows, and the
//! results applied in deterministic key order.

use crate::config::LegalizerConfig;
use crate::state::PlacementState;
use mcl_db::geom::{dbu_from_f64_saturating, dbu_to_f64};
use mcl_db::prelude::*;
use mcl_flow::matching::min_cost_matching_with_witness_metered;
use mcl_obs::{clock::Stopwatch, CounterKind, HistoKind, Meter, SpanKind};
use std::collections::{BTreeMap, HashMap};

/// Statistics of one stage-2 run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaxDispStats {
    /// Groups considered (≥ 2 cells).
    pub groups: usize,
    /// Groups where the matching changed at least one assignment.
    pub groups_changed: usize,
    /// Cells that moved to a different position.
    pub cells_moved: usize,
}

/// The matching cost `φ(δ)` of Eq. 3, computed in saturating integer space.
pub fn phi(delta: Dbu, delta0: Dbu) -> i64 {
    debug_assert!(delta >= 0);
    if delta <= delta0 {
        return delta;
    }
    let d = dbu_to_f64(delta);
    let d0 = dbu_to_f64(delta0.max(1));
    let v = d * (d / d0).powi(4);
    if v >= 1e15 {
        1_000_000_000_000_000
    } else {
        dbu_from_f64_saturating(v)
    }
}

/// One group's matching job (immutable snapshot).
struct GroupJob {
    cells: Vec<CellId>,
    positions: Vec<Point>,
    gps: Vec<Point>,
}

/// Runs the matching-based maximum-displacement optimization in place.
pub fn optimize_max_disp(state: &mut PlacementState<'_>, config: &LegalizerConfig) -> MaxDispStats {
    let mut obs = Meter::new();
    optimize_max_disp_metered(state, config, &mut obs, None)
}

/// [`optimize_max_disp`] that records group spans, matching counters and
/// the group-size histogram into `obs`.
///
/// With `delta` set (ECO delta mode), grouping is restricted to closure
/// members: clean groups are never visited and clean cells of a dirty
/// group keep their positions — the matching permutes dirty-closure cells
/// only, so everything outside the closure is untouched by construction.
pub fn optimize_max_disp_metered(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    obs: &mut Meter,
    delta: Option<&crate::dirty::DirtyClosure>,
) -> MaxDispStats {
    let d = state.design();
    let delta0 = config.delta0_dbu(d.tech.row_height);
    let mut stats = MaxDispStats::default();

    // Group placed movable cells by (type, fence). A BTreeMap so that the
    // group visit order below is the sorted key order by construction —
    // deterministic without a separate key sort (and without tripping the
    // analyzer's det-hash-iter rule: this loop is reachable from
    // `MaxDispStage::run`).
    let mut groups: BTreeMap<(u32, u16), Vec<CellId>> = BTreeMap::new();
    match delta {
        // Delta mode: only dirty-closure members participate (the closure
        // is in ascending id order, same as `movable_cells`).
        Some(dc) => {
            for &id in dc.cells() {
                if state.pos(id).is_some() {
                    let c = &d.cells[id.0 as usize];
                    groups.entry((c.type_id.0, c.fence.0)).or_default().push(id);
                }
            }
        }
        None => {
            for id in d.movable_cells() {
                if state.pos(id).is_some() {
                    let c = &d.cells[id.0 as usize];
                    groups.entry((c.type_id.0, c.fence.0)).or_default().push(id);
                }
            }
        }
    }

    // Snapshot jobs worth solving.
    let mut jobs: Vec<GroupJob> = Vec::new();
    for (_key, cells) in groups {
        if cells.len() < 2 {
            continue;
        }
        stats.groups += 1;
        let positions: Vec<Point> = cells.iter().map(|&c| state.pos(c).unwrap()).collect();
        let gps: Vec<Point> = cells.iter().map(|&c| d.cells[c.0 as usize].gp).collect();
        // Groups already within tolerance keep the identity assignment.
        let worst = positions
            .iter()
            .zip(&gps)
            .map(|(p, g)| p.manhattan(*g))
            .max()
            .unwrap();
        if worst <= delta0 {
            continue;
        }
        // Shrink the matching to the displaced *tail* plus a 2-hop
        // neighborhood closure: only cells beyond δ₀ need re-matching, and
        // their swap chains run through the owners of the positions nearest
        // their GPs. Everything else keeps the identity assignment, which is
        // what the matching would choose anyway in φ's linear region.
        let subset = tail_closure(&positions, &gps, delta0);
        if subset.len() < 2 {
            continue;
        }
        jobs.push(GroupJob {
            cells: subset.iter().map(|&i| cells[i]).collect(),
            positions: subset.iter().map(|&i| positions[i]).collect(),
            gps: subset.iter().map(|&i| gps[i]).collect(),
        });
    }

    // Solve (possibly in parallel; groups are disjoint so any schedule gives
    // the same per-group answers).
    let threads = config.threads.max(1).min(jobs.len().max(1));
    let dense_limit = config.matching_dense_limit;
    let results: Vec<Vec<(usize, usize)>> = if threads <= 1 {
        jobs.iter()
            .map(|j| solve_group(j, delta0, dense_limit, obs, 0))
            .collect()
    } else {
        let jobs_ref = &jobs;
        let mut out = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            let chunk = jobs_ref.len().div_ceil(threads);
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(jobs_ref.len());
                if lo >= hi {
                    break;
                }
                handles.push(scope.spawn(move || {
                    let mut local = Meter::new();
                    let results = jobs_ref[lo..hi]
                        .iter()
                        .map(|j| solve_group(j, delta0, dense_limit, &mut local, t))
                        .collect::<Vec<_>>();
                    (results, local)
                }));
            }
            // Joined in spawn order, so the meter fold is deterministic.
            for h in handles {
                let (results, local) = h.join().expect("matching worker panicked");
                out.extend(results);
                obs.merge(&local);
            }
        });
        out
    };

    // Apply in deterministic order.
    for (job, moved) in jobs.iter().zip(results) {
        if moved.is_empty() {
            continue;
        }
        stats.groups_changed += 1;
        for &(i, _) in &moved {
            state.remove(job.cells[i]);
        }
        for &(i, j) in &moved {
            state
                .place(job.cells[i], job.positions[j])
                .expect("permuted position must be placeable");
            stats.cells_moved += 1;
        }
    }
    obs.add(CounterKind::MatchingGroups, stats.groups as u64);
    obs.add(CounterKind::MatchingCellsMoved, stats.cells_moved as u64);
    stats
}

/// Indices of cells displaced beyond `delta0` plus (two hops of) the owners
/// of positions near their GPs — the only cells a beneficial swap chain can
/// involve at meaningful gain.
fn tail_closure(positions: &[Point], gps: &[Point], delta0: Dbu) -> Vec<usize> {
    const HOPS: usize = 2;
    const NEAR: usize = 8;
    let n = positions.len();
    let mut include = vec![false; n];
    let mut frontier: Vec<usize> = (0..n)
        .filter(|&i| positions[i].manhattan(gps[i]) > delta0)
        .collect();
    for &i in &frontier {
        include[i] = true;
    }
    let bucket = delta0.max(1);
    let mut grid: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
    for (j, &p) in positions.iter().enumerate() {
        grid.entry((p.x / bucket, p.y / bucket))
            .or_default()
            .push(j);
    }
    for _ in 0..HOPS {
        let mut next = Vec::new();
        for &i in &frontier {
            let gp = gps[i];
            let (bx, by) = (gp.x / bucket, gp.y / bucket);
            let mut cand: Vec<usize> = Vec::new();
            let mut ring = 0i64;
            let mut misses = 0;
            while cand.len() < NEAR && misses < 3 && ring <= 1_000 {
                let mut found = false;
                for dx in -ring..=ring {
                    for dy in -ring..=ring {
                        if dx.abs() != ring && dy.abs() != ring {
                            continue;
                        }
                        if let Some(v) = grid.get(&(bx + dx, by + dy)) {
                            cand.extend_from_slice(v);
                            found = true;
                        }
                    }
                }
                ring += 1;
                if !found && !cand.is_empty() {
                    misses += 1;
                }
            }
            cand.sort_unstable_by_key(|&j| positions[j].manhattan(gp));
            cand.truncate(NEAR);
            for j in cand {
                if !include[j] {
                    include[j] = true;
                    next.push(j);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    (0..n).filter(|&i| include[i]).collect()
}

/// Solves one group; returns the non-identity part of the assignment.
/// Records a `maxdisp.group` span (attributed to `thread`), the group-size
/// histogram and the underlying flow work into `obs`.
fn solve_group(
    job: &GroupJob,
    delta0: Dbu,
    dense_limit: usize,
    obs: &mut Meter,
    thread: usize,
) -> Vec<(usize, usize)> {
    let t_group = Stopwatch::start();
    let out = solve_group_inner(job, delta0, dense_limit, obs, thread);
    obs.record_span(SpanKind::MatchingGroup, t_group.elapsed_nanos(), thread);
    obs.observe(HistoKind::MatchingGroupCells, job.cells.len() as u64);
    out
}

fn solve_group_inner(
    job: &GroupJob,
    delta0: Dbu,
    dense_limit: usize,
    obs: &mut Meter,
    thread: usize,
) -> Vec<(usize, usize)> {
    let n = job.cells.len();
    let edges = if n <= dense_limit {
        let mut edges = Vec::with_capacity(n * n);
        for (i, gp) in job.gps.iter().enumerate() {
            for (j, &p) in job.positions.iter().enumerate() {
                edges.push((i, j, phi(p.manhattan(*gp), delta0)));
            }
        }
        edges
    } else {
        // Sparse: each cell connects to its own slot (feasibility) plus its
        // K nearest positions by GP distance, found via a spatial grid.
        // Chains of swaps compose through the intermediate cells' own
        // neighborhoods, so K can stay small.
        const K: usize = 32;
        let bucket = delta0.max(1);
        let mut grid: HashMap<(i64, i64), Vec<usize>> = HashMap::new();
        for (j, &p) in job.positions.iter().enumerate() {
            grid.entry((p.x / bucket, p.y / bucket))
                .or_default()
                .push(j);
        }
        let mut edges = Vec::new();
        for (i, gp) in job.gps.iter().enumerate() {
            let (bx, by) = (gp.x / bucket, gp.y / bucket);
            let mut cand: Vec<usize> = Vec::with_capacity(2 * K);
            let mut ring = 0i64;
            let mut misses = 0;
            while cand.len() < K && misses < 3 && ring <= 1_000 {
                let mut found_any = false;
                for dx in -ring..=ring {
                    for dy in -ring..=ring {
                        if dx.abs() != ring && dy.abs() != ring {
                            continue;
                        }
                        if let Some(v) = grid.get(&(bx + dx, by + dy)) {
                            cand.extend_from_slice(v);
                            found_any = true;
                        }
                    }
                }
                ring += 1;
                if !found_any && !cand.is_empty() {
                    misses += 1;
                }
            }
            cand.sort_unstable_by_key(|&j| job.positions[j].manhattan(*gp));
            cand.truncate(K);
            if !cand.contains(&i) {
                cand.push(i);
            }
            for j in cand {
                edges.push((i, j, phi(job.positions[j].manhattan(*gp), delta0)));
            }
        }
        edges
    };

    // Lower-bound short-circuit: when keeping every cell where it is already
    // matches each cell's cheapest available slot, identity is optimal.
    {
        let mut min_cost = vec![i64::MAX; n];
        let mut identity = vec![i64::MAX; n];
        for &(i, j, c) in &edges {
            min_cost[i] = min_cost[i].min(c);
            if i == j {
                identity[i] = c;
            }
        }
        if min_cost == identity {
            return Vec::new();
        }
    }

    match min_cost_matching_with_witness_metered(n, job.positions.len(), &edges, obs, thread) {
        Some((m, _witness)) => {
            // Every matching applied to the placement carries an optimality
            // certificate: the independent auditor re-derives feasibility and
            // complementary slackness from the witness's dual potentials.
            #[cfg(any(debug_assertions, feature = "audit"))]
            {
                let cert = mcl_audit::certify(&_witness.graph, &_witness.solution)
                    .expect("max-disp matching failed its optimality certificate");
                debug_assert_eq!(cert.cost, m.cost, "certified cost must match matching cost");
            }
            m.assignment
                .iter()
                .enumerate()
                .filter(|&(i, &j)| i != j)
                .map(|(i, &j)| (i, j))
                .collect()
        }
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_db::score::Metrics;

    #[test]
    fn phi_linear_then_steep() {
        assert_eq!(phi(5, 10), 5);
        assert_eq!(phi(10, 10), 10);
        assert_eq!(phi(20, 10), 320); // 20^5 / 10^4
        assert!(phi(1000, 10) > phi(999, 10));
        assert_eq!(phi(100_000_000, 10), 1_000_000_000_000_000, "saturates");
    }

    fn design_with_crossed_cells() -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 4000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        // Cell a: GP at left, placed far right. Cell b: GP right where a
        // is placed, placed at a's GP. Swapping fixes both.
        let mut a = Cell::new("a", CellTypeId(0), Point::new(0, 0));
        a.pos = Some(Point::new(3000, 0));
        d.add_cell(a);
        let mut b = Cell::new("b", CellTypeId(0), Point::new(3000, 0));
        b.pos = Some(Point::new(0, 0));
        d.add_cell(b);
        d
    }

    #[test]
    fn swap_eliminates_max_displacement() {
        let d = design_with_crossed_cells();
        let mut state = PlacementState::from_design_positions(&d).unwrap();
        let before = Metrics::measure(&d);
        assert!(before.max_disp_rows > 30.0);
        let stats = optimize_max_disp(&mut state, &LegalizerConfig::contest());
        assert_eq!(stats.cells_moved, 2);
        let mut out = d.clone();
        state.write_back(&mut out);
        let after = Metrics::measure(&out);
        assert_eq!(after.max_disp_rows, 0.0);
        assert!(Checker::new(&out).check().is_legal());
    }

    #[test]
    fn different_types_never_swap() {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 4000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("w", 40, 1));
        let mut a = Cell::new("a", CellTypeId(0), Point::new(0, 0));
        a.pos = Some(Point::new(3000, 0));
        d.add_cell(a);
        let mut b = Cell::new("b", CellTypeId(1), Point::new(3000, 0));
        b.pos = Some(Point::new(0, 0));
        d.add_cell(b);
        let mut state = PlacementState::from_design_positions(&d).unwrap();
        let stats = optimize_max_disp(&mut state, &LegalizerConfig::contest());
        assert_eq!(stats.cells_moved, 0);
    }

    #[test]
    fn different_fences_never_swap() {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 4000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        let f = d.add_fence(FenceRegion::new("g", vec![Rect::new(0, 0, 4000, 90)]));
        // Both in the same column, but logically one is fenced (row 0 is the
        // fence; row 1 is default space).
        let mut a = Cell::new("a", CellTypeId(0), Point::new(0, 90));
        a.pos = Some(Point::new(3000, 90));
        d.add_cell(a);
        let mut b = Cell::new("b", CellTypeId(0), Point::new(3000, 0));
        b.pos = Some(Point::new(0, 0));
        b.fence = f;
        d.add_cell(b);
        let mut state = PlacementState::from_design_positions(&d).unwrap();
        let stats = optimize_max_disp(&mut state, &LegalizerConfig::contest());
        assert_eq!(stats.cells_moved, 0);
    }

    #[test]
    fn average_preserved_in_linear_region() {
        // Three cells whose displacements are all below δ0: stage 2 must be
        // a no-op.
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 4000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        for i in 0..3 {
            let x = i as Dbu * 100;
            let mut c = Cell::new(format!("c{i}"), CellTypeId(0), Point::new(x, 0));
            c.pos = Some(Point::new(x + 200, 0)); // ~2.2 rows < δ0 = 10 rows
            d.add_cell(c);
        }
        let mut state = PlacementState::from_design_positions(&d).unwrap();
        let stats = optimize_max_disp(&mut state, &LegalizerConfig::contest());
        assert_eq!(stats.cells_moved, 0);
    }

    #[test]
    fn sparse_path_matches_dense_result() {
        // A larger chain of shifted cells; force the sparse path and check
        // the max displacement still collapses.
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 40000, 900));
        d.add_cell_type(CellType::new("s", 20, 1));
        let n = 40;
        for i in 0..n {
            // Everyone's GP is at slot i, but placements are rotated by one:
            // cell i sits at slot (i+1) % n.
            let gp = Point::new(i as Dbu * 900, 0);
            let slot = ((i + 1) % n) as Dbu * 900;
            let mut c = Cell::new(format!("c{i}"), CellTypeId(0), gp);
            c.pos = Some(Point::new(slot, 0));
            d.add_cell(c);
        }
        let mut cfg = LegalizerConfig::contest();
        cfg.matching_dense_limit = 8; // force sparse
                                      // δ0 below the 10-row per-cell displacement puts every cell in the
                                      // tail closure, so the whole rotation chain participates.
        cfg.delta0_rows = 5.0;
        let mut state = PlacementState::from_design_positions(&d).unwrap();
        optimize_max_disp(&mut state, &cfg);
        let mut out = d.clone();
        state.write_back(&mut out);
        let after = Metrics::measure(&out);
        // Rotation undone: everyone home. Cell n-1 was 35100 dbu away.
        assert_eq!(after.max_disp_rows, 0.0);
        assert!(Checker::new(&out).check().is_legal());

        // With the default δ0 = 10 rows only the wrap-around outlier is in
        // the tail. A global rotation is the worst case for the tail
        // closure (full unwinding needs every cell), but the φ-optimal
        // local fix still cuts the outlier substantially.
        let before = Metrics::measure(&d).max_disp_rows;
        let mut state2 = PlacementState::from_design_positions(&d).unwrap();
        optimize_max_disp(&mut state2, &LegalizerConfig::contest());
        let mut out2 = d.clone();
        state2.write_back(&mut out2);
        let after2 = Metrics::measure(&out2);
        assert!(
            after2.max_disp_rows <= 0.75 * before,
            "outlier reduced: {} -> {}",
            before,
            after2.max_disp_rows
        );
        assert!(Checker::new(&out2).check().is_legal());
    }

    #[test]
    fn parallel_solve_matches_serial() {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 40000, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("w", 40, 1));
        // Two independent rotated groups on different rows.
        for (t, row) in [(0u32, 0usize), (1u32, 1usize)] {
            for i in 0..20 {
                let gp = Point::new(i as Dbu * 900, d.tech.row_height * row as Dbu);
                let slot = ((i + 7) % 20) as Dbu * 900;
                let mut c = Cell::new(format!("t{t}_c{i}"), CellTypeId(t), gp);
                c.pos = Some(Point::new(slot, gp.y));
                d.add_cell(c);
            }
        }
        let run = |threads: usize| {
            let mut cfg = LegalizerConfig::contest();
            cfg.threads = threads;
            let mut state = PlacementState::from_design_positions(&d).unwrap();
            optimize_max_disp(&mut state, &cfg);
            let mut out = d.clone();
            state.write_back(&mut out);
            out.cells.iter().map(|c| c.pos).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }
}
