//! Interactions between the post-processing stages and routability/parity.

use mcl_core::fixed_order::optimize_fixed_order;
use mcl_core::maxdisp::optimize_max_disp;
use mcl_core::routability::RoutOracle;
use mcl_core::state::PlacementState;
use mcl_core::LegalizerConfig;
use mcl_db::prelude::*;

#[test]
fn stage3_does_not_cross_vertical_stripes() {
    // A cell whose GP pull would drag its pin onto a vertical stripe: the
    // routability feasible range must stop it at the stripe edge.
    let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 90));
    d.grid = PowerGrid {
        h_layer: 2,
        h_width: 0,
        h_pitch_rows: 1,
        v_layer: 3,
        v_width: 10,
        v_pitch: 1000,
        v_offset: 500, // stripe at [495, 505)
    };
    let mut ct = CellType::new("s", 20, 1);
    ct.pins.push(PinShape {
        name: "p".into(),
        layer: 2,
        rect: Rect::new(0, 40, 20, 50), // full-width pin
    });
    d.add_cell_type(ct);
    // GP at 400 (left of the stripe), currently placed at 600 (right of it).
    let mut c = Cell::new("c", CellTypeId(0), Point::new(400, 0));
    c.pos = Some(Point::new(600, 0));
    d.add_cell(c);

    let cfg = LegalizerConfig::contest();
    let weights = vec![1i64];
    let oracle = RoutOracle::new(&d);
    let mut state = PlacementState::from_design_positions(&d).unwrap();
    let stats = optimize_fixed_order(&mut state, &cfg, &weights, Some(&oracle));
    assert!(stats.applied);
    let x = state.pos(CellId(0)).unwrap().x;
    // Best clean position right of the stripe: pin [x, x+20) must clear
    // [495, 505): x >= 510 (site-snapped). Without the oracle it would
    // reach 400.
    assert_eq!(x, 510, "stopped at the stripe edge");

    // Sanity: without the oracle the cell goes home.
    let mut state2 = PlacementState::from_design_positions(&d).unwrap();
    optimize_fixed_order(&mut state2, &cfg, &weights, None);
    assert_eq!(state2.pos(CellId(0)).unwrap().x, 400);
}

#[test]
fn stage2_swaps_across_row_parities_fix_orientation() {
    // Two odd-height (single-row) cells of the same type on rows of
    // different parity, cross-displaced. The swap must carry the right
    // orientation after write-back.
    let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 4000, 900));
    d.add_cell_type(CellType::new("s", 20, 1));
    let mut a = Cell::new("a", CellTypeId(0), Point::new(0, 0)); // GP row 0
    a.pos = Some(Point::new(3000, 90)); // placed row 1
    a.orient = Orient::FS;
    d.add_cell(a);
    let mut b = Cell::new("b", CellTypeId(0), Point::new(3000, 90)); // GP row 1
    b.pos = Some(Point::new(0, 0)); // placed row 0
    d.add_cell(b);

    let mut state = PlacementState::from_design_positions(&d).unwrap();
    let stats = optimize_max_disp(&mut state, &LegalizerConfig::contest());
    assert_eq!(stats.cells_moved, 2);
    let mut out = d.clone();
    state.write_back(&mut out);
    assert_eq!(out.cells[0].pos, Some(Point::new(0, 0)));
    assert_eq!(out.cells[0].orient, Orient::N, "row 0 is unflipped");
    assert_eq!(out.cells[1].pos, Some(Point::new(3000, 90)));
    assert_eq!(out.cells[1].orient, Orient::FS, "row 1 flips");
    assert!(Checker::new(&out).check().is_legal());
}

#[test]
fn stage3_handles_segments_split_by_fixed_blockage() {
    // A fixed macro splits the row; cells on either side refine within
    // their own segments and never cross the blockage.
    let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 90));
    d.add_cell_type(CellType::new("s", 20, 1));
    let blk = d.add_cell_type(CellType::new("blk", 400, 1));
    let mut obs = Cell::new("obs", blk, Point::new(800, 0));
    obs.pos = Some(Point::new(800, 0));
    obs.fixed = true;
    d.add_cell(obs);
    // Left cell wants to be at x=1100 (inside/through the blockage);
    // right cell wants x=500.
    let mut a = Cell::new("a", CellTypeId(0), Point::new(1100, 0));
    a.pos = Some(Point::new(300, 0));
    d.add_cell(a);
    let mut b = Cell::new("b", CellTypeId(0), Point::new(500, 0));
    b.pos = Some(Point::new(1500, 0));
    d.add_cell(b);

    let cfg = LegalizerConfig::total_displacement();
    let weights = vec![1i64; 3];
    let mut state = PlacementState::from_design_positions(&d).unwrap();
    let stats = optimize_fixed_order(&mut state, &cfg, &weights, None);
    assert!(stats.applied);
    // a pinned at its segment's right edge (780), b at its left edge (1200).
    assert_eq!(state.pos(CellId(1)).unwrap().x, 780);
    assert_eq!(state.pos(CellId(2)).unwrap().x, 1200);
    let mut out = d.clone();
    state.write_back(&mut out);
    assert!(Checker::new(&out).check().is_legal());
}
