//! Expansion-counter accounting: on a crafted design where the number of
//! window expansions is known by construction, both MGL algorithms must
//! report that exact count (regression test: the parallel scheduler used
//! to add `n` again on success after already counting each retry, so any
//! cell that expanded before placing was double-counted).

use mcl_core::mgl::{compute_weights, run_serial};
use mcl_core::scheduler::run_parallel;
use mcl_core::{LegalizerConfig, PlacementState};
use mcl_db::prelude::*;

/// One row, three movable 20-wide cells, two fixed blockers sized so the
/// expansion count per cell is forced:
///
/// * `c0` (gp x=400): blocker `[240,580)` swallows windows n=0..=3
///   (half-extents 20/40/80/160 around centre 410); n=4 reaches free
///   space — exactly 4 expansions.
/// * `c1` (gp x=1100): blocker `[1090,1130)` equals the n=0 window;
///   n=1 (`[1070,1150)`) has a 20-dbu gap on the left — exactly 1.
/// * `c2` (gp x=1700): open space — 0 expansions.
fn crafted_design() -> Design {
    let mut d = Design::new("exp", Technology::example(), Rect::new(0, 0, 2000, 90));
    let s = d.add_cell_type(CellType::new("s", 20, 1));
    let b1 = d.add_cell_type(CellType::new("b1", 340, 1));
    let b2 = d.add_cell_type(CellType::new("b2", 40, 1));
    for (name, t, x) in [("blk0", b1, 240), ("blk1", b2, 1090)] {
        let mut c = Cell::new(name, t, Point::new(x, 0));
        c.pos = Some(Point::new(x, 0));
        c.fixed = true;
        d.add_cell(c);
    }
    for (name, x) in [("c0", 400), ("c1", 1100), ("c2", 1700)] {
        d.add_cell(Cell::new(name, s, Point::new(x, 0)));
    }
    d
}

/// Small initial window (half-extent 2 sites = 20 dbu, but floored at
/// width/2 + site = 20 dbu) doubling per expansion, so the crafted
/// blockers pin the counts above.
fn crafted_config() -> LegalizerConfig {
    let mut cfg = LegalizerConfig::contest();
    cfg.window_sites = 2;
    cfg.window_rows = 1;
    cfg.window_growth = (2, 1);
    cfg.max_expansions = 12;
    cfg.routability = false;
    cfg.clamp_threads_to_hardware = false;
    cfg
}

const EXPECTED_EXPANSIONS: usize = 4 + 1; // c0: 4, c1: 1, c2: 0

#[test]
fn serial_counts_each_performed_expansion_once() {
    let d = crafted_design();
    let cfg = crafted_config();
    let weights = compute_weights(&d, cfg.weights);
    let mut state = PlacementState::new(&d);
    let stats = run_serial(&mut state, &cfg, &weights, None);
    assert_eq!(stats.failed, 0, "{stats:?}");
    assert_eq!(stats.placed_in_window, 3, "{stats:?}");
    assert_eq!(stats.fallbacks, 0, "{stats:?}");
    assert_eq!(stats.expansions, EXPECTED_EXPANSIONS, "{stats:?}");
}

#[test]
fn parallel_counts_match_serial_at_every_thread_count() {
    let d = crafted_design();
    for threads in [1usize, 2, 4] {
        let mut cfg = crafted_config();
        cfg.threads = threads;
        let weights = compute_weights(&d, cfg.weights);
        let mut state = PlacementState::new(&d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        assert_eq!(stats.failed, 0, "threads={threads}: {stats:?}");
        assert_eq!(stats.placed_in_window, 3, "threads={threads}: {stats:?}");
        assert_eq!(stats.fallbacks, 0, "threads={threads}: {stats:?}");
        assert_eq!(
            stats.expansions, EXPECTED_EXPANSIONS,
            "threads={threads}: {stats:?}"
        );
    }
}

#[test]
fn expansion_counter_matches_obs_counter() {
    // The typed observability counter and the legacy stats field are two
    // views of the same events; they must never drift apart.
    let d = crafted_design();
    let cfg = crafted_config();
    let weights = compute_weights(&d, cfg.weights);
    let mut state = PlacementState::new(&d);
    let stats = run_serial(&mut state, &cfg, &weights, None);
    if mcl_obs::compiled() {
        assert_eq!(
            stats.obs.counter(mcl_obs::CounterKind::WindowsExpanded),
            stats.expansions as u64
        );
    }
}
