//! Pins the allocation-free steady state of the parallel MGL scheduler:
//! one coordinator scratch plus one per eval worker, ever, regardless of
//! how many rounds, expansions, fallbacks or applies a run performs.
//!
//! This guards against the regression class where a hot path quietly
//! constructs a throwaway [`InsertionScratch`] per window or per applied
//! cell (the coordinator apply loop and the worker Apply-replay both did
//! exactly that before being routed through `apply_insertion_with` with
//! pooled scratches). `ScratchStats::created` counts constructions charged
//! to the run: a fresh scratch starts at 1 and taking the stats resets it,
//! so any per-round or per-cell construction whose stats merge into the
//! run inflates the total past the pool size.

use mcl_core::config::LegalizerConfig;
use mcl_core::mgl::compute_weights;
use mcl_core::scheduler::run_parallel;
use mcl_core::state::PlacementState;
use mcl_gen::{generate, GeneratorConfig};

fn busy_run(threads: usize) -> mcl_core::mgl::MglStats {
    let cfg = GeneratorConfig {
        name: "scratch_reuse".into(),
        seed: 7,
        num_cells: 2_000,
        density: 0.55,
        sigma_rows: 2.0,
        height_mix: [0.80, 0.20, 0.0, 0.0],
        hotspots: 0,
        ..GeneratorConfig::default()
    };
    let g = generate(&cfg).expect("benchmark must pack");
    let mut c = LegalizerConfig::total_displacement();
    c.threads = threads;
    c.clamp_threads_to_hardware = false;
    // A small round capacity forces many rounds; a short expansion ladder
    // forces fallback scans — both paths must reuse pooled buffers.
    c.window_list_capacity = 64;
    c.max_expansions = 3;
    let weights = compute_weights(&g.design, c.weights);
    let mut state = PlacementState::new(&g.design);
    let stats = run_parallel(&mut state, &c, &weights, None);
    assert_eq!(stats.failed, 0, "all cells must place");
    stats
}

#[test]
fn steady_state_constructs_one_scratch_per_thread() {
    for threads in [2usize, 4] {
        let stats = busy_run(threads);
        // The run must actually be busy for the pin to mean anything:
        // thousands of applies over many rounds, with both the expansion
        // ladder and the global fallback exercised.
        assert!(stats.perf.rounds > 10, "rounds: {}", stats.perf.rounds);
        assert!(stats.expansions > 0, "no expansions exercised");
        assert!(
            stats.placed_in_window + stats.fallbacks >= 2_000,
            "placed {} + {}",
            stats.placed_in_window,
            stats.fallbacks
        );
        // Coordinator + one per worker. A per-round, per-window or
        // per-apply construction shows up here as O(rounds) or O(cells).
        assert_eq!(
            stats.perf.scratch.created, threads as u64,
            "scratch constructions at {threads} threads"
        );
    }
}
