//! Property suite for the two-level hierarchical spatial index.
//!
//! [`HierGrid`] is a pure pruning layer: every query must return exactly
//! what a naive O(n) scan over the live rectangles returns — including
//! fence-key filtering, zero-area degenerate rects, and rects spanning
//! many row bands. The naive model here is deliberately dumb (a `Vec` of
//! `(rect, key, alive)`), so any divergence is a grid bug, not a model
//! bug. An incremental insert/remove sequence pins that the grid never
//! returns stale (removed) or missing (live) entries mid-stream.

use mcl_core::spatial::{HierGrid, ItemId};
use mcl_db::prelude::*;
use proptest::prelude::*;

const CORE: Rect = Rect {
    xl: 0,
    yl: 0,
    xh: 3000,
    yh: 1800,
};

/// Rect strategy mixing regular windows, multi-row-tall spans, and
/// zero-area degenerates (w and/or h drawn from `0..`): the degenerate
/// cases must index cleanly and overlap nothing.
fn arb_rect() -> impl Strategy<Value = Rect> {
    (0i64..2900, 0i64..1700, 0i64..600, 0i64..900)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, (x + w).min(3000), (y + h).min(1800)))
}

/// `(rect, fence key)` — a handful of key values so filtered queries hit
/// both matching and non-matching entries.
fn arb_entry() -> impl Strategy<Value = (Rect, u64)> {
    (arb_rect(), 0u64..3).prop_map(|(r, k)| (r, k))
}

/// The naive reference: full scan with the exact strict-overlap predicate.
struct Naive {
    items: Vec<(Rect, u64, bool)>,
}

impl Naive {
    fn new() -> Self {
        Self { items: Vec::new() }
    }

    fn insert(&mut self, r: Rect, k: u64) -> usize {
        self.items.push((r, k, true));
        self.items.len() - 1
    }

    fn remove(&mut self, i: usize) {
        self.items[i].2 = false;
    }

    fn range(&self, probe: Rect, key: Option<u64>) -> Vec<usize> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, (r, k, alive))| {
                *alive && r.overlaps(probe) && key.is_none_or(|want| *k == want)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Mirrors `HierGrid::nearest`: Manhattan distance to the closed
    /// integer box `[xl, max(xh-1, xl)] x [yl, max(yh-1, yl)]`, ties to
    /// the lowest id.
    fn nearest(&self, p: Point, key: Option<u64>) -> Option<(usize, Dbu)> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, (_, k, alive))| *alive && key.is_none_or(|want| *k == want))
            .map(|(i, (r, _, _))| {
                let dx = (r.xl - p.x).max(p.x - (r.xh - 1).max(r.xl));
                let dy = (r.yl - p.y).max(p.y - (r.yh - 1).max(r.yl));
                (i, dx.max(0) + dy.max(0))
            })
            .min_by_key(|&(i, d)| (d, i))
    }
}

/// Ids visited by a grid range query, as raw indices (insertion order ==
/// arena order, which both sides share).
fn grid_range(grid: &mut HierGrid, ids: &[ItemId], probe: Rect, key: Option<u64>) -> Vec<usize> {
    let mut hits = Vec::new();
    grid.range_query(
        probe,
        |k| key.is_none_or(|want| k == want),
        |id, _, _| {
            let i = ids
                .iter()
                .position(|&x| x == id)
                .expect("visited id was inserted");
            hits.push(i);
        },
    );
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Range queries agree with the naive scan for every probe, with and
    /// without fence-key filtering, across band counts.
    #[test]
    fn range_query_matches_naive(
        entries in prop::collection::vec(arb_entry(), 1..120),
        probes in prop::collection::vec(arb_rect(), 1..20),
        band_h in 1i64..200,
    ) {
        let mut grid = HierGrid::new(CORE, band_h);
        let mut naive = Naive::new();
        let mut ids = Vec::new();
        for &(r, k) in &entries {
            ids.push(grid.insert(r, k));
            naive.insert(r, k);
        }
        for &probe in &probes {
            for key in [None, Some(0), Some(1), Some(2)] {
                let mut got = grid_range(&mut grid, &ids, probe, key);
                got.sort_unstable();
                prop_assert_eq!(got, naive.range(probe, key), "probe {:?} key {:?}", probe, key);
                prop_assert_eq!(
                    grid.find_overlap(probe, |k| key.is_none_or(|w| k == w)).is_some(),
                    !naive.range(probe, key).is_empty(),
                    "find_overlap at probe {:?} key {:?}", probe, key
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Nearest queries agree with the naive argmin — distance AND identity
    /// (ties break to the lowest id on both sides).
    #[test]
    fn nearest_matches_naive(
        entries in prop::collection::vec(arb_entry(), 1..80),
        probes in prop::collection::vec((0i64..3000, 0i64..1800), 1..25),
        band_h in 1i64..200,
    ) {
        let mut grid = HierGrid::new(CORE, band_h);
        let mut naive = Naive::new();
        let mut ids = Vec::new();
        for &(r, k) in &entries {
            ids.push(grid.insert(r, k));
            naive.insert(r, k);
        }
        for &(px, py) in &probes {
            let p = Point::new(px, py);
            for key in [None, Some(0), Some(1)] {
                let got = grid
                    .nearest(p, |k| key.is_none_or(|w| k == w))
                    .map(|(id, d)| (ids.iter().position(|&x| x == id).unwrap(), d));
                prop_assert_eq!(got, naive.nearest(p, key), "probe {:?} key {:?}", p, key);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Incremental insert/remove stream: after every operation the grid
    /// returns exactly the live set — no stale hit after a removal, no
    /// missing hit for a live rect, and re-removal stays a no-op.
    #[test]
    fn incremental_insert_remove_never_stale(
        entries in prop::collection::vec(arb_entry(), 4..60),
        ops in prop::collection::vec((0u64..4, 0u64..64), 8..80),
        probe_seed in 0u64..1000,
    ) {
        let mut grid = HierGrid::new(CORE, 90);
        let mut naive = Naive::new();
        let mut ids: Vec<ItemId> = Vec::new();
        let mut next = 0usize;
        let mut probe_rng = probe_seed;
        for &(op, pick) in &ops {
            match op {
                // Insert the next unseen entry (cycling through the pool).
                0 | 1 => {
                    let (r, k) = entries[next % entries.len()];
                    next += 1;
                    ids.push(grid.insert(r, k));
                    naive.insert(r, k);
                }
                // Remove an arbitrary previously inserted entry (possibly
                // already dead: removal must be idempotent on both sides).
                2 => {
                    if !ids.is_empty() {
                        let i = (pick as usize) % ids.len();
                        grid.remove(ids[i]);
                        naive.remove(i);
                    }
                }
                // Clear and restart.
                _ => {
                    grid.clear();
                    ids.clear();
                    naive = Naive::new();
                }
            }
            // Deterministic probe per step.
            probe_rng = probe_rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let px = (probe_rng >> 33) as i64 % 2900;
            let py = (probe_rng >> 13) as i64 % 1700;
            let probe = Rect::new(px, py, px + 90, py + 120);
            let mut got = grid_range(&mut grid, &ids, probe, None);
            got.sort_unstable();
            prop_assert_eq!(got, naive.range(probe, None), "after op {:?}", (op, pick));
            prop_assert_eq!(
                grid.overlaps_any(probe),
                !naive.range(probe, None).is_empty()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Degenerate (zero-area) rects index cleanly and overlap nothing, in
    /// either role (stored or probe) — exactly like the naive predicate.
    #[test]
    fn degenerate_rects_overlap_nothing(
        x in 0i64..3000, y in 0i64..1800,
        others in prop::collection::vec(arb_entry(), 1..40),
    ) {
        let mut grid = HierGrid::new(CORE, 90);
        for &(r, k) in &others {
            grid.insert(r, k);
        }
        // Zero width, zero height, and zero both.
        for probe in [
            Rect::new(x, y, x, y + 50),
            Rect::new(x, y, x + 50, y),
            Rect::new(x, y, x, y),
        ] {
            prop_assert!(!grid.overlaps_any(probe), "degenerate probe {:?}", probe);
        }
        let id = grid.insert(Rect::new(x, y, x, y), 0);
        prop_assert!(!grid.overlaps_any(Rect::new(0, 0, 3000, 1800)) || {
            // The full-core probe may hit the *other* rects; the degenerate
            // entry itself must never be the hit.
            grid.find_overlap(Rect::new(0, 0, 3000, 1800), |_| true) != Some(id)
        });
    }
}

/// Multi-row spans: one rect covering many bands is reported once per
/// query (the stamp dedup), not once per band it touches.
#[test]
fn tall_rect_visits_once() {
    let mut grid = HierGrid::new(CORE, 90);
    let tall = grid.insert(Rect::new(100, 0, 200, 1800), 7);
    let mut visits = 0;
    grid.range_query(
        Rect::new(0, 0, 3000, 1800),
        |_| true,
        |id, _, k| {
            assert_eq!(id, tall);
            assert_eq!(k, 7);
            visits += 1;
        },
    );
    assert_eq!(visits, 1, "one visit despite spanning every band");
}
