//! Empirical validation of the paper's **Theorem 1**: if all local cells
//! start at their optimal positions w.r.t. their GP positions (under the
//! fixed row & order constraint), the summed displacement curve of an
//! insertion point is convex and piecewise linear.
//!
//! The test builds random single-row instances, computes the optimal
//! positions with the stage-3 dual MCF, constructs the per-cell curves the
//! way the insertion evaluator does (types A-D from chain offsets), and
//! checks convexity of the sum. As a contrast, it also exhibits a
//! *non-optimal* starting placement whose sum is not convex — showing the
//! precondition matters (and why the implementation probes all breakpoints
//! instead of assuming convexity).

use mcl_core::curve::PwlCurve;
use mcl_core::fixed_order::optimize_fixed_order;
use mcl_core::state::PlacementState;
use mcl_core::LegalizerConfig;
use mcl_db::prelude::*;

const W: Dbu = 20; // uniform cell width

/// Builds the summed insertion curve for inserting a `W`-wide target into
/// the gap after `split` cells, given current and GP x positions.
fn insertion_curve(cur: &[Dbu], gp: &[Dbu], split: usize) -> PwlCurve {
    let mut curves = Vec::new();
    // Left chain: cells split-1 .. 0, offsets accumulate width (no spacing).
    let mut off = 0;
    for k in (0..split).rev() {
        off += W;
        let base = (cur[k] - gp[k]).abs();
        if gp[k] >= cur[k] {
            curves.push(PwlCurve::type_b(cur[k] + off, base, 1));
        } else {
            curves.push(PwlCurve::type_d(gp[k] + off, base, 1));
        }
    }
    // Right chain: cells split .. n-1.
    let mut off = W; // target width
    for k in split..cur.len() {
        let base = (cur[k] - gp[k]).abs();
        if gp[k] <= cur[k] {
            curves.push(PwlCurve::type_a(cur[k] - off, base, 1));
        } else {
            curves.push(PwlCurve::type_c(cur[k] - off, base, 1));
        }
        off += W;
    }
    PwlCurve::sum(curves)
}

/// The optimal current positions for the given GPs on one row (via the
/// stage-3 MCF), starting from a packed legal placement.
fn optimal_positions(gp: &[Dbu], row_width: Dbu) -> Vec<Dbu> {
    let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, row_width, 90));
    d.add_cell_type(CellType::new("s", W, 1));
    for (i, &g) in gp.iter().enumerate() {
        let mut c = Cell::new(format!("c{i}"), CellTypeId(0), Point::new(g, 0));
        c.pos = Some(Point::new(i as Dbu * W, 0)); // packed start
        d.add_cell(c);
    }
    let cfg = LegalizerConfig::total_displacement();
    let weights = vec![1i64; gp.len()];
    let mut state = PlacementState::from_design_positions(&d).unwrap();
    let stats = optimize_fixed_order(&mut state, &cfg, &weights, None);
    assert!(stats.applied);
    (0..gp.len())
        .map(|i| state.pos(CellId(i as u32)).unwrap().x)
        .collect()
}

#[test]
fn summed_curve_is_convex_at_optimal_positions() {
    let mut seed = 0xA5A5_5A5A_1234_5678u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for case in 0..40 {
        let n = 2 + (rng() % 7) as usize;
        // Random site-aligned GPs (possibly out of order / overlapping).
        let gp: Vec<Dbu> = (0..n).map(|_| ((rng() % 150) as Dbu) * 10).collect();
        // GPs must be sorted for "order = GP order" to be meaningful; the
        // theorem is stated for a fixed order, so sort them.
        let mut gp = gp;
        gp.sort_unstable();
        let cur = optimal_positions(&gp, 2000);
        for split in 0..=n {
            let total = insertion_curve(&cur, &gp, split);
            assert!(
                total.is_convex(),
                "case {case} split {split}: sum not convex\n gp={gp:?}\n cur={cur:?}"
            );
        }
    }
}

#[test]
fn non_optimal_positions_can_break_convexity() {
    // Two right-side cells parked far LEFT of their GPs (not optimal: they
    // could move right freely). Their type-C curves have staggered descents,
    // so the sum dips twice: not convex.
    let cur = vec![100, 120];
    let gp = vec![400, 900];
    let total = insertion_curve(&cur, &gp, 0);
    assert!(
        !total.is_convex(),
        "staggered type-C curves should break convexity"
    );
    // The breakpoint probe still finds the global minimum (this is why the
    // implementation does not rely on Theorem 1's precondition).
    let (x_star, v_star) = total.min_on(0, 1500, 0).unwrap();
    for x in (0..1500).step_by(10) {
        assert!(total.eval(x) >= v_star, "better value at {x} than {x_star}");
    }
}
