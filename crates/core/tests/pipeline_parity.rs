//! Parity of the pipeline entry points (satellite of the stage-pipeline
//! refactor): the three thin drivers must be *the same flow* wearing
//! different seeding, not three re-implementations.
//!
//! - `run_eco` on a fully-unplaced design is exactly `run` (bit-identical
//!   placements, equal stats, equal replay logs): adopting zero positions
//!   must not perturb anything downstream.
//! - `refine` after a stage-1-only `run` reproduces the full `run`
//!   placements: splitting the flow at the stage-1/stage-2 boundary is
//!   lossless.
//!
//! Both are checked at 1 and 4 threads (serial and pooled MGL paths).

use mcl_core::{Legalizer, LegalizerConfig};
use mcl_db::prelude::*;

fn messy_design(n: usize, seed: u64) -> Design {
    let mut d = Design::new("parity", Technology::example(), Rect::new(0, 0, 3000, 2700));
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("d", 30, 2));
    d.add_cell_type(CellType::new("q", 40, 4));
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for i in 0..n {
        let t = match rng() % 12 {
            0..=8 => CellTypeId(0),
            9..=10 => CellTypeId(1),
            _ => CellTypeId(2),
        };
        let x = (rng() % 2900) as Dbu;
        let y = (rng() % 2500) as Dbu;
        d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
    }
    d
}

fn config(threads: usize) -> LegalizerConfig {
    let mut c = LegalizerConfig::total_displacement();
    c.threads = threads;
    c.clamp_threads_to_hardware = false;
    c
}

fn positions(d: &Design) -> Vec<Option<Point>> {
    d.cells.iter().map(|c| c.pos).collect()
}

#[test]
fn eco_on_fully_unplaced_design_is_run() {
    let d = messy_design(180, 2027);
    for threads in [1usize, 4] {
        let lg = Legalizer::new(config(threads));
        let (run_out, run_stats, run_log) = lg.run_with_replay(&d);
        let (eco_out, eco_stats, eco_log) = lg
            .run_eco_with_replay(&d)
            .expect("unplaced design has no positions to reject");
        assert_eq!(
            positions(&run_out),
            positions(&eco_out),
            "placements diverged at {threads} threads"
        );
        assert_eq!(run_stats, eco_stats, "stats diverged at {threads} threads");
        assert_eq!(
            run_log, eco_log,
            "replay logs diverged at {threads} threads"
        );
    }
}

#[test]
fn eco_on_fully_unplaced_design_is_run_with_routability() {
    // Same parity through the oracle-enabled contest preset.
    let mut d = messy_design(140, 11);
    d.grid = PowerGrid {
        h_layer: 2,
        h_width: 6,
        h_pitch_rows: 1,
        v_layer: 3,
        v_width: 8,
        v_pitch: 500,
        v_offset: 250,
    };
    d.cell_types[0].pins.push(PinShape {
        name: "a".into(),
        layer: 1,
        rect: Rect::new(4, 30, 12, 50),
    });
    for threads in [1usize, 4] {
        let mut c = LegalizerConfig::contest();
        c.threads = threads;
        c.clamp_threads_to_hardware = false;
        let lg = Legalizer::new(c);
        let (run_out, run_stats, run_log) = lg.run_with_replay(&d);
        let (eco_out, eco_stats, eco_log) = lg
            .run_eco_with_replay(&d)
            .expect("unplaced design has no positions to reject");
        assert_eq!(
            positions(&run_out),
            positions(&eco_out),
            "{threads} threads"
        );
        assert_eq!(run_stats, eco_stats, "{threads} threads");
        assert_eq!(run_log, eco_log, "{threads} threads");
    }
}

#[test]
fn refine_after_stage1_run_reproduces_full_run() {
    let d = messy_design(180, 4242);
    for threads in [1usize, 4] {
        let full_cfg = config(threads);
        let mut stage1_cfg = full_cfg.clone();
        stage1_cfg.max_disp_matching = false;
        stage1_cfg.fixed_order_refine = false;

        let (full_out, full_stats) = Legalizer::new(full_cfg.clone()).run(&d);
        let (stage1_out, stage1_stats) = Legalizer::new(stage1_cfg).run(&d);
        assert_eq!(full_stats.mgl, stage1_stats.mgl, "{threads} threads");
        let (refined_out, refined_stats) = Legalizer::new(full_cfg)
            .refine(&stage1_out)
            .expect("stage-1 output is legal");
        assert_eq!(
            positions(&full_out),
            positions(&refined_out),
            "run ≠ stage1+refine at {threads} threads"
        );
        assert_eq!(
            full_stats.max_disp, refined_stats.max_disp,
            "{threads} threads"
        );
        assert_eq!(
            full_stats.fixed_order, refined_stats.fixed_order,
            "{threads} threads"
        );
    }
}
