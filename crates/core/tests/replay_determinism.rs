//! Scheduler determinism audit: the legalizer must produce bit-identical
//! mutation sequences regardless of thread count, and every intermediate
//! state in that sequence must be legal under the independent replay
//! verifier (`mcl_audit::replay`).

#![cfg(feature = "replay-log")]

use mcl_core::{Legalizer, LegalizerConfig};
use mcl_db::prelude::*;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A messy multi-height design large enough to engage the parallel
/// scheduler's window pipeline and the matching stage.
fn messy_design(n: usize, seed: u64) -> Design {
    let mut s = seed | 1;
    let mut d = Design::new("det", Technology::example(), Rect::new(0, 0, 6000, 2700));
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("d", 30, 2));
    d.add_cell_type(CellType::new("q", 40, 4));
    for i in 0..n {
        let t = (xorshift(&mut s) % 3) as u32;
        let gp = Point::new(
            (xorshift(&mut s) % 5900) as Dbu,
            (xorshift(&mut s) % 2600) as Dbu,
        );
        d.add_cell(Cell::new(format!("c{i}"), CellTypeId(t), gp));
    }
    d
}

fn run_with_threads(d: &Design, threads: usize) -> (Design, mcl_audit::ReplayLog) {
    let mut cfg = LegalizerConfig::contest();
    cfg.threads = threads;
    let (out, stats, log) = Legalizer::new(cfg).run_with_replay(d);
    assert_eq!(stats.mgl.failed, 0, "all cells must place");
    (out, log)
}

#[test]
fn scheduler_mutation_sequence_invariant_across_thread_counts() {
    // The parallel scheduler must commit the exact same mutation sequence
    // whether windows are evaluated inline (1 thread) or by worker replicas
    // (2, 4 threads). This is stronger than comparing final positions: two
    // runs with equal logs are bit-identical step by step.
    use mcl_core::mgl::compute_weights;
    use mcl_core::scheduler::run_parallel;
    use mcl_core::state::PlacementState;

    let d = messy_design(160, 0xC0FFEE);
    let run = |threads: usize| {
        let mut cfg = LegalizerConfig::contest();
        cfg.threads = threads;
        cfg.clamp_threads_to_hardware = false;
        let weights = compute_weights(&d, cfg.weights);
        let mut state = PlacementState::new(&d);
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        assert_eq!(stats.failed, 0);
        state.take_replay_log()
    };
    let log1 = run(1);
    let log2 = run(2);
    let log4 = run(4);
    // Digest is the cheap fleet check; op-for-op equality gives a usable
    // failure message.
    assert_eq!(log1.digest(), log2.digest());
    assert_eq!(log1.digest(), log4.digest());
    assert_eq!(log1.ops(), log2.ops());
    assert_eq!(log1.ops(), log4.ops());
}

#[test]
fn full_pipeline_log_invariant_across_thread_counts() {
    // End-to-end: MGL + max-disp matching + fixed-order refinement, 2 vs 4
    // threads, must record identical logs and produce identical outputs.
    // (The 1-thread path runs a different serial MGL algorithm and is
    // audited separately by the replay verifier below.)
    let d = messy_design(160, 0xC0FFEE);
    let (out2, log2) = run_with_threads(&d, 2);
    let (out4, log4) = run_with_threads(&d, 4);
    assert_eq!(log2.digest(), log4.digest());
    assert_eq!(log2.ops(), log4.ops());
    for (a, b) in out2.cells.iter().zip(&out4.cells) {
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.orient, b.orient);
    }
}

#[test]
fn serial_path_log_replays_cleanly() {
    let d = messy_design(100, 0xFACADE);
    let (out, log) = run_with_threads(&d, 1);
    let final_pos = log.verify(&d).expect("serial run must replay legally");
    for (c, p) in out.cells.iter().zip(&final_pos) {
        if !c.fixed {
            assert_eq!(c.pos, *p);
        }
    }
}

#[test]
fn replay_verifier_accepts_the_real_run_and_matches_final_positions() {
    let d = messy_design(120, 0xBADC0DE);
    let (out, log) = run_with_threads(&d, 4);
    assert!(!log.is_empty());
    // Independent replay: every op must be legal at the moment it applies.
    let final_pos = log.verify(&d).expect("replayed run must be legal");
    for (c, p) in out.cells.iter().zip(&final_pos) {
        if !c.fixed {
            assert_eq!(c.pos, *p, "replayed position differs for {}", c.name);
        }
    }
}

#[test]
fn tampered_log_is_rejected() {
    use mcl_audit::ReplayOp;
    let d = messy_design(60, 0x5EED);
    let (_, log) = run_with_threads(&d, 1);
    // Re-place the first placed cell at a misaligned x: the verifier must
    // reject the doctored sequence.
    let mut ops = log.ops().to_vec();
    let Some(ReplayOp::Place { cell, x, y }) = ops.first().copied() else {
        panic!("first op is a placement");
    };
    ops.push(ReplayOp::Remove { cell });
    ops.push(ReplayOp::Place { cell, x: x + 1, y });
    let mut doctored = mcl_audit::ReplayLog::new();
    for op in ops {
        match op {
            ReplayOp::Place { cell, x, y } => doctored.record_place(cell, x, y),
            ReplayOp::Remove { cell } => doctored.record_remove(cell),
            ReplayOp::ShiftX { cell, x } => doctored.record_shift_x(cell, x),
        }
    }
    let err = doctored.verify(&d).expect_err("misaligned replacement");
    assert_eq!(err.cell, cell);
}
