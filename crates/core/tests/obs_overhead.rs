//! Observability overhead guard (`#[ignore]` by default — run in the CI
//! audit-suite job or locally with `cargo test -q -p mcl-core --test
//! obs_overhead -- --ignored`).
//!
//! Legalizes a medium generated design with recording toggled off and on
//! (same binary, so the comparison isolates the runtime cost of the
//! recording calls, not the compile-time gate) and requires the recorded
//! run to stay within the 2% budget promised by DESIGN.md §9.

use mcl_core::{Legalizer, LegalizerConfig};
use mcl_gen::generate;
use mcl_gen::presets::{iccad17_config, ICCAD17};
use mcl_obs::clock::Stopwatch;

fn medium_design() -> mcl_db::prelude::Design {
    // A mid-size contest profile scaled down to a few thousand cells:
    // large enough that per-insertion span recording dominates fixed
    // costs, small enough to run twice in a CI job.
    let mut cfg = iccad17_config(&ICCAD17[4], 0.05);
    cfg.name = "obs_overhead".into();
    cfg.seed = 7;
    generate(&cfg).expect("preset generates").design
}

fn run_once(design: &mcl_db::prelude::Design) -> f64 {
    let mut lc = LegalizerConfig::contest();
    lc.threads = 4;
    lc.clamp_threads_to_hardware = false;
    let sw = Stopwatch::start();
    let (_, stats) = Legalizer::new(lc).run(design);
    let secs = sw.elapsed_seconds();
    assert_eq!(stats.mgl.failed, 0);
    secs
}

#[test]
#[ignore = "timing-sensitive; run in the audit-suite CI job"]
fn recording_overhead_within_two_percent() {
    if !mcl_obs::compiled() {
        eprintln!("obs feature off; overhead guard is vacuous");
        return;
    }
    let design = medium_design();
    // Warm up caches and the worker pool path once.
    run_once(&design);

    // Interleave off/on pairs and keep the per-mode minimum: minima are
    // far more robust to scheduler noise than means on shared CI runners.
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for _ in 0..5 {
        mcl_obs::set_recording(false);
        best_off = best_off.min(run_once(&design));
        mcl_obs::set_recording(true);
        best_on = best_on.min(run_once(&design));
    }
    mcl_obs::set_recording(true);

    let overhead = best_on / best_off - 1.0;
    eprintln!(
        "obs overhead: off={best_off:.4}s on={best_on:.4}s ({:+.2}%)",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.02,
        "recording overhead {:.2}% exceeds the 2% budget \
         (off={best_off:.4}s on={best_on:.4}s)",
        overhead * 100.0
    );
}
