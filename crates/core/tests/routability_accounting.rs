//! Accounting property test: the run report's pin-short / pin-access /
//! edge-spacing quality totals (computed through `mcl_db::legal::Checker`)
//! must agree with independent recounts — the routability oracle's
//! per-pin recomposition (`RoutOracle::recount_pin_violations`) and a
//! naive per-row edge-spacing sweep written here from the rule definition.

use mcl_core::report::build_run_report;
use mcl_core::routability::RoutOracle;
use mcl_core::{Legalizer, LegalizerConfig};
use mcl_db::prelude::*;
use mcl_obs::report::Value;
use proptest::prelude::*;

/// Naive edge-spacing recount from the rule definition: for every row, take
/// the cells covering it sorted by x; each adjacent non-overlapping pair
/// closer than the class table's requirement counts once per row.
fn recount_edge_spacing(d: &Design) -> u64 {
    let rh = d.tech.row_height;
    let mut total = 0u64;
    for row in 0..d.num_rows {
        let y_lo = d.core.yl + row as Dbu * rh;
        let y_hi = y_lo + rh;
        let mut spans: Vec<(Dbu, Dbu, u8, u8)> = Vec::new();
        for (i, cell) in d.cells.iter().enumerate() {
            let Some(pos) = cell.pos else { continue };
            let ct = d.type_of(CellId(i as u32));
            let cell_y_hi = pos.y + ct.height_rows as Dbu * rh;
            if pos.y < y_hi && cell_y_hi > y_lo {
                spans.push((pos.x, pos.x + ct.width, ct.edge_class.0, ct.edge_class.1));
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            let (_, xh_a, _, right_class_a) = w[0];
            let (xl_b, _, left_class_b, _) = w[1];
            let gap = xl_b - xh_a;
            if gap < 0 {
                continue; // overlapping pair: a hard violation, not spacing
            }
            if gap < d.tech.edge_spacing.spacing(right_class_a, left_class_b) {
                total += 1;
            }
        }
    }
    total
}

fn quality_u64(rep: &mcl_obs::report::RunReport, name: &str) -> u64 {
    match rep
        .quality
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("missing quality field {name}"))
    {
        (_, Value::U64(v)) => *v,
        (_, Value::F64(v)) => panic!("{name} is F64({v}), expected U64"),
    }
}

fn build_design(cells: &[(u8, i64, i64)], width: i64, rows: i64) -> Design {
    let mut d = Design::new(
        "acct",
        Technology::example(),
        Rect::new(0, 0, width, rows * 90),
    );
    d.grid = PowerGrid {
        h_layer: 2,
        h_width: 6,
        h_pitch_rows: 2,
        v_layer: 3,
        v_width: 8,
        v_pitch: 300,
        v_offset: 150,
    };
    let mut table = EdgeSpacingTable::new(2);
    table.set(1, 1, 20);
    d.tech.edge_spacing = table;
    let mut s = CellType::new("s", 20, 1);
    s.edge_class = (1, 1);
    s.pins.push(PinShape {
        name: "a".into(),
        layer: 2,
        rect: Rect::new(4, 30, 12, 50),
    });
    d.add_cell_type(s);
    let mut m = CellType::new("m", 30, 2);
    m.pins.push(PinShape {
        name: "a".into(),
        layer: 1,
        rect: Rect::new(6, 60, 14, 80),
    });
    d.add_cell_type(m);
    for (i, &(kind, gx, gy)) in cells.iter().enumerate() {
        let t = CellTypeId((kind % 2) as u32);
        let gp = Point::new(gx.rem_euclid(width - 50), gy.rem_euclid((rows - 2) * 90));
        d.add_cell(Cell::new(format!("c{i}"), t, gp));
    }
    // A few IO pins so the IO-overlap legs of both accountings engage.
    for k in 0..4 {
        d.io_pins.push(IoPin {
            name: format!("io{k}"),
            layer: 2,
            rect: Rect::new(100 + k * 150, 35, 120 + k * 150, 55),
        });
    }
    d
}

/// Deterministic non-vacuous case: hand-placed cells sitting on stripes,
/// rails, IO pins and too close together, so every violation class is
/// exercised with known nonzero counts.
#[test]
fn recounts_agree_on_known_violations() {
    let mut d = build_design(&[], 2000, 12);
    // Type 0's M2 pin (local x [4,12)) under the M3 stripe [446,454)
    // (stripes at 150+300k, width 8): x = 440 puts the pin at [444,452),
    // a pin-access violation (blocked one layer up).
    let mut on_stripe = Cell::new("v_access", CellTypeId(0), Point::new(440, 0));
    on_stripe.pos = Some(Point::new(440, 0));
    d.add_cell(on_stripe);
    // Two class-1 cells abutted: gap 0 < required 20.
    let mut a = Cell::new("near_a", CellTypeId(0), Point::new(700, 90));
    a.pos = Some(Point::new(700, 90));
    d.add_cell(a);
    let mut b = Cell::new("near_b", CellTypeId(0), Point::new(720, 90));
    b.pos = Some(Point::new(720, 90));
    d.add_cell(b);
    // A cell whose M2 pin overlaps IO pin io0 ([100,120)x[35,55) on M2):
    // pin abs [104,112)x[30,50) — a same-layer pin short.
    let mut on_io = Cell::new("io_short", CellTypeId(0), Point::new(100, 0));
    on_io.pos = Some(Point::new(100, 0));
    d.add_cell(on_io);

    let legality = Checker::new(&d).check();
    let oracle = RoutOracle::new(&d);
    let (shorts, access) = oracle.recount_pin_violations();
    assert!(shorts > 0, "crafted design must have pin shorts");
    assert!(access > 0, "crafted design must have pin-access violations");
    assert_eq!(legality.pin_shorts as u64, shorts);
    assert_eq!(legality.pin_access as u64, access);
    let edge = recount_edge_spacing(&d);
    assert!(
        edge > 0,
        "crafted design must have an edge-spacing violation"
    );
    assert_eq!(legality.edge_spacing as u64, edge);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn report_totals_match_independent_recounts(
        cells in prop::collection::vec((0u8..2, 0i64..100_000, 0i64..100_000), 1..50),
        rout_flag in 0u8..2,
    ) {
        let routability = rout_flag == 1;
        let width = (cells.len() as i64 * 45).max(900);
        let d = build_design(&cells, width, 12);
        let mut config = LegalizerConfig::contest();
        config.routability = routability;
        let (placed, stats) = Legalizer::new(config.clone()).run(&d);
        prop_assert_eq!(stats.mgl.failed, 0);

        let rep = build_run_report(&placed, &stats, &config);
        let oracle = RoutOracle::new(&placed);
        let (shorts, access) = oracle.recount_pin_violations();
        prop_assert_eq!(
            quality_u64(&rep, "pin_shorts"), shorts,
            "pin-short totals diverge: checker vs oracle recount"
        );
        prop_assert_eq!(
            quality_u64(&rep, "pin_access_violations"), access,
            "pin-access totals diverge: checker vs oracle recount"
        );
        prop_assert_eq!(
            quality_u64(&rep, "edge_spacing_violations"),
            recount_edge_spacing(&placed),
            "edge-spacing totals diverge: checker vs naive sweep"
        );
    }
}
