//! Property suite for the transitive dirty-window closure (ECO deltas).
//!
//! The delta pipeline's safety argument rests on one geometric invariant:
//! the closure computed by [`mcl_core::dirty::compute`] is a *fixed point*.
//! Every mutated cell is a member, every placed cell overlapping any
//! scanned window is a member, and re-running the closure seeded with its
//! own members discovers nothing new. A hole in any of these would let a
//! delta-restricted post stage move a cell whose neighbors were never
//! re-examined.
//!
//! The base placement is a collision-free slot grid; mutations relocate a
//! random subset of cells to a disjoint slot pool, so every generated
//! sequence is legal by construction and the properties run on thousands
//! of distinct dirty patterns.

use mcl_core::dirty::{compute, compute_from_seeds};
use mcl_core::PlacementState;
use mcl_db::prelude::*;
use proptest::prelude::*;

/// 10 rows, two cell heights, everything placed on a sparse slot grid:
/// 30 single-row cells on rows 0..4 and 6 double-row cells on row 4.
fn slotted_design() -> Design {
    let mut d = Design::new("dp", Technology::example(), Rect::new(0, 0, 4000, 900));
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("d", 30, 2));
    for i in 0..30usize {
        let mut c = Cell::new(format!("s{i}"), CellTypeId(0), Point::new(0, 0));
        c.pos = Some(Point::new((i / 4) as Dbu * 200, (i % 4) as Dbu * 90));
        d.add_cell(c);
    }
    for i in 0..6usize {
        let mut c = Cell::new(format!("d{i}"), CellTypeId(1), Point::new(0, 0));
        c.pos = Some(Point::new(i as Dbu * 300, 4 * 90));
        d.add_cell(c);
    }
    d
}

/// The target slot pool: unique x per slot (so any two targets are
/// disjoint), rows 6..10 for singles and even rows for doubles.
fn slot_target(slot: usize, two_rows: bool) -> Point {
    let x = 2000 + slot as Dbu * 80;
    let row = if two_rows {
        6 + (slot % 2) * 2
    } else {
        6 + slot % 4
    };
    Point::new(x, row as Dbu * 90)
}

/// The placed rect of a cell, straight from the state.
fn rect_of(s: &PlacementState<'_>, c: CellId) -> Option<Rect> {
    s.cell_rect(c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every mutated cell is in the closure, and the closure is *sound*
    /// against a naive scan: any placed cell whose rect strictly overlaps
    /// any scanned window is a member.
    #[test]
    fn closure_covers_dirty_cells_and_window_occupants(
        raw_moves in prop::collection::vec((0usize..36, 0usize..24), 1..10)
    ) {
        let d = slotted_design();
        let mut s = PlacementState::from_design_positions(&d).unwrap();
        let mut used_cells = [false; 36];
        let mut used_slots = [false; 24];
        let mut moved = Vec::new();
        for (cell, slot) in raw_moves {
            if used_cells[cell] || used_slots[slot] {
                continue;
            }
            used_cells[cell] = true;
            used_slots[slot] = true;
            let id = CellId(cell as u32);
            s.remove(id);
            s.place(id, slot_target(slot, cell >= 30)).unwrap();
            moved.push(id);
        }
        let c = compute(&s);
        for &id in &moved {
            prop_assert!(c.contains(id), "moved cell {} missing from closure", id.0);
        }
        for i in 0..36u32 {
            let id = CellId(i);
            let Some(r) = rect_of(&s, id) else { continue };
            let hit = c.windows().iter().any(|w| {
                r.xl < w.xh && r.xh > w.xl && r.yl < w.yh && r.yh > w.yl
            });
            if hit {
                prop_assert!(
                    c.contains(id),
                    "cell {i} overlaps a scanned window but is not a member"
                );
            }
        }
    }

    /// The closure is a fixed point: re-seeding the computation with its
    /// own members (current rects only) discovers exactly the same set.
    #[test]
    fn closure_is_a_fixed_point(
        raw_moves in prop::collection::vec((0usize..36, 0usize..24), 1..10)
    ) {
        let d = slotted_design();
        let mut s = PlacementState::from_design_positions(&d).unwrap();
        let mut used_cells = [false; 36];
        let mut used_slots = [false; 24];
        for (cell, slot) in raw_moves {
            if used_cells[cell] || used_slots[slot] {
                continue;
            }
            used_cells[cell] = true;
            used_slots[slot] = true;
            let id = CellId(cell as u32);
            s.remove(id);
            s.place(id, slot_target(slot, cell >= 30)).unwrap();
        }
        let c = compute(&s);
        let reseed: Vec<(CellId, Option<Rect>)> =
            c.cells().iter().map(|&id| (id, None)).collect();
        let c2 = compute_from_seeds(&s, &reseed);
        prop_assert_eq!(
            c.cells(), c2.cells(),
            "re-running the closure on its own members changed the set"
        );
    }

    /// Cells far outside every halo stay clean: a closure never floods the
    /// whole design when the dirty region is contained.
    #[test]
    fn distant_cells_stay_clean(slot in 0usize..24) {
        let d = slotted_design();
        let mut s = PlacementState::from_design_positions(&d).unwrap();
        // Move exactly one single-row cell into the empty target area.
        s.remove(CellId(0));
        s.place(CellId(0), slot_target(slot, false)).unwrap();
        let c = compute(&s);
        // The slot grid is 200 dbu apart and the target pool 80 dbu with
        // one cell placed: the closure must stay a small local set, and in
        // particular cells in distant columns must stay clean.
        prop_assert!(c.contains(CellId(0)));
        let far = CellId(29); // x = 1400, far from both column 0 and the pool
        prop_assert!(!c.contains(far), "distant cell joined the closure");
        prop_assert!(c.len() < 36, "closure flooded the whole design");
    }
}
