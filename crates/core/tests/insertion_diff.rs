//! Differential test: the allocation-free insertion evaluation must return
//! bit-identical results to the seed-faithful reference implementation on
//! randomized designs, across cost-model variants and windows.

use mcl_core::config::DisplacementReference;
use mcl_core::insertion::{best_insertion_in, CostModel, InsertionScratch};
use mcl_core::insertion_reference::best_insertion_reference;
use mcl_core::routability::RoutOracle;
use mcl_core::state::PlacementState;
use mcl_db::prelude::*;
use mcl_gen::{generate, GeneratorConfig};

fn check(seed: u64, reference: DisplacementReference, normalize: bool, use_oracle: bool) {
    let mut cfg = GeneratorConfig::small(seed);
    cfg.num_cells = 250;
    cfg.fences = 2;
    cfg.fence_cell_fraction = 0.15;
    cfg.io_pins = 20;
    let g = generate(&cfg).expect("generation succeeds");
    let d = &g.design;
    let n = d.cells.len();
    // Place two thirds of the cells at their legal golden positions; the
    // remaining third are insertion targets into a realistically crowded
    // placement.
    let split = n * 2 / 3;
    let mut state = PlacementState::new(d);
    for i in 0..split {
        state
            .place(CellId(i as u32), g.golden[i])
            .expect("golden positions are legal");
    }
    let weights: Vec<i64> = (0..n as i64).map(|i| 1 + i % 3).collect();
    let oracle = RoutOracle::new(d);
    let model = CostModel {
        reference,
        normalize,
        weights: &weights,
        oracle: use_oracle.then_some(&oracle),
        io_penalty: 10,
        rail_penalty: 100,
    };
    let mut scratch = InsertionScratch::new();
    let mut found = 0usize;
    for i in split..n {
        let t = CellId(i as u32);
        let gp = d.cells[i].gp;
        for (wx, wy) in [(240, 180), (900, 450)] {
            let win = Rect::new(gp.x - wx, gp.y - wy, gp.x + wx, gp.y + wy);
            let fast = best_insertion_in(&state, t, win, &model, &mut scratch);
            let slow = best_insertion_reference(&state, t, win, &model);
            assert_eq!(fast, slow, "seed {seed} cell {i} window {win:?}");
            found += usize::from(fast.is_some());
        }
    }
    assert!(
        found > 0,
        "test exercised no feasible insertions (seed {seed})"
    );
}

#[test]
fn matches_reference_gp_mode() {
    check(11, DisplacementReference::Gp, true, false);
}

#[test]
fn matches_reference_current_mode() {
    check(12, DisplacementReference::Current, true, false);
}

#[test]
fn matches_reference_unnormalized() {
    check(13, DisplacementReference::Gp, false, false);
}

#[test]
fn matches_reference_with_oracle() {
    check(14, DisplacementReference::Gp, true, true);
    check(15, DisplacementReference::Current, true, true);
}
