//! Property tests for the piecewise-linear curve algebra.

use mcl_core::curve::PwlCurve;
use proptest::prelude::*;

fn arb_curve() -> impl Strategy<Value = PwlCurve> {
    let x = -500i64..500;
    let base = 0i64..200;
    let w = 1i64..5;
    (0u8..5, x, base, w).prop_map(|(kind, x, base, w)| match kind {
        0 => PwlCurve::type_a(x, base, w),
        1 => PwlCurve::type_b(x, base, w),
        2 => PwlCurve::type_c(x, base, w),
        3 => PwlCurve::type_d(x, base, w),
        _ => PwlCurve::vee(x, w),
    })
}

proptest! {
    #[test]
    fn sum_matches_pointwise(curves in prop::collection::vec(arb_curve(), 1..8),
                             xs in prop::collection::vec(-800i64..800, 1..20)) {
        let total = PwlCurve::sum(curves.clone());
        for x in xs {
            let expect: i64 = curves.iter().map(|c| c.eval(x)).sum();
            prop_assert_eq!(total.eval(x), expect, "x = {}", x);
        }
    }

    #[test]
    fn min_on_is_a_true_minimum(curves in prop::collection::vec(arb_curve(), 1..6),
                                lo in -600i64..0, len in 1i64..1200) {
        let hi = lo + len;
        let total = PwlCurve::sum(curves);
        let (x_star, v_star) = total.min_on(lo, hi, (lo + hi) / 2).unwrap();
        prop_assert!(x_star >= lo && x_star <= hi);
        prop_assert_eq!(total.eval(x_star), v_star);
        // Dense scan (PWL with integer breakpoints: step 1 is exact).
        let step = (len / 200).max(1);
        let mut x = lo;
        while x <= hi {
            prop_assert!(total.eval(x) >= v_star, "better value at {}", x);
            x += step;
        }
        // Also probe all breakpoints.
        for b in total.breakpoints() {
            if b >= lo && b <= hi {
                prop_assert!(total.eval(b) >= v_star);
            }
        }
    }

    #[test]
    fn curve_types_are_nonnegative_and_touch_base(x in -300i64..300, base in 0i64..100, w in 1i64..4) {
        for c in [
            PwlCurve::type_a(x, base, w),
            PwlCurve::type_b(x, base, w),
            PwlCurve::type_c(x, base, w),
            PwlCurve::type_d(x, base, w),
        ] {
            for probe in (-1000..1000).step_by(37) {
                prop_assert!(c.eval(probe) >= 0);
            }
        }
        // A and B plateau exactly at w*base.
        prop_assert_eq!(PwlCurve::type_a(x, base, w).eval(x - 1000), base * w);
        prop_assert_eq!(PwlCurve::type_b(x, base, w).eval(x + 1000), base * w);
        // C and D reach zero at their GP-aligned points.
        prop_assert_eq!(PwlCurve::type_c(x, base, w).eval(x + base), 0);
        prop_assert_eq!(PwlCurve::type_d(x, base, w).eval(x), 0);
    }
}
