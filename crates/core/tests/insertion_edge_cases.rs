//! Edge-case tests for the insertion evaluator through the public API.

use mcl_core::config::DisplacementReference;
use mcl_core::insertion::{best_insertion, CostModel};
use mcl_core::routability::RoutOracle;
use mcl_core::state::PlacementState;
use mcl_db::prelude::*;

fn base_design() -> Design {
    let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 900));
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("wide", 200, 1));
    d
}

fn model<'a>(weights: &'a [i64], oracle: Option<&'a RoutOracle<'a>>) -> CostModel<'a> {
    CostModel {
        reference: DisplacementReference::Gp,
        normalize: true,
        weights,
        oracle,
        io_penalty: 500,
        rail_penalty: 500,
    }
}

#[test]
fn target_wider_than_every_gap_fails() {
    let mut d = base_design();
    let t = d.add_cell(Cell::new("t", CellTypeId(1), Point::new(500, 0)));
    // Row 0 packed with 91 singles: total free space 180 < 200, so even
    // with every blocker shifted the target cannot fit.
    let mut blockers = Vec::new();
    for i in 0..91 {
        blockers.push(d.add_cell(Cell::new(
            format!("b{i}"),
            CellTypeId(0),
            Point::new(i * 20, 0),
        )));
    }
    let w = vec![1i64; d.cells.len()];
    let mut state = PlacementState::new(&d);
    for (i, b) in blockers.iter().enumerate() {
        state.place(*b, Point::new(i as Dbu * 20, 0)).unwrap();
    }
    // Window limited to row 0 only.
    let ins = best_insertion(&state, t, Rect::new(0, 0, 2000, 90), &model(&w, None));
    assert!(ins.is_none());
    // With row 1 available it fits.
    let ins = best_insertion(&state, t, Rect::new(0, 0, 2000, 180), &model(&w, None));
    assert!(ins.is_some());
    assert_eq!(ins.unwrap().base_row, 1);
}

#[test]
fn window_outside_fence_fails_for_fenced_cell() {
    let mut d = base_design();
    let f = d.add_fence(FenceRegion::new("g", vec![Rect::new(1500, 0, 1900, 180)]));
    let mut c = Cell::new("t", CellTypeId(0), Point::new(100, 0));
    c.fence = f;
    let t = d.add_cell(c);
    let w = vec![1i64; d.cells.len()];
    let state = PlacementState::new(&d);
    // Window around the GP does not intersect the fence at all.
    let ins = best_insertion(&state, t, Rect::new(0, 0, 600, 400), &model(&w, None));
    assert!(ins.is_none());
    // A window reaching the fence succeeds.
    let ins = best_insertion(&state, t, Rect::new(0, 0, 2000, 400), &model(&w, None));
    assert!(ins.unwrap().x >= 1500);
}

#[test]
fn prefers_row_nearest_gp_on_cost_ties() {
    let mut d = base_design();
    let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(300, 460)));
    let w = vec![1i64; d.cells.len()];
    let state = PlacementState::new(&d);
    let ins = best_insertion(&state, t, d.core, &model(&w, None)).unwrap();
    // GP y=460 is exactly 10 dbu above row 5 (y=450): that row wins.
    assert_eq!(ins.base_row, 5);
    assert_eq!(ins.x, 300);
}

#[test]
fn vertical_stripe_nudges_position() {
    let mut d = base_design();
    d.grid = PowerGrid {
        h_layer: 2,
        h_width: 0,
        h_pitch_rows: 1,
        v_layer: 3,
        v_width: 10,
        v_pitch: 600,
        v_offset: 300,
    };
    // Pin covering the full cell width: dirty whenever the cell overlaps a
    // stripe column at x=300±5.
    d.cell_types[0].pins.push(PinShape {
        name: "p".into(),
        layer: 2,
        rect: Rect::new(0, 40, 20, 50),
    });
    let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(295, 0)));
    let w = vec![1i64; d.cells.len()];
    let state = PlacementState::new(&d);
    let oracle = RoutOracle::new(&d);
    let ins = best_insertion(&state, t, d.core, &model(&w, Some(&oracle))).unwrap();
    // Position must not overlap the stripe [295, 305).
    assert!(
        ins.x >= 310 || ins.x + 20 <= 290,
        "x = {} still overlaps the stripe",
        ins.x
    );
    // Without the oracle the cell sits at its snapped GP, on the stripe.
    let blind = best_insertion(&state, t, d.core, &model(&w, None)).unwrap();
    assert_eq!(blind.x, 290);
}

#[test]
fn io_pin_penalty_steers_insertion() {
    let mut d = base_design();
    d.cell_types[0].pins.push(PinShape {
        name: "p".into(),
        layer: 1,
        rect: Rect::new(5, 40, 15, 50),
    });
    // An IO pin right on the GP location.
    d.io_pins.push(IoPin {
        name: "io".into(),
        layer: 1,
        rect: Rect::new(300, 30, 330, 60),
    });
    let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(300, 0)));
    let w = vec![1i64; d.cells.len()];
    let state = PlacementState::new(&d);
    let oracle = RoutOracle::new(&d);
    let ins = best_insertion(&state, t, d.core, &model(&w, Some(&oracle))).unwrap();
    // Cheapest escape is the row above (y cost 90 < penalty 500): either
    // way, the placed pin must not overlap the IO shape in both axes.
    let pin_x = (ins.x + 5, ins.x + 15);
    let y0 = ins.base_row as Dbu * 90;
    let pin_y = (y0 + 40, y0 + 50);
    let x_clear = pin_x.1 <= 300 || pin_x.0 >= 330;
    let y_clear = pin_y.1 <= 30 || pin_y.0 >= 60;
    assert!(
        x_clear || y_clear,
        "pin at x[{},{}) y[{},{}) overlaps the IO pin",
        pin_x.0,
        pin_x.1,
        pin_y.0,
        pin_y.1
    );
}

#[test]
fn curve_normalization_prefers_beneficial_pushes() {
    // A displaced local cell next to the target's GP: with normalization the
    // evaluator prefers pushing it home over dodging into free space.
    let mut d = base_design();
    let b = d.add_cell(Cell::new("b", CellTypeId(0), Point::new(700, 0)));
    let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(300, 0)));
    let w = vec![1i64; d.cells.len()];
    let mut state = PlacementState::new(&d);
    state.place(b, Point::new(300, 0)).unwrap();
    let m_norm = model(&w, None);
    let ins = best_insertion(&state, t, Rect::new(100, 0, 500, 90), &m_norm).unwrap();
    assert_eq!(ins.x, 300);
    assert_eq!(ins.shifts, vec![(b, 320)]);
    assert!(ins.cost < 0, "pushing b toward its GP is a net gain");
}

#[test]
fn weights_zero_length_window_is_rejected_gracefully() {
    let mut d = base_design();
    let t = d.add_cell(Cell::new("t", CellTypeId(0), Point::new(300, 0)));
    let w = vec![1i64; d.cells.len()];
    let state = PlacementState::new(&d);
    // Degenerate window (zero area).
    let ins = best_insertion(&state, t, Rect::new(300, 0, 300, 0), &model(&w, None));
    assert!(ins.is_none());
}
