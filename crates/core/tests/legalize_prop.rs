//! Property test: the legalizer produces legal placements on arbitrary
//! (feasible) random designs.

use mcl_core::{Legalizer, LegalizerConfig};
use mcl_db::prelude::*;
use proptest::prelude::*;

fn build_design(
    cells: &[(u8, i64, i64)], // (kind, gp_x raw, gp_y raw)
    width: i64,
    rows: i64,
) -> Design {
    let mut d = Design::new(
        "prop",
        Technology::example(),
        Rect::new(0, 0, width, rows * 90),
    );
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("m", 30, 2));
    d.add_cell_type(CellType::new("t", 40, 3));
    for (i, &(kind, gx, gy)) in cells.iter().enumerate() {
        let t = CellTypeId((kind % 3) as u32);
        let gp = Point::new(gx.rem_euclid(width - 50), gy.rem_euclid((rows - 3) * 90));
        d.add_cell(Cell::new(format!("c{i}"), t, gp));
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn legalizer_output_is_always_legal(
        cells in prop::collection::vec((0u8..3, 0i64..100_000, 0i64..100_000), 1..60),
        rows in 8i64..16,
    ) {
        // Sized so the density stays feasible.
        let width = (cells.len() as i64 * 40).max(800);
        let d = build_design(&cells, width, rows);
        let (placed, stats) = Legalizer::new(LegalizerConfig::total_displacement()).run(&d);
        prop_assert_eq!(stats.mgl.failed, 0);
        let rep = Checker::new(&placed).check();
        prop_assert!(rep.is_legal(), "{:?}", rep.details);
        // Every movable cell placed.
        for c in &placed.cells {
            prop_assert!(c.pos.is_some());
        }
    }

    #[test]
    fn contest_flow_is_always_legal_with_rails(
        cells in prop::collection::vec((0u8..3, 0i64..100_000, 0i64..100_000), 1..40),
    ) {
        let width = (cells.len() as i64 * 50).max(800);
        let mut d = build_design(&cells, width, 12);
        d.grid = PowerGrid {
            h_layer: 2,
            h_width: 6,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: 10,
            v_pitch: 400,
            v_offset: 200,
        };
        d.cell_types[0].pins.push(PinShape {
            name: "a".into(),
            layer: 2,
            rect: Rect::new(4, 40, 12, 50),
        });
        let (placed, stats) = Legalizer::new(LegalizerConfig::contest()).run(&d);
        prop_assert_eq!(stats.mgl.failed, 0);
        let rep = Checker::new(&placed).check();
        prop_assert!(rep.is_legal(), "{:?}", rep.details);
    }
}
