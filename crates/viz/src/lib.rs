//! # mcl-viz — SVG rendering of placements
//!
//! Renders designs as standalone SVG files: cells colored by height, fences
//! outlined, and (optionally) displacement vectors from GP to placed
//! locations — the visualization style of Fig. 6 in the paper.

#![forbid(unsafe_code)]

use mcl_db::prelude::*;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Output width in pixels (height follows the aspect ratio).
    pub width_px: f64,
    /// Draw displacement lines from each cell's GP to its position.
    pub displacement_lines: bool,
    /// Only draw displacement lines at least this long (dbu).
    pub min_disp: Dbu,
    /// Highlight cells of this type id in red (the Fig. 6 styling);
    /// `None` colors by height instead.
    pub highlight_type: Option<CellTypeId>,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width_px: 900.0,
            displacement_lines: true,
            min_disp: 0,
            highlight_type: None,
        }
    }
}

/// Height palette (1-4 rows).
const HEIGHT_FILL: [&str; 4] = ["#b8cbe3", "#8fb383", "#d9b96c", "#c28ab6"];

/// Renders a design to an SVG string.
pub fn render_svg(design: &Design, opts: &SvgOptions) -> String {
    let core = design.core;
    let scale = opts.width_px / core.width().max(1) as f64;
    let w = opts.width_px;
    let h = core.height() as f64 * scale;
    let x = |v: Dbu| (v - core.xl) as f64 * scale;
    // SVG y grows downward; flip so row 0 is at the bottom.
    let y = |v: Dbu| h - (v - core.yl) as f64 * scale;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.1} {h:.1}">"#
    );
    let _ = writeln!(
        s,
        r##"<rect x="0" y="0" width="{w:.1}" height="{h:.1}" fill="#fafafa" stroke="#555"/>"##
    );

    // Fences.
    for f in design.fences.iter().skip(1) {
        for r in &f.rects {
            let _ = writeln!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#fff3d6" stroke="#c90" stroke-dasharray="4 2"/>"##,
                x(r.xl),
                y(r.yh),
                (r.width() as f64) * scale,
                (r.height() as f64) * scale
            );
        }
    }

    // Cells.
    for (i, c) in design.cells.iter().enumerate() {
        let id = CellId(i as u32);
        let ct = design.type_of(id);
        let p = c.pos.unwrap_or(c.gp);
        let r = design.rect_at(id, p);
        let fill = if c.fixed {
            "#777"
        } else if opts.highlight_type == Some(c.type_id) {
            "#d64545"
        } else if opts.highlight_type.is_some() {
            "#cfcfcf"
        } else {
            HEIGHT_FILL[(ct.height_rows as usize - 1).min(3)]
        };
        let _ = writeln!(
            s,
            r##"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{fill}" stroke="#444" stroke-width="0.3"/>"##,
            x(r.xl),
            y(r.yh),
            (r.width() as f64) * scale,
            (r.height() as f64) * scale
        );
    }

    // Displacement vectors.
    if opts.displacement_lines {
        for (i, c) in design.cells.iter().enumerate() {
            if c.fixed {
                continue;
            }
            let Some(p) = c.pos else { continue };
            if p.manhattan(c.gp) < opts.min_disp {
                continue;
            }
            if let Some(t) = opts.highlight_type {
                if c.type_id != t {
                    continue;
                }
            }
            let id = CellId(i as u32);
            let a = design.rect_at(id, c.gp).center();
            let b = design.rect_at(id, p).center();
            let _ = writeln!(
                s,
                r##"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="#d62728" stroke-width="0.7" opacity="0.75"/>"##,
                x(a.x),
                y(a.y),
                x(b.x),
                y(b.y)
            );
        }
    }
    let _ = writeln!(s, "</svg>");
    s
}

/// Renders a displacement histogram (bucketed in rows) as a standalone SVG
/// bar chart — handy next to the Fig. 6 scatter to see stage-2's effect on
/// the tail.
pub fn render_disp_histogram(design: &Design, buckets: usize) -> String {
    let rh = design.tech.row_height as f64;
    let disps: Vec<f64> = design
        .movable_cells()
        .filter_map(|id| {
            design.cells[id.0 as usize]
                .pos
                .map(|p| p.manhattan(design.cells[id.0 as usize].gp) as f64 / rh)
        })
        .collect();
    let buckets = buckets.max(1);
    let max_d = disps.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    let mut counts = vec![0usize; buckets];
    for &d in &disps {
        let b = ((d / max_d) * buckets as f64) as usize;
        counts[b.min(buckets - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1) as f64;

    let (w, h, margin) = (640.0, 240.0, 30.0);
    let bar_w = (w - 2.0 * margin) / buckets as f64;
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}">"#
    );
    let _ = writeln!(
        s,
        r##"<rect width="{w}" height="{h}" fill="#ffffff" stroke="#555"/>"##
    );
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bh = (c as f64 / peak) * (h - 2.0 * margin);
        let x = margin + i as f64 * bar_w;
        let y = h - margin - bh;
        let _ = writeln!(
            s,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{bh:.1}" fill="#5b84b1" stroke="#333" stroke-width="0.4"/>"##,
            bar_w.max(1.0) - 0.5
        );
    }
    let _ = writeln!(
        s,
        r##"<text x="{margin}" y="{:.0}" font-size="11" fill="#333">0</text>"##,
        h - margin + 14.0
    );
    let _ = writeln!(
        s,
        r##"<text x="{:.0}" y="{:.0}" font-size="11" fill="#333" text-anchor="end">{max_d:.1} rows</text>"##,
        w - margin,
        h - margin + 14.0
    );
    let _ = writeln!(s, "</svg>");
    s
}

/// Renders a per-stage displacement/latency heatmap from a structured run
/// report (DESIGN.md §9): one row per pipeline stage, one column per log₂
/// displacement bucket (sites) from the stage's `*.cell_disp_sites`
/// histogram, shaded by cell count; the right-hand bar shows each stage's
/// share of the run's wall time. Stages without a histogram (obs compiled
/// out, or the stage skipped) still get their latency bar.
pub fn render_report_heatmap(report: &mcl_obs::report::RunReport) -> String {
    let stages: Vec<(&str, Option<&mcl_obs::report::HistoReport>, f64)> = report
        .stage_seconds
        .iter()
        .map(|s| {
            let histo = report
                .histograms
                .iter()
                .find(|h| h.name == format!("{}.cell_disp_sites", s.name));
            (s.name.as_str(), histo, s.seconds)
        })
        .collect();

    // Union of occupied log₂ buckets across stages, so columns line up.
    let max_bucket = stages
        .iter()
        .filter_map(|(_, h, _)| h.map(|h| h.buckets.iter().map(|&(b, _)| b).max().unwrap_or(0)))
        .max()
        .unwrap_or(0);
    let cols = max_bucket as usize + 1;
    let peak = mcl_obs::count_to_float(
        stages
            .iter()
            .filter_map(|(_, h, _)| h.map(|h| h.buckets.iter().map(|&(_, c)| c).max().unwrap_or(0)))
            .max()
            .unwrap_or(1)
            .max(1),
    );
    let total_secs = stages.iter().map(|(_, _, s)| s).sum::<f64>().max(1e-12);

    let (cell, label_w, bar_w, margin) = (26.0, 110.0, 120.0, 30.0);
    let grid_w = mcl_obs::count_to_float(cols as u64) * cell;
    let rows_f = mcl_obs::count_to_float(stages.len() as u64);
    let w = label_w + grid_w + bar_w + 2.0 * margin;
    let h = rows_f * cell + 2.0 * margin + 20.0;
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}">"#
    );
    let _ = writeln!(
        s,
        r##"<rect width="{w:.0}" height="{h:.0}" fill="#ffffff" stroke="#555"/>"##
    );
    let _ = writeln!(
        s,
        r##"<text x="{:.1}" y="{:.1}" font-size="12" fill="#333">{}: displacement (log2 sites) per stage; right bar = share of wall time</text>"##,
        margin,
        margin - 10.0,
        report.design
    );
    for (row, (name, histo, secs)) in stages.iter().enumerate() {
        let y = margin + mcl_obs::count_to_float(row as u64) * cell;
        let _ = writeln!(
            s,
            r##"<text x="{:.1}" y="{:.1}" font-size="11" fill="#333">{name}</text>"##,
            margin,
            y + cell * 0.65
        );
        if let Some(h) = histo {
            for &(b, count) in &h.buckets {
                // Log shading so the (typically huge) zero-displacement
                // bucket doesn't flatten everything else to white.
                let t = (mcl_obs::count_to_float(count).ln_1p() / peak.ln_1p()).clamp(0.0, 1.0);
                let shade = 255 - mcl_db::geom::dbu_from_f64_saturating(t * 200.0).clamp(0, 200);
                let x = margin + label_w + f64::from(b) * cell;
                let _ = writeln!(
                    s,
                    r##"<rect x="{x:.1}" y="{y:.1}" width="{cell:.1}" height="{cell:.1}" fill="rgb({shade},{shade},255)" stroke="#999" stroke-width="0.3"><title>{name} 2^{b} sites: {count} cells</title></rect>"##
                );
            }
        }
        let frac = secs / total_secs;
        let _ = writeln!(
            s,
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#d08540" stroke="#333" stroke-width="0.4"><title>{name}: {secs:.6}s ({:.1}%)</title></rect>"##,
            margin + label_w + grid_w + 8.0,
            y + cell * 0.2,
            (bar_w - 16.0) * frac,
            cell * 0.6,
            100.0 * frac
        );
    }
    // Column axis: bucket exponents.
    for b in 0..cols {
        let bx = mcl_obs::count_to_float(b as u64);
        let _ = writeln!(
            s,
            r##"<text x="{:.1}" y="{:.1}" font-size="9" fill="#666" text-anchor="middle">{b}</text>"##,
            margin + label_w + (bx + 0.5) * cell,
            margin + rows_f * cell + 12.0
        );
    }
    let _ = writeln!(s, "</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        let s = d.add_cell_type(CellType::new("s", 20, 1));
        let m = d.add_cell_type(CellType::new("m", 30, 2));
        let mut a = Cell::new("a", s, Point::new(100, 100));
        a.pos = Some(Point::new(200, 90));
        d.add_cell(a);
        let mut b = Cell::new("b", m, Point::new(500, 100));
        b.pos = Some(Point::new(500, 180));
        d.add_cell(b);
        d.add_fence(FenceRegion::new("g", vec![Rect::new(600, 0, 900, 180)]));
        d
    }

    #[test]
    fn svg_is_well_formed_ish() {
        let svg = render_svg(&design(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Two cells + background + fence, and at least one displacement line.
        assert!(svg.matches("<rect").count() >= 4);
        assert!(svg.contains("<line"));
    }

    #[test]
    fn highlight_mode_filters_lines() {
        let o = SvgOptions {
            highlight_type: Some(CellTypeId(1)),
            min_disp: 0,
            ..SvgOptions::default()
        };
        let svg = render_svg(&design(), &o);
        // Only cell b (type 1) gets a displacement line.
        assert_eq!(svg.matches("<line").count(), 1);
        assert!(svg.contains("#d64545"));
    }

    #[test]
    fn min_disp_suppresses_short_lines() {
        let o = SvgOptions {
            min_disp: 10_000,
            ..SvgOptions::default()
        };
        let svg = render_svg(&design(), &o);
        assert_eq!(svg.matches("<line").count(), 0);
    }

    #[test]
    fn histogram_renders_bars() {
        let svg = render_disp_histogram(&design(), 10);
        assert!(svg.starts_with("<svg"));
        // Background + at least one bar.
        assert!(svg.matches("<rect").count() >= 2);
        assert!(svg.contains("rows"));
    }

    #[test]
    fn histogram_handles_unplaced_and_empty() {
        let mut d = design();
        d.cells[0].pos = None;
        d.cells[1].pos = None;
        let svg = render_disp_histogram(&d, 5);
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    fn heatmap_report() -> mcl_obs::report::RunReport {
        let mut r = mcl_obs::report::RunReport::new("demo");
        r.stage("mgl", 0.08);
        r.stage("maxdisp", 0.01);
        r.stage("fixed_order", 0.01);
        r.histograms.push(mcl_obs::report::HistoReport {
            name: "mgl.cell_disp_sites".into(),
            count: 110,
            p50: 4,
            p95: 16,
            p100: 32,
            buckets: vec![(0, 80), (2, 20), (5, 10)],
        });
        r.histograms.push(mcl_obs::report::HistoReport {
            name: "fixed_order.cell_disp_sites".into(),
            count: 100,
            p50: 2,
            p95: 8,
            p100: 8,
            buckets: vec![(0, 90), (3, 10)],
        });
        r
    }

    #[test]
    fn report_heatmap_renders_stage_rows_and_latency_bars() {
        let svg = render_report_heatmap(&heatmap_report());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        for stage in ["mgl", "maxdisp", "fixed_order"] {
            assert!(svg.contains(stage), "missing stage label {stage}");
        }
        // 5 histogram cells + 3 latency bars + background.
        assert!(svg.matches("<rect").count() >= 9);
        // Hover titles carry the exact counts.
        assert!(svg.contains("2^5 sites: 10 cells"));
        assert!(svg.contains("80.0%"));
    }

    #[test]
    fn report_heatmap_without_histograms_still_renders() {
        // Obs compiled out (or a baseline run): stage bars only.
        let mut r = mcl_obs::report::RunReport::new("bare");
        r.stage("mgl", 0.5);
        let svg = render_report_heatmap(&r);
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("mgl"));
    }
}
