//! # mcl-viz — SVG rendering of placements
//!
//! Renders designs as standalone SVG files: cells colored by height, fences
//! outlined, and (optionally) displacement vectors from GP to placed
//! locations — the visualization style of Fig. 6 in the paper.

#![forbid(unsafe_code)]

use mcl_db::prelude::*;
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Output width in pixels (height follows the aspect ratio).
    pub width_px: f64,
    /// Draw displacement lines from each cell's GP to its position.
    pub displacement_lines: bool,
    /// Only draw displacement lines at least this long (dbu).
    pub min_disp: Dbu,
    /// Highlight cells of this type id in red (the Fig. 6 styling);
    /// `None` colors by height instead.
    pub highlight_type: Option<CellTypeId>,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width_px: 900.0,
            displacement_lines: true,
            min_disp: 0,
            highlight_type: None,
        }
    }
}

/// Height palette (1-4 rows).
const HEIGHT_FILL: [&str; 4] = ["#b8cbe3", "#8fb383", "#d9b96c", "#c28ab6"];

/// Renders a design to an SVG string.
pub fn render_svg(design: &Design, opts: &SvgOptions) -> String {
    let core = design.core;
    let scale = opts.width_px / core.width().max(1) as f64;
    let w = opts.width_px;
    let h = core.height() as f64 * scale;
    let x = |v: Dbu| (v - core.xl) as f64 * scale;
    // SVG y grows downward; flip so row 0 is at the bottom.
    let y = |v: Dbu| h - (v - core.yl) as f64 * scale;

    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.1} {h:.1}">"#
    );
    let _ = writeln!(
        s,
        r##"<rect x="0" y="0" width="{w:.1}" height="{h:.1}" fill="#fafafa" stroke="#555"/>"##
    );

    // Fences.
    for f in design.fences.iter().skip(1) {
        for r in &f.rects {
            let _ = writeln!(
                s,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#fff3d6" stroke="#c90" stroke-dasharray="4 2"/>"##,
                x(r.xl),
                y(r.yh),
                (r.width() as f64) * scale,
                (r.height() as f64) * scale
            );
        }
    }

    // Cells.
    for (i, c) in design.cells.iter().enumerate() {
        let id = CellId(i as u32);
        let ct = design.type_of(id);
        let p = c.pos.unwrap_or(c.gp);
        let r = design.rect_at(id, p);
        let fill = if c.fixed {
            "#777"
        } else if opts.highlight_type == Some(c.type_id) {
            "#d64545"
        } else if opts.highlight_type.is_some() {
            "#cfcfcf"
        } else {
            HEIGHT_FILL[(ct.height_rows as usize - 1).min(3)]
        };
        let _ = writeln!(
            s,
            r##"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{fill}" stroke="#444" stroke-width="0.3"/>"##,
            x(r.xl),
            y(r.yh),
            (r.width() as f64) * scale,
            (r.height() as f64) * scale
        );
    }

    // Displacement vectors.
    if opts.displacement_lines {
        for (i, c) in design.cells.iter().enumerate() {
            if c.fixed {
                continue;
            }
            let Some(p) = c.pos else { continue };
            if p.manhattan(c.gp) < opts.min_disp {
                continue;
            }
            if let Some(t) = opts.highlight_type {
                if c.type_id != t {
                    continue;
                }
            }
            let id = CellId(i as u32);
            let a = design.rect_at(id, c.gp).center();
            let b = design.rect_at(id, p).center();
            let _ = writeln!(
                s,
                r##"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="#d62728" stroke-width="0.7" opacity="0.75"/>"##,
                x(a.x),
                y(a.y),
                x(b.x),
                y(b.y)
            );
        }
    }
    let _ = writeln!(s, "</svg>");
    s
}

/// Renders a displacement histogram (bucketed in rows) as a standalone SVG
/// bar chart — handy next to the Fig. 6 scatter to see stage-2's effect on
/// the tail.
pub fn render_disp_histogram(design: &Design, buckets: usize) -> String {
    let rh = design.tech.row_height as f64;
    let disps: Vec<f64> = design
        .movable_cells()
        .filter_map(|id| {
            design.cells[id.0 as usize]
                .pos
                .map(|p| p.manhattan(design.cells[id.0 as usize].gp) as f64 / rh)
        })
        .collect();
    let buckets = buckets.max(1);
    let max_d = disps.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    let mut counts = vec![0usize; buckets];
    for &d in &disps {
        let b = ((d / max_d) * buckets as f64) as usize;
        counts[b.min(buckets - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1) as f64;

    let (w, h, margin) = (640.0, 240.0, 30.0);
    let bar_w = (w - 2.0 * margin) / buckets as f64;
    let mut s = String::new();
    let _ = writeln!(
        s,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}">"#
    );
    let _ = writeln!(
        s,
        r##"<rect width="{w}" height="{h}" fill="#ffffff" stroke="#555"/>"##
    );
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let bh = (c as f64 / peak) * (h - 2.0 * margin);
        let x = margin + i as f64 * bar_w;
        let y = h - margin - bh;
        let _ = writeln!(
            s,
            r##"<rect x="{x:.1}" y="{y:.1}" width="{:.1}" height="{bh:.1}" fill="#5b84b1" stroke="#333" stroke-width="0.4"/>"##,
            bar_w.max(1.0) - 0.5
        );
    }
    let _ = writeln!(
        s,
        r##"<text x="{margin}" y="{:.0}" font-size="11" fill="#333">0</text>"##,
        h - margin + 14.0
    );
    let _ = writeln!(
        s,
        r##"<text x="{:.0}" y="{:.0}" font-size="11" fill="#333" text-anchor="end">{max_d:.1} rows</text>"##,
        w - margin,
        h - margin + 14.0
    );
    let _ = writeln!(s, "</svg>");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        let s = d.add_cell_type(CellType::new("s", 20, 1));
        let m = d.add_cell_type(CellType::new("m", 30, 2));
        let mut a = Cell::new("a", s, Point::new(100, 100));
        a.pos = Some(Point::new(200, 90));
        d.add_cell(a);
        let mut b = Cell::new("b", m, Point::new(500, 100));
        b.pos = Some(Point::new(500, 180));
        d.add_cell(b);
        d.add_fence(FenceRegion::new("g", vec![Rect::new(600, 0, 900, 180)]));
        d
    }

    #[test]
    fn svg_is_well_formed_ish() {
        let svg = render_svg(&design(), &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // Two cells + background + fence, and at least one displacement line.
        assert!(svg.matches("<rect").count() >= 4);
        assert!(svg.contains("<line"));
    }

    #[test]
    fn highlight_mode_filters_lines() {
        let o = SvgOptions {
            highlight_type: Some(CellTypeId(1)),
            min_disp: 0,
            ..SvgOptions::default()
        };
        let svg = render_svg(&design(), &o);
        // Only cell b (type 1) gets a displacement line.
        assert_eq!(svg.matches("<line").count(), 1);
        assert!(svg.contains("#d64545"));
    }

    #[test]
    fn min_disp_suppresses_short_lines() {
        let o = SvgOptions {
            min_disp: 10_000,
            ..SvgOptions::default()
        };
        let svg = render_svg(&design(), &o);
        assert_eq!(svg.matches("<line").count(), 0);
    }

    #[test]
    fn histogram_renders_bars() {
        let svg = render_disp_histogram(&design(), 10);
        assert!(svg.starts_with("<svg"));
        // Background + at least one bar.
        assert!(svg.matches("<rect").count() >= 2);
        assert!(svg.contains("rows"));
    }

    #[test]
    fn histogram_handles_unplaced_and_empty() {
        let mut d = design();
        d.cells[0].pos = None;
        d.cells[1].pos = None;
        let svg = render_disp_histogram(&d, 5);
        assert!(svg.trim_end().ends_with("</svg>"));
    }
}
