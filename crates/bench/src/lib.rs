//! # mcl-bench — experiment harness
//!
//! Shared plumbing for the table/figure reproduction binaries:
//!
//! - `table1`: ours vs the greedy champion stand-in on the 16 IC/CAD 2017
//!   presets (avg/max displacement, HPWL, pin + edge violations, score S).
//! - `table2`: ours vs MLL/Abacus/LCP on the 20 ISPD 2015 presets (total
//!   displacement, runtime).
//! - `table3`: post-processing ablation (before/after stages 2+3).
//! - `fig3`, `fig4`, `fig6`: the paper's illustrative figures.
//!
//! Scale is controlled with the `MCL_SCALE` environment variable
//! (default 0.05 = 5% of the published cell counts); artifacts go to
//! `MCL_OUT` (default `results/`).

#![forbid(unsafe_code)]

use mcl_db::prelude::*;
use mcl_obs::clock::Stopwatch;

/// Reads the benchmark scale factor from `MCL_SCALE` (default 0.05).
pub fn scale_from_env() -> f64 {
    std::env::var("MCL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05)
}

/// Worker threads for the legalizer (`MCL_THREADS`, default: available
/// parallelism).
pub fn threads_from_env() -> usize {
    std::env::var("MCL_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Output directory for artifacts (`MCL_OUT`, default `results/`); created
/// on first use.
pub fn out_dir() -> std::path::PathBuf {
    let dir = std::env::var("MCL_OUT").unwrap_or_else(|_| "results".into());
    let p = std::path::PathBuf::from(dir);
    let _ = std::fs::create_dir_all(&p);
    p
}

/// One legalizer evaluation on one benchmark.
#[derive(Debug, Clone)]
pub struct Eval {
    /// Displacement metrics.
    pub metrics: Metrics,
    /// Violation report.
    pub report: LegalityReport,
    /// Contest score (Eq. 10).
    pub score: f64,
    /// Wall-clock seconds of the legalization call.
    pub seconds: f64,
    /// The legalized design.
    pub design: Design,
}

/// Runs `f` on a design and gathers every metric the tables need.
pub fn evaluate<F>(design: &Design, f: F) -> Eval
where
    F: FnOnce(&Design) -> Design,
{
    let t = Stopwatch::start();
    let placed = f(design);
    let seconds = t.elapsed_seconds();
    let metrics = Metrics::measure(&placed);
    let report = Checker::new(&placed).check();
    let score = metrics.contest_score(&placed, &report);
    Eval {
        metrics,
        report,
        score,
        seconds,
        design: placed,
    }
}

/// Peak resident-set size of this process in kilobytes, read from the
/// `VmHWM` line of Linux `/proc/self/status`. `None` on platforms without
/// procfs (the scale sweep then omits the RSS column rather than failing).
///
/// `VmHWM` is a process-lifetime high-water mark: within one sweep it only
/// ever grows, so run sizes in ascending order if per-size readings should
/// approximate per-size peaks.
pub fn peak_rss_kb() -> Option<u64> {
    parse_vm_hwm_kb(&std::fs::read_to_string("/proc/self/status").ok()?)
}

/// Parses the `VmHWM` field (in kB) out of `/proc/<pid>/status` content.
pub fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))?
        .split_whitespace()
        .next()?
        .parse()
        .ok()
}

/// Mean of `base[i] / ours[i]` — the "Norm. Avg." rows of the paper: the
/// `ours` column normalizes to 1.00 and a losing baseline reads above 1.
pub fn norm_avg(base: &[f64], ours: &[f64]) -> f64 {
    assert_eq!(base.len(), ours.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (&b, &o) in base.iter().zip(ours) {
        if o.abs() > f64::EPSILON {
            sum += b / o;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Formats a float with `p` decimals.
pub fn fnum(v: f64, p: usize) -> String {
    format!("{v:.p$}")
}

/// Writes `content` to `<out_dir>/<name>` and echoes the path.
pub fn save_artifact(name: &str, content: &str) -> std::path::PathBuf {
    let path = out_dir().join(name);
    std::fs::write(&path, content).expect("write artifact");
    println!("  [wrote {}]", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_avg_of_equal_is_one() {
        assert!((norm_avg(&[2.0, 4.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn norm_avg_baseline_worse_is_above_one() {
        let v = norm_avg(&[3.0, 3.0], &[2.0, 2.0]);
        assert!((v - 1.5).abs() < 1e-12);
    }

    #[test]
    fn scale_default_positive() {
        assert!(scale_from_env() > 0.0);
        assert!(threads_from_env() >= 1);
    }

    #[test]
    fn vm_hwm_parses_procfs_format() {
        let sample =
            "Name:\tmclegal\nVmPeak:\t  123456 kB\nVmHWM:\t   98304 kB\nVmRSS:\t   65536 kB\n";
        assert_eq!(parse_vm_hwm_kb(sample), Some(98304));
        assert_eq!(parse_vm_hwm_kb("Name:\tx\nVmRSS:\t 10 kB\n"), None);
        assert_eq!(parse_vm_hwm_kb(""), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        let kb = peak_rss_kb().expect("procfs VmHWM available on Linux");
        assert!(kb > 0);
    }
}
