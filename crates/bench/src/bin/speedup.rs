//! MGL throughput benchmark — seed scheduler vs the persistent-pool one.
//!
//! Replays the *seed* parallel scheduler (per-round `std::thread::scope`
//! with static slice chunking, O(|pending| × |selected|) window selection,
//! and the allocating reference insertion evaluator) against the current
//! `run_parallel` (persistent worker pool, row-band window index,
//! scratch-arena evaluator) on a dense synthetic design, at 1/2/4/8
//! threads, and writes the cells-per-second numbers to `BENCH_mgl.json`
//! in the current directory so the perf trajectory is tracked per PR.
//!
//! Both schedulers are bit-identical in output (asserted below), so the
//! comparison is pure throughput. Knobs: `MCL_BENCH_CELLS` (default 3000),
//! `MCL_BENCH_REPS` (default 2, best-of), `MCL_BENCH_SEED`.
//!
//! Pass `--report` to additionally run the full three-stage pipeline on
//! the bench design and print the structured run-report summary
//! (DESIGN.md §9); the per-stage wall-time breakdown of that run is
//! always written to `BENCH_mgl.json` under `stage_breakdown`.
//!
//! A batch-throughput comparison (`MCL_BENCH_BATCH` small sparse design
//! variants, default 16 × `MCL_BENCH_BATCH_CELLS` (40) cells at
//! `MCL_BENCH_BATCH_DENSITY_PCT` (25), through one shared `Engine`'s
//! cross-design batch scheduler vs sequential per-design `Legalizer::run`,
//! at 1/2/4/8 threads) is written under `batch`, with `designs_per_sec`
//! and `engine_speedup` per thread count plus one throttled-admission run
//! exercising the shared-worker interleaving. Outputs are asserted
//! bit-identical per thread count, so every ratio is pure scheduling.

use mcl_core::config::LegalizerConfig;
use mcl_core::insertion::{CostModel, Insertion};
use mcl_core::insertion_reference::best_insertion_reference;
use mcl_core::mgl::{apply_insertion, cell_order, compute_weights, fallback_scan, window_for};
use mcl_core::scheduler::run_parallel;
use mcl_core::{build_run_report, Engine, Legalizer, PlacementState};
use mcl_db::prelude::*;
use mcl_obs::clock::Stopwatch;
use std::collections::VecDeque;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A dense synthetic design (the scheduler determinism tests' cell mix at a
/// bench-grade density): the core is sized so movable area / core area hits
/// `density`, which keeps windows full of neighbours — the regime where
/// insertion evaluation dominates and the hot path matters.
fn dense_design(n_cells: usize, density: f64, seed: u64) -> Design {
    // Cell mix: 80% of (20 × 1 row), 20% of (30 × 2 rows); row height 90.
    let avg_area = 0.8 * (20.0 * 90.0) + 0.2 * (30.0 * 180.0);
    let area = n_cells as f64 * avg_area / density;
    // Aspect 5:3, snapped up to whole rows / sites.
    let height = (((area * 3.0 / 5.0).sqrt() / 90.0).ceil() as Dbu) * 90;
    let width = ((area / height as f64 / 10.0).ceil() as Dbu) * 10;
    let mut d = Design::new(
        "bench",
        Technology::example(),
        Rect::new(0, 0, width, height),
    );
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("d", 30, 2));
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for i in 0..n_cells {
        let t = if rng() % 5 == 0 {
            CellTypeId(1)
        } else {
            CellTypeId(0)
        };
        let x = (rng() % (width as u64 - 100)) as Dbu;
        let y = (rng() % (height as u64 - 100)) as Dbu;
        d.add_cell(Cell::new(format!("c{i}"), t, Point::new(x, y)));
    }
    d
}

/// Faithful replica of the seed `run_parallel` (commit f6f06c3), with the
/// seed-faithful allocating evaluator. Kept here, out of the library, so the
/// optimized crate keeps no dead baseline code.
fn seed_run_parallel(
    state: &mut PlacementState<'_>,
    config: &LegalizerConfig,
    weights: &[i64],
) -> usize {
    let design = state.design();
    let threads = config.threads.max(1);
    let capacity = config.window_list_capacity.max(1);
    let mut failed = 0usize;

    let mut pending: VecDeque<(CellId, usize)> = cell_order(design, config.order)
        .into_iter()
        .filter(|&c| state.pos(c).is_none())
        .map(|c| (c, 0usize))
        .collect();
    let mut fallback_queue: Vec<CellId> = Vec::new();

    while !pending.is_empty() {
        let mut selected: Vec<(CellId, usize, Rect)> = Vec::new();
        let mut deferred: VecDeque<(CellId, usize)> = VecDeque::new();
        while let Some((cell, n)) = pending.pop_front() {
            if selected.len() >= capacity {
                deferred.push_back((cell, n));
                continue;
            }
            let win = window_for(design, cell, config, n);
            if selected.iter().any(|(_, _, w)| w.overlaps(win)) {
                deferred.push_back((cell, n));
            } else {
                selected.push((cell, n, win));
            }
        }

        let model = CostModel {
            reference: config.reference,
            normalize: config.normalize_curves,
            weights,
            oracle: None,
            io_penalty: config.io_penalty,
            rail_penalty: config.rail_penalty,
        };
        let results: Vec<Option<Insertion>> = if threads == 1 || selected.len() == 1 {
            selected
                .iter()
                .map(|&(cell, _, win)| best_insertion_reference(state, cell, win, &model))
                .collect()
        } else {
            let state_ref: &PlacementState<'_> = state;
            let model_ref = &model;
            let jobs = &selected;
            let mut out: Vec<Option<Insertion>> = Vec::new();
            std::thread::scope(|scope| {
                let chunk = jobs.len().div_ceil(threads);
                let mut handles = Vec::new();
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(jobs.len());
                    if lo >= hi {
                        break;
                    }
                    handles.push(scope.spawn(move || {
                        jobs[lo..hi]
                            .iter()
                            .map(|&(cell, _, win)| {
                                best_insertion_reference(state_ref, cell, win, model_ref)
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                for h in handles {
                    out.extend(h.join().expect("worker thread panicked"));
                }
            });
            out
        };

        for ((cell, n, _win), result) in selected.into_iter().zip(results) {
            match result {
                Some(ins) => apply_insertion(state, cell, &ins),
                None if n < config.max_expansions => deferred.push_front((cell, n + 1)),
                None => fallback_queue.push(cell),
            }
        }
        pending = deferred;
    }

    for cell in fallback_queue {
        match fallback_scan(state, cell, None) {
            Some(p) => state
                .place(cell, p)
                .expect("fallback position must be free"),
            None => failed += 1,
        }
    }
    failed
}

fn positions(d: &Design, state: &PlacementState<'_>) -> Vec<Option<Point>> {
    d.movable_cells().map(|c| state.pos(c)).collect()
}

/// Best-of-`reps` wall-clock seconds of `f` (each rep on a fresh state).
fn time_best<F: FnMut() -> Vec<Option<Point>>>(reps: usize, mut f: F) -> (f64, Vec<Option<Point>>) {
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..reps.max(1) {
        let t = Stopwatch::start();
        let p = f();
        let s = t.elapsed_seconds();
        if s < best {
            best = s;
        }
        out = p;
    }
    (best, out)
}

fn main() {
    let want_report = std::env::args().any(|a| a == "--report");
    let n_cells = env_usize("MCL_BENCH_CELLS", 4000);
    let reps = env_usize("MCL_BENCH_REPS", 3);
    let seed = env_usize("MCL_BENCH_SEED", 1234) as u64;
    let density = env_usize("MCL_BENCH_DENSITY_PCT", 45) as f64 / 100.0;
    let d = dense_design(n_cells, density, seed);
    let mut cfg = LegalizerConfig::total_displacement();
    cfg.window_list_capacity = 64;
    let weights = compute_weights(&d, cfg.weights);

    println!(
        "# MGL speedup bench — {} cells, density {:.0}%, core {}x{}, capacity {}, best of {}",
        n_cells,
        100.0 * density,
        d.core.xh - d.core.xl,
        d.core.yh - d.core.yl,
        cfg.window_list_capacity,
        reps
    );
    println!(
        "| {:>7} | {:>10} {:>12} | {:>10} {:>12} | {:>7} |",
        "threads", "seed s", "seed cell/s", "new s", "new cell/s", "speedup"
    );

    let mut rows = String::new();
    let mut seed1 = f64::NAN;
    let mut single_speedup = f64::NAN;
    let mut agg4 = f64::NAN;
    let mut new4 = f64::NAN;
    for &threads in &[1usize, 2, 4, 8] {
        let mut c = cfg.clone();
        c.threads = threads;

        let (seed_s, seed_pos) = time_best(reps, || {
            let mut state = PlacementState::new(&d);
            let failed = seed_run_parallel(&mut state, &c, &weights);
            assert_eq!(failed, 0, "seed scheduler failed cells");
            positions(&d, &state)
        });
        let mut perf = mcl_core::perf::PerfStats::default();
        let (new_s, new_pos) = time_best(reps, || {
            let mut state = PlacementState::new(&d);
            let stats = run_parallel(&mut state, &c, &weights, None);
            assert_eq!(stats.failed, 0, "new scheduler failed cells");
            perf = stats.perf;
            positions(&d, &state)
        });
        assert_eq!(
            seed_pos, new_pos,
            "schedulers must produce bit-identical placements at {threads} threads"
        );

        let speedup = seed_s / new_s;
        if threads == 1 {
            seed1 = seed_s;
            single_speedup = speedup;
        }
        if threads == 4 {
            agg4 = speedup;
            new4 = new_s;
        }
        println!(
            "| {:>7} | {:>10.3} {:>12.0} | {:>10.3} {:>12.0} | {:>6.2}x |",
            threads,
            seed_s,
            n_cells as f64 / seed_s,
            new_s,
            n_cells as f64 / new_s,
            speedup
        );
        let pct = |n: u64| 100.0 * n as f64 / perf.total_nanos.max(1) as f64;
        println!(
            "          rounds {}, windows {}, eval {:.0}% (x{:.2} par), select {:.1}%, \
             apply {:.1}%, fallback {:.1}%, dedup hit {:.0}%",
            perf.rounds,
            perf.windows_evaluated,
            pct(perf.eval_nanos),
            perf.eval_parallelism(),
            pct(perf.select_nanos),
            pct(perf.apply_nanos),
            pct(perf.fallback_nanos),
            100.0 * perf.dedup_hit_rate(),
        );
        rows.push_str(&format!(
            "    {{\"threads\": {}, \"seed_seconds\": {:.6}, \"new_seconds\": {:.6}, \
             \"seed_cells_per_sec\": {:.1}, \"new_cells_per_sec\": {:.1}, \
             \"speedup_vs_seed\": {:.3}}},\n",
            threads,
            seed_s,
            new_s,
            n_cells as f64 / seed_s,
            n_cells as f64 / new_s,
            speedup
        ));
    }
    let rows = rows.trim_end_matches(",\n").to_string();

    println!(
        "\nsingle-thread speedup {single_speedup:.2}x, aggregate speedup at 4 threads \
         (seed@4 / new@4) {agg4:.2}x, new@4 vs seed@1 {:.2}x",
        seed1 / new4
    );

    // Full three-stage pipeline at 4 threads on the same design: the
    // per-stage wall-time breakdown feeds `stage_breakdown` below, and
    // `--report` prints the whole structured run report.
    let mut pcfg = cfg.clone();
    pcfg.threads = 4;
    pcfg.clamp_threads_to_hardware = false;
    let (placed, pstats) = Legalizer::new(pcfg.clone()).run(&d);
    assert_eq!(pstats.mgl.failed, 0, "pipeline failed cells");
    let report = build_run_report(&placed, &pstats, &pcfg);
    if want_report {
        println!("\n{}", report.summary());
    }
    let breakdown: String = report
        .stage_seconds
        .iter()
        .map(|s| format!("\"{}\": {:.6}", s.name, s.seconds))
        .collect::<Vec<_>>()
        .join(", ");

    // Batch throughput: `MCL_BENCH_BATCH` design variants through one
    // shared Engine (cross-design batch scheduler, DESIGN.md §12) vs one
    // sequential `Legalizer::run` per design, at each thread count.
    // Bit-identity between the two is asserted per thread count, so the
    // ratio is pure scheduling: the batch runs designs on runner threads
    // with no per-design pool spawn, replica clone or round-sync traffic.
    // The batch workload is many small, sparse designs — the regime batch
    // scheduling exists for: per-design runtime is short, so the solo
    // column's fixed costs (pool spawn, replica clones, round sync) are a
    // large fraction of each run. Density is a separate knob from the main
    // sweep's because the two sections measure different things.
    let batch_n = env_usize("MCL_BENCH_BATCH", 16);
    let batch_cells = env_usize("MCL_BENCH_BATCH_CELLS", 40);
    let batch_density_pct = env_usize("MCL_BENCH_BATCH_DENSITY_PCT", 25) as Dbu;
    let batch_density = mcl_db::geom::dbu_to_f64(batch_density_pct) / 100.0;
    let variants: Vec<Design> = (0..batch_n)
        .map(|i| dense_design(batch_cells, batch_density, seed.wrapping_add(1 + i as u64)))
        .collect();
    // MGL-only, production window-list capacity: the batch scheduler moves
    // MGL rounds between threads; stages 2/3 are serial and identical in
    // both columns, so including them would only dilute the measured ratio
    // (the main sweep above is MGL-only for the same reason).
    let batch_cfg = {
        let mut c = LegalizerConfig::total_displacement();
        c.max_disp_matching = false;
        c.fixed_order_refine = false;
        c.clamp_threads_to_hardware = false;
        c
    };
    println!("\n# batch — {batch_n} designs x {batch_cells} cells, engine vs sequential solo");
    println!(
        "| {:>7} | {:>10} | {:>10} {:>12} | {:>7} |",
        "threads", "solo s", "engine s", "designs/sec", "speedup"
    );
    let mut batch_rows = String::new();
    let mut batch_speedup4 = f64::NAN;
    for &threads in &[1usize, 2, 4, 8] {
        let mut bc = batch_cfg.clone();
        bc.threads = threads;
        let (solo_s, solo_pos) = time_best(reps, || {
            variants
                .iter()
                .flat_map(|d| {
                    let (placed, stats) = Legalizer::new(bc.clone()).run(d);
                    assert_eq!(stats.mgl.failed, 0, "solo run failed cells");
                    placed.cells.iter().map(|c| c.pos).collect::<Vec<_>>()
                })
                .collect()
        });
        let (batch_s, batch_pos) = time_best(reps, || {
            let mut engine = Engine::new(bc.clone());
            engine
                .legalize_batch(&variants)
                .iter()
                .flat_map(|(placed, _)| placed.cells.iter().map(|c| c.pos))
                .collect()
        });
        assert_eq!(
            solo_pos, batch_pos,
            "engine batch must match per-design runs bit-identically at {threads} threads"
        );
        let n_dbu = batch_n as Dbu;
        let designs_per_sec = mcl_db::geom::dbu_to_f64(n_dbu) / batch_s;
        let batch_speedup = solo_s / batch_s;
        if threads == 4 {
            batch_speedup4 = batch_speedup;
        }
        println!(
            "| {threads:>7} | {solo_s:>10.3} | {batch_s:>10.3} {designs_per_sec:>12.1} | {batch_speedup:>6.2}x |"
        );
        batch_rows.push_str(&format!(
            "      {{\"threads\": {threads}, \"solo_seconds\": {solo_s:.6}, \
             \"engine_seconds\": {batch_s:.6}, \"designs_per_sec\": {designs_per_sec:.1}, \
             \"engine_speedup\": {batch_speedup:.3}}},\n"
        ));
    }
    let batch_rows = batch_rows.trim_end_matches(",\n").to_string();

    // The shared-worker regime: throttled admission (4 threads, 2 designs
    // in flight) leaves 2 eval workers interleaving both runners' rounds.
    // Still bit-identical; `cross_design_steals` > 0 shows the work
    // conservation actually engaged.
    let mut icfg = batch_cfg.clone();
    icfg.threads = 4;
    icfg.max_inflight_designs = 2;
    let mut steals = 0u64;
    let (inter_s, inter_pos) = time_best(reps, || {
        let mut engine = Engine::new(icfg.clone());
        let out = engine
            .legalize_batch(&variants)
            .iter()
            .flat_map(|(placed, _)| placed.cells.iter().map(|c| c.pos))
            .collect();
        steals = steals.max(engine.diag().cross_design_steals);
        out
    });
    {
        let mut bc = batch_cfg.clone();
        bc.threads = 4;
        let solo_pos: Vec<Option<Point>> = variants
            .iter()
            .flat_map(|d| {
                Legalizer::new(bc.clone())
                    .run(d)
                    .0
                    .cells
                    .iter()
                    .map(|c| c.pos)
                    .collect::<Vec<_>>()
            })
            .collect();
        assert_eq!(
            solo_pos, inter_pos,
            "interleaved batch must match per-design runs bit-identically"
        );
    }
    let inter_n = batch_n as Dbu;
    let inter_rate = mcl_db::geom::dbu_to_f64(inter_n) / inter_s;
    println!(
        "batch interleaved (4 threads, max-inflight 2): {inter_s:.3}s, \
         {inter_rate:.1} designs/sec, {steals} cross-design steals"
    );

    let json =
        format!
    (
        "{{\n  \"bench\": \"mgl_speedup\",\n  \"cells\": {n_cells},\n  \"density\": {density},\n  \
         \"seed\": {seed},\n  \
         \"window_list_capacity\": {cap},\n  \"reps\": {reps},\n  \"results\": [\n{rows}\n  ],\n  \
         \"single_thread_speedup\": {single_speedup:.3},\n  \
         \"aggregate_speedup_at_4_threads\": {agg4:.3},\n  \
         \"new_at_4_vs_seed_at_1\": {cross:.3},\n  \
         \"stage_breakdown\": {{{breakdown}}},\n  \
         \"batch\": {{\"designs\": {batch_n}, \"cells_per_design\": {batch_cells}, \
         \"density\": {batch_density}, \
         \"engine_speedup_at_4_threads\": {batch_speedup4:.3}, \
         \"interleaved_seconds\": {inter_s:.6}, \
         \"cross_design_steals\": {steals},\n    \"results\": [\n{batch_rows}\n    ]}}\n}}\n",
        cross = seed1 / new4,
        cap = cfg.window_list_capacity,
    );
    std::fs::write("BENCH_mgl.json", &json).expect("write BENCH_mgl.json");
    println!("[wrote BENCH_mgl.json]");
}
