//! Table 3 — effectiveness of the two post-processing stages.
//!
//! For each IC/CAD 2017 preset: average and maximum displacement before
//! (MGL only) and after (MGL + matching + fixed row & order MCF).

use mcl_bench::{evaluate, fnum, norm_avg, save_artifact, scale_from_env, threads_from_env};
use mcl_core::{Legalizer, LegalizerConfig};
use mcl_gen::generate::generate;
use mcl_gen::presets::{iccad17_config, ICCAD17};

fn main() {
    let scale = scale_from_env();
    println!("# Table 3 — post-processing ablation (scale {scale})\n");
    println!(
        "| {:<20} | {:>10} {:>10} | {:>10} {:>10} |",
        "Benchmark", "AvgD.Bef", "AvgD.Aft", "MaxD.Bef", "MaxD.Aft"
    );

    let mut avg_b = Vec::new();
    let mut avg_a = Vec::new();
    let mut max_b = Vec::new();
    let mut max_a = Vec::new();
    let mut table = String::new();
    for stats in &ICCAD17 {
        let cfg = iccad17_config(stats, scale);
        let g = match generate(&cfg) {
            Ok(g) => g,
            Err(e) => {
                println!("| {:<20} | generation failed: {e} |", stats.name);
                continue;
            }
        };
        let d = &g.design;

        let mut stage1_cfg = LegalizerConfig::contest();
        stage1_cfg.threads = threads_from_env();
        stage1_cfg.max_disp_matching = false;
        stage1_cfg.fixed_order_refine = false;
        let before = evaluate(d, |d| Legalizer::new(stage1_cfg.clone()).run(d).0);

        // Run the post-processing on the stage-1 output (the paper's
        // "before/after" is exactly this refinement).
        let mut full_cfg = LegalizerConfig::contest();
        full_cfg.threads = threads_from_env();
        let after = evaluate(&before.design, |d| {
            Legalizer::new(full_cfg.clone())
                .refine(d)
                .expect("stage-1 output is legal")
                .0
        });
        assert!(after.report.is_legal());

        let line = format!(
            "| {:<20} | {:>10} {:>10} | {:>10} {:>10} |",
            stats.name,
            fnum(before.metrics.avg_disp_rows, 3),
            fnum(after.metrics.avg_disp_rows, 3),
            fnum(before.metrics.max_disp_rows, 1),
            fnum(after.metrics.max_disp_rows, 1),
        );
        println!("{line}");
        table.push_str(&line);
        table.push('\n');
        avg_b.push(before.metrics.avg_disp_rows);
        avg_a.push(after.metrics.avg_disp_rows);
        max_b.push(before.metrics.max_disp_rows);
        max_a.push(after.metrics.max_disp_rows);
    }

    println!();
    println!(
        "Norm. avg (before / after): avg disp {:.3}, max disp {:.3}",
        norm_avg(&avg_b, &avg_a),
        norm_avg(&max_b, &max_a),
    );
    save_artifact("table3.txt", &table);
}
