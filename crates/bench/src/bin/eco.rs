//! ECO delta-latency bench — resident-session deltas vs full `run_eco`.
//!
//! Generates a 100k-cell mcl-gen benchmark, legalizes a base placement with
//! the full pipeline, then measures two ways of absorbing a small delta
//! (default 64 re-targeted cells):
//!
//! - **full**: a from-scratch `run_eco` on the mutated candidate with
//!   `eco_delta` off — every post stage walks the whole design;
//! - **delta**: a resident [`EcoSession`] pushing the same-sized deltas
//!   through the dirty-window pipeline, including certificate splicing.
//!
//! Per-delta wall times are reduced to p50/p99 and an `eco` entry —
//! `p50_delta_ms`, `p99_delta_ms`, `windows_dirty`, `speedup_vs_full` — is
//! spliced into `BENCH_mgl.json` next to the speedup/scale sections, so the
//! interactive-latency trajectory is tracked per PR.
//!
//! Knobs: `MCL_ECO_CELLS` (default 100000), `MCL_ECO_DELTA` (cells per
//! delta, default 64), `MCL_ECO_DELTAS` (deltas pushed through the session,
//! default 12), `MCL_ECO_THREADS` (default 4), `MCL_ECO_SEED`,
//! `MCL_ECO_DENSITY_PCT` (default 45).
//!
//! CI gates: `MCL_ECO_MAX_P99_MS` (ceiling on the delta p99) and
//! `MCL_ECO_MIN_SPEEDUP` (floor on `speedup_vs_full`) make the binary exit
//! non-zero on regression, so the `eco-smoke` job needs no JSON
//! post-processing.

use mcl_core::config::LegalizerConfig;
use mcl_core::{EcoSession, Legalizer};
use mcl_gen::{generate, GeneratorConfig};
use mcl_obs::clock::Stopwatch;
use mcl_obs::CounterKind;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

/// The bench's legalizer configuration: the scale sweep's bounded local
/// search on top of the total-displacement pipeline, so the full-run
/// reference is the same configuration a production 100k run would use.
fn eco_config(n: usize, threads: usize) -> LegalizerConfig {
    let mut cfg = LegalizerConfig::total_displacement();
    cfg.threads = threads;
    cfg.clamp_threads_to_hardware = false;
    cfg.max_expansions = env_usize("MCL_ECO_MAX_EXPANSIONS", 3);
    cfg.window_list_capacity = (n / 32).max(64);
    cfg
}

/// Replaces or appends the top-level `"eco"` entry of `BENCH_mgl.json`.
/// Same textual contract as the scale bench's splice: writers of this file
/// emit a fixed layout and each appender owns its own trailing key, so the
/// splice truncates at an existing `"eco"` key or at the closing brace and
/// re-appends.
fn splice_eco_entry(existing: Option<String>, eco_json: &str) -> String {
    let entry = format!(",\n  \"eco\": {eco_json}\n}}\n");
    match existing {
        Some(doc) => {
            let head = match doc.find(",\n  \"eco\":") {
                Some(pos) => &doc[..pos],
                None => doc.trim_end().trim_end_matches('}').trim_end(),
            };
            format!("{head}{entry}")
        }
        None => format!("{{\n  \"bench\": \"mgl_speedup\"{entry}"),
    }
}

/// Index of the `q`-quantile in a sorted sample of `n` (nearest-rank).
fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn main() {
    let n = env_usize("MCL_ECO_CELLS", 100_000);
    let delta_cells = env_usize("MCL_ECO_DELTA", 64);
    let deltas = env_usize("MCL_ECO_DELTAS", 12);
    let threads = env_usize("MCL_ECO_THREADS", 4);
    let seed = env_usize("MCL_ECO_SEED", 42) as u64;
    let density = env_usize("MCL_ECO_DENSITY_PCT", 45) as f64 / 100.0;
    let max_p99 = env_f64("MCL_ECO_MAX_P99_MS");
    let min_speedup = env_f64("MCL_ECO_MIN_SPEEDUP");

    println!(
        "# ECO delta bench — {n} cells, {delta_cells}-cell deltas, {threads} threads, \
         density {:.0}%",
        100.0 * density
    );

    let defaults = GeneratorConfig::default();
    let gen = generate(&GeneratorConfig {
        name: format!("eco_{n}"),
        seed,
        num_cells: n,
        density,
        sigma_rows: 2.0,
        height_mix: [0.80, 0.20, 0.0, 0.0],
        hotspots: 0,
        fences: 0,
        fence_cell_fraction: 0.0,
        ..defaults
    })
    .expect("eco benchmark must pack");

    let cfg = eco_config(n, threads);
    let t = Stopwatch::start();
    let (base, base_stats) = Legalizer::new(cfg.clone()).run(&gen.design);
    assert_eq!(base_stats.mgl.failed, 0, "base legalization failed cells");
    println!("base legalize: {:.2}s", t.elapsed_seconds());

    // Full-run reference: the same delta absorbed by a from-scratch
    // `run_eco` (eco_delta off) — post stages walk all `n` cells.
    let moves = EcoSession::synthesize_delta(&base, delta_cells, seed ^ 0xf011);
    let mut candidate = base.clone();
    for &(cell, gp) in &moves {
        let c = &mut candidate.cells[cell.0 as usize];
        c.gp = gp;
        c.pos = None;
    }
    let t = Stopwatch::start();
    let (_full_out, full_stats) = Legalizer::new(cfg.clone())
        .run_eco(&candidate)
        .expect("full run_eco reference must succeed");
    let full_ms = t.elapsed_seconds() * 1e3;
    assert_eq!(full_stats.mgl.failed, 0, "full run_eco failed cells");
    println!("full run_eco reference: {full_ms:.2}ms");

    // Resident session: the same-sized deltas through the dirty-window
    // pipeline, certificate splicing included.
    let mut session = EcoSession::open(base, cfg).expect("base placement must open a session");
    let mut delta_ms = Vec::with_capacity(deltas);
    let mut windows_dirty = 0u64;
    let mut cells_reused = 0u64;
    for round in 0..deltas {
        let moves =
            EcoSession::synthesize_delta(session.design(), delta_cells, seed + 1 + round as u64);
        let t = Stopwatch::start();
        let (stats, _log) = session
            .apply_delta(&moves)
            .expect("session delta must succeed");
        let ms = t.elapsed_seconds() * 1e3;
        windows_dirty = stats.obs.counter(CounterKind::EcoWindowsDirty);
        cells_reused = stats.obs.counter(CounterKind::EcoCellsReused);
        println!(
            "delta {round:>2}: {ms:>8.2}ms  (windows dirty {windows_dirty}, cells reused \
             {cells_reused})"
        );
        delta_ms.push(ms);
    }
    delta_ms.sort_by(|a, b| a.total_cmp(b));
    let p50 = quantile_ms(&delta_ms, 0.50);
    let p99 = quantile_ms(&delta_ms, 0.99);
    let speedup = full_ms / p99;
    println!(
        "p50 {p50:.2}ms, p99 {p99:.2}ms, full {full_ms:.2}ms -> speedup_vs_full {speedup:.1}x"
    );

    let eco_json = format!(
        "{{\"preset_cells\": {n}, \"delta_cells\": {delta_cells}, \"deltas\": {deltas}, \
         \"threads\": {threads},\n    \"p50_delta_ms\": {p50:.3}, \"p99_delta_ms\": {p99:.3}, \
         \"windows_dirty\": {windows_dirty}, \"cells_reused\": {cells_reused},\n    \
         \"full_eco_ms\": {full_ms:.3}, \"speedup_vs_full\": {speedup:.2}}}"
    );
    let doc = splice_eco_entry(std::fs::read_to_string("BENCH_mgl.json").ok(), &eco_json);
    std::fs::write("BENCH_mgl.json", doc).expect("write BENCH_mgl.json");
    println!("[wrote BENCH_mgl.json eco entry]");

    if let Some(ceiling) = max_p99 {
        assert!(
            p99 <= ceiling,
            "delta-latency ceiling violated: p99 {p99:.2}ms > {ceiling}ms"
        );
        println!("p99 ok: {p99:.2} <= {ceiling}ms");
    }
    if let Some(floor) = min_speedup {
        assert!(
            speedup >= floor,
            "speedup floor violated: {speedup:.1}x < {floor}x vs full run_eco"
        );
        println!("speedup ok: {speedup:.1} >= {floor}x");
    }
}

#[cfg(test)]
mod tests {
    use super::{quantile_ms, splice_eco_entry};

    #[test]
    fn splice_appends_when_absent() {
        let doc =
            "{\n  \"bench\": \"mgl_speedup\",\n  \"scale\": {\"threads\": 4}\n}\n".to_string();
        let out = splice_eco_entry(Some(doc), "{\"deltas\": 12}");
        assert!(
            out.contains("\"scale\": {\"threads\": 4},\n  \"eco\": {\"deltas\": 12}\n}\n"),
            "{out}"
        );
    }

    #[test]
    fn splice_replaces_when_present() {
        let doc = "{\n  \"cells\": 4000,\n  \"eco\": {\"deltas\": 2}\n}\n".to_string();
        let out = splice_eco_entry(Some(doc), "{\"deltas\": 8}");
        assert!(!out.contains("\"deltas\": 2"), "{out}");
        assert!(out.contains("\"eco\": {\"deltas\": 8}"), "{out}");
        assert_eq!(out.matches("\"eco\"").count(), 1);
    }

    #[test]
    fn splice_creates_document_when_missing() {
        let out = splice_eco_entry(None, "{}");
        assert!(out.starts_with("{\n  \"bench\": \"mgl_speedup\","), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
    }

    #[test]
    fn nearest_rank_quantiles() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_ms(&s, 0.50), 2.0);
        assert_eq!(quantile_ms(&s, 0.99), 4.0);
        assert_eq!(quantile_ms(&[7.5], 0.99), 7.5);
    }
}
