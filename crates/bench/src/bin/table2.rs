//! Table 2 — comparison with state-of-the-art displacement-driven
//! legalizers on the 20 ISPD-2015-derived presets (10% of cells converted
//! to double height, half width).
//!
//! Columns follow the paper: total displacement in *sites* and runtime for
//! MLL ("\[12\]-Imp"), Abacus-style ("\[7\]"), LCP ("\[9\]") and ours. Fences and
//! routability constraints are disabled, objective = total displacement.

use mcl_baselines::{legalize_abacus, legalize_lcp, legalize_mll};
use mcl_bench::{evaluate, fnum, norm_avg, save_artifact, scale_from_env, threads_from_env};
use mcl_core::{Legalizer, LegalizerConfig};
use mcl_gen::generate::generate;
use mcl_gen::presets::{ispd15_config, ISPD15};

fn main() {
    let scale = scale_from_env();
    println!("# Table 2 — total displacement vs prior work (scale {scale})\n");
    println!(
        "| {:<16} | {:>7} | {:>5} | {:>10} {:>10} {:>10} {:>10} | {:>6} {:>6} {:>6} {:>6} |",
        "Benchmark",
        "#Cells",
        "Dens",
        "MLL[12]",
        "Abacus[7]",
        "LCP[9]",
        "Ours",
        "s.12",
        "s.7",
        "s.9",
        "s.our"
    );

    let mut disp: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut time: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut table = String::new();
    for stats in &ISPD15 {
        let cfg = ispd15_config(stats, scale);
        let g = match generate(&cfg) {
            Ok(g) => g,
            Err(e) => {
                println!("| {:<16} | generation failed: {e} |", stats.name);
                continue;
            }
        };
        let d = &g.design;

        let mll = evaluate(d, |d| legalize_mll(d).0);
        let aba = evaluate(d, |d| legalize_abacus(d).0);
        let lcp = evaluate(d, |d| legalize_lcp(d).0);
        let mut lcfg = LegalizerConfig::total_displacement();
        lcfg.threads = threads_from_env();
        let ours = evaluate(d, |d| Legalizer::new(lcfg.clone()).run(d).0);
        assert!(ours.report.is_legal(), "{}: ours must be legal", stats.name);

        let line = format!(
            "| {:<16} | {:>7} | {:>5.2} | {:>10} {:>10} {:>10} {:>10} | {:>6} {:>6} {:>6} {:>6} |",
            stats.name,
            d.cells.len(),
            d.density(),
            fnum(mll.metrics.total_disp_sites, 0),
            fnum(aba.metrics.total_disp_sites, 0),
            fnum(lcp.metrics.total_disp_sites, 0),
            fnum(ours.metrics.total_disp_sites, 0),
            fnum(mll.seconds, 2),
            fnum(aba.seconds, 2),
            fnum(lcp.seconds, 2),
            fnum(ours.seconds, 2),
        );
        println!("{line}");
        table.push_str(&line);
        table.push('\n');
        for (k, e) in [&mll, &aba, &lcp, &ours].iter().enumerate() {
            disp[k].push(e.metrics.total_disp_sites);
            time[k].push(e.seconds);
        }
    }

    println!();
    println!(
        "Norm. avg total displacement (x / ours): MLL {:.2}, Abacus {:.2}, LCP {:.2}, Ours 1.00",
        norm_avg(&disp[0], &disp[3]),
        norm_avg(&disp[1], &disp[3]),
        norm_avg(&disp[2], &disp[3]),
    );
    println!(
        "Total runtime: MLL {:.1}s, Abacus {:.1}s, LCP {:.1}s, Ours {:.1}s",
        time[0].iter().sum::<f64>(),
        time[1].iter().sum::<f64>(),
        time[2].iter().sum::<f64>(),
        time[3].iter().sum::<f64>()
    );
    save_artifact("table2.txt", &table);
}
