//! Figure 4 — the four displacement-curve types.
//!
//! Samples the curves A-D as used by the insertion evaluator and writes a
//! CSV (x, A, B, C, D) plus an ASCII sketch, matching the paper's figure:
//!
//! - A: right-side cell, GP at/left of current (flat, then rising),
//! - B: left-side cell, GP at/right of current (falling, then flat),
//! - C: right-side cell, GP right of current (flat, falling to 0, rising),
//! - D: left-side cell, GP left of current (falling to 0, rising, flat).

use mcl_bench::save_artifact;
use mcl_core::curve::PwlCurve;

fn main() {
    println!("# Figure 4 — displacement curve types\n");
    let a = PwlCurve::type_a(40, 10, 1);
    let b = PwlCurve::type_b(60, 10, 1);
    let c = PwlCurve::type_c(20, 30, 1);
    let d = PwlCurve::type_d(30, 30, 1);

    let mut csv = String::from("x,A,B,C,D\n");
    let mut rows = Vec::new();
    for x in (0..=100).step_by(5) {
        let vals = [a.eval(x), b.eval(x), c.eval(x), d.eval(x)];
        csv.push_str(&format!(
            "{x},{},{},{},{}\n",
            vals[0], vals[1], vals[2], vals[3]
        ));
        rows.push((x, vals));
    }
    // ASCII sketch, one panel per type.
    for (name, idx) in [("A", 0usize), ("B", 1), ("C", 2), ("D", 3)] {
        println!("type {name}:");
        let max = rows.iter().map(|(_, v)| v[idx]).max().unwrap().max(1);
        for level in (0..=4).rev() {
            let thresh = max * level / 4;
            let line: String = rows
                .iter()
                .map(|(_, v)| {
                    if v[idx] >= thresh && (v[idx] > 0 || level == 0) {
                        '*'
                    } else {
                        ' '
                    }
                })
                .collect();
            println!("  {line}");
        }
        println!();
    }
    save_artifact("fig4_curves.csv", &csv);

    // The key structural claims of the figure, asserted:
    assert_eq!(a.eval(0), 10, "A flat at base");
    assert!(a.eval(80) > a.eval(40), "A rises");
    assert!(b.eval(0) > b.eval(60), "B falls");
    assert_eq!(b.eval(100), 10, "B flat at base");
    assert_eq!(c.eval(50), 0, "C touches zero at the GP-aligned point");
    assert_eq!(d.eval(30), 0, "D touches zero at the GP-aligned point");
    println!("structural checks passed");
}
