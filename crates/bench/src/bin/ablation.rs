//! Ablation study over the design choices DESIGN.md calls out.
//!
//! One mid-size fenced benchmark, one row per configuration variant:
//! stages toggled, curve normalization, displacement reference, `n₀`,
//! `δ₀`, window size and processing order.

use mcl_bench::{evaluate, fnum, save_artifact, scale_from_env, threads_from_env};
use mcl_core::{CellOrder, DisplacementReference, Legalizer, LegalizerConfig};
use mcl_gen::generate::generate;
use mcl_gen::presets::{iccad17_config, ICCAD17};

fn main() {
    let stats = ICCAD17.iter().find(|s| s.name == "des_perf_b_md2").unwrap();
    let cfg = iccad17_config(stats, scale_from_env());
    let g = generate(&cfg).expect("preset generates");
    let d = &g.design;
    println!(
        "# Ablation on {} ({} cells, density {:.2})\n",
        d.name,
        d.cells.len(),
        d.density()
    );
    println!(
        "| {:<28} | {:>8} | {:>8} | {:>5} | {:>5} | {:>8} | {:>6} |",
        "variant", "AvgD", "MaxD", "Pins", "Edge", "Score", "sec"
    );

    let base = || {
        let mut c = LegalizerConfig::contest();
        c.threads = threads_from_env();
        c
    };
    let variants: Vec<(&str, LegalizerConfig)> = vec![
        ("full flow (default)", base()),
        ("no stage 2 (matching)", {
            let mut c = base();
            c.max_disp_matching = false;
            c
        }),
        ("no stage 3 (dual MCF)", {
            let mut c = base();
            c.fixed_order_refine = false;
            c
        }),
        ("stage 1 only", {
            let mut c = base();
            c.max_disp_matching = false;
            c.fixed_order_refine = false;
            c
        }),
        ("no curve normalization", {
            let mut c = base();
            c.normalize_curves = false;
            c
        }),
        ("MLL curves (reference=cur)", {
            let mut c = base();
            c.reference = DisplacementReference::Current;
            c
        }),
        ("no routability handling", {
            let mut c = base();
            c.routability = false;
            c
        }),
        ("n0 = 0 (no max-disp ext)", {
            let mut c = base();
            c.n0_factor = 0;
            c
        }),
        ("n0 = 16", {
            let mut c = base();
            c.n0_factor = 16;
            c
        }),
        ("delta0 = 5 rows", {
            let mut c = base();
            c.delta0_rows = 5.0;
            c
        }),
        ("delta0 = 20 rows", {
            let mut c = base();
            c.delta0_rows = 20.0;
            c
        }),
        ("window 12 sites", {
            let mut c = base();
            c.window_sites = 12;
            c
        }),
        ("window 48 sites", {
            let mut c = base();
            c.window_sites = 48;
            c
        }),
        ("order = gp-x", {
            let mut c = base();
            c.order = CellOrder::GpX;
            c
        }),
        ("order = shuffled", {
            let mut c = base();
            c.order = CellOrder::HeightThenShuffled;
            c
        }),
        ("order = height-then-width", {
            let mut c = base();
            c.order = CellOrder::HeightThenWidth;
            c
        }),
    ];

    let mut table = String::new();
    for (name, cfg) in variants {
        let e = evaluate(d, |d| Legalizer::new(cfg.clone()).run(d).0);
        assert!(e.report.is_legal(), "{name} must stay legal");
        let line = format!(
            "| {:<28} | {:>8} | {:>8} | {:>5} | {:>5} | {:>8} | {:>6} |",
            name,
            fnum(e.metrics.avg_disp_rows, 4),
            fnum(e.metrics.max_disp_rows, 1),
            e.report.pin_shorts + e.report.pin_access,
            e.report.edge_spacing,
            fnum(e.score, 4),
            fnum(e.seconds, 2),
        );
        println!("{line}");
        table.push_str(&line);
        table.push('\n');
    }
    save_artifact("ablation.txt", &table);
}
