//! Table 1 — comparison with the IC/CAD 2017 contest champion (stand-in).
//!
//! For each of the 16 contest presets: average/maximum displacement (rows),
//! HPWL increase, pin access/short and edge-spacing violations, contest
//! score S (Eq. 10) and runtime — for the greedy champion stand-in ("1st")
//! and the full three-stage legalizer ("Ours").

use mcl_baselines::legalize_tetris;
use mcl_bench::{evaluate, fnum, norm_avg, save_artifact, scale_from_env, threads_from_env};
use mcl_core::{Legalizer, LegalizerConfig};
use mcl_gen::generate::generate;
use mcl_gen::presets::{iccad17_config, ICCAD17};

fn main() {
    let scale = scale_from_env();
    println!("# Table 1 — ours vs contest champion stand-in (scale {scale})\n");
    println!(
        "| {:<20} | {:>6} | {:>5} | {:>9} {:>9} | {:>8} {:>8} | {:>7} {:>7} | {:>6} {:>6} | {:>6} {:>6} | {:>7} {:>7} | {:>6} {:>6} |",
        "Benchmark", "#Cells", "Dens",
        "AvgD.1st", "AvgD.Our", "MaxD.1st", "MaxD.Our",
        "HP%.1st", "HP%.Our", "Pin.1st", "Pin.Our",
        "Edge.1st", "Edge.Our", "S.1st", "S.Our", "s.1st", "s.Our"
    );

    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 10];
    let mut table = String::new();
    for stats in &ICCAD17 {
        let cfg = iccad17_config(stats, scale);
        let g = match generate(&cfg) {
            Ok(g) => g,
            Err(e) => {
                println!("| {:<20} | generation failed: {e} |", stats.name);
                continue;
            }
        };
        let d = &g.design;

        let champ = evaluate(d, |d| legalize_tetris(d).0);
        let mut lcfg = LegalizerConfig::contest();
        lcfg.threads = threads_from_env();
        let ours = evaluate(d, |d| Legalizer::new(lcfg.clone()).run(d).0);

        assert!(ours.report.is_legal(), "{}: ours must be legal", stats.name);
        assert!(
            champ.report.is_legal(),
            "{}: champ must be legal",
            stats.name
        );

        let line = format!(
            "| {:<20} | {:>6} | {:>5.2} | {:>9} {:>9} | {:>8} {:>8} | {:>7} {:>7} | {:>6} {:>6} | {:>6} {:>6} | {:>7} {:>7} | {:>6} {:>6} |",
            stats.name,
            d.cells.len(),
            d.density(),
            fnum(champ.metrics.avg_disp_rows, 3),
            fnum(ours.metrics.avg_disp_rows, 3),
            fnum(champ.metrics.max_disp_rows, 1),
            fnum(ours.metrics.max_disp_rows, 1),
            fnum(100.0 * champ.metrics.s_hpwl, 2),
            fnum(100.0 * ours.metrics.s_hpwl, 2),
            champ.report.pin_shorts + champ.report.pin_access,
            ours.report.pin_shorts + ours.report.pin_access,
            champ.report.edge_spacing,
            ours.report.edge_spacing,
            fnum(champ.score, 3),
            fnum(ours.score, 3),
            fnum(champ.seconds, 2),
            fnum(ours.seconds, 2),
        );
        println!("{line}");
        table.push_str(&line);
        table.push('\n');

        let push = |cols: &mut Vec<Vec<f64>>, idx: usize, v: f64| cols[idx].push(v);
        push(&mut cols, 0, champ.metrics.avg_disp_rows);
        push(&mut cols, 1, ours.metrics.avg_disp_rows);
        push(&mut cols, 2, champ.metrics.max_disp_rows);
        push(&mut cols, 3, ours.metrics.max_disp_rows);
        push(
            &mut cols,
            4,
            (champ.report.pin_shorts + champ.report.pin_access) as f64,
        );
        push(
            &mut cols,
            5,
            (ours.report.pin_shorts + ours.report.pin_access) as f64,
        );
        push(&mut cols, 6, champ.score);
        push(&mut cols, 7, ours.score);
        push(&mut cols, 8, champ.seconds);
        push(&mut cols, 9, ours.seconds);
    }

    println!();
    println!(
        "Norm. avg (champion / ours): avg disp {:.2}, max disp {:.2}, score {:.2}",
        norm_avg(&cols[0], &cols[1]),
        norm_avg(&cols[2], &cols[3]),
        norm_avg(&cols[6], &cols[7]),
    );
    println!(
        "Total pin violations: champion {}, ours {}",
        cols[4].iter().sum::<f64>(),
        cols[5].iter().sum::<f64>()
    );
    println!(
        "Total runtime: champion {:.1}s, ours {:.1}s",
        cols[8].iter().sum::<f64>(),
        cols[9].iter().sum::<f64>()
    );
    save_artifact("table1.txt", &table);
}
