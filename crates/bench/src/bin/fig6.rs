//! Figure 6 — before/after the maximum-displacement optimization.
//!
//! Runs stage 1 on a fenced IC/CAD preset, renders the displacement vectors
//! of the worst cell-type group (red cells, red lines to GP), applies the
//! stage-2 matching and renders the same group again — the paper's Fig. 6.

use mcl_bench::{scale_from_env, threads_from_env};
use mcl_core::{Legalizer, LegalizerConfig};
use mcl_db::prelude::*;
use mcl_gen::generate::generate;
use mcl_gen::presets::{iccad17_config, ICCAD17};
use mcl_viz::{render_svg, SvgOptions};

fn main() {
    println!("# Figure 6 — max displacement optimization, before/after\n");
    let stats = ICCAD17.iter().find(|s| s.name == "fft_2_md2").unwrap();
    let cfg = iccad17_config(stats, scale_from_env().max(0.05));
    let g = generate(&cfg).expect("preset generates");

    let mut stage1 = LegalizerConfig::contest();
    stage1.threads = threads_from_env();
    stage1.max_disp_matching = false;
    stage1.fixed_order_refine = false;
    let (before, s) = Legalizer::new(stage1).run(&g.design);
    assert_eq!(s.mgl.failed, 0);

    // Worst group by max displacement.
    let mut worst: Option<(CellTypeId, i64)> = None;
    for id in before.movable_cells() {
        let c = &before.cells[id.0 as usize];
        let disp = c.displacement();
        if worst.map(|(_, w)| disp > w).unwrap_or(true) {
            worst = Some((c.type_id, disp));
        }
    }
    let (wtype, wdisp) = worst.unwrap();
    let before_max = Metrics::measure(&before).max_disp_rows;
    println!(
        "worst group: type {} (displacement {wdisp} dbu, design max {:.1} rows)",
        before.cell_types[wtype.0 as usize].name, before_max
    );

    let mut post = LegalizerConfig::contest();
    post.threads = threads_from_env();
    post.fixed_order_refine = false; // isolate stage 2, as in the figure
    let (after, _) = Legalizer::new(post).refine(&before).expect("legal input");
    let after_max = Metrics::measure(&after).max_disp_rows;
    println!("max displacement: before {before_max:.2} rows -> after {after_max:.2} rows");
    assert!(after_max <= before_max + 1e-9);

    let opts = SvgOptions {
        highlight_type: Some(wtype),
        min_disp: before.tech.row_height,
        ..SvgOptions::default()
    };
    let dir = mcl_bench::out_dir();
    std::fs::write(dir.join("fig6_before.svg"), render_svg(&before, &opts)).unwrap();
    std::fs::write(dir.join("fig6_after.svg"), render_svg(&after, &opts)).unwrap();
    std::fs::write(
        dir.join("fig6_hist_before.svg"),
        mcl_viz::render_disp_histogram(&before, 40),
    )
    .unwrap();
    std::fs::write(
        dir.join("fig6_hist_after.svg"),
        mcl_viz::render_disp_histogram(&after, 40),
    )
    .unwrap();
    println!(
        "[wrote {}/fig6_before.svg, fig6_after.svg + displacement histograms]",
        dir.display()
    );
}
