//! MGL scale sweep — throughput and peak memory at 10k/100k/1M cells.
//!
//! Generates mcl-gen benchmarks at each requested size (ascending, so the
//! process-lifetime `VmHWM` high-water mark approximates a per-size peak),
//! runs the MGL stage through the production parallel scheduler, and
//! splices a `scale` entry — `cells_per_sec` and `peak_rss_kb` per size —
//! into `BENCH_mgl.json` next to the speedup bench's sections, so the
//! scaling trajectory is tracked per PR alongside the 4k-cell numbers.
//!
//! Knobs: `MCL_SCALE_SIZES` (comma-separated cell counts, default
//! `10000,100000,1000000`), `MCL_SCALE_THREADS` (default 4),
//! `MCL_SCALE_SEED`, `MCL_SCALE_DENSITY_PCT` (default 45).
//!
//! CI gates: `MCL_SCALE_FLOOR_CPS` (minimum cells/sec, checked on the
//! largest size) and `MCL_SCALE_MAX_RSS_KB` (ceiling on the final peak
//! RSS) make the binary exit non-zero on regression, so the `scale-smoke`
//! job needs no JSON post-processing.

use mcl_bench::{parse_vm_hwm_kb, peak_rss_kb};
use mcl_core::config::LegalizerConfig;
use mcl_core::mgl::compute_weights;
use mcl_core::scheduler::run_parallel;
use mcl_core::PlacementState;
use mcl_gen::{generate, GeneratorConfig};
use mcl_obs::clock::Stopwatch;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

/// The sweep's generator configuration at `n` cells: the same 80/20
/// single/double-row mix and 45% density as the 4k-cell speedup bench, so
/// `cells_per_sec` across sizes is an apples-to-apples scaling curve
/// against the 4k reference rate. `MCL_SCALE_MIX` opts into heavier
/// multi-row mixes (e.g. `0.82,0.10,0.05,0.03`) for stress runs.
fn scale_config(n: usize, seed: u64, density: f64) -> GeneratorConfig {
    let sigma_rows = std::env::var("MCL_SCALE_SIGMA")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    let height_mix = std::env::var("MCL_SCALE_MIX")
        .ok()
        .and_then(|s| {
            let v: Vec<f64> = s.split(',').filter_map(|x| x.trim().parse().ok()).collect();
            <[f64; 4]>::try_from(v).ok()
        })
        .unwrap_or([0.80, 0.20, 0.0, 0.0]);
    let defaults = GeneratorConfig::default();
    GeneratorConfig {
        name: format!("scale_{n}"),
        seed,
        num_cells: n,
        density,
        sigma_rows,
        height_mix,
        hotspots: 0,
        fences: 0,
        fence_cell_fraction: 0.0,
        edge_classes: env_usize("MCL_SCALE_EDGE_CLASSES", defaults.edge_classes),
        rails: env_usize("MCL_SCALE_RAILS", 1) != 0,
        ..defaults
    }
}

/// Replaces or appends the top-level `"scale"` entry of `BENCH_mgl.json`.
/// Both writers of this file emit a fixed layout (the speedup bench writes
/// the document, this bin always appends `scale` as the last key), so the
/// splice is textual: truncate at an existing `"scale"` key or at the
/// closing brace, then re-append.
fn splice_scale_entry(existing: Option<String>, scale_json: &str) -> String {
    let entry = format!(",\n  \"scale\": {scale_json}\n}}\n");
    match existing {
        Some(doc) => {
            let head = match doc.find(",\n  \"scale\":") {
                Some(pos) => &doc[..pos],
                None => doc.trim_end().trim_end_matches('}').trim_end(),
            };
            format!("{head}{entry}")
        }
        None => format!("{{\n  \"bench\": \"mgl_speedup\"{entry}"),
    }
}

fn main() {
    let sizes: Vec<usize> = std::env::var("MCL_SCALE_SIZES")
        .unwrap_or_else(|_| "10000,100000,1000000".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    assert!(!sizes.is_empty(), "MCL_SCALE_SIZES parsed to no sizes");
    let threads = env_usize("MCL_SCALE_THREADS", 4);
    let seed = env_usize("MCL_SCALE_SEED", 42) as u64;
    let density = env_usize("MCL_SCALE_DENSITY_PCT", 45) as f64 / 100.0;
    let floor_cps = env_u64("MCL_SCALE_FLOOR_CPS");
    let max_rss = env_u64("MCL_SCALE_MAX_RSS_KB");

    println!(
        "# MGL scale sweep — {threads} threads, density {:.0}%",
        100.0 * density
    );
    println!(
        "| {:>9} | {:>8} | {:>9} | {:>12} | {:>11} | {:>6} |",
        "cells", "gen s", "mgl s", "cells/sec", "peak rss kb", "rounds"
    );

    let mut rows = String::new();
    let mut last_cps = 0.0f64;
    for &n in &sizes {
        let tg = Stopwatch::start();
        let gen = generate(&scale_config(n, seed, density)).expect("scale benchmark must pack");
        let gen_s = tg.elapsed_seconds();
        let d = &gen.design;

        let mut cfg = LegalizerConfig::total_displacement();
        cfg.threads = threads;
        cfg.clamp_threads_to_hardware = false;
        // Bounded local search: at million-cell scale an unbounded geometric
        // expansion lets a handful of infeasible multi-row cells grow their
        // windows to the full core and pay O(n) per re-evaluation; capping
        // the expansion ladder hands them to the global fallback scan after
        // a city-block-sized neighborhood instead.
        cfg.max_expansions = env_usize("MCL_SCALE_MAX_EXPANSIONS", 3);
        // Round capacity scales with the design: a fixed small L_p would
        // make round count — not throughput — the variable under test.
        cfg.window_list_capacity = (n / 32).max(64);
        let weights = compute_weights(d, cfg.weights);

        let mut state = PlacementState::new(d);
        let t = Stopwatch::start();
        let stats = run_parallel(&mut state, &cfg, &weights, None);
        let mgl_s = t.elapsed_seconds();
        assert_eq!(
            stats.failed, 0,
            "scale run failed {} cells at n={n}",
            stats.failed
        );
        assert_eq!(
            state.unplaced_count(),
            0,
            "scale run left cells unplaced at n={n}"
        );

        let cps = n as f64 / mgl_s;
        last_cps = cps;
        let rss = peak_rss_kb();
        let perf = &stats.perf;
        let pct = |nn: u64| 100.0 * nn as f64 / perf.total_nanos.max(1) as f64;
        println!(
            "    windows {}, eval {:.0}% (x{:.2} par), select {:.1}%, apply {:.1}%, \
             fallback {:.1}%, dedup hit {:.0}%",
            perf.windows_evaluated,
            pct(perf.eval_nanos),
            perf.eval_parallelism(),
            pct(perf.select_nanos),
            pct(perf.apply_nanos),
            pct(perf.fallback_nanos),
            100.0 * perf.dedup_hit_rate(),
        );
        println!(
            "    regions {}, anchors {}, curve mins {}, expansions {}, fallbacks {}",
            perf.scratch.regions,
            perf.scratch.anchors,
            perf.scratch.curve_mins,
            stats.expansions,
            stats.fallbacks
        );
        println!(
            "| {:>9} | {:>8.2} | {:>9.3} | {:>12.0} | {:>11} | {:>6} |",
            n,
            gen_s,
            mgl_s,
            cps,
            rss.map_or_else(|| "n/a".into(), |k| k.to_string()),
            stats.perf.rounds
        );
        rows.push_str(&format!(
            "      {{\"cells\": {n}, \"gen_seconds\": {gen_s:.3}, \"mgl_seconds\": {mgl_s:.6}, \
             \"cells_per_sec\": {cps:.1}, \"peak_rss_kb\": {rss}, \"rounds\": {rounds}}},\n",
            rss = rss.map_or_else(|| "null".into(), |k| k.to_string()),
            rounds = stats.perf.rounds,
        ));
    }
    let rows = rows.trim_end_matches(",\n").to_string();

    let scale_json = format!(
        "{{\"threads\": {threads}, \"density\": {density}, \"seed\": {seed},\n    \"results\": [\n{rows}\n    ]}}"
    );
    let doc = splice_scale_entry(std::fs::read_to_string("BENCH_mgl.json").ok(), &scale_json);
    std::fs::write("BENCH_mgl.json", doc).expect("write BENCH_mgl.json");
    println!("[wrote BENCH_mgl.json scale entry]");

    if let Some(floor) = floor_cps {
        assert!(
            last_cps >= floor as f64,
            "throughput floor violated: {last_cps:.0} cells/sec < {floor} on the largest size"
        );
        println!("floor ok: {last_cps:.0} >= {floor} cells/sec");
    }
    if let Some(ceiling) = max_rss {
        let rss = peak_rss_kb().expect("RSS ceiling requires procfs");
        assert!(
            rss <= ceiling,
            "peak RSS ceiling violated: {rss} kB > {ceiling} kB"
        );
        println!("rss ok: {rss} <= {ceiling} kB");
    }
    // Keep the parser honest even when /proc is absent.
    let _ = parse_vm_hwm_kb("VmHWM: 1 kB");
}

#[cfg(test)]
mod tests {
    use super::splice_scale_entry;

    #[test]
    fn splice_appends_when_absent() {
        let doc = "{\n  \"bench\": \"mgl_speedup\",\n  \"cells\": 4000\n}\n".to_string();
        let out = splice_scale_entry(Some(doc), "{\"threads\": 4}");
        assert!(
            out.contains("\"cells\": 4000,\n  \"scale\": {\"threads\": 4}\n}\n"),
            "{out}"
        );
    }

    #[test]
    fn splice_replaces_when_present() {
        let doc = "{\n  \"cells\": 4000,\n  \"scale\": {\"threads\": 2}\n}\n".to_string();
        let out = splice_scale_entry(Some(doc), "{\"threads\": 8}");
        assert!(!out.contains("\"threads\": 2"), "{out}");
        assert!(out.contains("\"scale\": {\"threads\": 8}"), "{out}");
        assert_eq!(out.matches("\"scale\"").count(), 1);
    }

    #[test]
    fn splice_creates_document_when_missing() {
        let out = splice_scale_entry(None, "{}");
        assert!(out.starts_with("{\n  \"bench\": \"mgl_speedup\","), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
    }
}
