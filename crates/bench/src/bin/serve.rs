//! Serve latency bench — closed-loop clients against an in-process daemon.
//!
//! Generates a 10k-cell mcl-gen benchmark, writes it as a Bookshelf bundle,
//! then drives an in-process [`Server`] (report dir and write-ahead journal
//! enabled, so the measured path includes the fsync the real daemon pays)
//! with closed-loop client threads at concurrency 1, 4 and 16. Each client
//! submits a `legalize` job, waits for the final line, and immediately
//! submits the next; `RETRY_AFTER` responses are honoured (sleep, retry)
//! and counted.
//!
//! Per-job wall times (send → final line, queue wait included) are reduced
//! to p50/p99 per concurrency level and a `serve` entry — `p50_ms`,
//! `p99_ms`, `jobs_per_sec`, `rejected` arrays indexed by concurrency — is
//! spliced into `BENCH_mgl.json` next to the eco/scale sections, so the
//! service-latency trajectory is tracked per PR.
//!
//! Knobs: `MCL_SERVE_CELLS` (default 10000), `MCL_SERVE_JOBS` (jobs per
//! concurrency level, default 24), `MCL_SERVE_THREADS` (engine threads,
//! default 4), `MCL_SERVE_QUEUE_CAP` (default 8 — small on purpose, so the
//! 16-client level exercises admission backpressure), `MCL_SERVE_SEED`,
//! `MCL_SERVE_DENSITY_PCT` (default 45).
//!
//! CI gate: `MCL_SERVE_MAX_P99_MS` (ceiling on the single-client p99) makes
//! the binary exit non-zero on regression, so the `serve-smoke` job needs
//! no JSON post-processing.

use mcl_core::config::LegalizerConfig;
use mcl_gen::{generate, GeneratorConfig};
use mcl_obs::clock::Stopwatch;
use mcl_obs::count_to_float;
use mcl_serve::json::parse;
use mcl_serve::{Client, ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str) -> Option<f64> {
    std::env::var(name).ok().and_then(|s| s.parse().ok())
}

/// The daemon's engine configuration: the same bounded local search the
/// scale/eco benches use, at service-grade thread count.
fn serve_engine(n: usize, threads: usize) -> LegalizerConfig {
    let mut cfg = LegalizerConfig::total_displacement();
    cfg.threads = threads;
    cfg.clamp_threads_to_hardware = false;
    cfg.max_expansions = 3;
    cfg.window_list_capacity = (n / 32).max(64);
    cfg
}

/// Replaces or appends the top-level `"serve"` entry of `BENCH_mgl.json`.
/// Same textual contract as the eco bench's splice: each appender owns its
/// own trailing key, truncating at an existing `"serve"` key or at the
/// closing brace and re-appending.
fn splice_serve_entry(existing: Option<String>, serve_json: &str) -> String {
    let entry = format!(",\n  \"serve\": {serve_json}\n}}\n");
    match existing {
        Some(doc) => {
            let head = match doc.find(",\n  \"serve\":") {
                Some(pos) => &doc[..pos],
                None => doc.trim_end().trim_end_matches('}').trim_end(),
            };
            format!("{head}{entry}")
        }
        None => format!("{{\n  \"bench\": \"mgl_speedup\"{entry}"),
    }
}

/// Nearest-rank quantile over sorted nanosecond samples; `pct` in 1..=100.
/// Integer arithmetic throughout — no float↔int casts.
fn quantile_nanos(sorted: &[u64], pct: usize) -> u64 {
    let n = sorted.len();
    let rank = (n * pct).div_ceil(100).clamp(1, n);
    sorted[rank - 1]
}

fn millis(nanos: u64) -> f64 {
    count_to_float(nanos) / 1e6
}

/// One closed-loop level: `clients` threads each submit jobs until the
/// shared budget of `jobs` is spent. Returns (sorted per-job nanos,
/// jobs/sec, rejected count).
fn run_level(
    addr: std::net::SocketAddr,
    bundle: &Path,
    clients: usize,
    jobs: usize,
) -> (Vec<u64>, f64, u64) {
    let budget = Arc::new(AtomicI64::new(i64::try_from(jobs).unwrap_or(i64::MAX)));
    let rejected = Arc::new(AtomicU64::new(0));
    let samples: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::with_capacity(jobs)));
    let req = format!(r#"{{"op":"legalize","dir":"{}"}}"#, bundle.display());

    let wall = Stopwatch::start();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let (budget, rejected, samples, req) = (
                Arc::clone(&budget),
                Arc::clone(&rejected),
                Arc::clone(&samples),
                req.clone(),
            );
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut local = Vec::new();
                while budget.fetch_sub(1, Ordering::SeqCst) > 0 {
                    let sw = Stopwatch::start();
                    loop {
                        let ack = client
                            .request(&req)
                            .expect("send")
                            .expect("ack line before EOF");
                        let doc = parse(&ack).expect("parsable ack");
                        match doc.str_field("status") {
                            Some("OK") => break,
                            Some("RETRY_AFTER") => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                                let ms = doc.u64_field("retry_after_ms").unwrap_or(50);
                                std::thread::sleep(std::time::Duration::from_millis(ms));
                            }
                            other => panic!("unexpected admission status {other:?}: {ack}"),
                        }
                    }
                    let done = client.recv().expect("recv").expect("final line before EOF");
                    assert!(done.contains(r#""status":"OK""#), "job failed: {done}");
                    local.push(sw.elapsed_nanos());
                }
                samples.lock().expect("samples lock").extend(local);
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let wall_s = wall.elapsed_seconds();

    let mut nanos = std::mem::take(&mut *samples.lock().expect("samples lock"));
    nanos.sort_unstable();
    let done = u64::try_from(nanos.len()).unwrap_or(u64::MAX);
    let jps = count_to_float(done) / wall_s;
    (nanos, jps, rejected.load(Ordering::Relaxed))
}

fn main() {
    let n = env_usize("MCL_SERVE_CELLS", 10_000);
    let jobs = env_usize("MCL_SERVE_JOBS", 24);
    let threads = env_usize("MCL_SERVE_THREADS", 4);
    let queue_cap = env_usize("MCL_SERVE_QUEUE_CAP", 8);
    let seed = env_usize("MCL_SERVE_SEED", 42);
    let density =
        count_to_float(u64::try_from(env_usize("MCL_SERVE_DENSITY_PCT", 45)).unwrap_or(45)) / 100.0;
    let max_p99 = env_f64("MCL_SERVE_MAX_P99_MS");

    println!(
        "# serve bench — {n} cells, {jobs} jobs/level, {threads} engine threads, queue cap \
         {queue_cap}"
    );

    let defaults = GeneratorConfig::default();
    let gen = generate(&GeneratorConfig {
        name: format!("serve_{n}"),
        seed: u64::try_from(seed).unwrap_or(42),
        num_cells: n,
        density,
        sigma_rows: 2.0,
        height_mix: [0.80, 0.20, 0.0, 0.0],
        hotspots: 0,
        fences: 0,
        fence_cell_fraction: 0.0,
        ..defaults
    })
    .expect("serve benchmark must pack");

    let root: PathBuf =
        std::env::temp_dir().join(format!("mclegal_bench_serve_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("bench temp dir");
    let bundle = root.join("bundle");
    mcl_parsers::write_bookshelf_dir(&gen.design, &bundle, &gen.design.name)
        .expect("write bench bundle");

    let levels = [1usize, 4, 16];
    let mut p50_ms = Vec::new();
    let mut p99_ms = Vec::new();
    let mut jobs_per_sec = Vec::new();
    let mut rejected_counts = Vec::new();
    for (i, &clients) in levels.iter().enumerate() {
        let mut cfg = ServeConfig::new(serve_engine(n, threads));
        cfg.queue_cap = queue_cap;
        cfg.report_dir = Some(root.join(format!("reports_{clients}")));
        cfg.journal_path = Some(root.join(format!("jobs_{clients}.journal")));
        let server = Server::start(cfg).expect("server start");
        let addr = server.local_addr();

        let (nanos, jps, rej) = run_level(addr, &bundle, clients, jobs);
        let mut c = Client::connect(addr).expect("drain connect");
        c.request(r#"{"op":"drain"}"#).expect("drain send");
        server.join();

        assert_eq!(nanos.len(), jobs, "every job must complete");
        let p50 = millis(quantile_nanos(&nanos, 50));
        let p99 = millis(quantile_nanos(&nanos, 99));
        println!(
            "conc {clients:>2}: p50 {p50:>8.2}ms  p99 {p99:>8.2}ms  {jps:>6.2} jobs/s  \
             rejected {rej}"
        );
        p50_ms.push(format!("{p50:.3}"));
        p99_ms.push(format!("{p99:.3}"));
        jobs_per_sec.push(format!("{jps:.2}"));
        rejected_counts.push(rej.to_string());
        let _ = i;
    }

    let serve_json = format!(
        "{{\"preset_cells\": {n}, \"jobs_per_level\": {jobs}, \"threads\": {threads}, \
         \"queue_cap\": {queue_cap},\n    \"concurrency\": [1, 4, 16], \"p50_ms\": [{}], \
         \"p99_ms\": [{}],\n    \"jobs_per_sec\": [{}], \"rejected\": [{}]}}",
        p50_ms.join(", "),
        p99_ms.join(", "),
        jobs_per_sec.join(", "),
        rejected_counts.join(", ")
    );
    let doc = splice_serve_entry(std::fs::read_to_string("BENCH_mgl.json").ok(), &serve_json);
    std::fs::write("BENCH_mgl.json", doc).expect("write BENCH_mgl.json");
    println!("[wrote BENCH_mgl.json serve entry]");
    let _ = std::fs::remove_dir_all(&root);

    if let Some(ceiling) = max_p99 {
        let solo_p99: f64 = p99_ms[0].parse().unwrap_or(f64::INFINITY);
        assert!(
            solo_p99 <= ceiling,
            "service-latency ceiling violated: single-client p99 {solo_p99:.2}ms > {ceiling}ms"
        );
        println!("p99 ok: {solo_p99:.2} <= {ceiling}ms");
    }
}

#[cfg(test)]
mod tests {
    use super::{quantile_nanos, splice_serve_entry};

    #[test]
    fn splice_appends_when_absent() {
        let doc = "{\n  \"bench\": \"mgl_speedup\",\n  \"eco\": {\"deltas\": 12}\n}\n".to_string();
        let out = splice_serve_entry(Some(doc), "{\"queue_cap\": 8}");
        assert!(
            out.contains("\"eco\": {\"deltas\": 12},\n  \"serve\": {\"queue_cap\": 8}\n}\n"),
            "{out}"
        );
    }

    #[test]
    fn splice_replaces_when_present() {
        let doc = "{\n  \"cells\": 4000,\n  \"serve\": {\"queue_cap\": 2}\n}\n".to_string();
        let out = splice_serve_entry(Some(doc), "{\"queue_cap\": 8}");
        assert!(!out.contains("\"queue_cap\": 2"), "{out}");
        assert!(out.contains("\"serve\": {\"queue_cap\": 8}"), "{out}");
        assert_eq!(out.matches("\"serve\"").count(), 1);
    }

    #[test]
    fn splice_creates_document_when_missing() {
        let out = splice_serve_entry(None, "{}");
        assert!(out.starts_with("{\n  \"bench\": \"mgl_speedup\","), "{out}");
        assert!(out.ends_with("}\n"), "{out}");
    }

    #[test]
    fn nearest_rank_quantiles_integer_math() {
        let s = [10, 20, 30, 40];
        assert_eq!(quantile_nanos(&s, 50), 20);
        assert_eq!(quantile_nanos(&s, 99), 40);
        assert_eq!(quantile_nanos(&[75], 99), 75);
    }
}
