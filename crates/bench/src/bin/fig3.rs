//! Figure 3 — MLL vs MGL on a toy example.
//!
//! Four cells are already legalized, but earlier insertions left them
//! displaced *left* of their GP positions. A target cell now arrives in the
//! middle. MLL measures the insertion cost from the cells' current
//! locations, so pushing them right "costs"; MGL measures from GP, so the
//! same push is free (it moves the cells home). The resulting total
//! displacement from GP reproduces the paper's 3-vs-2 style gap.

use mcl_core::config::DisplacementReference;
use mcl_core::insertion::{best_insertion, CostModel};
use mcl_core::mgl::apply_insertion;
use mcl_core::state::PlacementState;
use mcl_db::prelude::*;

fn toy() -> (Design, Vec<Point>) {
    let mut d = Design::new("fig3", Technology::example(), Rect::new(0, 0, 1000, 90));
    let t = d.add_cell_type(CellType::new("T", 20, 1));
    // (gp_x, current_x): all four sit 40 dbu left of their GP.
    let placed = [(340, 300), (380, 320), (420, 340), (460, 360)];
    let mut cur = Vec::new();
    for (i, (gp, px)) in placed.iter().enumerate() {
        d.add_cell(Cell::new(format!("c{}", i + 1), t, Point::new(*gp, 0)));
        cur.push(Point::new(*px, 0));
    }
    // Target wants x=300, exactly where c1 currently sits.
    d.add_cell(Cell::new("ct", t, Point::new(300, 0)));
    (d, cur)
}

fn run(reference: DisplacementReference) -> (Design, i64) {
    let (d, cur) = toy();
    let mut state = PlacementState::new(&d);
    for (i, p) in cur.iter().enumerate() {
        state.place(CellId(i as u32), *p).unwrap();
    }
    let target = CellId(4);
    let weights = vec![1i64; d.cells.len()];
    let model = CostModel {
        reference,
        normalize: true,
        weights: &weights,
        oracle: None,
        io_penalty: 0,
        rail_penalty: 0,
    };
    let ins = best_insertion(&state, target, d.core, &model).expect("insertable");
    apply_insertion(&mut state, target, &ins);
    let mut out = d.clone();
    state.write_back(&mut out);
    let total = Metrics::measure(&out).total_disp_dbu;
    (out, total)
}

fn main() {
    println!("# Figure 3 — MLL vs MGL displacement accounting\n");
    let (mll, mll_total) = run(DisplacementReference::Current);
    let (mgl, mgl_total) = run(DisplacementReference::Gp);
    println!("cell | GP x | MLL x | MGL x");
    for i in 0..mll.cells.len() {
        println!(
            "{:>4} | {:>4} | {:>5} | {:>5}",
            mll.cells[i].name,
            mll.cells[i].gp.x,
            mll.cells[i].pos.unwrap().x,
            mgl.cells[i].pos.unwrap().x
        );
    }
    println!();
    println!("total displacement from GP: MLL = {mll_total}, MGL = {mgl_total}");
    assert!(
        mgl_total < mll_total,
        "MGL must beat MLL on its own illustrating example"
    );
    let dir = mcl_bench::out_dir();
    std::fs::write(
        dir.join("fig3_mll.svg"),
        mcl_viz::render_svg(&mll, &mcl_viz::SvgOptions::default()),
    )
    .unwrap();
    std::fs::write(
        dir.join("fig3_mgl.svg"),
        mcl_viz::render_svg(&mgl, &mcl_viz::SvgOptions::default()),
    )
    .unwrap();
    println!("[wrote {}/fig3_mll.svg, fig3_mgl.svg]", dir.display());
}
