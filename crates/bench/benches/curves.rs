//! Microbenchmarks of the piecewise-linear displacement curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcl_core::curve::PwlCurve;

fn curve_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("curves");
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("sum_and_min", n), &n, |b, &n| {
            let parts: Vec<PwlCurve> = (0..n)
                .map(|i| {
                    let x = (i as i64 % 37) * 10;
                    match i % 4 {
                        0 => PwlCurve::type_a(x, 30, 1),
                        1 => PwlCurve::type_b(x, 20, 1),
                        2 => PwlCurve::type_c(x, 40, 1),
                        _ => PwlCurve::type_d(x, 40, 1),
                    }
                })
                .collect();
            b.iter(|| {
                let total = PwlCurve::sum(parts.iter().cloned());
                std::hint::black_box(total.min_on(-100, 500, 100))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, curve_benches);
criterion_main!(benches);
