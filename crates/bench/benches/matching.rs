//! Bipartite matching benchmarks (stage-2 shapes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcl_flow::min_cost_matching;

fn matching_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    for n in [32usize, 128, 512] {
        // Dense-ish: K=32 nearest neighbours per left vertex.
        let k = 32.min(n);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..k {
                let jj = (i + j) % n;
                let cost = ((i as i64 - jj as i64).abs()) * 10;
                edges.push((i, jj, cost));
            }
        }
        group.bench_with_input(BenchmarkId::new("sparse_k32", n), &edges, |b, e| {
            b.iter(|| std::hint::black_box(min_cost_matching(n, n, e).unwrap().cost));
        });
    }
    group.finish();
}

criterion_group!(benches, matching_benches);
criterion_main!(benches);
