//! End-to-end legalization benchmark on a generated design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcl_core::{Legalizer, LegalizerConfig};
use mcl_gen::{generate, GeneratorConfig};

fn mgl_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("legalize");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        let cfg = GeneratorConfig {
            num_cells: n,
            density: 0.7,
            ..GeneratorConfig::small(7)
        };
        let g = generate(&cfg).unwrap();
        group.bench_with_input(BenchmarkId::new("contest_flow", n), &g.design, |b, d| {
            b.iter(|| {
                let (out, _) = Legalizer::new(LegalizerConfig::contest()).run(d);
                std::hint::black_box(out.cells.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, mgl_benches);
criterion_main!(benches);
