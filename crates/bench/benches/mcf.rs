//! Network simplex scaling on stage-3-shaped flow graphs (row chains).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcl_flow::{FlowGraph, NetworkSimplex, NodeId, INF_CAP};

/// Builds the dual-MCF of a row of `n` cells with random-ish GPs.
fn chain_graph(n: usize) -> FlowGraph {
    let mut g = FlowGraph::with_nodes(n + 1);
    let z = NodeId(0);
    let mut seed = 0x2545F4914F6CDD1Du64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for i in 0..n {
        let node = NodeId(1 + i);
        let xp = (rng() % 10_000) as i64;
        g.add_arc(z, node, 1, -xp);
        g.add_arc(node, z, 1, xp);
        g.add_arc(z, node, INF_CAP, 0); // l_i = 0
        g.add_arc(node, z, INF_CAP, 20_000); // r_i
        if i > 0 {
            g.add_arc(NodeId(i), node, INF_CAP, -2);
        }
    }
    g
}

fn mcf_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_simplex");
    group.sample_size(10);
    for n in [100usize, 1_000, 5_000] {
        let g = chain_graph(n);
        group.bench_with_input(BenchmarkId::new("chain", n), &g, |b, g| {
            b.iter(|| std::hint::black_box(NetworkSimplex::new().solve(g).unwrap().cost));
        });
    }
    group.finish();
}

criterion_group!(benches, mcf_benches);
criterion_main!(benches);
