//! Named presets mirroring the published statistics of the paper's
//! benchmark suites (cell counts, multi-height mix, density).
//!
//! `scale` multiplies the cell counts (1.0 = published size); the default
//! harnesses run at 0.1 so a full table regenerates on a laptop in minutes.
//! Densities and height mixes are preserved exactly, which is what governs
//! legalization difficulty.

use crate::config::GeneratorConfig;

/// Statistics of one IC/CAD 2017 contest benchmark (Table 1).
#[derive(Debug, Clone, Copy)]
pub struct Iccad17Stats {
    /// Benchmark name.
    pub name: &'static str,
    /// Total number of cells.
    pub cells: usize,
    /// Cells of height 2, 3, 4 rows.
    pub multi: [usize; 3],
    /// Published design density.
    pub density: f64,
}

/// The 16 Table-1 benchmarks (statistics transcribed from the paper).
pub const ICCAD17: [Iccad17Stats; 16] = [
    Iccad17Stats {
        name: "des_perf_1",
        cells: 112_644,
        multi: [0, 0, 0],
        density: 0.906,
    },
    Iccad17Stats {
        name: "des_perf_a_md1",
        cells: 103_589,
        multi: [11_313, 1_815, 0],
        density: 0.551,
    },
    Iccad17Stats {
        name: "des_perf_a_md2",
        cells: 105_030,
        multi: [1_086, 1_086, 1_086],
        density: 0.559,
    },
    Iccad17Stats {
        name: "des_perf_b_md1",
        cells: 106_782,
        multi: [5_862, 0, 0],
        density: 0.550,
    },
    Iccad17Stats {
        name: "des_perf_b_md2",
        cells: 101_908,
        multi: [6_781, 2_260, 1_695],
        density: 0.647,
    },
    Iccad17Stats {
        name: "edit_dist_1_md1",
        cells: 118_005,
        multi: [7_994, 2_664, 1_998],
        density: 0.674,
    },
    Iccad17Stats {
        name: "edit_dist_a_md2",
        cells: 115_066,
        multi: [7_799, 2_599, 1_949],
        density: 0.594,
    },
    Iccad17Stats {
        name: "edit_dist_a_md3",
        cells: 119_616,
        multi: [2_599, 2_599, 2_599],
        density: 0.572,
    },
    Iccad17Stats {
        name: "fft_2_md2",
        cells: 28_930,
        multi: [2_117, 705, 529],
        density: 0.827,
    },
    Iccad17Stats {
        name: "fft_a_md2",
        cells: 27_431,
        multi: [2_018, 672, 504],
        density: 0.323,
    },
    Iccad17Stats {
        name: "fft_a_md3",
        cells: 28_609,
        multi: [672, 672, 672],
        density: 0.312,
    },
    Iccad17Stats {
        name: "pci_bridge32_a_md1",
        cells: 26_680,
        multi: [1_792, 597, 448],
        density: 0.495,
    },
    Iccad17Stats {
        name: "pci_bridge32_a_md2",
        cells: 25_239,
        multi: [2_090, 1_194, 994],
        density: 0.577,
    },
    Iccad17Stats {
        name: "pci_bridge32_b_md1",
        cells: 26_134,
        multi: [585, 439, 292],
        density: 0.266,
    },
    Iccad17Stats {
        name: "pci_bridge32_b_md2",
        cells: 28_038,
        multi: [292, 292, 292],
        density: 0.183,
    },
    Iccad17Stats {
        name: "pci_bridge32_b_md3",
        cells: 27_452,
        multi: [292, 585, 585],
        density: 0.222,
    },
];

/// Statistics of one ISPD-2015-derived benchmark of \[12\] (Table 2): 10% of
/// the cells are double-height, half-width.
#[derive(Debug, Clone, Copy)]
pub struct Ispd15Stats {
    /// Benchmark name.
    pub name: &'static str,
    /// Total number of cells.
    pub cells: usize,
    /// Published design density.
    pub density: f64,
}

/// The 20 Table-2 benchmarks.
pub const ISPD15: [Ispd15Stats; 20] = [
    Ispd15Stats {
        name: "des_perf_1",
        cells: 112_644,
        density: 0.9058,
    },
    Ispd15Stats {
        name: "des_perf_a",
        cells: 108_292,
        density: 0.4290,
    },
    Ispd15Stats {
        name: "des_perf_b",
        cells: 112_644,
        density: 0.4971,
    },
    Ispd15Stats {
        name: "edit_dist_a",
        cells: 127_419,
        density: 0.4554,
    },
    Ispd15Stats {
        name: "fft_1",
        cells: 32_281,
        density: 0.8355,
    },
    Ispd15Stats {
        name: "fft_2",
        cells: 32_281,
        density: 0.4997,
    },
    Ispd15Stats {
        name: "fft_a",
        cells: 30_631,
        density: 0.2509,
    },
    Ispd15Stats {
        name: "fft_b",
        cells: 30_631,
        density: 0.2819,
    },
    Ispd15Stats {
        name: "matrix_mult_1",
        cells: 155_325,
        density: 0.8024,
    },
    Ispd15Stats {
        name: "matrix_mult_2",
        cells: 155_325,
        density: 0.7903,
    },
    Ispd15Stats {
        name: "matrix_mult_a",
        cells: 149_655,
        density: 0.4195,
    },
    Ispd15Stats {
        name: "matrix_mult_b",
        cells: 146_442,
        density: 0.3090,
    },
    Ispd15Stats {
        name: "matrix_mult_c",
        cells: 146_442,
        density: 0.3083,
    },
    Ispd15Stats {
        name: "pci_bridge32_a",
        cells: 29_521,
        density: 0.3839,
    },
    Ispd15Stats {
        name: "pci_bridge32_b",
        cells: 28_920,
        density: 0.1430,
    },
    Ispd15Stats {
        name: "superblue11_a",
        cells: 927_074,
        density: 0.4292,
    },
    Ispd15Stats {
        name: "superblue12",
        cells: 1_287_037,
        density: 0.4472,
    },
    Ispd15Stats {
        name: "superblue14",
        cells: 612_583,
        density: 0.5578,
    },
    Ispd15Stats {
        name: "superblue16_a",
        cells: 680_869,
        density: 0.4785,
    },
    Ispd15Stats {
        name: "superblue19",
        cells: 506_383,
        density: 0.5233,
    },
];

/// Generator configuration for one Table-1 benchmark at `scale`.
pub fn iccad17_config(stats: &Iccad17Stats, scale: f64) -> GeneratorConfig {
    let cells = scaled(stats.cells, scale);
    let multi: Vec<f64> = stats
        .multi
        .iter()
        .map(|&m| m as f64 / stats.cells as f64)
        .collect();
    let single = 1.0 - multi.iter().sum::<f64>();
    GeneratorConfig {
        name: stats.name.to_string(),
        seed: hash_name(stats.name),
        num_cells: cells,
        height_mix: [single, multi[0], multi[1], multi[2]],
        // Cap extreme densities: the packer needs a little slack to absorb
        // multi-row fragmentation at small scales.
        density: stats.density.min(0.88),
        sigma_rows: 2.0,
        hotspots: 4,
        hotspot_strength: 0.75,
        hotspot_radius: 0.10,
        fences: 4,
        fence_cell_fraction: 0.15,
        edge_classes: 3,
        edge_spacing_sites: 2,
        rails: true,
        io_pins: (cells / 100).max(8),
        nets: cells / 2,
        net_degree: (2, 5),
        aspect: 1.2,
    }
}

/// Generator configuration for one Table-2 benchmark at `scale`:
/// 10% double-height cells, no fences, no routability features (the paper
/// disables them for this comparison).
pub fn ispd15_config(stats: &Ispd15Stats, scale: f64) -> GeneratorConfig {
    let cells = scaled(stats.cells, scale);
    GeneratorConfig {
        name: stats.name.to_string(),
        seed: hash_name(stats.name) ^ 0x15bd,
        num_cells: cells,
        height_mix: [0.90, 0.10, 0.0, 0.0],
        density: stats.density.min(0.88),
        sigma_rows: 2.0,
        hotspots: 2,
        hotspot_strength: 0.5,
        hotspot_radius: 0.08,
        fences: 0,
        fence_cell_fraction: 0.0,
        edge_classes: 1,
        edge_spacing_sites: 0,
        rails: false,
        io_pins: 0,
        nets: 0,
        net_degree: (2, 5),
        aspect: 1.2,
    }
}

/// The golden end-to-end corpus: four small fully deterministic designs
/// exercising distinct stress axes. The golden-corpus test legalizes each
/// one and diffs the run report's golden subset against a checked-in
/// snapshot, so these configurations must never change silently — treat
/// every field as part of the snapshot contract.
pub fn golden_corpus() -> Vec<GeneratorConfig> {
    let base = GeneratorConfig {
        seed: 0,
        num_cells: 500,
        height_mix: [0.82, 0.10, 0.05, 0.03],
        density: 0.6,
        sigma_rows: 2.5,
        hotspots: 0,
        hotspot_strength: 0.0,
        hotspot_radius: 0.0,
        fences: 0,
        fence_cell_fraction: 0.0,
        edge_classes: 3,
        edge_spacing_sites: 2,
        rails: true,
        io_pins: 12,
        nets: 200,
        net_degree: (2, 5),
        aspect: 1.3,
        name: String::new(),
    };
    vec![
        // Plain mixed-height design: the baseline of the corpus.
        GeneratorConfig {
            name: "golden_uniform".into(),
            seed: hash_name("golden_uniform"),
            ..base.clone()
        },
        // Fence-heavy: many regions, nearly half the cells fenced, so both
        // MGL fence filtering and the fence-aware matching stage are hot.
        GeneratorConfig {
            name: "golden_fence_heavy".into(),
            seed: hash_name("golden_fence_heavy"),
            num_cells: 600,
            fences: 6,
            fence_cell_fraction: 0.45,
            ..base.clone()
        },
        // Parity-stressing: mostly even-height cells, whose legal rows are
        // constrained by rail parity, plus rails on.
        GeneratorConfig {
            name: "golden_parity".into(),
            seed: hash_name("golden_parity"),
            num_cells: 400,
            height_mix: [0.30, 0.40, 0.10, 0.20],
            density: 0.5,
            ..base.clone()
        },
        // Dense with GP hotspots: windows overflow and expand, exercising
        // the expansion/fallback paths.
        GeneratorConfig {
            name: "golden_hotspot_dense".into(),
            seed: hash_name("golden_hotspot_dense"),
            num_cells: 700,
            density: 0.78,
            hotspots: 4,
            hotspot_strength: 0.8,
            hotspot_radius: 0.12,
            sigma_rows: 3.0,
            ..base
        },
    ]
}

/// All Table-1 configurations at `scale`.
pub fn iccad17_suite(scale: f64) -> Vec<GeneratorConfig> {
    ICCAD17.iter().map(|s| iccad17_config(s, scale)).collect()
}

/// All Table-2 configurations at `scale`.
pub fn ispd15_suite(scale: f64) -> Vec<GeneratorConfig> {
    ISPD15.iter().map(|s| ispd15_config(s, scale)).collect()
}

fn scaled(cells: usize, scale: f64) -> usize {
    ((cells as f64 * scale).round() as usize).max(200)
}

/// Stable name hash for per-benchmark seeds.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use mcl_db::prelude::FenceId;

    #[test]
    fn suites_have_published_sizes() {
        assert_eq!(ICCAD17.len(), 16);
        assert_eq!(ISPD15.len(), 20);
        let c = iccad17_config(&ICCAD17[0], 1.0);
        assert_eq!(c.num_cells, 112_644);
        let c = iccad17_config(&ICCAD17[0], 0.1);
        assert_eq!(c.num_cells, 11_264);
    }

    #[test]
    fn every_iccad17_preset_generates_at_small_scale() {
        for stats in &ICCAD17 {
            let cfg = iccad17_config(stats, 0.02);
            let g = generate(&cfg).unwrap_or_else(|e| panic!("{}: {e}", stats.name));
            assert!(g.design.cells.len() >= 200, "{}", stats.name);
        }
    }

    #[test]
    fn every_ispd15_preset_generates_at_small_scale() {
        for stats in &ISPD15 {
            let cfg = ispd15_config(stats, 0.01);
            let g = generate(&cfg).unwrap_or_else(|e| panic!("{}: {e}", stats.name));
            // 10% double height.
            let doubles = g
                .design
                .movable_cells()
                .filter(|&c| g.design.type_of(c).height_rows == 2)
                .count();
            let frac = doubles as f64 / g.design.cells.len() as f64;
            assert!((frac - 0.10).abs() < 0.04, "{}: {frac}", stats.name);
        }
    }

    #[test]
    fn seeds_differ_per_benchmark() {
        assert_ne!(hash_name("fft_1"), hash_name("fft_2"));
    }

    #[test]
    fn golden_corpus_generates_with_requested_stresses() {
        let corpus = golden_corpus();
        assert_eq!(corpus.len(), 4);
        for cfg in &corpus {
            let g = generate(cfg).unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
            assert_eq!(g.design.cells.len(), cfg.num_cells, "{}", cfg.name);
            assert_eq!(g.design.fences.len() - 1, cfg.fences, "{}", cfg.name);
        }
        // Generation is deterministic: same config, same design.
        let a = generate(&corpus[0]).unwrap();
        let b = generate(&corpus[0]).unwrap();
        assert_eq!(a.design.cells.len(), b.design.cells.len());
        for (ca, cb) in a.design.cells.iter().zip(&b.design.cells) {
            assert_eq!(ca.gp, cb.gp, "{}", ca.name);
        }
        let fenced = |g: &crate::Generated| {
            g.design
                .cells
                .iter()
                .filter(|c| c.fence != FenceId::DEFAULT)
                .count()
        };
        let heavy = generate(&corpus[1]).unwrap();
        assert!(
            fenced(&heavy) >= corpus[1].num_cells / 3,
            "fence-heavy corpus entry must actually fence cells: {}",
            fenced(&heavy)
        );
        let parity = generate(&corpus[2]).unwrap();
        let even = parity
            .design
            .movable_cells()
            .filter(|&c| parity.design.type_of(c).height_rows % 2 == 0)
            .count();
        assert!(
            even * 2 >= parity.design.cells.len(),
            "parity corpus entry must be majority even-height: {even}"
        );
    }
}
