//! The benchmark generator: legal packing + Gaussian perturbation.

use crate::config::GeneratorConfig;
use mcl_db::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated benchmark: the design (GP positions set, cells unplaced) and
/// the hidden legal placement it was derived from.
#[derive(Debug, Clone)]
pub struct Generated {
    /// The placement problem (cells carry GP positions, `pos` is `None`).
    pub design: Design,
    /// The legal position each cell was packed at before perturbation —
    /// a feasibility certificate for tests.
    pub golden: Vec<Point>,
}

/// Errors from generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The requested density/height mix could not be packed.
    PackingOverflow {
        /// Cells that did not fit.
        unplaced: usize,
    },
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::PackingOverflow { unplaced } => {
                write!(f, "packing overflow: {unplaced} cells did not fit")
            }
        }
    }
}

impl std::error::Error for GenError {}

/// Generates a benchmark from a configuration.
///
/// ```
/// use mcl_gen::{generate, GeneratorConfig};
///
/// let g = generate(&GeneratorConfig::small(7))?;
/// assert_eq!(g.design.cells.len(), 500);
/// assert!(g.design.cells.iter().all(|c| c.pos.is_none()), "GP input");
/// # Ok::<(), mcl_gen::GenError>(())
/// ```
///
/// # Errors
///
/// [`GenError::PackingOverflow`] when the requested density cannot be met
/// (e.g. too many multi-row cells for the fence capacity).
pub fn generate(config: &GeneratorConfig) -> Result<Generated, GenError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tech = Technology {
        edge_spacing: edge_table(config),
        ..Technology::example()
    };
    let sw = tech.site_width;
    let rh = tech.row_height;

    // --- Cell library ------------------------------------------------
    let mut lib: Vec<CellType> = Vec::new();
    let widths_per_height: [&[Dbu]; 4] = [
        &[2, 3, 4, 6], // 1-row cells, widths in sites
        &[3, 4, 6],    // 2-row
        &[4, 6],       // 3-row
        &[4, 8],       // 4-row
    ];
    for (hi, widths) in widths_per_height.iter().enumerate() {
        if config.height_mix[hi] <= 0.0 {
            continue;
        }
        let h = (hi + 1) as u32;
        for (wi, &ws) in widths.iter().enumerate() {
            let mut ct = CellType::new(format!("T{h}x{ws}"), ws * sw, h);
            if config.edge_classes > 1 {
                let cl = ((wi + hi) % config.edge_classes) as u8;
                let cr = ((wi + hi + 1) % config.edge_classes) as u8;
                ct.edge_class = (cl, cr);
            }
            add_pins(&mut ct, h, ws * sw, rh, &mut rng);
            lib.push(ct);
        }
    }

    // --- Instance mix -------------------------------------------------
    let mix_total: f64 = config.height_mix.iter().sum();
    let mut type_of_cell: Vec<usize> = Vec::with_capacity(config.num_cells);
    for _ in 0..config.num_cells {
        let mut t = rng.gen_range(0.0..mix_total);
        let mut h = 0;
        for (hi, &frac) in config.height_mix.iter().enumerate() {
            if t < frac {
                h = hi;
                break;
            }
            t -= frac;
        }
        // Pick a random type of that height.
        let of_height: Vec<usize> = lib
            .iter()
            .enumerate()
            .filter(|(_, ct)| ct.height_rows as usize == h + 1)
            .map(|(i, _)| i)
            .collect();
        type_of_cell.push(of_height[rng.gen_range(0..of_height.len())]);
    }

    // --- Core sizing ----------------------------------------------------
    let total_area: i128 = type_of_cell
        .iter()
        .map(|&t| (lib[t].width as i128) * (lib[t].height_rows as i128 * rh as i128))
        .sum();
    // Edge-spacing rules consume row capacity between adjacent cells; add
    // the expected spacing per cell (averaged over random type adjacency)
    // to the area budget so the requested density stays packable.
    let spacing_overhead: f64 = {
        let n = type_of_cell.len().max(1) as f64;
        let mut freq = vec![0f64; lib.len()];
        for &t in &type_of_cell {
            freq[t] += 1.0 / n;
        }
        let mut avg = 0.0;
        for (a, ct_a) in lib.iter().enumerate() {
            for (b, ct_b) in lib.iter().enumerate() {
                let s = tech
                    .edge_spacing
                    .spacing(ct_a.edge_class.1, ct_b.edge_class.0);
                let snapped = (s + sw - 1) / sw * sw;
                avg += freq[a] * freq[b] * snapped as f64;
            }
        }
        n * avg * rh as f64
    };
    let core_area = ((total_area as f64 + spacing_overhead) / config.density).ceil();
    let height = (core_area / config.aspect).sqrt();
    let mut num_rows = ((height / rh as f64).ceil() as usize).max(8);
    if num_rows % 2 == 1 {
        num_rows += 1;
    }
    let width_raw = (core_area / (num_rows as f64 * rh as f64)).ceil() as Dbu;
    // Fragmentation allowance: every row segment wastes about half an
    // average cell width at its tail plus the boundary pads the packer
    // reserves for edge spacing.
    let avg_w: f64 = type_of_cell
        .iter()
        .map(|&t| lib[t].width as f64)
        .sum::<f64>()
        / type_of_cell.len().max(1) as f64;
    let pad = tech.edge_spacing.max_spacing();
    let segs_per_row = (2 * config.fences + 1) as f64;
    let frag = (segs_per_row * (avg_w / 2.0 + 2.0 * pad as f64)).ceil() as Dbu;

    // Packing a random mix can fail by a handful of cells at small scales;
    // retry with a slightly wider core (preserving determinism).
    let mut attempt = 0usize;
    let (mut design, golden) = loop {
        let widen = 1.0 + 0.03 * attempt as f64;
        let width = (((width_raw + frag) as f64 * widen) as Dbu + sw - 1) / sw * sw;
        let mut attempt_rng = rng.clone();
        match build_and_pack(
            config,
            &tech,
            &lib,
            &type_of_cell,
            width,
            num_rows,
            &mut attempt_rng,
        ) {
            Ok((design, golden)) => {
                rng = attempt_rng;
                break (design, golden);
            }
            Err(unplaced) if attempt < 4 => {
                let _ = unplaced;
                attempt += 1;
            }
            Err(unplaced) => return Err(GenError::PackingOverflow { unplaced }),
        }
    };
    finish_design(config, &mut design, &golden, &mut rng);
    Ok(Generated { design, golden })
}

/// Builds the design skeleton (library, fences, cells, rails, IO) at a
/// given core size and packs it. Returns the unplaced count on overflow.
#[allow(clippy::too_many_arguments)]
fn build_and_pack(
    config: &GeneratorConfig,
    tech: &Technology,
    lib: &[CellType],
    type_of_cell: &[usize],
    width: Dbu,
    num_rows: usize,
    rng: &mut StdRng,
) -> std::result::Result<(Design, Vec<Point>), usize> {
    let sw = tech.site_width;
    let rh = tech.row_height;
    let core = Rect::new(0, 0, width, num_rows as Dbu * rh);
    let mut design = Design::new(config.name.clone(), tech.clone(), core);
    design.tech.edge_spacing = edge_table(config);
    let type_ids: Vec<CellTypeId> = lib
        .iter()
        .map(|ct| design.add_cell_type(ct.clone()))
        .collect();

    // --- Fences ---------------------------------------------------------
    // Slab area tracks the cell fraction assigned to fences (with 15%
    // headroom) so fence and default regions end up at similar densities.
    let mut fence_ids = Vec::new();
    if config.fences > 0 && config.fence_cell_fraction > 0.0 {
        let area_frac = (config.fence_cell_fraction * 1.15).min(0.5);
        let rows_span = (num_rows / 2).max(2);
        let slab_w_raw = (core.area() as f64 * area_frac
            / config.fences as f64
            / (rows_span as f64 * rh as f64)) as Dbu;
        let slab_w = (slab_w_raw / sw * sw).max(8 * sw);
        let y0 = rh * ((num_rows / 4) as Dbu);
        let stride = width / config.fences as Dbu;
        for fi in 0..config.fences {
            let x0 = (stride * fi as Dbu + (stride - slab_w).max(0) / 2) / sw * sw;
            let rect = Rect::new(x0, y0, (x0 + slab_w).min(width), y0 + rows_span as Dbu * rh);
            fence_ids.push(design.add_fence(FenceRegion::new(format!("fence_{fi}"), vec![rect])));
        }
    }

    // --- Cells + fence assignment ---------------------------------------
    // Capacity-aware: never assign more than 85% of a slab's area, so
    // binomial noise can't overfill a fence.
    let mut fence_budget: Vec<i128> = fence_ids
        .iter()
        .map(|&f| (design.fences[f.0 as usize].bbox().area() as f64 * 0.75) as i128)
        .collect();
    for (i, &t) in type_of_cell.iter().enumerate() {
        let mut cell = Cell::new(format!("c{i}"), type_ids[t], Point::new(0, 0));
        if !fence_ids.is_empty() && rng.gen_bool(config.fence_cell_fraction.clamp(0.0, 1.0)) {
            let k = rng.gen_range(0..fence_ids.len());
            let ct = &design.cell_types[type_ids[t].0 as usize];
            let area = ct.width as i128 * (ct.height_rows as i128 * rh as i128);
            if fence_budget[k] >= area {
                fence_budget[k] -= area;
                cell.fence = fence_ids[k];
            }
        }
        design.add_cell(cell);
    }

    // --- Rails & IO pins --------------------------------------------------
    if config.rails {
        design.grid = PowerGrid {
            h_layer: 2,
            h_width: sw / 2,
            h_pitch_rows: 1,
            v_layer: 3,
            v_width: sw,
            v_pitch: 40 * sw,
            v_offset: 20 * sw,
        };
    }
    for i in 0..config.io_pins {
        let layer = rng.gen_range(1..=2u8);
        let x = rng.gen_range(core.xl..core.xh - 2 * sw);
        let y = rng.gen_range(core.yl..core.yh - rh / 4);
        design.io_pins.push(IoPin {
            name: format!("io{i}"),
            layer,
            rect: Rect::new(x, y, x + 2 * sw, y + rh / 4),
        });
    }

    // --- Legal packing -----------------------------------------------------
    let golden = crate::packer::pack(&design, rng)?;
    Ok((design, golden))
}

/// GP perturbation and net synthesis (common tail of generation).
fn finish_design(
    config: &GeneratorConfig,
    design: &mut Design,
    golden: &[Point],
    rng: &mut StdRng,
) {
    let core = design.core;
    let rh = design.tech.row_height;
    // --- Perturb into a GP input -----------------------------------------
    let sigma = config.sigma_rows * rh as f64;
    for (i, &p) in golden.iter().enumerate() {
        let (dx, dy) = gaussian_pair(rng, sigma);
        let ct = design.type_of(CellId(i as u32));
        let (w, h_dbu) = (ct.width, ct.height_rows as Dbu * design.tech.row_height);
        let gx = (p.x as f64 + dx).round() as Dbu;
        let gy = (p.y as f64 + dy).round() as Dbu;
        let cell = &mut design.cells[i];
        cell.gp = Point::new(
            gx.clamp(core.xl, core.xh - w),
            gy.clamp(core.yl, core.yh - h_dbu),
        );
        cell.pos = None;
    }

    // --- Hotspot compression ----------------------------------------------
    // Pull GPs toward a few cluster centers, creating the locally overfull
    // regions real global placements exhibit (drives large displacements
    // and the stage-2 matching behaviour of the paper's Fig. 6).
    if config.hotspots > 0 && config.hotspot_strength > 0.0 {
        let diag = ((core.width() as f64).hypot(core.height() as f64)).max(1.0);
        let radius = config.hotspot_radius * diag;
        let centers: Vec<(f64, f64)> = (0..config.hotspots)
            .map(|_| {
                (
                    rng.gen_range(core.xl as f64..core.xh as f64),
                    rng.gen_range(core.yl as f64..core.yh as f64),
                )
            })
            .collect();
        for i in 0..design.cells.len() {
            let gp = design.cells[i].gp;
            for &(cx, cy) in &centers {
                let dx = cx - gp.x as f64;
                let dy = cy - gp.y as f64;
                if dx.hypot(dy) <= radius {
                    let ct = design.type_of(CellId(i as u32));
                    let (w, h_dbu) = (ct.width, ct.height_rows as Dbu * rh);
                    let s = config.hotspot_strength;
                    let nx = (gp.x as f64 + s * dx).round() as Dbu;
                    let ny = (gp.y as f64 + s * dy).round() as Dbu;
                    design.cells[i].gp = Point::new(
                        nx.clamp(core.xl, core.xh - w),
                        ny.clamp(core.yl, core.yh - h_dbu),
                    );
                    break;
                }
            }
        }
    }

    // --- Nets --------------------------------------------------------------
    if config.nets > 0 {
        // Cluster nets around random anchor cells: sort by GP x and take a
        // window plus a few random strays.
        let mut by_x: Vec<CellId> = design.movable_cells().collect();
        by_x.sort_by_key(|&c| design.cells[c.0 as usize].gp);
        for n in 0..config.nets {
            let deg =
                rng.gen_range(config.net_degree.0..=config.net_degree.1.max(config.net_degree.0));
            let anchor = rng.gen_range(0..by_x.len());
            let mut pins = Vec::with_capacity(deg);
            for k in 0..deg {
                let idx = if k + 1 == deg && deg > 2 {
                    rng.gen_range(0..by_x.len()) // one stray
                } else {
                    (anchor + k * 3) % by_x.len()
                };
                let cell = by_x[idx];
                let npins = design.type_of(cell).pins.len();
                if npins == 0 {
                    continue;
                }
                pins.push(NetPin::Cell {
                    cell,
                    pin: rng.gen_range(0..npins),
                });
            }
            if pins.len() >= 2 {
                design.nets.push(Net::new(format!("n{n}"), pins));
            }
        }
    }
}

fn edge_table(config: &GeneratorConfig) -> EdgeSpacingTable {
    let n = config.edge_classes.max(1);
    let mut t = EdgeSpacingTable::new(n);
    if n > 1 {
        // Same non-default classes repel each other.
        for a in 1..n as u8 {
            t.set(a, a, config.edge_spacing_sites * 10);
        }
    }
    t
}

/// Adds 2-3 signal pins to a cell type. Pins sit in the vertical middle band
/// of their row so the cell is placeable on every row under both
/// orientations (horizontal rails run on row boundaries); x positions vary
/// so vertical stripes and IO pins still interact.
fn add_pins(ct: &mut CellType, h: u32, w: Dbu, rh: Dbu, rng: &mut StdRng) {
    let pin_w = w.min(10);
    let n_pins = rng.gen_range(2..=3usize);
    for p in 0..n_pins {
        let layer = if p == 0 { 2 } else { 1 };
        let x = rng.gen_range(0..(w - pin_w + 1));
        let row = rng.gen_range(0..h) as Dbu;
        let y = row * rh + rh / 2 - rh / 8 + rng.gen_range(0..rh / 8);
        ct.pins.push(PinShape {
            name: format!("p{p}"),
            layer,
            rect: Rect::new(x, y, x + pin_w, y + rh / 8),
        });
    }
}

/// A pair of N(0, sigma) samples via Box-Muller.
fn gaussian_pair(rng: &mut StdRng, sigma: f64) -> (f64, f64) {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt() * sigma;
    let t = 2.0 * std::f64::consts::PI * u2;
    (r * t.cos(), r * t.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;

    #[test]
    fn generates_requested_cell_count() {
        let g = generate(&GeneratorConfig::small(3)).unwrap();
        assert_eq!(g.design.cells.len(), 500);
        assert_eq!(g.golden.len(), 500);
        assert!(g.design.validate().is_empty());
    }

    #[test]
    fn golden_placement_is_legal() {
        let cfg = GeneratorConfig {
            fences: 2,
            fence_cell_fraction: 0.2,
            density: 0.75,
            ..GeneratorConfig::small(11)
        };
        let g = generate(&cfg).unwrap();
        let mut d = g.design.clone();
        for (i, &p) in g.golden.iter().enumerate() {
            d.cells[i].pos = Some(p);
            let row = d.row_of_y(p.y).unwrap();
            d.cells[i].orient = d.orient_for_row(d.cells[i].type_id, row);
        }
        let rep = Checker::new(&d).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
        assert_eq!(
            rep.edge_spacing, 0,
            "packer honors spacing: {:?}",
            rep.details
        );
        // Pin/rail violations are *soft*; the golden packing may have some
        // (dodging them is the legalizer's job, not the generator's).
    }

    #[test]
    fn density_close_to_target() {
        let cfg = GeneratorConfig {
            density: 0.55,
            ..GeneratorConfig::small(7)
        };
        let g = generate(&cfg).unwrap();
        let d = g.design.density();
        assert!((d - 0.55).abs() < 0.1, "density {d}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&GeneratorConfig::small(42)).unwrap();
        let b = generate(&GeneratorConfig::small(42)).unwrap();
        assert_eq!(a.design.cells.len(), b.design.cells.len());
        for (ca, cb) in a.design.cells.iter().zip(&b.design.cells) {
            assert_eq!(ca.gp, cb.gp);
            assert_eq!(ca.type_id, cb.type_id);
        }
        let c = generate(&GeneratorConfig::small(43)).unwrap();
        assert!(a
            .design
            .cells
            .iter()
            .zip(&c.design.cells)
            .any(|(x, y)| x.gp != y.gp));
    }

    #[test]
    fn gp_positions_overlap_like_real_gp() {
        let g = generate(&GeneratorConfig::small(9)).unwrap();
        // Count overlapping GP pairs: must be plenty (that's the point).
        let d = &g.design;
        let mut overlaps = 0;
        let rects: Vec<Rect> = (0..d.cells.len())
            .map(|i| d.rect_at(CellId(i as u32), d.cells[i].gp))
            .collect();
        for i in 0..rects.len() {
            for j in i + 1..rects.len().min(i + 50) {
                if rects[i].overlaps(rects[j]) {
                    overlaps += 1;
                }
            }
        }
        assert!(overlaps > 10, "GP should be overlapping, got {overlaps}");
    }

    #[test]
    fn impossible_density_errors() {
        let cfg = GeneratorConfig {
            density: 0.98,
            fences: 3,
            fence_cell_fraction: 0.9,
            ..GeneratorConfig::small(5)
        };
        // Cramming 90% of cells into small fences must overflow.
        match generate(&cfg) {
            Err(GenError::PackingOverflow { unplaced }) => assert!(unplaced > 0),
            Ok(g) => {
                // If it packed after all, the golden must still be legal.
                let mut d = g.design.clone();
                for (i, &p) in g.golden.iter().enumerate() {
                    d.cells[i].pos = Some(p);
                }
                // (No assertion failure = acceptable outcome.)
            }
        }
    }
}
