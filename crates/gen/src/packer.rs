//! Legal packing: builds the hidden feasible placement that generated
//! benchmarks are perturbed from.
//!
//! Multi-row cells are packed first (tallest first, round-robin over rows to
//! spread them), then single-row cells fill the remaining row frontiers with
//! randomized gaps sized to hit the target density. Edge-spacing rules and
//! P/G parity are honored so the golden placement is fully legal.

use mcl_db::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

#[derive(Debug, Clone)]
struct SegState {
    row: usize,
    fence: FenceId,
    x: Interval,
    frontier: Dbu,
    last_rc: Option<u8>,
}

/// Packs every movable cell into a legal position. Returns positions indexed
/// by cell id, or the number of cells that did not fit.
pub fn pack(design: &Design, rng: &mut StdRng) -> Result<Vec<Point>, usize> {
    let segmap = design.build_segments();
    let sw = design.tech.site_width;
    // Reserve the worst-case edge spacing at internal segment boundaries so
    // cells in adjacent segments (different fences) can never violate the
    // spacing rules across the boundary.
    let pad = {
        let s = design.tech.edge_spacing.max_spacing();
        (s + sw - 1).div_euclid(sw) * sw
    };
    let mut segs: Vec<SegState> = segmap
        .segments()
        .iter()
        .map(|s| {
            let lo = if s.x.lo > design.core.xl {
                s.x.lo + pad
            } else {
                s.x.lo
            };
            let hi = if s.x.hi < design.core.xh {
                s.x.hi - pad
            } else {
                s.x.hi
            };
            SegState {
                row: s.row,
                fence: s.fence,
                x: Interval::new(lo, hi.max(lo)),
                frontier: lo,
                last_rc: None,
            }
        })
        .collect();
    let by_row: Vec<Vec<usize>> = (0..design.num_rows)
        .map(|r| segmap.in_row(r).to_vec())
        .collect();

    let snap_up = |x: Dbu| design.core.xl + (x - design.core.xl + sw - 1).div_euclid(sw) * sw;
    let gap_for = |last: Option<u8>, lc: u8| -> Dbu {
        match last {
            None => 0,
            Some(rc) => snap_up(design.tech.edge_spacing.spacing(rc, lc)),
        }
    };

    let mut pos: Vec<Option<Point>> = vec![None; design.cells.len()];
    let mut unplaced = 0usize;

    // --- multi-row cells, tallest first, spread round-robin over rows ----
    let mut talls: Vec<CellId> = design
        .movable_cells()
        .filter(|&c| design.type_of(c).height_rows > 1)
        .collect();
    talls.sort_by_key(|&c| std::cmp::Reverse(design.type_of(c).height_rows));
    // Shuffle within equal heights.
    {
        let mut i = 0;
        while i < talls.len() {
            let h = design.type_of(talls[i]).height_rows;
            let j = talls[i..]
                .iter()
                .position(|&c| design.type_of(c).height_rows != h)
                .map(|k| i + k)
                .unwrap_or(talls.len());
            talls[i..j].shuffle(rng);
            i = j;
        }
    }
    let mut row_cursor = 0usize;
    for cell in talls {
        let c = &design.cells[cell.0 as usize];
        let ct = design.type_of(cell);
        let h = ct.height_rows as usize;
        let max_base = design.num_rows.saturating_sub(h);
        // Evaluate every feasible base row and pick the one wasting the
        // least frontier area (misaligned bands strand whole row prefixes);
        // ties rotate around `row_cursor` to spread tall cells out.
        let mut best: Option<(Dbu, usize, usize, Dbu)> = None; // (waste, ring, base, x0)
        for base_row in 0..=max_base {
            if let Some(par) = ct.rail_parity {
                if !par.matches(base_row) {
                    continue;
                }
            }
            if let Some((x0, waste)) =
                try_place_tall(design, &segs, &by_row, cell, base_row, &gap_for)
            {
                let ring = (base_row + max_base + 1 - row_cursor) % (max_base + 1);
                let cand = (waste, ring, base_row, x0);
                if best.map(|b| (cand.0, cand.1) < (b.0, b.1)).unwrap_or(true) {
                    best = Some(cand);
                }
            }
        }
        match best {
            Some((_, _, base_row, x0)) => {
                #[allow(clippy::needless_range_loop)]
                for r in base_row..base_row + h {
                    for &si in &by_row[r] {
                        let s = &mut segs[si];
                        if s.fence == c.fence && s.x.contains(x0) {
                            s.frontier = x0 + ct.width;
                            s.last_rc = Some(ct.edge_class.1);
                        }
                    }
                }
                pos[cell.0 as usize] = Some(Point::new(x0, design.row_y(base_row)));
                row_cursor = (base_row + h) % (max_base + 1);
            }
            None => unplaced += 1,
        }
    }

    // Snapshot frontiers after the tall pass so an overfull fence can be
    // repacked deterministically from this state.
    let segs_after_talls = segs.clone();

    // --- single-row cells: fill frontiers with randomized gaps ----------
    let mut singles: Vec<CellId> = design
        .movable_cells()
        .filter(|&c| design.type_of(c).height_rows == 1)
        .collect();
    singles.shuffle(rng);
    // Group by fence for slack accounting.
    let mut fences: Vec<FenceId> = singles
        .iter()
        .map(|&c| design.cells[c.0 as usize].fence)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    fences.sort_unstable();
    for fence in fences {
        let group: Vec<CellId> = singles
            .iter()
            .copied()
            .filter(|&c| design.cells[c.0 as usize].fence == fence)
            .collect();
        if group.is_empty() {
            continue;
        }
        let free: Dbu = segs
            .iter()
            .filter(|s| s.fence == fence)
            .map(|s| (s.x.hi - s.frontier).max(0))
            .sum();
        let need: Dbu = group.iter().map(|&c| design.type_of(c).width).sum();
        let slack = (free - need).max(0);
        let mean_gap_sites = (slack as f64 * 0.9 / group.len().max(1) as f64 / sw as f64).floor();

        // Walk segments of this fence in row-major order.
        let seg_order: Vec<usize> = (0..segs.len())
            .filter(|&i| segs[i].fence == fence)
            .collect();
        let mut si_iter = 0usize;
        let mut failed_here: Vec<CellId> = Vec::new();
        for &cell in &group {
            let ct = design.type_of(cell);
            let mut placed = false;
            while si_iter < seg_order.len() {
                let si = seg_order[si_iter];
                let gap = gap_for(segs[si].last_rc, ct.edge_class.0);
                let rand_gap = if mean_gap_sites >= 1.0 {
                    (rng.gen_range(0.0..2.0 * mean_gap_sites).round() as Dbu) * sw
                } else {
                    0
                };
                let x0 = segs[si].frontier + gap + rand_gap;
                if x0 + ct.width <= segs[si].x.hi {
                    pos[cell.0 as usize] = Some(Point::new(x0, design.row_y(segs[si].row)));
                    segs[si].frontier = x0 + ct.width;
                    segs[si].last_rc = Some(ct.edge_class.1);
                    placed = true;
                    break;
                }
                // Try without the random gap before giving up on the segment.
                let x1 = segs[si].frontier + gap;
                if x1 + ct.width <= segs[si].x.hi {
                    pos[cell.0 as usize] = Some(Point::new(x1, design.row_y(segs[si].row)));
                    segs[si].frontier = x1 + ct.width;
                    segs[si].last_rc = Some(ct.edge_class.1);
                    placed = true;
                    break;
                }
                si_iter += 1;
            }
            if !placed {
                failed_here.push(cell);
            }
        }
        if failed_here.is_empty() {
            continue;
        }
        // The randomized pass overflowed this fence: repack the whole group
        // deterministically with zero gaps from the post-tall state (widest
        // cells first minimizes tail fragmentation).
        for &si in &seg_order {
            segs[si] = segs_after_talls[si].clone();
        }
        let mut ordered = group.clone();
        ordered.sort_by_key(|&c| (std::cmp::Reverse(design.type_of(c).width), c.0));
        for cell in ordered {
            let ct = design.type_of(cell);
            let mut placed = false;
            for &si in &seg_order {
                let gap = gap_for(segs[si].last_rc, ct.edge_class.0);
                let x0 = segs[si].frontier + gap;
                if x0 + ct.width <= segs[si].x.hi {
                    pos[cell.0 as usize] = Some(Point::new(x0, design.row_y(segs[si].row)));
                    segs[si].frontier = x0 + ct.width;
                    segs[si].last_rc = Some(ct.edge_class.1);
                    placed = true;
                    break;
                }
            }
            if !placed {
                pos[cell.0 as usize] = None;
                unplaced += 1;
            }
        }
    }

    if unplaced > 0 {
        return Err(unplaced);
    }
    Ok(pos
        .into_iter()
        .map(|p| p.expect("all cells placed"))
        .collect())
}

/// Probes one base row for a tall cell: x position where all spanned rows
/// have compatible segments with enough room past their frontiers, plus the
/// frontier area the placement would strand.
fn try_place_tall(
    design: &Design,
    segs: &[SegState],
    by_row: &[Vec<usize>],
    cell: CellId,
    base_row: usize,
    gap_for: &dyn Fn(Option<u8>, u8) -> Dbu,
) -> Option<(Dbu, Dbu)> {
    let c = &design.cells[cell.0 as usize];
    let ct = design.type_of(cell);
    let h = ct.height_rows as usize;
    // Candidate columns: segments of the base row.
    'seg: for &s0 in &by_row[base_row] {
        if segs[s0].fence != c.fence {
            continue;
        }
        let mut interval = segs[s0].x;
        let mut x0 = segs[s0].frontier + gap_for(segs[s0].last_rc, ct.edge_class.0);
        let mut used = vec![s0];
        #[allow(clippy::needless_range_loop)]
        for r in base_row + 1..base_row + h {
            // The overlapping segment of the same fence in this row.
            let Some(&si) = by_row[r]
                .iter()
                .find(|&&si| segs[si].fence == c.fence && segs[si].x.overlaps(interval))
            else {
                continue 'seg;
            };
            interval = interval.intersect(segs[si].x);
            x0 = x0.max(segs[si].frontier + gap_for(segs[si].last_rc, ct.edge_class.0));
            used.push(si);
        }
        x0 = x0.max(interval.lo);
        if x0 + ct.width <= interval.hi {
            let waste: Dbu = used.iter().map(|&si| (x0 - segs[si].frontier).max(0)).sum();
            return Some((x0, waste));
        }
    }
    None
}
