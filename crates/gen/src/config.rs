//! Generator configuration.

/// Parameters of a synthetic benchmark.
///
/// The generator first *packs* a legal placement at the requested density,
/// then perturbs every cell by a Gaussian of `sigma_rows` to produce the
/// overlapping global-placement input — the same shape as a real GP dump.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Benchmark name.
    pub name: String,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
    /// Number of movable cells.
    pub num_cells: usize,
    /// Fraction of cells of height 1..=4 rows (normalized internally).
    pub height_mix: [f64; 4],
    /// Target design density (movable area / free area), 0 < d < 1.
    pub density: f64,
    /// GP perturbation standard deviation, in row heights.
    pub sigma_rows: f64,
    /// Number of GP *hotspots*: cluster centers that locally compress GP
    /// positions (global placers pile cells into wirelength-optimal
    /// clusters, leaving locally overfull regions). 0 disables.
    pub hotspots: usize,
    /// Pull strength toward hotspot centers for affected cells (0..1).
    pub hotspot_strength: f64,
    /// Radius of each hotspot as a fraction of the core diagonal.
    pub hotspot_radius: f64,
    /// Number of rectangular fence regions.
    pub fences: usize,
    /// Fraction of cells assigned to fences (spread over the regions).
    pub fence_cell_fraction: f64,
    /// Number of edge classes (>1 enables edge-spacing rules).
    pub edge_classes: usize,
    /// Minimum spacing between conflicting edge classes, in sites.
    pub edge_spacing_sites: i64,
    /// Enable the P/G grid (horizontal M2 rails + vertical M3 stripes).
    pub rails: bool,
    /// Number of random IO pins.
    pub io_pins: usize,
    /// Number of random (clustered) signal nets.
    pub nets: usize,
    /// Net degree range (inclusive).
    pub net_degree: (usize, usize),
    /// Core aspect ratio (width / height).
    pub aspect: f64,
}

impl GeneratorConfig {
    /// A small smoke-test benchmark.
    pub fn small(seed: u64) -> Self {
        Self {
            name: format!("small_{seed}"),
            seed,
            num_cells: 500,
            ..Self::default()
        }
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            name: "synthetic".into(),
            seed: 1,
            num_cells: 2_000,
            height_mix: [0.82, 0.10, 0.05, 0.03],
            density: 0.6,
            sigma_rows: 2.5,
            hotspots: 0,
            hotspot_strength: 0.6,
            hotspot_radius: 0.12,
            fences: 0,
            fence_cell_fraction: 0.0,
            edge_classes: 3,
            edge_spacing_sites: 2,
            rails: true,
            io_pins: 0,
            nets: 0,
            net_degree: (2, 5),
            aspect: 1.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = GeneratorConfig::default();
        assert!(c.density > 0.0 && c.density < 1.0);
        let s: f64 = c.height_mix.iter().sum();
        assert!((s - 1.0).abs() < 0.01);
    }
}
