//! # mcl-gen — synthetic benchmark generation
//!
//! Builds placement problems with the same statistical shape as the paper's
//! benchmark suites: a hidden *legal* packing at the target density is
//! perturbed by a Gaussian to produce the overlapping global-placement
//! input (plus fences, P/G rails, IO pins, edge-spacing classes and nets).
//!
//! [`presets`] mirrors the published per-benchmark statistics of Table 1
//! (IC/CAD 2017) and Table 2 (ISPD-2015-derived).

#![forbid(unsafe_code)]

pub mod config;
pub mod generate;
pub mod packer;
pub mod presets;

pub use config::GeneratorConfig;
pub use generate::{generate, GenError, Generated};
