//! Append-only replay log and independent replay verifier for the
//! legalization schedulers.
//!
//! The legalizer core records every committed placement mutation (place,
//! remove, horizontal shift) into a [`ReplayLog`]. Because the log is a
//! total order of state mutations, two runs are bit-identical exactly when
//! their logs are equal — this is how the parallel scheduler's determinism
//! claim (same result for any thread count) becomes a checkable invariant
//! rather than a comment.
//!
//! [`ReplayLog::verify`] additionally replays the log against this crate's
//! own occupancy model (no `PlacementState`, no `SegmentMap`): every
//! operation must keep the placement site-aligned, in-core,
//! parity-correct, fence-contained, and overlap-free at every intermediate
//! step, not just at the end.

use std::fmt;

use mcl_db::cell::{CellId, RowParity};
use mcl_db::design::Design;
use mcl_db::geom::{Dbu, Point};

use crate::legality::{clipped_rows, FenceSpans};

/// One committed placement mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOp {
    /// Cell placed with its lower-left corner at `(x, y)`.
    Place {
        /// Cell placed.
        cell: CellId,
        /// Lower-left x.
        x: Dbu,
        /// Lower-left y.
        y: Dbu,
    },
    /// Cell removed from the placement.
    Remove {
        /// Cell removed.
        cell: CellId,
    },
    /// Placed cell moved horizontally to `x` within its rows.
    ShiftX {
        /// Cell shifted.
        cell: CellId,
        /// New lower-left x.
        x: Dbu,
    },
}

/// An append-only record of placement mutations, in commit order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayLog {
    ops: Vec<ReplayOp>,
}

impl ReplayLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful placement.
    pub fn record_place(&mut self, cell: CellId, x: Dbu, y: Dbu) {
        self.ops.push(ReplayOp::Place { cell, x, y });
    }

    /// Records a removal.
    pub fn record_remove(&mut self, cell: CellId) {
        self.ops.push(ReplayOp::Remove { cell });
    }

    /// Records a horizontal shift.
    pub fn record_shift_x(&mut self, cell: CellId, x: Dbu) {
        self.ops.push(ReplayOp::ShiftX { cell, x });
    }

    /// The recorded operations in commit order.
    pub fn ops(&self) -> &[ReplayOp] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Discards all recorded operations.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Order-sensitive FNV-1a digest of the log. Equal digests on runs with
    /// different thread counts are the determinism invariant.
    pub fn digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for op in &self.ops {
            match *op {
                ReplayOp::Place { cell, x, y } => {
                    eat(1);
                    eat(u64::from(cell.0));
                    eat(x as u64);
                    eat(y as u64);
                }
                ReplayOp::Remove { cell } => {
                    eat(2);
                    eat(u64::from(cell.0));
                }
                ReplayOp::ShiftX { cell, x } => {
                    eat(3);
                    eat(u64::from(cell.0));
                    eat(x as u64);
                }
            }
        }
        h
    }

    /// Replays the log against an independent occupancy model of `design`
    /// (cells at their *input* state: movable cells unplaced, fixed cells
    /// as blockages). Every intermediate state must be legal.
    ///
    /// Returns the final position of every cell on success.
    ///
    /// # Errors
    ///
    /// Returns the first operation that violates a hard constraint.
    pub fn verify(&self, design: &Design) -> Result<Vec<Option<Point>>, ReplayError> {
        Replayer::new(design).run(&self.ops)
    }
}

/// A replay verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// Index of the offending operation in the log.
    pub op_index: usize,
    /// Cell the operation addressed.
    pub cell: CellId,
    /// What went wrong.
    pub kind: ReplayErrorKind,
}

/// Why a replayed operation is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayErrorKind {
    /// Cell id out of range for the design.
    UnknownCell,
    /// Operation addressed a fixed cell.
    FixedCell,
    /// Place on a cell that is already placed.
    AlreadyPlaced,
    /// Remove or shift on a cell that is not placed.
    NotPlaced,
    /// Target position off the site or row grid.
    Misaligned,
    /// Target rectangle leaves the core.
    OutOfCore,
    /// Target row violates the cell's rail parity.
    BadParity,
    /// Target span not contained in a segment of the cell's fence.
    OutsideFence,
    /// Target rectangle overlaps another cell or a fixed blockage.
    Overlap(CellId),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay op {} on cell {}: {:?}",
            self.op_index, self.cell.0, self.kind
        )
    }
}

impl std::error::Error for ReplayError {}

/// Occupancy of one placed rectangle.
#[derive(Clone, Copy)]
struct Footprint {
    xl: Dbu,
    xh: Dbu,
    row_lo: usize,
    row_hi: usize,
    id: CellId,
}

struct Replayer<'a> {
    design: &'a Design,
    spans: FenceSpans,
    /// Fixed blockages, immutable during replay.
    fixed: Vec<Footprint>,
    /// Footprints of currently placed movable cells, keyed by cell index.
    placed: Vec<Option<Footprint>>,
}

impl<'a> Replayer<'a> {
    fn new(design: &'a Design) -> Self {
        let rh = design.tech.row_height;
        let fixed = design
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.fixed)
            .filter_map(|(i, c)| {
                let p = c.pos?;
                let ct = &design.cell_types[c.type_id.0 as usize];
                let (row_lo, row_hi) = clipped_rows(
                    p.y,
                    p.y + i64::from(ct.height_rows) * rh,
                    design.core.yl,
                    rh,
                    design.num_rows,
                );
                (row_lo < row_hi).then_some(Footprint {
                    xl: p.x,
                    xh: p.x + ct.width,
                    row_lo,
                    row_hi,
                    id: CellId(i as u32),
                })
            })
            .collect();
        Self {
            design,
            spans: FenceSpans::build(design),
            fixed,
            placed: vec![None; design.cells.len()],
        }
    }

    /// Validates that `cell` may legally occupy `[xl, xh)` starting at
    /// `row`, ignoring its own current footprint.
    fn check_site(
        &self,
        cell: CellId,
        xl: Dbu,
        y: Dbu,
        enforce_parity: bool,
    ) -> Result<Footprint, ReplayErrorKind> {
        let d = self.design;
        let c = &d.cells[cell.0 as usize];
        let ct = &d.cell_types[c.type_id.0 as usize];
        let xh = xl + ct.width;
        let yh = y + i64::from(ct.height_rows) * d.tech.row_height;

        if xl < d.core.xl || xh > d.core.xh || y < d.core.yl || yh > d.core.yh {
            return Err(ReplayErrorKind::OutOfCore);
        }
        if (xl - d.core.xl).rem_euclid(d.tech.site_width) != 0
            || (y - d.core.yl) % d.tech.row_height != 0
        {
            return Err(ReplayErrorKind::Misaligned);
        }
        let row = ((y - d.core.yl) / d.tech.row_height) as usize;
        if enforce_parity {
            let ok = match ct.rail_parity {
                Some(RowParity::Even) => row % 2 == 0,
                Some(RowParity::Odd) => row % 2 == 1,
                // Free cells take whatever flip the row needs; the scheduler
                // assigns the orientation at write-back.
                None => true,
            };
            if !ok {
                return Err(ReplayErrorKind::BadParity);
            }
        }
        let row_hi = row + ct.height_rows as usize;
        if !(row..row_hi).all(|rr| self.spans.covers(rr, c.fence.0, xl, xh)) {
            return Err(ReplayErrorKind::OutsideFence);
        }

        let fp = Footprint {
            xl,
            xh,
            row_lo: row,
            row_hi,
            id: cell,
        };
        for other in self
            .fixed
            .iter()
            .chain(self.placed.iter().flatten())
            .filter(|o| o.id != cell)
        {
            if other.xl < fp.xh
                && fp.xl < other.xh
                && other.row_lo < fp.row_hi
                && fp.row_lo < other.row_hi
            {
                return Err(ReplayErrorKind::Overlap(other.id));
            }
        }
        Ok(fp)
    }

    fn run(mut self, ops: &[ReplayOp]) -> Result<Vec<Option<Point>>, ReplayError> {
        let d = self.design;
        let rh = d.tech.row_height;
        for (op_index, op) in ops.iter().enumerate() {
            let cell = match *op {
                ReplayOp::Place { cell, .. }
                | ReplayOp::Remove { cell }
                | ReplayOp::ShiftX { cell, .. } => cell,
            };
            let fail = |kind| ReplayError {
                op_index,
                cell,
                kind,
            };
            let idx = cell.0 as usize;
            if idx >= d.cells.len() {
                return Err(fail(ReplayErrorKind::UnknownCell));
            }
            if d.cells[idx].fixed {
                return Err(fail(ReplayErrorKind::FixedCell));
            }
            match *op {
                ReplayOp::Place { x, y, .. } => {
                    if self.placed[idx].is_some() {
                        return Err(fail(ReplayErrorKind::AlreadyPlaced));
                    }
                    let fp = self.check_site(cell, x, y, true).map_err(fail)?;
                    self.placed[idx] = Some(fp);
                }
                ReplayOp::Remove { .. } => {
                    if self.placed[idx].take().is_none() {
                        return Err(fail(ReplayErrorKind::NotPlaced));
                    }
                }
                ReplayOp::ShiftX { x, .. } => {
                    let Some(cur) = self.placed[idx] else {
                        return Err(fail(ReplayErrorKind::NotPlaced));
                    };
                    let y = d.core.yl + cur.row_lo as Dbu * rh;
                    let fp = self.check_site(cell, x, y, true).map_err(fail)?;
                    self.placed[idx] = Some(fp);
                }
            }
        }
        Ok(self
            .placed
            .iter()
            .map(|fp| fp.map(|fp| Point::new(fp.xl, d.core.yl + fp.row_lo as Dbu * rh)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_db::prelude::*;

    fn design() -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        let s = d.add_cell_type(CellType::new("s", 20, 1));
        for i in 0..3 {
            d.add_cell(Cell::new(format!("c{i}"), s, Point::new(i * 40, 0)));
        }
        d
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = ReplayLog::new();
        a.record_place(CellId(0), 0, 0);
        a.record_place(CellId(1), 40, 0);
        let mut b = ReplayLog::new();
        b.record_place(CellId(1), 40, 0);
        b.record_place(CellId(0), 0, 0);
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a, b);
        let mut c = ReplayLog::new();
        c.record_place(CellId(0), 0, 0);
        c.record_place(CellId(1), 40, 0);
        assert_eq!(a.digest(), c.digest());
        assert_eq!(a, c);
    }

    #[test]
    fn verify_accepts_legal_sequence() {
        let d = design();
        let mut log = ReplayLog::new();
        log.record_place(CellId(0), 0, 0);
        log.record_place(CellId(1), 20, 0);
        log.record_shift_x(CellId(1), 40);
        log.record_remove(CellId(0));
        log.record_place(CellId(2), 0, 0);
        let pos = log.verify(&d).expect("legal sequence");
        assert_eq!(pos[0], None);
        assert_eq!(pos[1], Some(Point::new(40, 0)));
        assert_eq!(pos[2], Some(Point::new(0, 0)));
    }

    #[test]
    fn verify_rejects_transient_overlap() {
        let d = design();
        let mut log = ReplayLog::new();
        log.record_place(CellId(0), 0, 0);
        log.record_place(CellId(1), 10, 0); // overlaps cell 0
        log.record_remove(CellId(0)); // "fixed" afterwards — still illegal
        let err = log.verify(&d).unwrap_err();
        assert_eq!(err.op_index, 1);
        assert_eq!(err.kind, ReplayErrorKind::Overlap(CellId(0)));
    }

    #[test]
    fn verify_rejects_double_place_and_ghost_ops() {
        let d = design();
        let mut log = ReplayLog::new();
        log.record_place(CellId(0), 0, 0);
        log.record_place(CellId(0), 100, 0);
        assert_eq!(
            log.verify(&d).unwrap_err().kind,
            ReplayErrorKind::AlreadyPlaced
        );
        let mut log = ReplayLog::new();
        log.record_remove(CellId(1));
        assert_eq!(log.verify(&d).unwrap_err().kind, ReplayErrorKind::NotPlaced);
        let mut log = ReplayLog::new();
        log.record_place(CellId(9), 0, 0);
        assert_eq!(
            log.verify(&d).unwrap_err().kind,
            ReplayErrorKind::UnknownCell
        );
    }

    #[test]
    fn verify_rejects_misaligned_shift() {
        let d = design();
        let mut log = ReplayLog::new();
        log.record_place(CellId(0), 0, 0);
        log.record_shift_x(CellId(0), 15);
        assert_eq!(
            log.verify(&d).unwrap_err().kind,
            ReplayErrorKind::Misaligned
        );
    }
}
