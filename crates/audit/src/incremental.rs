//! Incremental (row-banded) legality certification.
//!
//! The full auditor ([`crate::legality::verify`]) re-derives every hard
//! constraint from scratch — O(design) per call, which is exactly wrong for
//! a resident ECO session that mutates a 64-cell window of a million-cell
//! placement. [`BandCert`] restructures the same audit into splice-able
//! strata:
//!
//! - a per-cell finding (core bounds, alignment, parity, fence) — local to
//!   the cell, recomputed only when the cell changed;
//! - a per-row overlap sweep — local to the row band, recomputed only for
//!   rows a changed cell touched (before or after the change).
//!
//! [`BandCert::splice`] re-certifies exactly those strata and splices the
//! results into the prior certificate. The merged [`BandCert::report`] is
//! *byte-identical* to a from-scratch `verify` on the same design — same
//! counts, same notes, same note order — pinned by differential tests, so
//! an incremental certificate is as trustworthy as a full one.
//!
//! Both paths share [`crate::legality`]'s `check_cell`/`overlap_note`
//! verbatim, so the incremental mode cannot drift from the clean-room
//! reference semantics. The certificate caches the fence-span partition;
//! the session invariant is that core, fences and fixed cells are immutable
//! between splices (ECO deltas move movable cells only).

use crate::legality::FenceSpans;
use crate::legality::{check_cell, fold_finding, overlap_note, AuditReport, CellFinding, Entry};
use mcl_db::cell::CellId;
use mcl_db::design::Design;
use mcl_db::geom::Dbu;
use std::collections::BTreeSet;

/// One overlap found by a row-band sweep, with the total-order key that
/// reproduces the full sweep's note order when bands are merged:
/// `(e.xl, e.id, row, a.xl, a.id)` where `e` is the sweep-later entry of
/// the pair and `a` the earlier.
struct OverlapFinding {
    key: (Dbu, u32, usize, Dbu, u32),
    note: String,
}

/// One row band: its resident entries (sorted by `(xl, id)`, the sweep
/// order) and the overlaps counted at this row.
#[derive(Default)]
struct RowBand {
    entries: Vec<Entry>,
    overlaps: Vec<OverlapFinding>,
}

/// A splice-able legality certificate (see the module docs).
pub struct BandCert {
    spans: FenceSpans,
    /// Per-cell finding; `None` for clean cells.
    findings: Vec<Option<CellFinding>>,
    /// Each cell's current sweep entry; `None` when it occupies no rows.
    entry_of: Vec<Option<Entry>>,
    rows: Vec<RowBand>,
}

impl BandCert {
    /// Fully certifies a design — the splice path applied to every cell, so
    /// there is exactly one certification code path.
    pub fn build(d: &Design) -> Self {
        let mut cert = BandCert {
            spans: FenceSpans::build(d),
            findings: Vec::new(),
            entry_of: Vec::new(),
            rows: (0..d.num_rows.max(1)).map(|_| RowBand::default()).collect(),
        };
        cert.splice(d, &[]);
        cert
    }

    /// Re-certifies the cells in `dirty` (plus any cells appended to the
    /// design since the last splice) and the row bands they touch — before
    /// or after the change — splicing the fresh strata into the prior
    /// certificate. `dirty` must cover every cell whose `pos`, `orient` or
    /// `fence` changed; core, fence regions and fixed cells must be
    /// unchanged since [`Self::build`].
    pub fn splice(&mut self, d: &Design, dirty: &[CellId]) {
        let n = d.cells.len();
        let mut dirty_ids: BTreeSet<u32> = dirty.iter().map(|c| c.0).collect();
        dirty_ids.extend(self.findings.len() as u32..n as u32);
        self.findings.resize_with(n, || None);
        self.entry_of.resize_with(n, || None);

        let mut dirty_rows: BTreeSet<usize> = BTreeSet::new();
        for &i in &dirty_ids {
            let i = i as usize;
            if let Some(old) = self.entry_of[i].take() {
                for r in old.row_lo..old.row_hi {
                    self.rows[r].entries.retain(|e| e.id.0 as usize != i);
                    dirty_rows.insert(r);
                }
            }
            let (f, entry) = check_cell(d, &self.spans, i);
            self.findings[i] = if f.is_empty() { None } else { Some(f) };
            if let Some(e) = entry {
                for r in e.row_lo..e.row_hi {
                    let band = &mut self.rows[r].entries;
                    let at = band.partition_point(|x| (x.xl, x.id.0) < (e.xl, e.id.0));
                    band.insert(at, e);
                    dirty_rows.insert(r);
                }
                self.entry_of[i] = Some(e);
            }
        }
        for r in dirty_rows {
            self.rows[r].overlaps = sweep_row(d, &self.rows[r].entries, r);
        }
    }

    /// Assembles the merged report — byte-identical to
    /// [`crate::legality::verify`] on the same design.
    #[must_use]
    pub fn report(&self) -> AuditReport {
        let mut rep = AuditReport::default();
        for f in self.findings.iter().flatten() {
            fold_finding(&mut rep, f);
        }
        let mut all: Vec<&OverlapFinding> =
            self.rows.iter().flat_map(|b| b.overlaps.iter()).collect();
        all.sort_unstable_by_key(|o| o.key);
        rep.overlaps = all.len();
        for o in all {
            rep.note(o.note.clone());
        }
        rep
    }
}

/// The full sweep's work restricted to one row: over the row's resident
/// entries in `(xl, id)` order, count each overlapping pair exactly when
/// this row is the pair's lowest shared row (the same attribution rule as
/// the banded global sweep, so merged bands count each pair once).
fn sweep_row(d: &Design, entries: &[Entry], row: usize) -> Vec<OverlapFinding> {
    let mut out = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        active.retain(|&j| entries[j].xh > e.xl);
        for &j in &active {
            let a = &entries[j];
            if row == a.row_lo.max(e.row_lo) {
                out.push(OverlapFinding {
                    key: (e.xl, e.id.0, row, a.xl, a.id.0),
                    note: overlap_note(d, a, e),
                });
            }
        }
        active.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legality::verify;
    use mcl_db::prelude::*;

    /// A deliberately messy design: overlaps, parity and fence trouble,
    /// unplaced and out-of-core cells, multi-row cells, a fixed obstacle.
    fn messy(seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 900));
        let s = d.add_cell_type(CellType::new("s", 20, 1));
        let m = d.add_cell_type(CellType::new("m", 30, 2));
        let t = d.add_cell_type(CellType::new("t", 40, 3));
        let f = d.add_fence(FenceRegion::new("g0", vec![Rect::new(400, 0, 900, 270)]));
        let mut x = seed | 1;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut obs = Cell::new("obs", s, Point::new(1000, 0));
        obs.pos = Some(Point::new(1000, 0));
        obs.fixed = true;
        d.add_cell(obs);
        for i in 0..80 {
            let ct = match rng() % 4 {
                0 | 1 => s,
                2 => m,
                _ => t,
            };
            let mut c = Cell::new(format!("c{i}"), ct, Point::new(0, 0));
            match rng() % 8 {
                0 => {}                                   // unplaced
                1 => c.pos = Some(Point::new(1980, 810)), // likely out of core
                2 => c.pos = Some(Point::new(13, 90)),    // misaligned
                _ => {
                    let row = (rng() % 8) as usize;
                    let xx = (rng() % 90) as Dbu * 20;
                    c.pos = Some(Point::new(xx, row as Dbu * 90));
                    c.orient = d.orient_for_row(ct, row);
                    if rng() % 3 == 0 {
                        c.fence = f;
                    }
                    if rng() % 5 == 0 {
                        // Force a parity/flip violation.
                        c.orient = Orient::N;
                    }
                }
            }
            d.add_cell(c);
        }
        d
    }

    #[test]
    fn full_build_matches_verify_bytes() {
        for seed in [3, 17, 99] {
            let d = messy(seed);
            let cert = BandCert::build(&d);
            assert_eq!(cert.report(), verify(&d), "seed {seed}");
        }
    }

    #[test]
    fn splice_matches_full_reverify_after_mutations() {
        let mut d = messy(7);
        let mut cert = BandCert::build(&d);
        let mut x = 41u64;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..6 {
            // Mutate a handful of movable cells: move, unplace, or drop
            // somewhere mischievous.
            let mut dirty = Vec::new();
            for _ in 0..5 {
                let i = 1 + (rng() % (d.cells.len() as u64 - 1)) as usize;
                if d.cells[i].fixed {
                    continue;
                }
                match rng() % 4 {
                    0 => d.cells[i].pos = None,
                    1 => d.cells[i].pos = Some(Point::new(13 + round as Dbu, 90)),
                    _ => {
                        let row = (rng() % 9) as usize;
                        let ct = d.cells[i].type_id;
                        d.cells[i].pos =
                            Some(Point::new((rng() % 95) as Dbu * 20, row as Dbu * 90));
                        d.cells[i].orient = d.orient_for_row(ct, row);
                    }
                }
                dirty.push(CellId(i as u32));
            }
            cert.splice(&d, &dirty);
            assert_eq!(cert.report(), verify(&d), "round {round}");
        }
    }

    #[test]
    fn splice_picks_up_appended_cells() {
        let mut d = messy(23);
        let mut cert = BandCert::build(&d);
        // Appended cells are dirty by definition, even with an empty list.
        let s = d.cells[1].type_id;
        let mut c = Cell::new("new0", s, Point::new(0, 0));
        c.pos = Some(Point::new(200, 0));
        d.add_cell(c);
        d.add_cell(Cell::new("new1", s, Point::new(0, 0)));
        cert.splice(&d, &[]);
        assert_eq!(cert.report(), verify(&d));
    }
}
