//! Optimality certificates for min-cost-flow solutions.
//!
//! A flow is provably optimal when it is feasible (capacity bounds and flow
//! conservation) and complementary slackness holds against the dual node
//! potentials `π`: with reduced cost `rc(a) = cost(a) − π(from) + π(to)`,
//! every arc with `rc > 0` must carry zero flow and every arc with `rc < 0`
//! must be saturated. This check is solver-independent — it certifies
//! solutions from both the successive-shortest-path solver and the network
//! simplex without trusting either.

use std::fmt;

use mcl_flow::graph::{FlowGraph, FlowSolution};

/// Proof that a solution is a feasible, optimal flow for its graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Certificate {
    /// Independently recomputed total cost.
    pub cost: i128,
    /// Number of nodes whose conservation constraint was checked.
    pub nodes: usize,
    /// Number of arcs whose bounds and slackness were checked.
    pub arcs: usize,
}

/// Why a claimed solution is not certified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `flow` has the wrong length for the graph.
    FlowLenMismatch {
        /// Number of arcs in the graph.
        expected: usize,
        /// Length of the flow vector.
        got: usize,
    },
    /// `potential` has the wrong length for the graph.
    PotentialLenMismatch {
        /// Number of nodes in the graph.
        expected: usize,
        /// Length of the potential vector.
        got: usize,
    },
    /// An arc's flow is negative or exceeds its capacity.
    CapacityViolated {
        /// Offending arc index.
        arc: usize,
        /// Flow on the arc.
        flow: i64,
        /// Capacity of the arc.
        cap: i64,
    },
    /// A node's net outflow differs from its supply.
    ConservationViolated {
        /// Offending node index.
        node: usize,
        /// Declared supply.
        supply: i64,
        /// Actual outflow minus inflow.
        net: i128,
    },
    /// Complementary slackness fails on an arc.
    SlacknessViolated {
        /// Offending arc index.
        arc: usize,
        /// Reduced cost `cost − π(from) + π(to)`.
        reduced_cost: i128,
        /// Flow on the arc.
        flow: i64,
        /// Capacity of the arc.
        cap: i64,
    },
    /// The solution's claimed cost differs from the recomputed cost.
    CostMismatch {
        /// Cost claimed by the solver.
        claimed: i128,
        /// Cost recomputed from the flow.
        recomputed: i128,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::FlowLenMismatch { expected, got } => {
                write!(f, "flow vector length {got}, graph has {expected} arcs")
            }
            Violation::PotentialLenMismatch { expected, got } => {
                write!(
                    f,
                    "potential vector length {got}, graph has {expected} nodes"
                )
            }
            Violation::CapacityViolated { arc, flow, cap } => {
                write!(f, "arc {arc}: flow {flow} outside [0, {cap}]")
            }
            Violation::ConservationViolated { node, supply, net } => {
                write!(f, "node {node}: net outflow {net} != supply {supply}")
            }
            Violation::SlacknessViolated {
                arc,
                reduced_cost,
                flow,
                cap,
            } => write!(
                f,
                "arc {arc}: reduced cost {reduced_cost} inconsistent with flow {flow}/{cap}"
            ),
            Violation::CostMismatch {
                claimed,
                recomputed,
            } => {
                write!(f, "claimed cost {claimed}, flow costs {recomputed}")
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Certifies that `s` is a feasible and optimal flow for `g`.
///
/// # Errors
///
/// Returns the first [`Violation`] found: shape mismatch, capacity bound,
/// conservation, complementary slackness, or claimed-cost mismatch.
pub fn certify(g: &FlowGraph, s: &FlowSolution) -> Result<Certificate, Violation> {
    let arcs = g.arcs();
    if s.flow.len() != arcs.len() {
        return Err(Violation::FlowLenMismatch {
            expected: arcs.len(),
            got: s.flow.len(),
        });
    }
    if s.potential.len() != g.num_nodes() {
        return Err(Violation::PotentialLenMismatch {
            expected: g.num_nodes(),
            got: s.potential.len(),
        });
    }

    let mut net = vec![0i128; g.num_nodes()];
    let mut cost = 0i128;
    for (i, a) in arcs.iter().enumerate() {
        let f = s.flow[i];
        if f < 0 || f > a.cap {
            return Err(Violation::CapacityViolated {
                arc: i,
                flow: f,
                cap: a.cap,
            });
        }
        net[a.from.0] += i128::from(f);
        net[a.to.0] -= i128::from(f);
        cost += i128::from(a.cost) * i128::from(f);
    }

    for (v, (&n, &b)) in net.iter().zip(g.supplies()).enumerate() {
        if n != i128::from(b) {
            return Err(Violation::ConservationViolated {
                node: v,
                supply: b,
                net: n,
            });
        }
    }

    for (i, a) in arcs.iter().enumerate() {
        let f = s.flow[i];
        let rc = i128::from(a.cost) - i128::from(s.potential[a.from.0])
            + i128::from(s.potential[a.to.0]);
        if (rc > 0 && f > 0) || (rc < 0 && f < a.cap) {
            return Err(Violation::SlacknessViolated {
                arc: i,
                reduced_cost: rc,
                flow: f,
                cap: a.cap,
            });
        }
    }

    if cost != s.cost {
        return Err(Violation::CostMismatch {
            claimed: s.cost,
            recomputed: cost,
        });
    }

    Ok(Certificate {
        cost,
        nodes: g.num_nodes(),
        arcs: arcs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_flow::graph::NodeId;

    /// 0 -> 1 -> 2 path carrying 2 units at cost 3 each.
    fn path() -> (FlowGraph, FlowSolution) {
        let mut g = FlowGraph::with_nodes(3);
        g.set_supply(NodeId(0), 2);
        g.set_supply(NodeId(2), -2);
        g.add_arc(NodeId(0), NodeId(1), 2, 1);
        g.add_arc(NodeId(1), NodeId(2), 2, 2);
        let s = FlowSolution {
            flow: vec![2, 2],
            potential: vec![0, -1, -3],
            cost: 6,
        };
        (g, s)
    }

    #[test]
    fn certifies_valid_solution() {
        let (g, s) = path();
        let c = certify(&g, &s).expect("valid solution certifies");
        assert_eq!(c.cost, 6);
        assert_eq!(c.arcs, 2);
    }

    #[test]
    fn rejects_conservation_violation() {
        let (g, mut s) = path();
        s.flow[1] = 1;
        s.cost = 4;
        assert!(matches!(
            certify(&g, &s),
            Err(Violation::ConservationViolated { node: 1, .. })
        ));
    }

    #[test]
    fn rejects_capacity_violation() {
        let (g, mut s) = path();
        s.flow[0] = 3;
        assert!(matches!(
            certify(&g, &s),
            Err(Violation::CapacityViolated { arc: 0, .. })
        ));
    }

    #[test]
    fn rejects_slackness_violation() {
        let mut g = FlowGraph::with_nodes(2);
        g.set_supply(NodeId(0), 1);
        g.set_supply(NodeId(1), -1);
        g.add_arc(NodeId(0), NodeId(1), 2, 1); // cheap, used
        g.add_arc(NodeId(0), NodeId(1), 2, 5); // expensive, idle
                                               // Route the unit over the expensive arc: feasible but suboptimal
                                               // under potentials that price the cheap arc.
        let s = FlowSolution {
            flow: vec![0, 1],
            potential: vec![0, -1],
            cost: 5,
        };
        assert!(matches!(
            certify(&g, &s),
            Err(Violation::SlacknessViolated { arc: 1, .. })
        ));
    }

    #[test]
    fn rejects_cost_mismatch() {
        let (g, mut s) = path();
        s.cost = 7;
        assert!(matches!(
            certify(&g, &s),
            Err(Violation::CostMismatch { .. })
        ));
    }
}
