//! Independent certifying audit layer.
//!
//! This crate re-checks the legalizer's output contract without reusing any
//! of the code that produced it. The three auditors are deliberately
//! *clean-room* implementations:
//!
//! - [`legality`] re-verifies every hard constraint from §2 of the paper
//!   (core bounds, site/row alignment, P/G parity and flipping, pairwise
//!   overlap via an independent sweep line, fence containment) directly from
//!   raw coordinates. It shares no geometry or segment helpers with
//!   `mcl_db::legal` or the legalizer itself, so a bug in shared code cannot
//!   hide from it.
//! - [`flow_cert`] certifies min-cost-flow solutions from their dual
//!   potentials: feasibility (capacity bounds + conservation) plus
//!   complementary slackness proves optimality outright, independent of the
//!   solver that produced the flow.
//! - [`replay`] replays an append-only log of placement operations against
//!   its own occupancy model, turning the parallel scheduler's determinism
//!   claim (bit-identical results for any thread count) into an enforced,
//!   auditable invariant.
//! - [`incremental`] restructures the legality audit into a splice-able
//!   row-banded certificate for resident ECO sessions: only the bands a
//!   delta touched are re-certified, and the merged report is byte-identical
//!   to a full [`legality::verify`].
//!
//! The independence rule for this crate: it may read the data model
//! (`Design`, `Cell`, `CellType`, raw `Dbu` coordinates) but must not call
//! derived-geometry helpers (`Rect::overlaps`, `Interval::covers`,
//! `SegmentMap`, `Checker`, `PlacementState`). All comparisons are spelled
//! out in integer arithmetic here.

#![forbid(unsafe_code)]

pub mod flow_cert;
pub mod incremental;
pub mod legality;
pub mod replay;

pub use flow_cert::{certify, Certificate, Violation};
pub use incremental::BandCert;
pub use legality::{verify, AuditReport};
pub use replay::{ReplayError, ReplayErrorKind, ReplayLog, ReplayOp};
