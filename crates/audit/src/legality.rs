//! Clean-room legality verifier.
//!
//! Re-checks every hard constraint of §2 against raw coordinates, using no
//! geometry helpers from `mcl_db` beyond plain field access. The counting
//! contract matches [`mcl_db::legal::Checker`] category for category so the
//! two can be differentially tested:
//!
//! - fixed cells participate in overlap checking only (at `pos`, if any);
//! - unplaced movable cells count as `unplaced` and are skipped;
//! - out-of-core cells are skipped by the remaining checks;
//! - misaligned cells are skipped by parity/fence/overlap checks;
//! - each overlapping *pair* is counted exactly once, even when the pair
//!   shares several rows.

use mcl_db::cell::{CellId, RowParity};
use mcl_db::design::Design;
use mcl_db::geom::{Dbu, Orient};

/// Hard-constraint violation counts found by the independent auditor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Movable cells without a position.
    pub unplaced: usize,
    /// Cells whose rectangle leaves the core.
    pub out_of_core: usize,
    /// Cells off the site grid in x or the row grid in y.
    pub misaligned: usize,
    /// Parity/orientation violations against the P/G rails.
    pub bad_parity: usize,
    /// Overlapping cell pairs (independent sweep line).
    pub overlaps: usize,
    /// Cells not fully inside a segment of their fence region.
    pub fence_violations: usize,
    /// Up to [`AuditReport::MAX_NOTES`] human-readable violation notes.
    pub notes: Vec<String>,
}

impl AuditReport {
    /// Maximum number of notes retained.
    pub const MAX_NOTES: usize = 32;

    /// Total hard violations, including unplaced cells (mirrors
    /// `LegalityReport::hard_violations`).
    pub fn hard_violations(&self) -> usize {
        self.unplaced
            + self.out_of_core
            + self.misaligned
            + self.bad_parity
            + self.overlaps
            + self.fence_violations
    }

    /// Hard violations excluding `unplaced`. Stage audits use this: a stage
    /// may legitimately leave overflow cells unplaced, but everything it
    /// *did* place must be legal.
    pub fn placement_violations(&self) -> usize {
        self.hard_violations() - self.unplaced
    }

    /// Whether the placement satisfies every hard constraint.
    pub fn is_clean(&self) -> bool {
        self.hard_violations() == 0
    }

    pub(crate) fn note(&mut self, msg: String) {
        if self.notes.len() < Self::MAX_NOTES {
            self.notes.push(msg);
        }
    }
}

/// One placed rectangle participating in the overlap sweep.
#[derive(Clone, Copy)]
pub(crate) struct Entry {
    pub(crate) xl: Dbu,
    pub(crate) xh: Dbu,
    pub(crate) row_lo: usize,
    pub(crate) row_hi: usize,
    pub(crate) id: CellId,
}

/// The per-cell verdict of [`check_cell`]: which categories the cell
/// violates, with its notes in emission order. Shared by [`verify`] and the
/// banded certificate ([`crate::incremental`]) so the two can never drift.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct CellFinding {
    pub(crate) unplaced: bool,
    pub(crate) out_of_core: bool,
    pub(crate) misaligned: bool,
    pub(crate) bad_parity: bool,
    pub(crate) fence: bool,
    pub(crate) notes: Vec<String>,
}

impl CellFinding {
    pub(crate) fn is_empty(&self) -> bool {
        !(self.unplaced || self.out_of_core || self.misaligned || self.bad_parity || self.fence)
    }
}

/// The overlap note text, with `a` the sweep-earlier entry of the pair.
pub(crate) fn overlap_note(d: &Design, a: &Entry, e: &Entry) -> String {
    let (an, en) = (
        &d.cells[a.id.0 as usize].name,
        &d.cells[e.id.0 as usize].name,
    );
    format!(
        "cells {an} and {en} overlap: [{},{}) vs [{},{})",
        a.xl, a.xh, e.xl, e.xh
    )
}

/// Audits one cell against every non-overlap hard constraint, returning its
/// finding (empty when clean) and, when the cell occupies rows, the entry it
/// contributes to the overlap sweep. Fixed cells are never found against —
/// they only contribute an entry (at `pos`, if any, clipped to valid rows).
pub(crate) fn check_cell(d: &Design, spans: &FenceSpans, i: usize) -> (CellFinding, Option<Entry>) {
    let mut f = CellFinding::default();
    let cell = &d.cells[i];
    let id = CellId(i as u32);
    let ct = &d.cell_types[cell.type_id.0 as usize];
    let rh = d.tech.row_height;
    let sw = d.tech.site_width;
    let h = i64::from(ct.height_rows) * rh;

    if cell.fixed {
        // Fixed cells only participate in overlap checking.
        if let Some(p) = cell.pos {
            let (row_lo, row_hi) = clipped_rows(p.y, p.y + h, d.core.yl, rh, d.num_rows);
            if row_lo < row_hi {
                return (
                    f,
                    Some(Entry {
                        xl: p.x,
                        xh: p.x + ct.width,
                        row_lo,
                        row_hi,
                        id,
                    }),
                );
            }
        }
        return (f, None);
    }

    let Some(p) = cell.pos else {
        f.unplaced = true;
        f.notes.push(format!("cell {} unplaced", cell.name));
        return (f, None);
    };
    let (xl, yl) = (p.x, p.y);
    let (xh, yh) = (xl + ct.width, yl + h);

    if xl < d.core.xl || xh > d.core.xh || yl < d.core.yl || yh > d.core.yh {
        f.out_of_core = true;
        f.notes.push(format!(
            "cell {} out of core: [{xl},{xh})x[{yl},{yh})",
            cell.name
        ));
        return (f, None);
    }
    let aligned_x = (xl - d.core.xl).rem_euclid(sw) == 0;
    let aligned_y = (yl - d.core.yl) % rh == 0;
    if !aligned_x || !aligned_y {
        f.misaligned = true;
        f.notes
            .push(format!("cell {} misaligned at ({xl}, {yl})", cell.name));
        return (f, None);
    }
    let row = ((yl - d.core.yl) / rh) as usize;

    // P/G rail compatibility: cells with a pinned parity must sit on a
    // matching row; free (odd-height) cells must be flipped exactly on
    // odd rows.
    match ct.rail_parity {
        Some(RowParity::Even) if row % 2 != 0 => {
            f.bad_parity = true;
            f.notes
                .push(format!("cell {} needs an even row, got {row}", cell.name));
        }
        Some(RowParity::Odd) if row % 2 != 1 => {
            f.bad_parity = true;
            f.notes
                .push(format!("cell {} needs an odd row, got {row}", cell.name));
        }
        None => {
            let flipped = matches!(cell.orient, Orient::FS | Orient::S);
            if flipped != (row % 2 == 1) {
                f.bad_parity = true;
                f.notes
                    .push(format!("cell {} wrong flip on row {row}", cell.name));
            }
        }
        _ => {}
    }

    // Fence containment on every spanned row.
    let row_hi = row + ct.height_rows as usize;
    if !(row..row_hi).all(|rr| spans.covers(rr, cell.fence.0, xl, xh)) {
        f.fence = true;
        f.notes.push(format!(
            "cell {} escapes fence {} on rows {row}..{row_hi}",
            cell.name, cell.fence.0
        ));
    }

    (
        f,
        Some(Entry {
            xl,
            xh,
            row_lo: row,
            row_hi,
            id,
        }),
    )
}

/// Independently re-derived placeable spans: `(xl, xh, fence)` per row.
///
/// Reconstructs the row-segment partition rule from its specification
/// (named fences claim spans on rows they fully cover vertically, earlier
/// claims win, the default fence owns the gaps, fixed obstacles are
/// subtracted, spans snap inward to whole sites) without calling
/// `Design::build_segments`.
pub(crate) struct FenceSpans {
    rows: Vec<Vec<(Dbu, Dbu, u16)>>,
}

impl FenceSpans {
    pub(crate) fn build(d: &Design) -> Self {
        let sw = d.tech.site_width;
        let rh = d.tech.row_height;
        // Fixed obstacles, at pos when placed, else at their GP location.
        let obstacles: Vec<(Dbu, Dbu, Dbu, Dbu)> = d
            .cells
            .iter()
            .filter(|c| c.fixed)
            .map(|c| {
                let ct = &d.cell_types[c.type_id.0 as usize];
                let p = c.pos.unwrap_or(c.gp);
                (
                    p.x,
                    p.y,
                    p.x + ct.width,
                    p.y + i64::from(ct.height_rows) * rh,
                )
            })
            .collect();

        let mut rows = Vec::with_capacity(d.num_rows);
        for row in 0..d.num_rows {
            let y0 = d.core.yl + row as Dbu * rh;
            let y1 = y0 + rh;

            // Named-fence claims on this row, clipped to the core.
            let mut claims: Vec<(Dbu, Dbu, u16)> = Vec::new();
            for (fi, fence) in d.fences.iter().enumerate().skip(1) {
                for r in &fence.rects {
                    if r.yl <= y0 && y1 <= r.yh {
                        let lo = r.xl.max(d.core.xl);
                        let hi = r.xh.min(d.core.xh);
                        if hi > lo {
                            claims.push((lo, hi, fi as u16));
                        }
                    }
                }
            }
            claims.sort_by_key(|&(lo, _, _)| lo);

            // Cursor sweep: earlier claims win overlaps, default fence owns
            // the gaps.
            let mut spans: Vec<(Dbu, Dbu, u16)> = Vec::new();
            let mut cursor = d.core.xl;
            for (lo, hi, f) in claims {
                if lo > cursor {
                    spans.push((cursor, lo, 0));
                }
                let start = lo.max(cursor);
                if hi > start {
                    spans.push((start, hi, f));
                }
                cursor = cursor.max(hi);
            }
            if cursor < d.core.xh {
                spans.push((cursor, d.core.xh, 0));
            }

            // Subtract fixed obstacles whose rectangle crosses this row.
            let mut blocks: Vec<(Dbu, Dbu)> = obstacles
                .iter()
                .filter(|&&(xl, yl, xh, yh)| yl < y1 && y0 < yh && yl < yh && xl < xh)
                .map(|&(xl, _, xh, _)| (xl, xh))
                .collect();
            blocks.sort_unstable_by_key(|&(lo, _)| lo);

            let mut out: Vec<(Dbu, Dbu, u16)> = Vec::new();
            for (slo, shi, f) in spans {
                let mut lo = slo;
                for &(blo, bhi) in blocks.iter().filter(|&&(blo, bhi)| blo < shi && slo < bhi) {
                    if blo > lo {
                        push_snapped(&mut out, lo, blo, f, d.core.xl, sw);
                    }
                    lo = lo.max(bhi);
                }
                if lo < shi {
                    push_snapped(&mut out, lo, shi, f, d.core.xl, sw);
                }
            }
            rows.push(out);
        }
        Self { rows }
    }

    /// Whether some span of `fence` on `row` fully contains `[xl, xh)`.
    pub(crate) fn covers(&self, row: usize, fence: u16, xl: Dbu, xh: Dbu) -> bool {
        match self.rows.get(row) {
            Some(spans) => spans
                .iter()
                .any(|&(lo, hi, f)| f == fence && lo <= xl && xh <= hi),
            None => false,
        }
    }
}

/// Snaps `[lo, hi)` inward to whole sites relative to `origin` and keeps it
/// when at least one site survives.
fn push_snapped(
    out: &mut Vec<(Dbu, Dbu, u16)>,
    lo: Dbu,
    hi: Dbu,
    fence: u16,
    origin: Dbu,
    sw: Dbu,
) {
    let slo = origin + (lo - origin + sw - 1).div_euclid(sw) * sw;
    let shi = origin + (hi - origin).div_euclid(sw) * sw;
    if shi - slo >= sw {
        out.push((slo, shi, fence));
    }
}

/// The row span `[lo, hi)` a rectangle occupies, clipped to valid rows.
/// Mirrors the checker's row-marking rule for fixed cells that may stick out
/// of the core.
pub(crate) fn clipped_rows(
    yl: Dbu,
    yh: Dbu,
    core_yl: Dbu,
    rh: Dbu,
    num_rows: usize,
) -> (usize, usize) {
    let lo = (yl - core_yl).div_euclid(rh).max(0) as usize;
    let hi = (yh - core_yl + rh - 1).div_euclid(rh).max(0) as usize;
    (lo, hi.min(num_rows))
}

/// Folds one cell's finding into the report, preserving the historical
/// per-cell note emission order.
pub(crate) fn fold_finding(rep: &mut AuditReport, f: &CellFinding) {
    rep.unplaced += usize::from(f.unplaced);
    rep.out_of_core += usize::from(f.out_of_core);
    rep.misaligned += usize::from(f.misaligned);
    rep.bad_parity += usize::from(f.bad_parity);
    rep.fence_violations += usize::from(f.fence);
    for n in &f.notes {
        rep.note(n.clone());
    }
}

/// Runs the independent audit over a design's current placement.
pub fn verify(d: &Design) -> AuditReport {
    let mut rep = AuditReport::default();
    let spans = FenceSpans::build(d);
    let mut entries: Vec<Entry> = Vec::new();

    for i in 0..d.cells.len() {
        let (f, entry) = check_cell(d, &spans, i);
        fold_finding(&mut rep, &f);
        if let Some(e) = entry {
            entries.push(e);
        }
    }

    // Overlap detection: plane sweep over x with row-band bucketed active
    // lists. A pair overlaps when their x spans intersect with positive
    // width on at least one shared row. Bucketing the sweep's active set by
    // row keeps each prune and probe proportional to the cells actually
    // live on that row — a single global active list degrades to O(n ×
    // active) on million-cell designs because every entry scans cells from
    // unrelated rows. Each pair is counted exactly once: only on the lowest
    // row the two rectangles share, even when they share several rows.
    entries.sort_unstable_by_key(|e| (e.xl, e.id));
    let mut bands: Vec<Vec<usize>> = vec![Vec::new(); d.num_rows.max(1)];
    for i in 0..entries.len() {
        let e = &entries[i];
        for (band_off, band) in bands[e.row_lo..e.row_hi].iter_mut().enumerate() {
            let r = e.row_lo + band_off;
            band.retain(|&j| entries[j].xh > e.xl);
            for &j in band.iter() {
                let a = &entries[j];
                // x overlap is guaranteed: a.xl <= e.xl < a.xh and
                // e.xl < e.xh; row overlap is guaranteed by the shared
                // band. Count the pair only at its lowest shared row.
                if r == a.row_lo.max(e.row_lo) {
                    rep.overlaps += 1;
                    rep.note(overlap_note(d, a, e));
                }
            }
            band.push(i);
        }
    }

    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_db::prelude::*;

    fn base() -> (Design, CellTypeId, CellTypeId) {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 900));
        let s = d.add_cell_type(CellType::new("s", 20, 1));
        let m = d.add_cell_type(CellType::new("m", 30, 2));
        (d, s, m)
    }

    fn place(d: &mut Design, name: &str, ct: CellTypeId, x: Dbu, row: usize) -> CellId {
        let y = d.row_y(row);
        let mut c = Cell::new(name, ct, Point::new(x, y));
        c.pos = Some(Point::new(x, y));
        c.orient = d.orient_for_row(ct, row);
        d.add_cell(c)
    }

    #[test]
    fn clean_placement_is_clean() {
        let (mut d, s, m) = base();
        place(&mut d, "a", s, 0, 0);
        place(&mut d, "b", s, 20, 0);
        place(&mut d, "c", m, 100, 2);
        let rep = verify(&d);
        assert!(rep.is_clean(), "{rep:?}");
    }

    #[test]
    fn counts_each_category() {
        let (mut d, s, m) = base();
        d.add_cell(Cell::new("u", s, Point::new(0, 0))); // unplaced
        let a = place(&mut d, "a", s, 0, 0);
        d.cells[a.0 as usize].pos = Some(Point::new(13, 0)); // off-site
        let b = place(&mut d, "b", s, 40, 0);
        d.cells[b.0 as usize].pos = Some(Point::new(990, 0)); // leaves core
        place(&mut d, "p", m, 200, 1); // even-height on odd row
        let rep = verify(&d);
        assert_eq!(rep.unplaced, 1);
        assert_eq!(rep.misaligned, 1);
        assert_eq!(rep.out_of_core, 1);
        assert_eq!(rep.bad_parity, 1);
        assert_eq!(rep.hard_violations(), 4);
        assert_eq!(rep.placement_violations(), 3);
    }

    #[test]
    fn sweep_catches_non_adjacent_overlap() {
        // A wide cell covering a third cell with another in between: the
        // pair (a, c) is not adjacent in xl order but still overlaps.
        let (mut d, _, _) = base();
        let wide = d.add_cell_type(CellType::new("w", 200, 1));
        let tiny = d.add_cell_type(CellType::new("t", 10, 1));
        place(&mut d, "a", wide, 0, 0); // [0, 200)
        place(&mut d, "b", tiny, 20, 0); // [20, 30)
        place(&mut d, "c", tiny, 50, 0); // [50, 60)
        let rep = verify(&d);
        assert_eq!(rep.overlaps, 2, "{:?}", rep.notes);
    }

    #[test]
    fn banded_sweep_matches_all_pairs_count() {
        // Random (deliberately overlapping) placements: the row-banded
        // sweep must agree with the naive O(n²) all-pairs overlap count.
        let (mut d, _, _) = base();
        let t1 = d.add_cell_type(CellType::new("t1", 40, 1));
        let t2 = d.add_cell_type(CellType::new("t2", 60, 2));
        let t3 = d.add_cell_type(CellType::new("t3", 30, 3));
        let mut s = 0x9e37_79b9_7f4a_7c15u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut rects: Vec<(Dbu, Dbu, usize, usize)> = Vec::new();
        for i in 0..120 {
            let (ct, w, h) = match rng() % 3 {
                0 => (t1, 40, 1),
                1 => (t2, 60, 2),
                _ => (t3, 30, 3),
            };
            let x = (rng() % 47) as Dbu * 20; // sites, may collide
            let row = (rng() % (10 - h as u64)) as usize;
            let id = place(&mut d, &format!("r{i}"), ct, x, row);
            // Parity flips for multi-row types are irrelevant here; force a
            // legal orientation so only overlaps differ.
            let y = d.row_y(row);
            d.cells[id.0 as usize].pos = Some(Point::new(x, y));
            rects.push((x, x + w, row, row + h));
        }
        let mut naive = 0usize;
        for i in 0..rects.len() {
            for j in 0..i {
                let (axl, axh, arl, arh) = rects[j];
                let (bxl, bxh, brl, brh) = rects[i];
                if axl < bxh && bxl < axh && arl < brh && brl < arh {
                    naive += 1;
                }
            }
        }
        assert!(naive > 20, "test must generate real overlaps, got {naive}");
        assert_eq!(verify(&d).overlaps, naive);
    }

    #[test]
    fn overlap_counted_once_across_rows() {
        let (mut d, _, m) = base();
        place(&mut d, "a", m, 100, 0);
        place(&mut d, "b", m, 110, 0);
        assert_eq!(verify(&d).overlaps, 1);
    }

    #[test]
    fn fixed_cells_block_but_are_not_checked() {
        let (mut d, s, _) = base();
        let blk = d.add_cell_type(CellType::new("blk", 100, 1));
        let mut f = Cell::new("obs", blk, Point::new(3, 0)); // off-grid fixed: fine
        f.pos = Some(Point::new(3, 0));
        f.fixed = true;
        d.add_cell(f);
        place(&mut d, "a", s, 50, 0);
        let rep = verify(&d);
        assert_eq!(rep.misaligned, 0);
        assert_eq!(rep.overlaps, 1);
    }

    #[test]
    fn fence_rules() {
        let (mut d, s, _) = base();
        let f = d.add_fence(FenceRegion::new("g0", vec![Rect::new(300, 0, 600, 180)]));
        // A fenced cell outside its fence, and a default cell inside it.
        let a = place(&mut d, "a", s, 0, 0);
        d.cells[a.0 as usize].fence = f;
        place(&mut d, "b", s, 400, 0);
        let rep = verify(&d);
        assert_eq!(rep.fence_violations, 2, "{:?}", rep.notes);
        // A fenced cell inside the fence is fine.
        let c = place(&mut d, "c", s, 320, 1);
        d.cells[c.0 as usize].fence = f;
        assert_eq!(verify(&d).fence_violations, 2);
    }

    #[test]
    fn multi_row_fence_requires_every_row() {
        let (mut d, _, m) = base();
        // Fence covers rows 0..1 only; a two-row cell needs rows 0..2.
        let f = d.add_fence(FenceRegion::new("g0", vec![Rect::new(0, 0, 400, 90)]));
        let a = place(&mut d, "a", m, 100, 0);
        d.cells[a.0 as usize].fence = f;
        assert_eq!(verify(&d).fence_violations, 1);
    }
}
