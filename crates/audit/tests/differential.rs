//! Differential test: the independent auditor and `db::legal::Checker` must
//! agree on random designs — same legal/illegal verdict over the six hard
//! constraint categories and the same per-category counts. The two
//! implementations share no geometry helpers (see `mcl_audit` docs), so
//! agreement here means both derive the §2 constraints correctly or both
//! carry the same misreading — which is exactly what this generator tries to
//! rule out by covering fences, multi-row parity, misalignment, and
//! out-of-core edge cases.

use mcl_db::prelude::*;
use proptest::prelude::*;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A random design with a named fence, optional fixed obstacles, and cells
/// of heights 1/2/4 in states ranging from legal to misaligned, overlapping,
/// out-of-core, mis-fenced, parity-broken, or unplaced.
fn random_design(seed: u64) -> Design {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    // 10 rows of 90 dbu, 200 sites of 10 dbu.
    let mut d = Design::new("diff", Technology::example(), Rect::new(0, 0, 2000, 900));
    d.add_cell_type(CellType::new("s", 20, 1));
    d.add_cell_type(CellType::new("d", 30, 2));
    d.add_cell_type(CellType::new("q", 40, 4));
    // A fence over the left half of rows 2..=4 (multi-row, so multi-row
    // fenced cells must be covered in *every* spanned row).
    let fence = d.add_fence(FenceRegion::new("g", vec![Rect::new(0, 180, 900, 450)]));
    if xorshift(&mut s) % 2 == 0 {
        let mut obs = Cell::new("obs", CellTypeId(2), Point::new(1500, 180));
        obs.fixed = true;
        obs.pos = Some(Point::new(1500, 180));
        d.add_cell(obs);
    }
    let n = 8 + (xorshift(&mut s) % 24) as usize;
    for i in 0..n {
        let t = (xorshift(&mut s) % 3) as u32;
        let gp = Point::new(
            (xorshift(&mut s) % 2000) as Dbu,
            (xorshift(&mut s) % 900) as Dbu,
        );
        let mut c = Cell::new(format!("c{i}"), CellTypeId(t), gp);
        if xorshift(&mut s) % 4 == 0 {
            c.fence = fence;
        }
        if xorshift(&mut s) % 3 == 0 {
            c.orient = Orient::FS;
        }
        match xorshift(&mut s) % 12 {
            0 => {} // unplaced
            1 => {
                // Raw position: may be misaligned, out of core, anything.
                c.pos = Some(Point::new(
                    (xorshift(&mut s) % 2100) as Dbu - 50,
                    (xorshift(&mut s) % 1000) as Dbu - 50,
                ));
            }
            2 => {
                // Aligned but possibly hanging off the right/top edge.
                c.pos = Some(Point::new(
                    ((xorshift(&mut s) % 210) as Dbu) * 10,
                    ((xorshift(&mut s) % 11) as Dbu) * 90,
                ));
            }
            _ => {
                // Aligned and inside; overlaps arise from the tight packing.
                c.pos = Some(Point::new(
                    ((xorshift(&mut s) % 190) as Dbu) * 10,
                    ((xorshift(&mut s) % 7) as Dbu) * 90,
                ));
            }
        }
        d.add_cell(c);
    }
    d
}

fn assert_agreement(d: &Design) {
    let reference = Checker::new(d).check();
    let audit = mcl_audit::verify(d);
    assert_eq!(audit.unplaced, reference.unplaced, "unplaced");
    assert_eq!(audit.out_of_core, reference.out_of_core, "out_of_core");
    assert_eq!(audit.misaligned, reference.misaligned, "misaligned");
    assert_eq!(audit.bad_parity, reference.bad_parity, "bad_parity");
    assert_eq!(audit.overlaps, reference.overlaps, "overlaps");
    assert_eq!(
        audit.fence_violations, reference.fence_violations,
        "fence_violations"
    );
    assert_eq!(audit.hard_violations(), reference.hard_violations());
}

proptest! {
    #[test]
    fn auditor_agrees_with_checker(seed in 0u64..4096) {
        let d = random_design(seed);
        assert_agreement(&d);
    }
}

/// The generator must actually exercise every hard-constraint category —
/// otherwise the differential test proves agreement on nothing.
#[test]
fn generator_covers_all_categories() {
    let mut seen = [0usize; 6];
    for seed in 0..256 {
        let r = Checker::new(&random_design(seed)).check();
        seen[0] += r.unplaced;
        seen[1] += r.out_of_core;
        seen[2] += r.misaligned;
        seen[3] += r.bad_parity;
        seen[4] += r.overlaps;
        seen[5] += r.fence_violations;
    }
    let names = [
        "unplaced",
        "out_of_core",
        "misaligned",
        "bad_parity",
        "overlaps",
        "fence_violations",
    ];
    for (n, &c) in names.iter().zip(&seen) {
        assert!(c > 0, "generator never produced a {n} violation");
    }
}

#[test]
fn auditor_agrees_on_directed_edge_cases() {
    // Multi-row parity: an even-height cell on an odd row.
    let mut d = Design::new("p", Technology::example(), Rect::new(0, 0, 1000, 900));
    d.add_cell_type(CellType::new("d", 30, 2));
    let mut c = Cell::new("a", CellTypeId(0), Point::new(0, 90));
    c.pos = Some(Point::new(0, 90));
    d.add_cell(c);
    assert_agreement(&d);

    // Odd-height cell with an orientation inconsistent with its row.
    let mut d = Design::new("o", Technology::example(), Rect::new(0, 0, 1000, 900));
    d.add_cell_type(CellType::new("s", 20, 1));
    let mut c = Cell::new("a", CellTypeId(0), Point::new(0, 0));
    c.pos = Some(Point::new(0, 0));
    c.orient = Orient::FS;
    d.add_cell(c);
    assert_agreement(&d);

    // Fenced multi-row cell whose fence covers only its bottom row.
    let mut d = Design::new("f", Technology::example(), Rect::new(0, 0, 1000, 900));
    d.add_cell_type(CellType::new("q", 40, 4));
    let f = d.add_fence(FenceRegion::new("g", vec![Rect::new(0, 0, 1000, 90)]));
    let mut c = Cell::new("a", CellTypeId(0), Point::new(0, 0));
    c.pos = Some(Point::new(0, 0));
    c.fence = f;
    d.add_cell(c);
    assert_agreement(&d);
}
