//! Mutation test for the flow-optimality certifier: take a genuinely optimal
//! matching witness, perturb it in targeted ways, and check the certifier
//! rejects every mutant. A certifier that accepts a perturbed solution would
//! silently bless suboptimal or corrupt matchings in CI.

use mcl_audit::{certify, Violation};
use mcl_flow::matching::min_cost_matching_with_witness;

fn witness() -> (mcl_flow::FlowGraph, mcl_flow::FlowSolution) {
    // 3x3 assignment with a unique optimum: diagonal is expensive, the
    // rotation (0->1, 1->2, 2->0) is cheap.
    let edges = [
        (0, 0, 9),
        (0, 1, 1),
        (1, 1, 9),
        (1, 2, 1),
        (2, 2, 9),
        (2, 0, 1),
    ];
    let (m, w) = min_cost_matching_with_witness(3, 3, &edges).expect("feasible");
    assert_eq!(m.cost, 3);
    (w.graph, w.solution)
}

#[test]
fn pristine_witness_certifies() {
    let (g, s) = witness();
    let cert = certify(&g, &s).expect("optimal solution must certify");
    assert_eq!(cert.cost, 3);
    assert_eq!(cert.arcs, g.num_arcs());
}

#[test]
fn rerouted_flow_is_rejected() {
    let (g, s) = witness();
    // Move one unit of flow from a matched left-right arc to a different
    // arc out of the same left vertex, keeping the claimed cost. This
    // breaks conservation, slackness, or the cost recomputation — the
    // certifier must catch it one way or another.
    for i in 0..s.flow.len() {
        for j in 0..s.flow.len() {
            if i == j || s.flow[i] == 0 || s.flow[j] != 0 {
                continue;
            }
            let mut bad = s.clone();
            bad.flow[i] = 0;
            bad.flow[j] = 1;
            assert!(
                certify(&g, &bad).is_err(),
                "perturbed flow (drain arc {i}, fill arc {j}) must not certify"
            );
        }
    }
}

#[test]
fn truncated_flow_is_rejected() {
    let (g, s) = witness();
    let mut bad = s.clone();
    bad.flow.pop();
    assert!(matches!(
        certify(&g, &bad),
        Err(Violation::FlowLenMismatch { .. })
    ));
}

#[test]
fn understated_cost_is_rejected() {
    let (g, s) = witness();
    let mut bad = s.clone();
    bad.cost -= 1;
    assert!(matches!(
        certify(&g, &bad),
        Err(Violation::CostMismatch { .. })
    ));
}

#[test]
fn corrupted_potential_is_rejected() {
    let (g, s) = witness();
    // Skew every potential by a node-dependent amount; some arc's reduced
    // cost must then violate complementary slackness.
    let mut bad = s.clone();
    for (i, p) in bad.potential.iter_mut().enumerate() {
        *p += (i as i64) * 7 - 11;
    }
    assert!(matches!(
        certify(&g, &bad),
        Err(Violation::SlacknessViolated { .. })
    ));
}

#[test]
fn overfilled_arc_is_rejected() {
    let (g, s) = witness();
    let mut bad = s.clone();
    let i = bad.flow.iter().position(|&f| f > 0).unwrap();
    bad.flow[i] += 1;
    assert!(
        certify(&g, &bad).is_err(),
        "capacity or conservation must trip"
    );
}
