//! Tetris-style greedy legalizer — the stand-in for the IC/CAD 2017 contest
//! champion binary in Table 1.
//!
//! Sorts cells and drops each at the nearest free gap over all rows, honoring
//! the *hard* constraints only (overlap, sites, fences, P/G parity). It is
//! deliberately routability-unaware: edge-spacing and pin violations appear
//! naturally, exactly the behaviour the paper's comparison highlights.

use mcl_core::state::PlacementState;
use mcl_db::prelude::*;

/// Statistics of a Tetris run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TetrisStats {
    /// Cells placed.
    pub placed: usize,
    /// Cells that found no free gap anywhere.
    pub failed: usize,
}

/// Runs the greedy legalizer, returning a placed copy of the design.
pub fn legalize_tetris(design: &Design) -> (Design, TetrisStats) {
    let mut state = PlacementState::new(design);
    let stats = run(&mut state);
    let mut out = design.clone();
    state.write_back(&mut out);
    (out, stats)
}

/// Runs the greedy legalizer on an existing state.
pub fn run(state: &mut PlacementState<'_>) -> TetrisStats {
    let design = state.design();
    let mut order: Vec<CellId> = design.movable_cells().collect();
    // Taller first (hardest), then by GP x: the classic greedy order.
    order.sort_by_key(|&id| {
        let c = &design.cells[id.0 as usize];
        let ct = &design.cell_types[c.type_id.0 as usize];
        (std::cmp::Reverse(ct.height_rows), c.gp.x, c.gp.y, id.0)
    });
    let mut stats = TetrisStats::default();
    for cell in order {
        match nearest_gap(state, cell) {
            Some(p) => {
                state.place(cell, p).expect("gap must be free");
                stats.placed += 1;
            }
            None => stats.failed += 1,
        }
    }
    stats
}

/// The free position nearest (in Manhattan distance) to the cell's GP,
/// ignoring soft constraints.
pub fn nearest_gap(state: &PlacementState<'_>, cell: CellId) -> Option<Point> {
    let d = state.design();
    let c = &d.cells[cell.0 as usize];
    let ct = d.type_of(cell);
    let h = ct.height_rows as usize;
    let w = ct.width;
    let sw = d.tech.site_width;
    let snap_up = |x: Dbu| d.core.xl + (x - d.core.xl + sw - 1).div_euclid(sw) * sw;

    let home_row = d.nearest_row(c.gp.y, ct.height_rows);
    let mut best: Option<(i64, Point)> = None;

    // Scan rows outward from the home row; once the y cost alone exceeds
    // the best cost, stop.
    let mut offsets: Vec<isize> = Vec::with_capacity(2 * d.num_rows);
    for k in 0..d.num_rows as isize {
        offsets.push(k);
        if k > 0 {
            offsets.push(-k);
        }
    }
    for off in offsets {
        let base = home_row as isize + off;
        if base < 0 || base as usize + h > d.num_rows {
            continue;
        }
        let base_row = base as usize;
        if let Some(par) = ct.rail_parity {
            if !par.matches(base_row) {
                continue;
            }
        }
        let y = d.row_y(base_row);
        let y_cost = (y - c.gp.y).abs();
        if let Some((bc, _)) = best {
            if y_cost >= bc {
                continue;
            }
        }
        let segmap = state.segments();
        for &s0 in segmap.in_row(base_row) {
            let seg = &segmap.segments()[s0];
            if seg.fence != c.fence || seg.x.len() < w {
                continue;
            }
            let occupants = state.cells_in_segment(s0);
            let mut gap_lo = seg.x.lo;
            let mut idx = 0usize;
            loop {
                let gap_hi = if idx < occupants.len() {
                    state.pos(occupants[idx]).unwrap().x
                } else {
                    seg.x.hi
                };
                let lo = snap_up(gap_lo);
                let hi = gap_hi - w;
                if hi >= lo {
                    let x = snap_up(c.gp.x.clamp(lo, hi)).min(hi);
                    let ok = if h > 1 {
                        probe_multi_row(state, cell, x, base_row)
                    } else {
                        true
                    };
                    if ok {
                        let cost = (x - c.gp.x).abs() + y_cost;
                        if best.map(|(bc, _)| cost < bc).unwrap_or(true) {
                            best = Some((cost, Point::new(x, y)));
                        }
                    }
                }
                if idx >= occupants.len() {
                    break;
                }
                let occ = occupants[idx];
                gap_lo = state.pos(occ).unwrap().x + d.type_of(occ).width;
                idx += 1;
            }
        }
    }
    best.map(|(_, p)| p)
}

fn probe_multi_row(state: &PlacementState<'_>, cell: CellId, x: Dbu, base_row: usize) -> bool {
    let d = state.design();
    let c = &d.cells[cell.0 as usize];
    let ct = d.type_of(cell);
    let span = Interval::new(x, x + ct.width);
    for r in base_row..base_row + ct.height_rows as usize {
        let Some(si) = state.find_covering_segment(r, c.fence, span) else {
            return false;
        };
        for &other in state.cells_in_segment(si) {
            let p = state.pos(other).unwrap();
            let ow = d.type_of(other).width;
            if x < p.x + ow && p.x < x + ct.width {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design(n: usize, seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n {
            let t = if rng() % 4 == 0 {
                CellTypeId(1)
            } else {
                CellTypeId(0)
            };
            d.add_cell(Cell::new(
                format!("c{i}"),
                t,
                Point::new((rng() % 1900) as Dbu, (rng() % 1700) as Dbu),
            ));
        }
        d
    }

    #[test]
    fn produces_legal_placement() {
        let d = design(150, 3);
        let (out, stats) = legalize_tetris(&d);
        assert_eq!(stats.failed, 0);
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
    }

    #[test]
    fn ignores_edge_spacing_rules() {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 90));
        let mut tbl = EdgeSpacingTable::new(2);
        tbl.set(1, 1, 30);
        d.tech.edge_spacing = tbl;
        let mut ct = CellType::new("e", 20, 1);
        ct.edge_class = (1, 1);
        let e = d.add_cell_type(ct);
        // Two cells that want to abut.
        d.add_cell(Cell::new("a", e, Point::new(100, 0)));
        d.add_cell(Cell::new("b", e, Point::new(120, 0)));
        let (out, _) = legalize_tetris(&d);
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal());
        assert_eq!(rep.edge_spacing, 1, "tetris abuts cells, violating spacing");
    }

    #[test]
    fn respects_fences() {
        let mut d = design(40, 9);
        let f = d.add_fence(FenceRegion::new("g", vec![Rect::new(500, 450, 1500, 1350)]));
        for i in 0..10 {
            d.cells[i].fence = f;
        }
        let (out, stats) = legalize_tetris(&d);
        assert_eq!(stats.failed, 0);
        let rep = Checker::new(&out).check();
        assert_eq!(rep.fence_violations, 0, "{:?}", rep.details);
        assert!(rep.is_legal());
    }
}
