//! # mcl-baselines — comparison legalizers
//!
//! Re-implementations of the algorithms the paper compares against:
//!
//! - [`tetris`]: greedy nearest-gap scan — the stand-in for the IC/CAD 2017
//!   contest champion (Table 1).
//! - [`abacus`]: Abacus-style cluster legalization in the spirit of Wang et
//!   al. \[7\] (Table 2).
//! - [`mll`]: MLL of Chow et al. \[12\], reproduced by running the core
//!   legalizer with current-position displacement curves (Table 2).
//! - [`lcp`]: QP→LCP legalization in the spirit of Chen et al. \[9\], solved
//!   with projected Gauss–Seidel (Table 2).

#![forbid(unsafe_code)]

pub mod abacus;
pub mod lcp;
pub mod mll;
pub mod tetris;

pub use abacus::legalize_abacus;
pub use lcp::legalize_lcp;
pub use mll::legalize_mll;
pub use tetris::legalize_tetris;
