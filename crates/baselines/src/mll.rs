//! MLL baseline (Chow et al., DAC 2016 — "\[12\]-Imp" in Table 2).
//!
//! MLL is the ancestor of MGL: the same window-based insertion, but the
//! displacement curves measure from the cells' *current* positions, so
//! displacement w.r.t. GP accumulates over iterations (Fig. 3 of the
//! paper). It is reproduced by running the core stage 1 with
//! [`DisplacementReference::Current`] and no post-processing.

use mcl_core::config::{DisplacementReference, LegalizerConfig};
use mcl_core::mgl::MglStats;
use mcl_core::Legalizer;
use mcl_db::prelude::*;

/// Runs the MLL baseline.
pub fn legalize_mll(design: &Design) -> (Design, MglStats) {
    let cfg = LegalizerConfig::mll_baseline();
    debug_assert_eq!(cfg.reference, DisplacementReference::Current);
    let (out, stats) = Legalizer::new(cfg).run(design);
    (out, stats.mgl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_db::legal::Checker;
    use mcl_db::score::Metrics;

    fn design(n: usize, seed: u64, density_x: Dbu) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, density_x, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n {
            let t = if rng() % 5 == 0 {
                CellTypeId(1)
            } else {
                CellTypeId(0)
            };
            d.add_cell(Cell::new(
                format!("c{i}"),
                t,
                Point::new((rng() as Dbu) % (density_x - 100), (rng() % 1700) as Dbu),
            ));
        }
        d
    }

    #[test]
    fn produces_legal_placement() {
        let d = design(150, 11, 2000);
        let (out, stats) = legalize_mll(&d);
        assert_eq!(stats.failed, 0);
        assert!(Checker::new(&out).check().is_legal());
    }

    /// Packed rows + perturbation: the realistic overfull GP shape where
    /// MLL's displacement accumulation shows.
    fn packed_design(seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 3000, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let sigma = 220i64;
        let mut i = 0;
        for row in 0..19i64 {
            let mut x = 0i64;
            loop {
                let double = row % 2 == 0 && rng() % 6 == 0;
                let (w, t) = if double {
                    (30, CellTypeId(1))
                } else {
                    (20, CellTypeId(0))
                };
                if x + w > 3000 {
                    break;
                }
                if rng() % 1000 < 970 {
                    let nx = (rng() % (2 * sigma as u64 + 1)) as i64 - sigma;
                    let ny = (rng() % (2 * sigma as u64 + 1)) as i64 - sigma;
                    let gx = (x + nx).clamp(0, 3000 - w);
                    let gy = (row * 90 + ny).clamp(0, 1800 - 180);
                    d.add_cell(Cell::new(format!("c{i}"), t, Point::new(gx, gy)));
                    i += 1;
                }
                x += w + if rng() % 10 == 0 { 20 } else { 0 };
            }
        }
        d
    }

    #[test]
    fn mgl_beats_mll_on_dense_design() {
        // The paper's headline: measuring from GP (MGL + post-processing)
        // gives lower displacement than MLL on dense designs.
        let d = packed_design(123); // ~95% density, locally overfull GP
        let (mll_out, s1) = legalize_mll(&d);
        assert_eq!(s1.failed, 0);
        let (mgl_out, s2) = Legalizer::new(LegalizerConfig::total_displacement()).run(&d);
        assert_eq!(s2.mgl.failed, 0);
        let mll_m = Metrics::measure(&mll_out);
        let mgl_m = Metrics::measure(&mgl_out);
        // Both share the insertion machinery (including the interleaved
        // processing order, which helps MLL too), so the gap here is a few
        // percent; it is the GP-reference accounting that must win.
        assert!(
            (mgl_m.total_disp_dbu as f64) < 0.95 * mll_m.total_disp_dbu as f64,
            "MGL {} should beat MLL {}",
            mgl_m.total_disp_dbu,
            mll_m.total_disp_dbu
        );
    }
}
