//! LCP-based legalizer, the stand-in for Chen et al. \[9\] in Table 2.
//!
//! Chen et al. formulate legalization as a quadratic program (quadratic
//! displacement objective, pairwise non-overlap under an initial row/order
//! assignment), transform it into a linear complementarity problem through
//! the KKT conditions, and solve it iteratively. We reproduce that pipeline:
//!
//! 1. seed rows and orders with the greedy scan ([`crate::tetris`]);
//! 2. build the pairwise constraint graph (including multi-row coupling);
//! 3. solve the LCP with projected Gauss–Seidel on the multipliers;
//! 4. snap to sites with a legality-restoring sweep.

use mcl_core::state::PlacementState;
use mcl_db::prelude::*;
use std::collections::HashSet;

/// Statistics of an LCP run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LcpStats {
    /// Cells optimized.
    pub cells: usize,
    /// Constraint pairs.
    pub pairs: usize,
    /// Gauss–Seidel sweeps executed.
    pub iterations: usize,
    /// Maximum constraint violation at exit (dbu).
    pub residual: f64,
    /// Cells the greedy seeding failed to place.
    pub seed_failed: usize,
}

/// Runs the LCP legalizer.
pub fn legalize_lcp(design: &Design) -> (Design, LcpStats) {
    legalize_lcp_with(design, 400, 1e-3)
}

/// Runs the LCP legalizer with explicit iteration budget and tolerance.
pub fn legalize_lcp_with(design: &Design, max_iters: usize, tol: f64) -> (Design, LcpStats) {
    let mut stats = LcpStats::default();

    // 1. Seed with the greedy scan.
    let mut state = PlacementState::new(design);
    let seed_stats = crate::tetris::run(&mut state);
    stats.seed_failed = seed_stats.failed;

    // 2. Constraint graph over placed movable cells.
    let cells: Vec<CellId> = design
        .movable_cells()
        .filter(|&c| state.pos(c).is_some())
        .collect();
    let k = cells.len();
    stats.cells = k;
    let mut index = vec![usize::MAX; design.cells.len()];
    for (i, &c) in cells.iter().enumerate() {
        index[c.0 as usize] = i;
    }
    // x variables in dbu (f64 during the solve).
    let mut x: Vec<f64> = cells
        .iter()
        .map(|&c| state.pos(c).unwrap().x as f64)
        .collect();
    let desired: Vec<f64> = cells
        .iter()
        .map(|&c| design.cells[c.0 as usize].gp.x as f64)
        .collect();
    let mut lo = vec![f64::NEG_INFINITY; k];
    let mut hi = vec![f64::INFINITY; k];
    for (i, &c) in cells.iter().enumerate() {
        let w = design.type_of(c).width;
        for (seg_idx, _) in state.segment_memberships(c) {
            let seg = &state.segments().segments()[seg_idx];
            lo[i] = lo[i].max(seg.x.lo as f64);
            hi[i] = hi[i].min((seg.x.hi - w) as f64);
        }
    }
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    for seg in 0..state.segments().len() {
        let occ = state.cells_in_segment(seg);
        for w2 in occ.windows(2) {
            let (a, b) = (w2[0], w2[1]);
            if seen.insert((a.0, b.0)) {
                let sep = design.type_of(a).width as f64;
                pairs.push((index[a.0 as usize], index[b.0 as usize], sep));
            }
        }
    }
    stats.pairs = pairs.len();

    // 3. Projected Gauss–Seidel on the KKT multipliers. For the QP
    //    min Σ (x_i − x'_i)² s.t. x_j − x_i ≥ sep, the stationarity reads
    //    x_i = x'_i + (Σ_in λ − Σ_out λ)/2; PGS adjusts one λ at a time to
    //    close its constraint gap, projecting λ ≥ 0.
    let mut lambda = vec![0.0f64; pairs.len()];
    // Start from the unconstrained optimum.
    for i in 0..k {
        x[i] = desired[i].clamp(lo[i], hi[i]);
    }
    let mut residual = f64::INFINITY;
    let mut iters = 0;
    while iters < max_iters {
        iters += 1;
        residual = 0.0f64;
        for (pi, &(a, b, sep)) in pairs.iter().enumerate() {
            let gap = sep - (x[b] - x[a]); // > 0 means violated
                                           // Each unit of λ moves a left 0.5 and b right 0.5.
            let delta = gap; // (1/2 + 1/2) divisor = 1
            let new_lambda = (lambda[pi] + delta).max(0.0);
            let applied = new_lambda - lambda[pi];
            if applied != 0.0 {
                lambda[pi] = new_lambda;
                x[a] -= applied / 2.0;
                x[b] += applied / 2.0;
            }
            residual = residual.max(gap.max(0.0));
        }
        // Bound projection (boundary KKT handled by clamping).
        for i in 0..k {
            x[i] = x[i].clamp(lo[i], hi[i]);
        }
        if residual < tol {
            break;
        }
    }
    stats.iterations = iters;
    stats.residual = residual;

    // 4. Snap and restore legality with a per-segment left-to-right sweep.
    let sw = design.tech.site_width;
    let mut out = design.clone();
    let snap = |v: f64| -> Dbu {
        let raw = v.round() as Dbu;
        design.core.xl + (raw - design.core.xl + sw / 2).div_euclid(sw) * sw
    };
    let mut new_x: Vec<Dbu> = (0..k)
        .map(|i| snap(x[i]).clamp(lo[i] as Dbu, hi[i] as Dbu))
        .collect();
    // Forward sweep per segment: enforce order & separation rightward.
    for seg in 0..state.segments().len() {
        let occ: Vec<CellId> = state.cells_in_segment(seg).to_vec();
        let mut min_x = state.segments().segments()[seg].x.lo;
        for &c in &occ {
            let i = index[c.0 as usize];
            if new_x[i] < min_x {
                new_x[i] = min_x;
            }
            min_x = new_x[i] + design.type_of(c).width;
        }
        // Backward sweep: pull back inside the segment if the forward pass
        // overran the right edge.
        let mut max_x = state.segments().segments()[seg].x.hi;
        for &c in occ.iter().rev() {
            let i = index[c.0 as usize];
            let w = design.type_of(c).width;
            if new_x[i] + w > max_x {
                new_x[i] = max_x - w;
            }
            max_x = new_x[i];
        }
    }
    for (i, &c) in cells.iter().enumerate() {
        let p = state.pos(c).unwrap();
        let row = design.row_of_y(p.y).unwrap();
        out.cells[c.0 as usize].pos = Some(Point::new(new_x[i], p.y));
        out.cells[c.0 as usize].orient =
            design.orient_for_row(design.cells[c.0 as usize].type_id, row);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_db::legal::Checker;
    use mcl_db::score::Metrics;

    fn design(n: usize, seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n {
            let t = if rng() % 5 == 0 {
                CellTypeId(1)
            } else {
                CellTypeId(0)
            };
            d.add_cell(Cell::new(
                format!("c{i}"),
                t,
                Point::new((rng() % 1900) as Dbu, (rng() % 1700) as Dbu),
            ));
        }
        d
    }

    #[test]
    fn produces_legal_placement() {
        let d = design(150, 41);
        let (out, stats) = legalize_lcp(&d);
        assert_eq!(stats.seed_failed, 0);
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
    }

    #[test]
    fn improves_on_the_seed() {
        let d = design(300, 99);
        let (seed_out, _) = crate::tetris::legalize_tetris(&d);
        let (lcp_out, stats) = legalize_lcp(&d);
        assert!(stats.residual < 1.0, "{stats:?}");
        let seed_m = Metrics::measure(&seed_out);
        let lcp_m = Metrics::measure(&lcp_out);
        assert!(
            lcp_m.total_disp_dbu <= seed_m.total_disp_dbu,
            "LCP {} vs seed {}",
            lcp_m.total_disp_dbu,
            seed_m.total_disp_dbu
        );
        assert!(Checker::new(&lcp_out).check().is_legal());
    }

    #[test]
    fn converges_on_chain() {
        // Five cells all wanting the same x on one row: QP optimum spreads
        // them around the common target.
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 90));
        d.add_cell_type(CellType::new("s", 20, 1));
        for i in 0..5 {
            d.add_cell(Cell::new(
                format!("c{i}"),
                CellTypeId(0),
                Point::new(600, 0),
            ));
        }
        let (out, stats) = legalize_lcp(&d);
        assert!(stats.residual < 1.0);
        let mut xs: Vec<Dbu> = out.cells.iter().map(|c| c.pos.unwrap().x).collect();
        xs.sort_unstable();
        // Quadratic optimum centers the pack on 600: cells at 550..650.
        assert_eq!(xs[4] - xs[0], 80, "{xs:?}");
        assert!((xs[2] - 590).abs() <= 20, "{xs:?}");
        assert!(Checker::new(&out).check().is_legal());
    }
}
