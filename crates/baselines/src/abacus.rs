//! Abacus-style legalizer, the stand-in for Wang et al. \[7\] in Table 2.
//!
//! Cells are processed in increasing GP x. Single-row cells are appended to
//! per-segment cluster chains with the classic quadratic-cost cluster
//! collapse of Spindler et al. (Abacus); multi-row cells are placed greedily
//! at the frontier of their spanned rows and act as blockers afterwards —
//! the multi-row extension of \[7\] evaluates row choices the same way but
//! also back-propagates; our approximation is documented in DESIGN.md.

use mcl_db::prelude::*;
use std::collections::HashMap;

/// Statistics of an Abacus run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbacusStats {
    /// Cells placed.
    pub placed: usize,
    /// Cells with no feasible row.
    pub failed: usize,
}

/// One Abacus cluster: cells packed abutting, with the optimal quadratic
/// position `x = q / e` clamped to the segment.
#[derive(Debug, Clone)]
struct Cluster {
    cells: Vec<CellId>,
    /// Total weight `e = Σ w_i` (all weights are 1, so e = cell count).
    e: f64,
    /// `q = Σ w_i (x'_i − offset_i)`.
    q: f64,
    /// `qq = Σ w_i (x'_i − offset_i)²` — enables O(1) cost queries.
    qq: f64,
    /// Total width.
    width: Dbu,
    /// Current optimal left edge.
    x: f64,
}

/// Cluster sufficient statistics used during trial simulation (no cell
/// lists, so trials never copy a large cluster's contents).
#[derive(Debug, Clone, Copy)]
struct TailSim {
    e: f64,
    q: f64,
    qq: f64,
    width: Dbu,
    x: f64,
}

impl TailSim {
    fn of(c: &Cluster) -> Self {
        Self {
            e: c.e,
            q: c.q,
            qq: c.qq,
            width: c.width,
            x: c.x,
        }
    }

    /// Quadratic cost `Σ (x − v_i)² = e·x² − 2qx + qq` at the cluster's
    /// current position.
    fn cost(&self) -> f64 {
        self.e * self.x * self.x - 2.0 * self.q * self.x + self.qq
    }
}

/// A row segment's cluster chain plus hard blockers from multi-row cells.
#[derive(Debug, Clone, Default)]
struct SegmentRow {
    clusters: Vec<Cluster>,
    /// Left frontier enforced by multi-row blockers: nothing may start
    /// before this x.
    floor: Dbu,
}

/// Runs the Abacus-style legalizer.
pub fn legalize_abacus(design: &Design) -> (Design, AbacusStats) {
    let segmap = design.build_segments();
    let mut rows: HashMap<usize, SegmentRow> = HashMap::new();
    for (i, s) in segmap.segments().iter().enumerate() {
        rows.insert(
            i,
            SegmentRow {
                clusters: Vec::new(),
                floor: s.x.lo,
            },
        );
    }

    let mut order: Vec<CellId> = design.movable_cells().collect();
    order.sort_by_key(|&id| {
        let c = &design.cells[id.0 as usize];
        (c.gp.x, c.gp.y, id.0)
    });

    let mut out = design.clone();
    let mut stats = AbacusStats::default();
    let sw = design.tech.site_width;
    let snap = |x: f64, lo: Dbu| -> Dbu {
        let raw = x.round() as Dbu;
        lo + ((raw - lo + sw / 2).div_euclid(sw)) * sw
    };

    for cell in order {
        let c = &design.cells[cell.0 as usize];
        let ct = design.type_of(cell);
        let h = ct.height_rows as usize;
        let mut best: Option<(f64, usize, Dbu)> = None; // (cost, base_row, x for multi-row)

        for base_row in 0..design.num_rows.saturating_sub(h - 1) {
            if let Some(par) = ct.rail_parity {
                if !par.matches(base_row) {
                    continue;
                }
            }
            let y = design.row_y(base_row);
            // Quadratic, matching the cluster cost metric.
            let dy = (y - c.gp.y) as f64;
            let y_cost = dy * dy;
            if let Some((bc, _, _)) = best {
                if y_cost >= bc {
                    continue;
                }
            }
            if h == 1 {
                // Trial-insert into the segment containing/nearest gp.x.
                let Some(seg_idx) = pick_segment(&segmap, base_row, c.fence, c.gp.x, ct.width)
                else {
                    continue;
                };
                let seg = &segmap.segments()[seg_idx];
                let row = &rows[&seg_idx];
                if let Some(cost) = trial_cost(design, row, seg, cell, c.gp.x) {
                    let total = cost + y_cost;
                    if best.map(|(bc, _, _)| total < bc).unwrap_or(true) {
                        best = Some((total, base_row, seg_idx as Dbu));
                    }
                }
            } else {
                // Multi-row: frontier placement across all spanned rows.
                let mut x_min = design.core.xl;
                let mut ok = true;
                let mut seg_hi = design.core.xh;
                for r in base_row..base_row + h {
                    let Some(seg_idx) = pick_segment(&segmap, r, c.fence, c.gp.x, ct.width) else {
                        ok = false;
                        break;
                    };
                    let seg = &segmap.segments()[seg_idx];
                    let row = &rows[&seg_idx];
                    let frontier = row
                        .clusters
                        .last()
                        .map(|cl| (cl.x as Dbu) + cl.width)
                        .unwrap_or(row.floor)
                        .max(row.floor);
                    x_min = x_min.max(frontier).max(seg.x.lo);
                    seg_hi = seg_hi.min(seg.x.hi);
                }
                if !ok {
                    continue;
                }
                let x = snap(c.gp.x.max(x_min) as f64, design.core.xl).max(x_min);
                let x = design.core.xl + (x - design.core.xl + sw - 1).div_euclid(sw) * sw;
                if x + ct.width <= seg_hi {
                    let dx = (x - c.gp.x) as f64;
                    let total = dx * dx + y_cost;
                    if best.map(|(bc, _, _)| total < bc).unwrap_or(true) {
                        best = Some((total, base_row, x));
                    }
                }
            }
        }

        match best {
            None => stats.failed += 1,
            Some((_, base_row, aux)) => {
                stats.placed += 1;
                if h == 1 {
                    let seg_idx = aux as usize;
                    let seg = segmap.segments()[seg_idx];
                    let row = rows.get_mut(&seg_idx).unwrap();
                    commit(design, row, &seg, cell, c.gp.x);
                } else {
                    let x = aux;
                    for r in base_row..base_row + h {
                        let seg_idx = pick_segment(&segmap, r, c.fence, c.gp.x, ct.width).unwrap();
                        let row = rows.get_mut(&seg_idx).unwrap();
                        row.floor = row.floor.max(x + ct.width);
                    }
                    out.cells[cell.0 as usize].pos = Some(Point::new(x, design.row_y(base_row)));
                }
            }
        }
    }

    // Final cluster positions -> cell positions.
    for (seg_idx, row) in &rows {
        let seg = &segmap.segments()[*seg_idx];
        for cl in &row.clusters {
            let mut x = snap(cl.x, design.core.xl).clamp(seg.x.lo, seg.x.hi - cl.width);
            for &cid in &cl.cells {
                let base_row = seg.row;
                out.cells[cid.0 as usize].pos = Some(Point::new(x, design.row_y(base_row)));
                out.cells[cid.0 as usize].orient =
                    design.orient_for_row(design.cells[cid.0 as usize].type_id, base_row);
                x += design.type_of(cid).width;
            }
        }
    }
    // Orientation for multi-row cells.
    for id in design.movable_cells() {
        if let Some(p) = out.cells[id.0 as usize].pos {
            if let Some(r) = design.row_of_y(p.y) {
                out.cells[id.0 as usize].orient =
                    design.orient_for_row(design.cells[id.0 as usize].type_id, r);
            }
        }
    }
    (out, stats)
}

fn pick_segment(
    segmap: &SegmentMap,
    row: usize,
    fence: FenceId,
    gp_x: Dbu,
    width: Dbu,
) -> Option<usize> {
    // Nearest segment of the right fence wide enough for the cell.
    segmap
        .in_row(row)
        .iter()
        .copied()
        .filter(|&i| {
            let s = &segmap.segments()[i];
            s.fence == fence && s.x.len() >= width
        })
        .min_by_key(|&i| {
            let s = &segmap.segments()[i];
            if s.x.contains(gp_x) {
                0
            } else {
                (s.x.lo - gp_x).abs().min((s.x.hi - gp_x).abs())
            }
        })
}

/// Abacus trial: quadratic-cost delta of appending `cell` at desired `x'`
/// to the segment's cluster chain (without mutating it). `None` when the
/// row overflows. Runs on cluster sufficient statistics only, so cost is
/// proportional to the number of clusters collapsed — never to their size.
fn trial_cost(
    design: &Design,
    row: &SegmentRow,
    seg: &Segment,
    cell: CellId,
    desired: Dbu,
) -> Option<f64> {
    let w = design.type_of(cell).width;
    let (base, tail) = simulate_tail(&row.clusters, seg, row.floor, cell, desired, w)?;
    let old_cost: f64 = row.clusters[base..]
        .iter()
        .map(|c| TailSim::of(c).cost())
        .sum();
    let new_cost: f64 = tail.iter().map(TailSim::cost).sum();
    Some(new_cost - old_cost)
}

fn commit(design: &Design, row: &mut SegmentRow, seg: &Segment, cell: CellId, desired: Dbu) {
    let w = design.type_of(cell).width;
    let floor = row.floor;
    let (base, sims) = simulate_tail(&row.clusters, seg, floor, cell, desired, w)
        .expect("commit after successful trial");
    // Materialize the merge plan: the affected clusters' cell lists are
    // concatenated in chain order (weights are all 1, so `e` counts cells);
    // the new cell is the rightmost of the last sim.
    let affected: Vec<Cluster> = row.clusters.drain(base..).collect();
    let mut iter = affected.into_iter();
    for (si, sim) in sims.iter().enumerate() {
        let is_last = si + 1 == sims.len();
        let mut need = sim.e.round() as usize - usize::from(is_last);
        let mut cells: Vec<CellId> = Vec::new();
        while need > 0 {
            let cl = iter.next().expect("cluster cell accounting");
            need = need
                .checked_sub(cl.cells.len())
                .expect("merge plan splits a cluster");
            if cells.is_empty() {
                cells = cl.cells; // reuse the first (possibly huge) vec
            } else {
                cells.extend(cl.cells);
            }
        }
        if is_last {
            cells.push(cell);
        }
        row.clusters.push(Cluster {
            cells,
            e: sim.e,
            q: sim.q,
            qq: sim.qq,
            width: sim.width,
            x: sim.x,
        });
    }
    debug_assert!(iter.next().is_none(), "all affected clusters consumed");
}

/// Simulates appending a cell on sufficient statistics: returns the index
/// `base` from which the chain changes and the replacement tail stats.
fn simulate_tail(
    chain: &[Cluster],
    seg: &Segment,
    floor: Dbu,
    cell: CellId,
    desired: Dbu,
    w: Dbu,
) -> Option<(usize, Vec<TailSim>)> {
    let lo = floor.max(seg.x.lo) as f64;
    let hi = (seg.x.hi - w) as f64;
    if hi < lo {
        return None;
    }
    let _ = cell;
    let d = desired as f64;
    let mut base = chain.len();
    let mut tail = vec![TailSim {
        e: 1.0,
        q: d,
        qq: d * d,
        width: w,
        x: d.clamp(lo, hi),
    }];
    loop {
        let n = tail.len();
        // Overlap with the predecessor inside the simulated tail, or with
        // the untouched chain prefix.
        let prev_end = if n >= 2 {
            Some(tail[n - 2].x + tail[n - 2].width as f64)
        } else if base > 0 {
            Some(chain[base - 1].x + chain[base - 1].width as f64)
        } else {
            None
        };
        let Some(prev_end) = prev_end else { break };
        if tail[n - 1].x >= prev_end {
            break;
        }
        if n < 2 {
            // Pull the overlapping predecessor into the simulation.
            base -= 1;
            tail.insert(0, TailSim::of(&chain[base]));
            continue;
        }
        let last = tail.pop().unwrap();
        let head = tail.last_mut().unwrap();
        // Standard Abacus merge with the tail's desired positions shifted
        // left by the head's width W: q' = q − eW, qq' = qq − 2Wq + eW².
        let wd = head.width as f64;
        head.q += last.q - last.e * wd;
        head.qq += last.qq - 2.0 * wd * last.q + last.e * wd * wd;
        head.e += last.e;
        head.width += last.width;
        let lo2 = floor.max(seg.x.lo) as f64;
        let hi2 = (seg.x.hi - head.width) as f64;
        if hi2 < lo2 {
            return None;
        }
        head.x = (head.q / head.e).clamp(lo2, hi2);
    }
    // Overflow check on the changed region plus chain prefix width.
    let prefix: Dbu = chain[..base].iter().map(|c| c.width).sum();
    let tail_w: Dbu = tail.iter().map(|c| c.width).sum();
    if prefix + tail_w > seg.x.hi - floor.max(seg.x.lo) {
        return None;
    }
    Some((base, tail))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcl_db::legal::Checker;
    use mcl_db::score::Metrics;

    fn design(n: usize, seed: u64) -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 1800));
        d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell_type(CellType::new("d", 30, 2));
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n {
            let t = if rng() % 5 == 0 {
                CellTypeId(1)
            } else {
                CellTypeId(0)
            };
            d.add_cell(Cell::new(
                format!("c{i}"),
                t,
                Point::new((rng() % 1900) as Dbu, (rng() % 1700) as Dbu),
            ));
        }
        d
    }

    #[test]
    fn produces_legal_placement() {
        let d = design(150, 21);
        let (out, stats) = legalize_abacus(&d);
        assert_eq!(stats.failed, 0, "{stats:?}");
        let rep = Checker::new(&out).check();
        assert!(rep.is_legal(), "{:?}", rep.details);
    }

    #[test]
    fn cluster_collapse_centers_on_desired_positions() {
        // Three cells all wanting x=500 on one row: Abacus should pack them
        // around 500 (median-ish for quadratic: mean).
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 2000, 90));
        d.add_cell_type(CellType::new("s", 20, 1));
        for i in 0..3 {
            d.add_cell(Cell::new(
                format!("c{i}"),
                CellTypeId(0),
                Point::new(500, 0),
            ));
        }
        let (out, _) = legalize_abacus(&d);
        let xs: Vec<Dbu> = out.cells.iter().map(|c| c.pos.unwrap().x).collect();
        // Packed abutting, centered near 500 − 30 = 470..530.
        assert_eq!(xs[1] - xs[0], 20);
        assert_eq!(xs[2] - xs[1], 20);
        assert!((xs[0] - 470).abs() <= 10, "{xs:?}");
        assert!(Checker::new(&out).check().is_legal());
    }

    #[test]
    fn displacement_reasonable_on_spread_design() {
        let d = design(100, 77);
        let (out, stats) = legalize_abacus(&d);
        assert_eq!(stats.failed, 0);
        let m = Metrics::measure(&out);
        // Sparse design: average displacement should be small (< 3 rows).
        assert!(m.avg_disp_rows < 3.0, "{}", m.avg_disp_rows);
    }
}
