//! # mcl-parsers — benchmark I/O
//!
//! - [`bookshelf`]: UCLA Bookshelf (`.nodes/.pl/.scl/.nets`) with `.fence`
//!   and `.rails` extensions, reader and writer.
//! - [`lefdef`]: a minimal LEF/DEF subset (macros + pins + edge classes,
//!   die/rows/regions/groups/components/pins/nets), reader and DEF/LEF
//!   writers.
//!
//! Both read into the shared [`mcl_db::Design`] model.

#![forbid(unsafe_code)]

pub mod bookshelf;
pub mod error;
pub mod fsio;
pub mod lefdef;

pub use bookshelf::{read as read_bookshelf, write as write_bookshelf, Bundle};
pub use error::{ParseError, Result};
pub use fsio::{read_bookshelf_dir, read_lefdef_files, write_bookshelf_dir};
pub use lefdef::{read_def, read_lef, write_def, write_lef, LefLibrary};
