//! Filesystem helpers: load/store Bookshelf bundles and LEF/DEF pairs.

use crate::bookshelf::{self, Bundle};
use crate::error::{ParseError, Result};
use crate::lefdef;
use mcl_db::prelude::*;
use std::path::Path;

/// Reads a Bookshelf bundle from a directory. Files are discovered by
/// extension (`.nodes`, `.pl`, `.scl`, `.nets`, `.fence`, `.rails`);
/// `.nets`, `.fence` and `.rails` are optional.
///
/// # Errors
///
/// I/O failures and parse errors are both reported as [`ParseError`].
pub fn read_bookshelf_dir(dir: &Path) -> Result<Design> {
    let mut bundle = Bundle::default();
    let mut stem = None;
    let entries = std::fs::read_dir(dir)
        .map_err(|e| ParseError::new("fs", 0, format!("read_dir {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| ParseError::new("fs", 0, format!("read_dir entry: {e}")))?;
        let path = entry.path();
        let Some(ext) = path.extension().and_then(|s| s.to_str()) else {
            continue;
        };
        let slot = match ext {
            "nodes" => &mut bundle.nodes,
            "pl" => &mut bundle.pl,
            "scl" => &mut bundle.scl,
            "nets" => &mut bundle.nets,
            "fence" => &mut bundle.fence,
            "rails" => &mut bundle.rails,
            "types" => &mut bundle.types,
            _ => continue,
        };
        // The bundle's file stem is the design name (that is what
        // `write_bookshelf_dir` uses); the `.nodes` file is authoritative.
        if ext == "nodes" {
            stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string);
        }
        *slot = std::fs::read_to_string(&path)
            .map_err(|e| ParseError::new("fs", 0, format!("read {}: {e}", path.display())))?;
    }
    if bundle.nodes.is_empty() || bundle.pl.is_empty() || bundle.scl.is_empty() {
        return Err(ParseError::new(
            "fs",
            0,
            format!(
                "directory {} must contain .nodes, .pl and .scl files",
                dir.display()
            ),
        ));
    }
    let mut design = bookshelf::read(&bundle)?;
    if let Some(stem) = stem {
        design.name = stem;
    }
    Ok(design)
}

/// Writes a design as a Bookshelf bundle into `dir` (created if missing),
/// using `name` as the file stem.
///
/// # Errors
///
/// I/O failures are reported as [`ParseError`].
pub fn write_bookshelf_dir(design: &Design, dir: &Path, name: &str) -> Result<()> {
    std::fs::create_dir_all(dir)
        .map_err(|e| ParseError::new("fs", 0, format!("mkdir {}: {e}", dir.display())))?;
    let bundle = bookshelf::write(design);
    for (ext, text) in [
        ("nodes", &bundle.nodes),
        ("pl", &bundle.pl),
        ("scl", &bundle.scl),
        ("nets", &bundle.nets),
        ("fence", &bundle.fence),
        ("rails", &bundle.rails),
        ("types", &bundle.types),
    ] {
        if text.trim().is_empty() && matches!(ext, "nets" | "fence" | "rails" | "types") {
            continue;
        }
        let path = dir.join(format!("{name}.{ext}"));
        std::fs::write(&path, text)
            .map_err(|e| ParseError::new("fs", 0, format!("write {}: {e}", path.display())))?;
    }
    Ok(())
}

/// Reads a design from a LEF file and a DEF file.
///
/// # Errors
///
/// I/O failures and parse errors are both reported as [`ParseError`].
pub fn read_lefdef_files(lef: &Path, def: &Path) -> Result<Design> {
    let lef_text = std::fs::read_to_string(lef)
        .map_err(|e| ParseError::new("fs", 0, format!("read {}: {e}", lef.display())))?;
    let def_text = std::fs::read_to_string(def)
        .map_err(|e| ParseError::new("fs", 0, format!("read {}: {e}", def.display())))?;
    let lib = lefdef::read_lef(&lef_text)?;
    lefdef::read_def(&def_text, &lib)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_design() -> Design {
        let mut d = Design::new("t", Technology::example(), Rect::new(0, 0, 1000, 180));
        let s = d.add_cell_type(CellType::new("s", 20, 1));
        d.add_cell(Cell::new("a", s, Point::new(15, 22)));
        d.add_cell(Cell::new("b", s, Point::new(400, 95)));
        d
    }

    #[test]
    fn bookshelf_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mclegal_test_{}", std::process::id()));
        let d = sample_design();
        write_bookshelf_dir(&d, &dir, "t").unwrap();
        let p = read_bookshelf_dir(&dir).unwrap();
        assert_eq!(p.cells.len(), 2);
        assert_eq!(p.cells[0].gp, Point::new(15, 22));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_mandatory_files_rejected() {
        let dir = std::env::temp_dir().join(format!("mclegal_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let err = read_bookshelf_dir(&dir).unwrap_err();
        assert!(err.message.contains("must contain"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
