//! Bookshelf reader/writer (UCLA `.nodes/.pl/.scl/.nets`) with three
//! documented extensions for this problem domain:
//!
//! - `.fence` — fence regions and their cell membership;
//! - `.rails` — the P/G grid and IO pins;
//! - `.types` — the cell-type library (edge classes, rail parity, pin
//!   shapes) plus technology extras (layer count, edge-spacing table),
//!   which plain Bookshelf cannot express.
//!
//! Without a `.types` file, node dimensions map onto synthesized
//! [`CellType`]s (one per distinct width × height); with one, the bundle
//! round-trips a [`Design`] faithfully enough that legalizing the re-read
//! design reproduces the original results bit-for-bit. The `.pl` positions
//! are read as the GP input.

use crate::error::{ParseError, Result};
use mcl_db::prelude::*;
use std::collections::HashMap;
use std::fmt::Write as _;

/// A complete Bookshelf design bundle as text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bundle {
    /// `.nodes` contents.
    pub nodes: String,
    /// `.pl` contents.
    pub pl: String,
    /// `.scl` contents.
    pub scl: String,
    /// `.nets` contents (optional).
    pub nets: String,
    /// `.fence` contents (optional extension).
    pub fence: String,
    /// `.rails` contents (optional extension).
    pub rails: String,
    /// `.types` contents (optional extension).
    pub types: String,
}

/// Reads a bundle into a [`Design`].
///
/// # Errors
///
/// Any malformed line yields a [`ParseError`] with file and line context.
pub fn read(bundle: &Bundle) -> Result<Design> {
    let scl = parse_scl(&bundle.scl)?;
    let tech = Technology {
        site_width: scl.site_width,
        row_height: scl.row_height,
        ..Technology::example()
    };
    let core = Rect::new(
        scl.origin_x,
        scl.origin_y,
        scl.origin_x + scl.row_sites * scl.site_width,
        scl.origin_y + scl.num_rows as Dbu * scl.row_height,
    );
    let mut design = Design::new("bookshelf", tech, core);

    // Nodes.
    let nodes = parse_nodes(&bundle.nodes)?;
    let mut type_cache: HashMap<(Dbu, Dbu), CellTypeId> = HashMap::new();
    let mut name_to_id: HashMap<String, CellId> = HashMap::new();
    for n in &nodes {
        let h_rows = n.height / scl.row_height;
        if n.height % scl.row_height != 0 || h_rows == 0 {
            return Err(ParseError::new(
                ".nodes",
                n.line,
                format!(
                    "node {} height {} is not a whole number of rows",
                    n.name, n.height
                ),
            ));
        }
        let tid = *type_cache.entry((n.width, n.height)).or_insert_with(|| {
            design.add_cell_type(CellType::new(
                format!("BS_W{}_H{}", n.width, h_rows),
                n.width,
                h_rows as u32,
            ))
        });
        let mut cell = Cell::new(n.name.clone(), tid, Point::new(0, 0));
        cell.fixed = n.terminal;
        let id = design.add_cell(cell);
        name_to_id.insert(n.name.clone(), id);
    }

    // Placement.
    for p in parse_pl(&bundle.pl)? {
        let Some(&id) = name_to_id.get(&p.name) else {
            return Err(ParseError::new(
                ".pl",
                p.line,
                format!("unknown node {}", p.name),
            ));
        };
        let cell = &mut design.cells[id.0 as usize];
        cell.gp = Point::new(p.x, p.y);
        if cell.fixed || p.fixed {
            cell.fixed = true;
            cell.pos = Some(Point::new(p.x, p.y));
        }
    }

    // Cell-type library (extension). Applied before nets so net pin
    // indices resolve against the real pin lists.
    if !bundle.types.trim().is_empty() {
        apply_types(&mut design, &bundle.types, &name_to_id)?;
    }

    // Nets.
    if !bundle.nets.trim().is_empty() {
        for net in parse_nets(&bundle.nets)? {
            let mut pins = Vec::new();
            for (name, pin, line) in net.pins {
                let Some(&id) = name_to_id.get(&name) else {
                    return Err(ParseError::new(
                        ".nets",
                        line,
                        format!("unknown node {name}"),
                    ));
                };
                // Bookshelf nets have no physical pins; use offset (0,0) via
                // a synthetic pin at the cell center... we keep a Fixed-less
                // representation: the `P<idx>` extension token selects a pin
                // of the type, otherwise pin 0 — synthesized at the cell
                // center when the type has none.
                let ct = design.type_of(id);
                if ct.pins.is_empty() {
                    let tid = design.cells[id.0 as usize].type_id;
                    let w = design.cell_types[tid.0 as usize].width;
                    // Mid-height of the *first row*, never on a row boundary
                    // (cell centers of even-height cells sit on P/G rails).
                    let y = design.tech.row_height / 2;
                    design.cell_types[tid.0 as usize].pins.push(PinShape {
                        name: "P".into(),
                        layer: 1,
                        rect: Rect::new(w / 2, y, w / 2 + 1, y + 1),
                    });
                }
                let ct = design.type_of(id);
                if pin >= ct.pins.len() {
                    return Err(ParseError::new(
                        ".nets",
                        line,
                        format!("node {name} has no pin {pin}"),
                    ));
                }
                pins.push(NetPin::Cell { cell: id, pin });
            }
            design.nets.push(Net::new(net.name, pins));
        }
    }

    // Fences.
    if !bundle.fence.trim().is_empty() {
        for f in parse_fence(&bundle.fence)? {
            let fid = design.add_fence(FenceRegion::new(f.name, f.rects));
            for (name, line) in f.cells {
                let Some(&id) = name_to_id.get(&name) else {
                    return Err(ParseError::new(
                        ".fence",
                        line,
                        format!("unknown node {name}"),
                    ));
                };
                design.cells[id.0 as usize].fence = fid;
            }
        }
    }

    // Rails + IO pins.
    if !bundle.rails.trim().is_empty() {
        let (grid, ios) = parse_rails(&bundle.rails)?;
        design.grid = grid;
        design.io_pins = ios;
    }

    Ok(design)
}

/// Applies a `.pl` file to a design as the *placement* (not the GP): every
/// listed movable cell gets its `pos` and orientation set. Used to overlay
/// a legalizer's output onto the original benchmark for checking/scoring.
///
/// # Errors
///
/// Unknown cell names and malformed lines yield [`ParseError`].
pub fn apply_pl(design: &mut Design, pl: &str) -> Result<()> {
    let index: HashMap<String, usize> = design
        .cells
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.clone(), i))
        .collect();
    for p in parse_pl(pl)? {
        let Some(&i) = index.get(p.name.as_str()) else {
            return Err(ParseError::new(
                ".pl",
                p.line,
                format!("unknown node {}", p.name),
            ));
        };
        if design.cells[i].fixed {
            continue;
        }
        design.cells[i].pos = Some(Point::new(p.x, p.y));
        if let Some(row) = design.row_of_y(p.y) {
            design.cells[i].orient = design.orient_for_row(design.cells[i].type_id, row);
        }
    }
    Ok(())
}

/// Writes a design to a Bookshelf bundle. Positions go to `.pl` (the legal
/// placement when present, the GP otherwise); fixed cells are marked.
pub fn write(design: &Design) -> Bundle {
    let mut nodes = String::from("UCLA nodes 1.0\n\n");
    let terminals = design.cells.iter().filter(|c| c.fixed).count();
    let _ = writeln!(nodes, "NumNodes : {}", design.cells.len());
    let _ = writeln!(nodes, "NumTerminals : {terminals}");
    for c in &design.cells {
        let ct = &design.cell_types[c.type_id.0 as usize];
        let h = ct.height_rows as Dbu * design.tech.row_height;
        if c.fixed {
            let _ = writeln!(nodes, "{} {} {} terminal", c.name, ct.width, h);
        } else {
            let _ = writeln!(nodes, "{} {} {}", c.name, ct.width, h);
        }
    }

    let mut pl = String::from("UCLA pl 1.0\n\n");
    for c in &design.cells {
        let p = c.pos.unwrap_or(c.gp);
        let orient = c.orient;
        if c.fixed {
            let _ = writeln!(pl, "{} {} {} : {} /FIXED", c.name, p.x, p.y, orient);
        } else {
            let _ = writeln!(pl, "{} {} {} : {}", c.name, p.x, p.y, orient);
        }
    }

    let mut scl = String::from("UCLA scl 1.0\n\n");
    let _ = writeln!(scl, "NumRows : {}", design.num_rows);
    for r in 0..design.num_rows {
        let _ = writeln!(scl, "CoreRow Horizontal");
        let _ = writeln!(scl, "  Coordinate : {}", design.row_y(r));
        let _ = writeln!(scl, "  Height : {}", design.tech.row_height);
        let _ = writeln!(scl, "  Sitewidth : {}", design.tech.site_width);
        let _ = writeln!(scl, "  Sitespacing : {}", design.tech.site_width);
        let _ = writeln!(scl, "  SubrowOrigin : {}", design.core.xl);
        let _ = writeln!(
            scl,
            "  NumSites : {}",
            design.core.width() / design.tech.site_width
        );
        let _ = writeln!(scl, "End");
    }

    let mut nets = String::from("UCLA nets 1.0\n\n");
    let _ = writeln!(nets, "NumNets : {}", design.nets.len());
    let total_pins: usize = design.nets.iter().map(|n| n.pins.len()).sum();
    let _ = writeln!(nets, "NumPins : {total_pins}");
    for n in &design.nets {
        let _ = writeln!(nets, "NetDegree : {} {}", n.pins.len(), n.name);
        for p in &n.pins {
            match p {
                NetPin::Cell { cell, pin } => {
                    // The trailing `P<idx>` token is this dialect's pin
                    // reference; standard Bookshelf readers ignore it.
                    let _ = writeln!(
                        nets,
                        "  {} I : 0 0 P{pin}",
                        design.cells[cell.0 as usize].name
                    );
                }
                NetPin::Fixed(pt) => {
                    let _ = writeln!(nets, "  FIXED I : {} {}", pt.x, pt.y);
                }
            }
        }
    }

    let mut types = String::new();
    let t = &design.tech;
    let _ = writeln!(
        types,
        "Tech NumLayers {} MaxDispRows {}",
        t.num_layers, t.max_disp_rows
    );
    let nc = t.edge_spacing.n_classes();
    let _ = writeln!(types, "EdgeSpacing {nc}");
    for a in 0..nc {
        let row: Vec<String> = (0..nc)
            .map(|b| t.edge_spacing.spacing(a as u8, b as u8).to_string())
            .collect();
        let _ = writeln!(types, "  Row {}", row.join(" "));
    }
    for (ti, ct) in design.cell_types.iter().enumerate() {
        let parity = match ct.rail_parity {
            None => "none",
            Some(RowParity::Even) => "even",
            Some(RowParity::Odd) => "odd",
        };
        let _ = writeln!(
            types,
            "CellType {} Width {} HeightRows {} EdgeClass {} {} Parity {}",
            ct.name, ct.width, ct.height_rows, ct.edge_class.0, ct.edge_class.1, parity
        );
        for p in &ct.pins {
            let _ = writeln!(
                types,
                "  Pin {} {} {} {} {} {}",
                p.name, p.layer, p.rect.xl, p.rect.yl, p.rect.xh, p.rect.yh
            );
        }
        let members: Vec<&str> = design
            .cells
            .iter()
            .filter(|c| c.type_id.0 as usize == ti)
            .map(|c| c.name.as_str())
            .collect();
        if !members.is_empty() {
            let _ = writeln!(types, "  Cells {}", members.join(" "));
        }
        let _ = writeln!(types, "End");
    }

    let mut fence = String::new();
    for (fi, f) in design.fences.iter().enumerate().skip(1) {
        let _ = writeln!(fence, "Fence {}", f.name);
        for r in &f.rects {
            let _ = writeln!(fence, "  Rect {} {} {} {}", r.xl, r.yl, r.xh, r.yh);
        }
        let members: Vec<&str> = design
            .cells
            .iter()
            .filter(|c| c.fence.0 as usize == fi)
            .map(|c| c.name.as_str())
            .collect();
        if !members.is_empty() {
            let _ = writeln!(fence, "  Cells {}", members.join(" "));
        }
        let _ = writeln!(fence, "End");
    }

    let mut rails = String::new();
    let g = &design.grid;
    let _ = writeln!(
        rails,
        "Grid HLayer {} HWidth {} HPitchRows {} VLayer {} VWidth {} VPitch {} VOffset {}",
        g.h_layer, g.h_width, g.h_pitch_rows, g.v_layer, g.v_width, g.v_pitch, g.v_offset
    );
    for p in &design.io_pins {
        let _ = writeln!(
            rails,
            "IoPin {} {} {} {} {} {}",
            p.name, p.layer, p.rect.xl, p.rect.yl, p.rect.xh, p.rect.yh
        );
    }

    Bundle {
        nodes,
        pl,
        scl,
        nets,
        fence,
        rails,
        types,
    }
}

// ---------------------------------------------------------------------
// Individual file parsers.

struct NodeRec {
    name: String,
    width: Dbu,
    height: Dbu,
    terminal: bool,
    line: usize,
}

fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().filter_map(|(i, l)| {
        let l = l.trim();
        if l.is_empty() || l.starts_with('#') || l.starts_with("UCLA") {
            None
        } else {
            Some((i + 1, l))
        }
    })
}

fn parse_nodes(text: &str) -> Result<Vec<NodeRec>> {
    let mut out = Vec::new();
    for (line, l) in content_lines(text) {
        if l.starts_with("NumNodes") || l.starts_with("NumTerminals") {
            continue;
        }
        let mut it = l.split_whitespace();
        let name = it
            .next()
            .ok_or_else(|| ParseError::new(".nodes", line, "missing name"))?;
        let width: Dbu = parse_num(it.next(), ".nodes", line)?;
        let height: Dbu = parse_num(it.next(), ".nodes", line)?;
        let terminal = it
            .next()
            .map(|t| t.eq_ignore_ascii_case("terminal"))
            .unwrap_or(false);
        out.push(NodeRec {
            name: name.to_string(),
            width,
            height,
            terminal,
            line,
        });
    }
    Ok(out)
}

struct PlRec {
    name: String,
    x: Dbu,
    y: Dbu,
    fixed: bool,
    line: usize,
}

fn parse_pl(text: &str) -> Result<Vec<PlRec>> {
    let mut out = Vec::new();
    for (line, l) in content_lines(text) {
        let mut it = l.split_whitespace();
        let name = it
            .next()
            .ok_or_else(|| ParseError::new(".pl", line, "missing name"))?;
        let x: Dbu = parse_num(it.next(), ".pl", line)?;
        let y: Dbu = parse_num(it.next(), ".pl", line)?;
        let rest: Vec<&str> = it.collect();
        let fixed = rest.iter().any(|t| t.contains("FIXED"));
        out.push(PlRec {
            name: name.to_string(),
            x,
            y,
            fixed,
            line,
        });
    }
    Ok(out)
}

struct SclInfo {
    num_rows: usize,
    row_height: Dbu,
    site_width: Dbu,
    origin_x: Dbu,
    origin_y: Dbu,
    row_sites: Dbu,
}

fn parse_scl(text: &str) -> Result<SclInfo> {
    let mut info = SclInfo {
        num_rows: 0,
        row_height: 0,
        site_width: 0,
        origin_x: 0,
        origin_y: Dbu::MAX,
        row_sites: 0,
    };
    let mut rows_seen = 0usize;
    for (line, l) in content_lines(text) {
        let lower = l.to_ascii_lowercase();
        let val = || -> Result<Dbu> {
            let colon = l
                .find(':')
                .ok_or_else(|| ParseError::new(".scl", line, "missing value"))?;
            let v = l[colon + 1..].trim_start();
            // 1-based column of the value token within the trimmed line.
            let column = l.len() - v.len() + 1;
            let tok = v.split_whitespace().next().ok_or_else(|| {
                ParseError::new(".scl", line, "missing value after ':'").with_column(column)
            })?;
            tok.parse().map_err(|_| {
                ParseError::new(".scl", line, format!("bad number {tok:?} in {l:?}"))
                    .with_column(column)
            })
        };
        if lower.starts_with("corerow") {
            rows_seen += 1;
        } else if lower.starts_with("coordinate") {
            let y = val()?;
            if y < info.origin_y {
                info.origin_y = y;
            }
        } else if lower.starts_with("height") {
            info.row_height = val()?;
        } else if lower.starts_with("sitewidth") {
            info.site_width = val()?;
        } else if lower.starts_with("subroworigin") {
            info.origin_x = val()?;
        } else if lower.starts_with("numsites") {
            info.row_sites = info.row_sites.max(val()?);
        } else if lower.starts_with("numrows") {
            info.num_rows = val()? as usize;
        }
    }
    if rows_seen > 0 {
        info.num_rows = rows_seen;
    }
    if info.num_rows == 0 || info.row_height <= 0 || info.site_width <= 0 || info.row_sites <= 0 {
        return Err(ParseError::new(".scl", 0, "incomplete row description"));
    }
    if info.origin_y == Dbu::MAX {
        info.origin_y = 0;
    }
    Ok(info)
}

struct NetRec {
    name: String,
    /// `(node name, pin index, source line)`. The pin index comes from the
    /// trailing `P<idx>` extension token and defaults to 0.
    pins: Vec<(String, usize, usize)>,
}

fn parse_nets(text: &str) -> Result<Vec<NetRec>> {
    let mut out: Vec<NetRec> = Vec::new();
    let mut auto = 0usize;
    for (line, l) in content_lines(text) {
        if l.starts_with("NumNets") || l.starts_with("NumPins") {
            continue;
        }
        if let Some(rest) = l.strip_prefix("NetDegree") {
            let mut it = rest.trim().trim_start_matches(':').split_whitespace();
            let _deg: usize = parse_num(it.next(), ".nets", line)? as usize;
            let name = it.next().map(str::to_string).unwrap_or_else(|| {
                auto += 1;
                format!("net{auto}")
            });
            out.push(NetRec {
                name,
                pins: Vec::new(),
            });
        } else {
            let Some(net) = out.last_mut() else {
                return Err(ParseError::new(".nets", line, "pin before NetDegree"));
            };
            let toks: Vec<&str> = l.split_whitespace().collect();
            let name = *toks
                .first()
                .ok_or_else(|| ParseError::new(".nets", line, "missing pin node"))?;
            let pin = if toks.len() > 1 {
                toks.last()
                    .and_then(|t| t.strip_prefix('P'))
                    .and_then(|t| t.parse::<usize>().ok())
                    .unwrap_or(0)
            } else {
                0
            };
            net.pins.push((name.to_string(), pin, line));
        }
    }
    Ok(out)
}

struct FenceRec {
    name: String,
    rects: Vec<Rect>,
    cells: Vec<(String, usize)>,
}

fn parse_fence(text: &str) -> Result<Vec<FenceRec>> {
    let mut out: Vec<FenceRec> = Vec::new();
    for (line, l) in content_lines(text) {
        if let Some(name) = l.strip_prefix("Fence") {
            out.push(FenceRec {
                name: name.trim().to_string(),
                rects: Vec::new(),
                cells: Vec::new(),
            });
        } else if let Some(r) = l.strip_prefix("Rect") {
            let f = out
                .last_mut()
                .ok_or_else(|| ParseError::new(".fence", line, "Rect before Fence"))?;
            let v: Vec<Dbu> = r
                .split_whitespace()
                .map(|t| {
                    t.parse()
                        .map_err(|_| ParseError::new(".fence", line, "bad rect"))
                })
                .collect::<Result<_>>()?;
            if v.len() != 4 {
                return Err(ParseError::new(".fence", line, "Rect needs 4 numbers"));
            }
            f.rects.push(Rect::new(v[0], v[1], v[2], v[3]));
        } else if let Some(cells) = l.strip_prefix("Cells") {
            let f = out
                .last_mut()
                .ok_or_else(|| ParseError::new(".fence", line, "Cells before Fence"))?;
            f.cells
                .extend(cells.split_whitespace().map(|s| (s.to_string(), line)));
        } else if l == "End" {
            // section terminator
        } else {
            return Err(ParseError::new(".fence", line, format!("unexpected: {l}")));
        }
    }
    Ok(out)
}

struct TypeRec {
    ct: CellType,
    cells: Vec<(String, usize)>,
    line: usize,
}

/// Replaces the synthesized per-dimension cell types with the library from
/// a `.types` file, remapping every listed cell, and applies the technology
/// extras (layer count, edge-spacing table, max-disp normalizer).
fn apply_types(
    design: &mut Design,
    text: &str,
    name_to_id: &HashMap<String, CellId>,
) -> Result<()> {
    let (types, tech) = parse_types(text)?;
    if let Some((num_layers, max_disp_rows, spacing)) = tech {
        design.tech.num_layers = num_layers;
        design.tech.max_disp_rows = max_disp_rows;
        design.tech.edge_spacing = spacing;
    }
    let old = std::mem::take(&mut design.cell_types);
    let mut assigned = vec![false; design.cells.len()];
    for (ti, t) in types.iter().enumerate() {
        for (name, line) in &t.cells {
            let Some(&id) = name_to_id.get(name) else {
                return Err(ParseError::new(
                    ".types",
                    *line,
                    format!("unknown node {name}"),
                ));
            };
            let cell = &mut design.cells[id.0 as usize];
            // Dimensions must agree with the `.nodes` record (captured by
            // the synthesized type the node mapped to).
            let node_ct = &old[cell.type_id.0 as usize];
            if node_ct.width != t.ct.width || node_ct.height_rows != t.ct.height_rows {
                return Err(ParseError::new(
                    ".types",
                    t.line,
                    format!(
                        "type {} is {}x{} rows but node {name} is {}x{}",
                        t.ct.name, t.ct.width, t.ct.height_rows, node_ct.width, node_ct.height_rows
                    ),
                ));
            }
            cell.type_id = CellTypeId(ti as u32);
            assigned[id.0 as usize] = true;
        }
    }
    if let Some(i) = assigned.iter().position(|a| !a) {
        return Err(ParseError::new(
            ".types",
            0,
            format!(
                ".types must assign every node; {} is missing",
                design.cells[i].name
            ),
        ));
    }
    design.cell_types = types.into_iter().map(|t| t.ct).collect();
    Ok(())
}

type TechExtras = (u8, f64, EdgeSpacingTable);

fn parse_types(text: &str) -> Result<(Vec<TypeRec>, Option<TechExtras>)> {
    let mut out: Vec<TypeRec> = Vec::new();
    let mut tech: Option<TechExtras> = None;
    let mut spacing_rows_left = 0usize;
    for (line, l) in content_lines(text) {
        let bad = |m: &str| ParseError::new(".types", line, m.to_string());
        if spacing_rows_left > 0 {
            let Some((_, _, table)) = tech.as_mut() else {
                return Err(bad("spacing row outside EdgeSpacing"));
            };
            let n = table.n_classes();
            let a = (n - spacing_rows_left) as u8;
            let row = l.strip_prefix("Row").ok_or_else(|| bad("expected Row"))?;
            let vals: Vec<Dbu> = row
                .split_whitespace()
                .map(|t| t.parse().map_err(|_| bad("bad spacing")))
                .collect::<Result<_>>()?;
            if vals.len() != n {
                return Err(bad("wrong spacing row length"));
            }
            for (b, v) in vals.iter().enumerate() {
                if *v < 0 {
                    return Err(bad("negative spacing"));
                }
                table.set(a, b as u8, *v);
            }
            spacing_rows_left -= 1;
        } else if let Some(rest) = l.strip_prefix("Tech ") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            let mut num_layers = 3u8;
            let mut max_disp_rows = 100.0f64;
            let mut k = 0;
            while k + 1 < toks.len() {
                match toks[k] {
                    "NumLayers" => {
                        num_layers = toks[k + 1].parse().map_err(|_| bad("bad NumLayers"))?;
                    }
                    "MaxDispRows" => {
                        max_disp_rows = toks[k + 1].parse().map_err(|_| bad("bad MaxDispRows"))?;
                    }
                    t => return Err(bad(&format!("unknown Tech key {t}"))),
                }
                k += 2;
            }
            tech = Some((num_layers, max_disp_rows, EdgeSpacingTable::new(1)));
        } else if let Some(rest) = l.strip_prefix("EdgeSpacing") {
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| bad("bad EdgeSpacing class count"))?;
            if n == 0 {
                return Err(bad("EdgeSpacing needs at least one class"));
            }
            let Some((_, _, table)) = tech.as_mut() else {
                return Err(bad("EdgeSpacing before Tech"));
            };
            *table = EdgeSpacingTable::new(n);
            spacing_rows_left = n;
        } else if let Some(rest) = l.strip_prefix("CellType ") {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 10 || toks[1] != "Width" || toks[3] != "HeightRows" {
                return Err(bad(
                    "CellType <name> Width <w> HeightRows <h> EdgeClass <l> <r> Parity <p>",
                ));
            }
            let width: Dbu = toks[2].parse().map_err(|_| bad("bad width"))?;
            let height: u32 = toks[4].parse().map_err(|_| bad("bad height"))?;
            if width <= 0 || height == 0 {
                return Err(bad("cell dimensions must be positive"));
            }
            let mut ct = CellType::new(toks[0], width, height);
            ct.edge_class = (
                toks[6].parse().map_err(|_| bad("bad edge class"))?,
                toks[7].parse().map_err(|_| bad("bad edge class"))?,
            );
            ct.rail_parity = match toks[9] {
                "none" => None,
                "even" => Some(RowParity::Even),
                "odd" => Some(RowParity::Odd),
                p => return Err(bad(&format!("unknown parity {p}"))),
            };
            out.push(TypeRec {
                ct,
                cells: Vec::new(),
                line,
            });
        } else if let Some(rest) = l.strip_prefix("Pin ") {
            let t = out.last_mut().ok_or_else(|| bad("Pin before CellType"))?;
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 6 {
                return Err(bad("Pin <name> <layer> <xl> <yl> <xh> <yh>"));
            }
            let nums: Vec<Dbu> = toks[1..]
                .iter()
                .map(|s| s.parse().map_err(|_| bad("bad pin number")))
                .collect::<Result<_>>()?;
            t.ct.pins.push(PinShape {
                name: toks[0].to_string(),
                layer: nums[0] as u8,
                rect: Rect::new(nums[1], nums[2], nums[3], nums[4]),
            });
        } else if let Some(cells) = l.strip_prefix("Cells ") {
            let t = out.last_mut().ok_or_else(|| bad("Cells before CellType"))?;
            t.cells
                .extend(cells.split_whitespace().map(|s| (s.to_string(), line)));
        } else if l == "End" {
            // section terminator
        } else {
            return Err(bad(&format!("unexpected: {l}")));
        }
    }
    if spacing_rows_left > 0 {
        return Err(ParseError::new(".types", 0, "truncated EdgeSpacing table"));
    }
    Ok((out, tech))
}

fn parse_rails(text: &str) -> Result<(PowerGrid, Vec<IoPin>)> {
    let mut grid = PowerGrid::none();
    let mut ios = Vec::new();
    for (line, l) in content_lines(text) {
        let mut it = l.split_whitespace();
        match it.next() {
            Some("Grid") => {
                let toks: Vec<&str> = it.collect();
                let mut k = 0;
                while k + 1 < toks.len() {
                    let v: Dbu = toks[k + 1]
                        .parse()
                        .map_err(|_| ParseError::new(".rails", line, "bad number"))?;
                    match toks[k] {
                        "HLayer" => grid.h_layer = v as u8,
                        "HWidth" => grid.h_width = v,
                        "HPitchRows" => grid.h_pitch_rows = v as u32,
                        "VLayer" => grid.v_layer = v as u8,
                        "VWidth" => grid.v_width = v,
                        "VPitch" => grid.v_pitch = v,
                        "VOffset" => grid.v_offset = v,
                        t => {
                            return Err(ParseError::new(".rails", line, format!("unknown key {t}")))
                        }
                    }
                    k += 2;
                }
            }
            Some("IoPin") => {
                let name = it
                    .next()
                    .ok_or_else(|| ParseError::new(".rails", line, "IoPin needs a name"))?;
                let nums: Vec<Dbu> = it
                    .map(|t| {
                        t.parse()
                            .map_err(|_| ParseError::new(".rails", line, "bad number"))
                    })
                    .collect::<Result<_>>()?;
                if nums.len() != 5 {
                    return Err(ParseError::new(
                        ".rails",
                        line,
                        "IoPin needs layer + 4 coords",
                    ));
                }
                ios.push(IoPin {
                    name: name.to_string(),
                    layer: nums[0] as u8,
                    rect: Rect::new(nums[1], nums[2], nums[3], nums[4]),
                });
            }
            Some(t) => {
                return Err(ParseError::new(".rails", line, format!("unexpected: {t}")));
            }
            None => {}
        }
    }
    Ok((grid, ios))
}

fn parse_num(tok: Option<&str>, ctx: &str, line: usize) -> Result<Dbu> {
    tok.ok_or_else(|| ParseError::new(ctx, line, "missing number"))?
        .parse()
        .map_err(|_| ParseError::new(ctx, line, format!("bad number {tok:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> Bundle {
        Bundle {
            nodes: "UCLA nodes 1.0\nNumNodes : 3\nNumTerminals : 1\n\
                    a 20 90\nb 30 180\nobs 100 90 terminal\n"
                .into(),
            pl: "UCLA pl 1.0\na 15 22 : N\nb 400 95 : N\nobs 500 0 : N /FIXED\n".into(),
            scl: "UCLA scl 1.0\nCoreRow Horizontal\n  Coordinate : 0\n  Height : 90\n\
                  Sitewidth : 10\n  Sitespacing : 10\n  SubrowOrigin : 0\n  NumSites : 100\nEnd\n\
                  CoreRow Horizontal\n  Coordinate : 90\n  Height : 90\n  Sitewidth : 10\n\
                  Sitespacing : 10\n  SubrowOrigin : 0\n  NumSites : 100\nEnd\n"
                .into(),
            nets: "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n  a I : 0 0\n  b O : 0 0\n".into(),
            fence: "Fence g0\n  Rect 300 0 600 180\n  Cells b\nEnd\n".into(),
            rails: "Grid HLayer 2 HWidth 6 HPitchRows 1 VLayer 3 VWidth 8 VPitch 200 VOffset 100\n\
                    IoPin io0 2 500 40 520 60\n"
                .into(),
            types: String::new(),
        }
    }

    #[test]
    fn reads_sample() {
        let d = read(&sample_bundle()).unwrap();
        assert_eq!(d.cells.len(), 3);
        assert_eq!(d.num_rows, 2);
        assert_eq!(d.core, Rect::new(0, 0, 1000, 180));
        assert_eq!(d.type_of(CellId(1)).height_rows, 2);
        assert!(d.cells[2].fixed);
        assert_eq!(d.cells[2].pos, Some(Point::new(500, 0)));
        assert_eq!(d.cells[1].fence, FenceId(1));
        assert_eq!(d.nets.len(), 1);
        assert_eq!(d.grid.v_pitch, 200);
        assert_eq!(d.io_pins.len(), 1);
        assert!(d.validate().is_empty());
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let d = read(&sample_bundle()).unwrap();
        let bundle2 = write(&d);
        let d2 = read(&bundle2).unwrap();
        assert_eq!(d.cells.len(), d2.cells.len());
        assert_eq!(d.num_rows, d2.num_rows);
        assert_eq!(d.core, d2.core);
        for (a, b) in d.cells.iter().zip(&d2.cells) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.gp, b.gp);
            assert_eq!(a.fixed, b.fixed);
            assert_eq!(a.fence, b.fence);
        }
        assert_eq!(d.grid, d2.grid);
        assert_eq!(d.io_pins, d2.io_pins);
        assert_eq!(d.nets.len(), d2.nets.len());
    }

    #[test]
    fn types_extension_roundtrips_faithfully() {
        // A design with non-default type metadata (edge classes, parity,
        // multiple pins, edge-spacing table) survives write→read exactly:
        // this is what lets batch CLI runs over written bundles reproduce
        // in-memory golden results.
        let mut d = read(&sample_bundle()).unwrap();
        d.tech.edge_spacing = EdgeSpacingTable::new(2);
        d.tech.edge_spacing.set(1, 1, 30);
        d.cell_types[0].edge_class = (0, 1);
        d.cell_types[1].rail_parity = Some(RowParity::Odd);
        d.cell_types[0].pins.push(PinShape {
            name: "ZN".into(),
            layer: 2,
            rect: Rect::new(4, 10, 8, 20),
        });
        d.nets[0].pins[0] = NetPin::Cell {
            cell: CellId(0),
            pin: 1,
        };
        let d2 = read(&write(&d)).unwrap();
        assert_eq!(d.tech, d2.tech);
        assert_eq!(d.cell_types, d2.cell_types);
        assert_eq!(d.cells, d2.cells);
        assert_eq!(d.nets, d2.nets);
        assert_eq!(d.fences, d2.fences);
    }

    #[test]
    fn types_file_errors_are_caught() {
        let mut b = sample_bundle();
        let d = read(&b).unwrap();
        b.types = write(&d).types;
        // A well-formed sidecar round-trips.
        assert!(read(&b).is_ok());
        // Unknown node in a Cells list.
        let mut bad = b.clone();
        bad.types = bad.types.replace("Cells a", "Cells ghost");
        assert!(read(&bad).unwrap_err().message.contains("unknown node"));
        // Dimension mismatch against .nodes.
        let mut bad = b.clone();
        bad.types = bad.types.replace("Width 20", "Width 50");
        assert!(read(&bad).unwrap_err().message.contains("but node"));
        // A node left unassigned.
        let mut bad = b.clone();
        bad.types = bad.types.replace("  Cells a\n", "");
        assert!(read(&bad)
            .unwrap_err()
            .message
            .contains("must assign every node"));
    }

    #[test]
    fn apply_pl_overlays_positions() {
        let mut d = read(&sample_bundle()).unwrap();
        apply_pl(&mut d, "a 40 90 : N\n").unwrap();
        assert_eq!(d.cells[0].pos, Some(Point::new(40, 90)));
        assert_eq!(d.cells[0].orient, Orient::FS, "row 1 flips odd-height");
        // GP untouched.
        assert_eq!(d.cells[0].gp, Point::new(15, 22));
        // Fixed cells are not moved.
        apply_pl(&mut d, "obs 0 0 : N\n").unwrap();
        assert_eq!(d.cells[2].pos, Some(Point::new(500, 0)));
        // Unknown names rejected.
        assert!(apply_pl(&mut d, "ghost 0 0 : N\n").is_err());
    }

    #[test]
    fn bad_height_rejected() {
        let mut b = sample_bundle();
        b.nodes = "NumNodes : 1\nNumTerminals : 0\na 20 85\n".into();
        b.pl = "a 0 0 : N\n".into();
        b.nets.clear();
        b.fence.clear();
        let err = read(&b).unwrap_err();
        assert!(err.message.contains("whole number of rows"), "{err}");
    }

    #[test]
    fn unknown_node_in_pl_rejected() {
        let mut b = sample_bundle();
        b.pl.push_str("ghost 0 0 : N\n");
        let err = read(&b).unwrap_err();
        assert!(err.message.contains("unknown node"), "{err}");
    }

    #[test]
    fn missing_scl_fields_rejected() {
        let mut b = sample_bundle();
        b.scl = "CoreRow Horizontal\nEnd\n".into();
        assert!(read(&b).is_err());
    }

    #[test]
    fn fence_without_header_rejected() {
        let mut b = sample_bundle();
        b.fence = "Rect 0 0 1 1\n".into();
        let err = read(&b).unwrap_err();
        assert!(err.message.contains("Rect before Fence"), "{err}");
    }
}
